"""Legacy setup shim.

The execution environment is offline and has no ``wheel`` package, so PEP
660 editable installs (which build a wheel) are unavailable.  This shim
lets ``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .`` on fully equipped machines via pyproject.toml) work
everywhere.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
