"""End-to-end service test: a real harness job through the daemon (slow).

The acceptance bar for the service: a spec submitted over HTTP runs
through the same pipeline as ``python -m repro.harness`` and yields
**byte-identical** report artifacts, plus ledger entries whose
``config_hash`` matches the CLI's so ``runs diff`` compares them
exactly — and ``runs list`` shows which entry came from which job.
"""

from __future__ import annotations

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.harness import HarnessConfig
from repro.harness.experiments import run_many
from repro.serve import ServeClient, ServeDaemon

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def fig1_direct(tmp_path_factory):
    """The reference artifacts: fig1 --quick saved by the CLI pipeline."""
    out = tmp_path_factory.mktemp("direct")
    for result in run_many(HarnessConfig(quick=True), ["fig1"]):
        result.save(out)
    return out


def test_service_run_is_byte_identical(tmp_path, fig1_direct):
    daemon = ServeDaemon(data_dir=tmp_path / "serve", port=0, workers=1,
                         poll_interval=0.05, quiet=True)
    daemon.start()
    try:
        client = ServeClient(daemon.url)
        job = client.submit({
            "kind": "harness", "experiments": ["fig1"], "quick": True,
        })
        job = client.wait(job["id"], timeout=600)
        assert job["state"] == "done", job.get("error")
        result = job["result"]
        assert result["ok"] is True
        assert "artifacts/fig1.txt" in result["artifacts"]
        assert result["ledger_run_id"]

        fetched = tmp_path / "fetched"
        client.fetch_artifacts(job["id"], fetched)
        for name in ("fig1.txt", "fig1.json"):
            direct = (fig1_direct / name).read_bytes()
            served = (fetched / "artifacts" / name).read_bytes()
            assert served == direct, f"{name} differs between CLI and service"

        # the ledger entry carries the job id and the CLI's config hash
        from repro.obs.ledger import Ledger, config_hash

        entry = Ledger().load(result["ledger_run_id"])
        assert entry["job_id"] == job["id"]
        assert entry["config_hash"] == config_hash({
            "experiments": ["fig1"], "quick": True,
            "scale_factor": 1.0, "verify": True,
        })

        # runs list surfaces the job column
        from repro.harness.runs import runs_main

        buf = io.StringIO()
        with redirect_stdout(buf):
            assert runs_main(["list"]) == 0
        listing = buf.getvalue()
        assert job["id"] in listing
        assert "job" in listing.splitlines()[1]
    finally:
        daemon.stop()


def test_daemon_kill9_restart_requeues_and_completes(tmp_path):
    """The crash-recovery contract, in-process.

    A first daemon claims the job and dies without any cleanup
    (simulated by tearing down its pool threads' child and leaving the
    row ``running``); a second daemon over the same store requeues the
    orphan and completes it.  The CI smoke (`tools/serve_smoke.py`)
    repeats this with a real ``kill -9``.
    """
    data = tmp_path / "serve"
    first = ServeDaemon(data_dir=data, port=0, workers=1,
                        poll_interval=0.05, quiet=True)
    first.start()
    client = ServeClient(first.url)
    job = client.submit({"kind": "canary", "seconds": 120})
    import time
    deadline = time.monotonic() + 10
    while client.get(job["id"])["state"] == "queued":
        assert time.monotonic() < deadline
        time.sleep(0.02)
    # kill -9 semantics: no graceful stop() — drop the HTTP server and
    # murder the worker's child without touching the store
    first._server.shutdown()
    first._server.server_close()
    first.pool._stop.set()
    for t in first.pool._threads:
        t.join(10)
    # undo the graceful requeue the pool performed, restoring the
    # crashed-daemon state a kill -9 leaves behind
    store = first.store
    if store.get(job["id"])["state"] == "queued":
        store.claim("w-crashed")
    assert store.get(job["id"])["state"] == "running"

    second = ServeDaemon(data_dir=data, port=0, workers=1,
                         poll_interval=0.05, quiet=True)
    second.start()
    try:
        # recovery happened during start(): the orphan is queued or
        # already re-running, never stuck in `running` without a worker
        client2 = ServeClient(second.url)
        row = client2.get(job["id"])
        assert row["state"] in ("queued", "running")
        client2.cancel(job["id"])  # don't actually sleep 120s
        final = client2.wait(job["id"], timeout=30)
        assert final["state"] == "cancelled"
        events = (data / "serve.jsonl").read_text()
        assert "crash recovery" in events
    finally:
        second.stop()


def test_serve_cli_surfaces(tmp_path, capsys):
    """The submit/status/list/fetch CLI against a live daemon."""
    from repro.serve.cli import main as serve_main

    daemon = ServeDaemon(data_dir=tmp_path / "serve", port=0, workers=1,
                         poll_interval=0.05, quiet=True)
    daemon.start()
    try:
        url = daemon.url
        rc = serve_main([
            "submit", "fig1", "--url", url, "--wait",
            "--fetch", str(tmp_path / "out"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "state=done" in out
        assert (tmp_path / "out" / "artifacts" / "fig1.txt").exists()

        job_id = out.split()[1]
        assert serve_main(["status", job_id, "--url", url]) == 0
        assert job_id in capsys.readouterr().out
        assert serve_main(["list", "--url", url]) == 0
        assert job_id in capsys.readouterr().out
        assert serve_main(["metrics", "--url", url]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["done"] == 1
        assert serve_main(["health", "--url", url]) == 0
        assert '"ok": true' in capsys.readouterr().out
    finally:
        daemon.stop()
