"""Unit tests for the shared DeviceQueue host-side machinery."""

import numpy as np
import pytest

from repro.core import DNA, FRONT, REAR, QueueFull, make_queue
from repro.simt import GlobalMemory


class TestConstruction:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            make_queue("RF/AN", 0)
        with pytest.raises(ValueError):
            make_queue("BASE", -5)

    def test_prefixed_buffers_coexist(self):
        mem = GlobalMemory()
        a = make_queue("RF/AN", 8, prefix="qa")
        b = make_queue("RF/AN", 8, prefix="qb")
        a.allocate(mem)
        b.allocate(mem)  # no name clash
        assert "qa.data" in mem and "qb.data" in mem

    def test_repr(self):
        q = make_queue("AN", 16, prefix="x")
        assert "16" in repr(q) and "x" in repr(q)


class TestPhysMapping:
    def test_monotonic_identity(self):
        q = make_queue("RF/AN", 8)
        assert q._phys(5) == 5
        assert q._in_bounds(np.array([7, 8])).tolist() == [True, False]

    def test_circular_wraps(self):
        q = make_queue("RF/AN", 8, circular=True)
        assert q._phys(13) == 5
        assert q._in_bounds(np.array([100])).tolist() == [True]


class TestSeedAndDrain:
    def test_drain_host_returns_pending_tokens(self):
        mem = GlobalMemory()
        q = make_queue("RF/AN", 16)
        q.allocate(mem)
        q.seed(mem, [4, 5, 6])
        assert q.drain_host(mem).tolist() == [4, 5, 6]

    def test_sentinel_fill(self):
        mem = GlobalMemory()
        q = make_queue("RF/AN", 8)
        q.allocate(mem)
        assert (mem[q.buf_data] == DNA).all()

    def test_seed_twice_appends(self):
        mem = GlobalMemory()
        q = make_queue("RF/AN", 16)
        q.allocate(mem)
        q.seed(mem, [1])
        q.seed(mem, [2, 3])
        assert mem[q.buf_ctrl][REAR] == 3
        assert q.drain_host(mem).tolist() == [1, 2, 3]

    def test_base_seed_sets_valid_flags(self):
        mem = GlobalMemory()
        q = make_queue("BASE", 16)
        q.allocate(mem)
        q.seed(mem, [9, 8])
        assert mem[q.buf_valid][:3].tolist() == [1, 1, 0]

    def test_circular_seed_wraps_physically(self):
        mem = GlobalMemory()
        q = make_queue("RF/AN", 4, circular=True)
        q.allocate(mem)
        # advance rear artificially to force wrapping
        mem[q.buf_ctrl][REAR] = 3
        mem[q.buf_ctrl][FRONT] = 3
        q.seed(mem, [7, 9])
        assert mem[q.buf_data][3] == 7
        assert mem[q.buf_data][0] == 9
