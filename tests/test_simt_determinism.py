"""Determinism and hot-path-equivalence guards for the engine.

The engine's wall-clock fast paths (combined free+ready events, deferred
CU wakes, per-launch latency caches, index-span caching) are pure
optimizations: they must never change a single simulated cycle, stats
counter, or memory word.  These tests pin that invariant:

* the same launch run twice produces bit-identical results;
* ops issued through the precomputed fast path (``trans``/``prechecked``)
  and the generic path simulate identically;
* a CU draining thousands of immediately-exiting wavefronts completes
  without recursion (the issue loop is iterative);
* attaching an observability probe (``repro.obs``) perturbs nothing:
  profiled and unprofiled runs agree on every cycle, counter, and cost.
"""

import numpy as np
import pytest

from repro.bfs import run_persistent_bfs

# every test here re-simulates full BFS launches two or three times to
# compare them bit-for-bit — by far the costliest file in the suite, so
# it rides the slow CI shard (pytest -m slow).
pytestmark = pytest.mark.slow
from repro.graphs import dataset
from repro.simt import (
    Compute,
    DeviceSpec,
    Engine,
    GlobalMemory,
    MemRead,
    MemWrite,
    TESTGPU,
)
from repro.simt.engine import transactions_for


def test_same_bfs_launch_twice_is_bit_identical():
    spec = dataset("Synthetic")
    g = spec.build(spec.default_scale * 0.25)
    runs = []
    for _ in range(2):
        run = run_persistent_bfs(
            g, spec.source, "RF/AN", TESTGPU, 4, verify=False
        )
        runs.append(run)
    a, b = runs
    assert a.cycles == b.cycles
    assert a.stats.snapshot() == b.stats.snapshot()
    assert np.array_equal(a.costs, b.costs)


def _rw_kernel(precomputed):
    """Reads and writes a strided window; optionally via the fast path."""

    def kernel(ctx):
        idx = (ctx.global_thread_base + ctx.lane * 2) % 256
        for i in range(30):
            if precomputed:
                read = MemRead(
                    "data", idx, trans=transactions_for(idx), prechecked=True
                )
            else:
                read = MemRead("data", idx)
            yield read
            vals = read.result + 1
            if precomputed:
                yield MemWrite(
                    "data", idx, vals,
                    trans=transactions_for(idx), prechecked=True,
                )
            else:
                yield MemWrite("data", idx, vals)
            yield Compute(3)

    return kernel


def _run_rw(precomputed):
    mem = GlobalMemory()
    mem.alloc("data", 256, fill=7)
    eng = Engine(TESTGPU, mem)
    res = eng.launch(_rw_kernel(precomputed), 6)
    return res, mem["data"].copy()


def test_fast_path_and_generic_path_simulate_identically():
    res_fast, mem_fast = _run_rw(precomputed=True)
    res_gen, mem_gen = _run_rw(precomputed=False)
    assert res_fast.cycles == res_gen.cycles
    assert res_fast.stats.snapshot() == res_gen.stats.snapshot()
    assert np.array_equal(mem_fast, mem_gen)


@pytest.mark.parametrize("variant", ["BASE", "AN", "RF/AN"])
def test_profiled_run_is_bit_identical_to_unprofiled(variant):
    from repro.obs import TimelineProbe

    spec = dataset("Synthetic")
    g = spec.build(spec.default_scale * 0.25)
    plain = run_persistent_bfs(
        g, spec.source, variant, TESTGPU, 4, verify=False
    )
    probe = TimelineProbe()
    profiled = run_persistent_bfs(
        g, spec.source, variant, TESTGPU, 4, verify=False, probe=probe
    )
    assert plain.cycles == profiled.cycles
    assert plain.stats.snapshot() == profiled.stats.snapshot()
    assert np.array_equal(plain.costs, profiled.costs)
    # and the probe did record the launch it watched
    assert probe.cycles == profiled.cycles
    assert len(probe.issues) > 0
    assert probe.queues  # queue registered itself


def test_profile_session_does_not_perturb_or_leak():
    import repro.simt.engine as engine_mod
    from repro.obs import ProfileSession

    spec = dataset("Synthetic")
    g = spec.build(spec.default_scale * 0.25)
    plain = run_persistent_bfs(
        g, spec.source, "RF/AN", TESTGPU, 4, verify=False
    )
    assert engine_mod.PROBE_FACTORY is None
    with ProfileSession(bins=16) as session:
        profiled = run_persistent_bfs(
            g, spec.source, "RF/AN", TESTGPU, 4, verify=False
        )
    assert engine_mod.PROBE_FACTORY is None  # restored on exit
    assert plain.cycles == profiled.cycles
    assert plain.stats.snapshot() == profiled.stats.snapshot()
    assert len(session.launches) == 1
    assert session.launches[0]["metrics"]["cycles"] == plain.cycles


def test_metrics_session_does_not_perturb_or_leak():
    # run-level metrics ride the METRICS_SINK hook, which fires after a
    # launch's stats are final: metered and bare runs must agree on
    # every cycle, counter, and cost.
    import repro.simt.engine as engine_mod
    from repro.obs import MetricsSession

    spec = dataset("Synthetic")
    g = spec.build(spec.default_scale * 0.25)
    plain = run_persistent_bfs(
        g, spec.source, "RF/AN", TESTGPU, 4, verify=False
    )
    assert engine_mod.METRICS_SINK is None
    with MetricsSession() as session:
        metered = run_persistent_bfs(
            g, spec.source, "RF/AN", TESTGPU, 4, verify=False
        )
    assert engine_mod.METRICS_SINK is None  # restored on exit
    assert plain.cycles == metered.cycles
    assert plain.stats.snapshot() == metered.stats.snapshot()
    assert np.array_equal(plain.costs, metered.costs)
    # and the registry really saw the launch
    reg = session.registry
    assert reg.total("sim.launches") == 1
    assert reg.total("sim.cycles") == plain.cycles
    assert reg.value("sim.issued_ops", device="TestGPU") == (
        plain.stats.issued_ops
    )


@pytest.mark.parametrize("variant", ["BASE", "AN", "RF/AN"])
def test_blamed_run_is_bit_identical_to_bare(variant):
    # the blame recorder subscribes to extra hooks (wf_phase,
    # sched_done, on_atomic_queued) that every queue variant and both
    # persistent kernels emit; all of them sit behind the usual
    # `probe is not None` gate, so a blamed run must agree with a bare
    # one on every cycle, counter, and cost.
    from repro.obs import BlameProbe

    spec = dataset("Synthetic")
    g = spec.build(spec.default_scale * 0.25)
    plain = run_persistent_bfs(
        g, spec.source, variant, TESTGPU, 4, verify=False
    )
    probe = BlameProbe()
    blamed = run_persistent_bfs(
        g, spec.source, variant, TESTGPU, 4, verify=False, probe=probe
    )
    assert plain.cycles == blamed.cycles
    assert plain.stats.snapshot() == blamed.stats.snapshot()
    assert np.array_equal(plain.costs, blamed.costs)
    # and the recorder really captured blame evidence
    assert probe.phase_log
    assert probe.done_event is not None


def test_blamed_naive_cas_run_is_bit_identical_to_bare():
    # the naive-CAS ablation queue emits the blame phase marks too
    from repro.core import SchedulerControl, persistent_kernel
    from repro.ext import NaiveCasQueue
    from repro.obs import BlameProbe

    def launch(probe=None):
        eng = Engine(TESTGPU)
        sched = SchedulerControl()
        q = NaiveCasQueue(capacity=4096)
        q.allocate(eng.memory)
        sched.allocate(eng.memory)
        q.seed(eng.memory, [40, 17])
        sched.seed(eng.memory, 2)
        from test_core_scheduler import CountdownWorker

        kern = persistent_kernel(q, CountdownWorker(), sched)
        res = eng.launch(
            kern, 6, params={"max_work_cycles": 500_000}, probe=probe
        )
        return res

    plain = launch()
    probe = BlameProbe()
    blamed = launch(probe=probe)
    assert plain.cycles == blamed.cycles
    assert plain.stats.snapshot() == blamed.stats.snapshot()
    assert probe.phase_log


def test_blamed_sharded_run_is_bit_identical_to_bare():
    from repro.bfs.common import bfs_queue_capacity
    from repro.core import ShardedQueue
    from repro.obs import BlameProbe

    spec = dataset("Synthetic")
    g = spec.build(spec.default_scale * 0.25)
    cap = bfs_queue_capacity(g, TESTGPU, 4)
    factory = lambda c: ShardedQueue(c, n_shards=4, steal=True)  # noqa: E731
    plain = run_persistent_bfs(
        g, spec.source, "SHARDED", TESTGPU, 4, verify=False,
        queue_factory=factory, capacity=cap,
    )
    probe = BlameProbe()
    blamed = run_persistent_bfs(
        g, spec.source, "SHARDED", TESTGPU, 4, verify=False,
        queue_factory=factory, capacity=cap, probe=probe,
    )
    assert plain.cycles == blamed.cycles
    assert plain.stats.snapshot() == blamed.stats.snapshot()
    assert np.array_equal(plain.costs, blamed.costs)


def test_blame_session_does_not_perturb_or_leak():
    import repro.simt.engine as engine_mod
    from repro.obs import BlameSession

    spec = dataset("Synthetic")
    g = spec.build(spec.default_scale * 0.25)
    plain = run_persistent_bfs(
        g, spec.source, "RF/AN", TESTGPU, 4, verify=False
    )
    assert engine_mod.PROBE_FACTORY is None
    with BlameSession() as session:
        blamed = run_persistent_bfs(
            g, spec.source, "RF/AN", TESTGPU, 4, verify=False
        )
    assert engine_mod.PROBE_FACTORY is None  # restored on exit
    assert plain.cycles == blamed.cycles
    assert plain.stats.snapshot() == blamed.stats.snapshot()
    assert np.array_equal(plain.costs, blamed.costs)
    assert len(session.launches) == 1
    assert session.launches[0].end_cycles == plain.cycles


@pytest.mark.parametrize("variant", ["BASE", "AN", "RF/AN"])
def test_flight_recorded_run_is_bit_identical_to_bare(variant):
    # the flight recorder is the always-on probe (--flight): it folds
    # every callback into a bounded ring + rolling counters, so a
    # recorded run must agree with a bare one on every cycle, counter,
    # and cost — for all queue variants.
    from repro.obs import FlightRecorder

    spec = dataset("Synthetic")
    g = spec.build(spec.default_scale * 0.25)
    plain = run_persistent_bfs(
        g, spec.source, variant, TESTGPU, 4, verify=False
    )
    rec = FlightRecorder()
    recorded = run_persistent_bfs(
        g, spec.source, variant, TESTGPU, 4, verify=False, probe=rec
    )
    assert plain.cycles == recorded.cycles
    assert plain.stats.snapshot() == recorded.stats.snapshot()
    assert np.array_equal(plain.costs, recorded.costs)
    # and the recorder really saw the launch
    assert rec.events
    assert rec.deliveries > 0
    assert rec.queues


def test_flight_recorded_naive_cas_run_is_bit_identical_to_bare():
    from repro.core import SchedulerControl, persistent_kernel
    from repro.ext import NaiveCasQueue
    from repro.obs import FlightRecorder

    def launch(probe=None):
        eng = Engine(TESTGPU)
        sched = SchedulerControl()
        q = NaiveCasQueue(capacity=4096)
        q.allocate(eng.memory)
        sched.allocate(eng.memory)
        q.seed(eng.memory, [40, 17])
        sched.seed(eng.memory, 2)
        from test_core_scheduler import CountdownWorker

        kern = persistent_kernel(q, CountdownWorker(), sched)
        return eng.launch(
            kern, 6, params={"max_work_cycles": 500_000}, probe=probe
        )

    plain = launch()
    rec = FlightRecorder()
    recorded = launch(probe=rec)
    assert plain.cycles == recorded.cycles
    assert plain.stats.snapshot() == recorded.stats.snapshot()
    assert rec.events


def test_flight_recorded_sharded_run_is_bit_identical_to_bare():
    from repro.bfs.common import bfs_queue_capacity
    from repro.core import ShardedQueue
    from repro.obs import FlightRecorder

    spec = dataset("Synthetic")
    g = spec.build(spec.default_scale * 0.25)
    cap = bfs_queue_capacity(g, TESTGPU, 4)
    factory = lambda c: ShardedQueue(c, n_shards=4, steal=True)  # noqa: E731
    plain = run_persistent_bfs(
        g, spec.source, "SHARDED", TESTGPU, 4, verify=False,
        queue_factory=factory, capacity=cap,
    )
    rec = FlightRecorder()
    recorded = run_persistent_bfs(
        g, spec.source, "SHARDED", TESTGPU, 4, verify=False,
        queue_factory=factory, capacity=cap, probe=rec,
    )
    assert plain.cycles == recorded.cycles
    assert plain.stats.snapshot() == recorded.stats.snapshot()
    assert np.array_equal(plain.costs, recorded.costs)
    # per-shard queues registered individually
    assert len(rec.queues) > 1


def test_flight_session_with_watchdog_does_not_perturb_or_leak():
    # the full --flight stack: PROBE_FACTORY installs a FlightRecorder
    # and WATCHDOG_FACTORY attaches a LivenessWatchdog whose polls ride
    # the engine loop — on a healthy run both must be bit-invisible and
    # both hooks must be restored on exit.
    import repro.simt.engine as engine_mod
    from repro.obs import FlightSession

    spec = dataset("Synthetic")
    g = spec.build(spec.default_scale * 0.25)
    plain = run_persistent_bfs(
        g, spec.source, "RF/AN", TESTGPU, 4, verify=False
    )
    assert engine_mod.PROBE_FACTORY is None
    assert engine_mod.WATCHDOG_FACTORY is None
    with FlightSession(watchdog=True) as session:
        recorded = run_persistent_bfs(
            g, spec.source, "RF/AN", TESTGPU, 4, verify=False
        )
    assert engine_mod.PROBE_FACTORY is None  # restored on exit
    assert engine_mod.WATCHDOG_FACTORY is None
    assert plain.cycles == recorded.cycles
    assert plain.stats.snapshot() == recorded.stats.snapshot()
    assert np.array_equal(plain.costs, recorded.costs)
    # a healthy run never escalates
    assert session.watchdog_events == []
    assert session.last is not None
    assert session.last.cycles == recorded.cycles


@pytest.mark.parametrize("variant", ["BASE", "AN", "RF/AN"])
def test_controlled_fifo_run_is_bit_identical_to_uncontrolled(variant):
    # the schedule-controller hook (repro.verify) rides the issue
    # selection point; with an engine-order controller installed the
    # hook must be bit-invisible: same cycles, counters, and costs.
    import repro.simt.engine as engine_mod
    from repro.verify.schedule import FifoController

    spec = dataset("Synthetic")
    g = spec.build(spec.default_scale * 0.25)
    plain = run_persistent_bfs(
        g, spec.source, variant, TESTGPU, 4, verify=False
    )
    assert engine_mod.CONTROLLER_FACTORY is None
    try:
        engine_mod.CONTROLLER_FACTORY = FifoController
        controlled = run_persistent_bfs(
            g, spec.source, variant, TESTGPU, 4, verify=False
        )
    finally:
        engine_mod.CONTROLLER_FACTORY = None
    assert plain.cycles == controlled.cycles
    assert plain.stats.snapshot() == controlled.stats.snapshot()
    assert np.array_equal(plain.costs, controlled.costs)


def test_sharded_single_shard_is_bit_identical_to_rfan():
    # the sharded composition at shards=1 must be a pure pass-through:
    # same cycles, same stats snapshot, same metric items, same costs as
    # the bare RF/AN queue under the plain persistent kernel — the
    # equivalence pin that keeps every existing RF/AN number valid.
    from repro.bfs.common import bfs_queue_capacity
    from repro.core import ShardedQueue

    spec = dataset("Synthetic")
    g = spec.build(spec.default_scale * 0.25)
    plain = run_persistent_bfs(
        g, spec.source, "RF/AN", TESTGPU, 4, verify=False
    )
    cap = bfs_queue_capacity(g, TESTGPU, 4)
    sharded = run_persistent_bfs(
        g, spec.source, "SHARDED", TESTGPU, 4, verify=False,
        queue_factory=lambda c: ShardedQueue(c, n_shards=1, steal=False),
        capacity=cap,
    )
    assert sharded.cycles == plain.cycles
    assert sharded.stats.snapshot() == plain.stats.snapshot()
    assert sorted(sharded.stats.metric_items()) == sorted(
        plain.stats.metric_items()
    )
    assert np.array_equal(sharded.costs, plain.costs)
    # no steal/shard counter keys may leak into the single-shard config
    assert not any(
        "steal" in k or "shard" in k for k in sharded.stats.custom
    )


def test_draining_thousands_of_exiting_wavefronts_is_iterative():
    # one CU, every wavefront exits on its first resume: the seed's
    # recursive issue-on-StopIteration would exceed the recursion limit.
    dev = DeviceSpec(
        name="drain", n_cus=1, wavefront_size=4, max_wavefronts_per_cu=2000
    )
    n = 1990

    def kernel(ctx):
        if ctx.wf_id == 0:
            yield Compute(1)
        # everyone else exits without issuing anything
        return

    mem = GlobalMemory()
    eng = Engine(dev, mem)
    res = eng.launch(kernel, n)
    assert res.stats.issued_ops == 1
