"""Tests for the generality workloads (N-Queens, task DAG)."""

import numpy as np
import pytest

from repro import simt
from repro.core import QUEUE_VARIANTS
from repro.workloads import (
    KNOWN_SOLUTIONS,
    random_dag,
    run_nqueens,
    run_taskdag,
)
from repro.workloads.nqueens import NQueensWorker, pack, unpack

ALL_VARIANTS = sorted(QUEUE_VARIANTS)


class TestNQueensEncoding:
    def test_pack_unpack_roundtrip(self):
        for placement in [(0,), (3, 1), (0, 2, 4, 1, 3), tuple(range(8))]:
            assert tuple(unpack(pack(placement))) == placement

    def test_empty(self):
        assert unpack(0) == []

    def test_worker_bounds(self):
        with pytest.raises(ValueError):
            NQueensWorker(0)
        with pytest.raises(ValueError):
            NQueensWorker(16)


class TestNQueensRuns:
    @pytest.mark.parametrize("n,expected", [(4, 2), (5, 10), (6, 4)])
    def test_known_counts_rfan(self, n, expected, testgpu):
        result = run_nqueens(n, "RF/AN", testgpu, 6)
        assert result.solutions == expected

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_all_variants_agree(self, variant, testgpu):
        result = run_nqueens(5, variant, testgpu, 4)
        assert result.solutions == KNOWN_SOLUTIONS[5]

    def test_no_solutions_terminates(self, testgpu):
        result = run_nqueens(3, "RF/AN", testgpu, 2)
        assert result.solutions == 0
        assert result.tasks > 0

    def test_seven_queens(self, testgpu):
        result = run_nqueens(7, "RF/AN", testgpu, 8)
        assert result.solutions == 40

    def test_subtask_granularity_invariant(self, testgpu):
        for sub in (1, 3, 8):
            r = run_nqueens(5, "RF/AN", testgpu, 4, subtasks_per_cycle=sub)
            assert r.solutions == 10


class TestTaskDag:
    def test_random_dag_is_acyclic_by_construction(self):
        g, w = random_dag(200, seed=1)
        edges = g.to_edges()
        if edges.size:
            assert (edges[:, 0] < edges[:, 1]).all()
        assert w.size == 200

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_execution_respects_dependencies(self, variant, testgpu):
        g, w = random_dag(150, avg_deps=2.5, seed=2)
        result = run_taskdag(g, w, variant, testgpu, 6)
        # verify=True already ran; re-run the oracle explicitly
        result.verify(g)
        assert result.n_tasks == 150

    def test_chain_dag_serializes(self, testgpu):
        from repro.graphs import path_graph

        g = path_graph(30)
        w = np.full(30, 4)
        result = run_taskdag(g, w, "RF/AN", testgpu, 4)
        # a chain has exactly one legal order
        assert result.order.tolist() == list(range(30))

    def test_independent_tasks_all_run(self, testgpu):
        from repro.graphs import CSRGraph

        g = CSRGraph.from_edges(64, [])
        w = np.ones(64, dtype=np.int64)
        result = run_taskdag(g, w, "RF/AN", testgpu, 6)
        assert sorted(result.order.tolist()) == list(range(64))

    def test_oracle_detects_violation(self, testgpu):
        g, w = random_dag(50, seed=3)
        result = run_taskdag(g, w, "RF/AN", testgpu, 4)
        if g.n_edges:
            src = int(g.to_edges()[0, 0])
            dst = int(g.to_edges()[0, 1])
            result.order[src], result.order[dst] = (
                result.order[dst],
                result.order[src],
            )
            with pytest.raises(AssertionError):
                result.verify(g)

    def test_invalid_dag_size(self):
        with pytest.raises(ValueError):
            random_dag(0)
