"""Job-spec serialization and the programmatic harness entry point."""

from __future__ import annotations

import pytest

from repro.harness.jobspec import JobSpec, SpecError, submitting_job_id


def test_harness_spec_roundtrip():
    spec = JobSpec.from_dict({
        "kind": "harness", "experiments": ["fig1", "tab1"],
        "quick": True, "scale_factor": 2.0, "verify": False,
        "jobs": 2, "flight": True,
    })
    again = JobSpec.from_dict(spec.to_dict())
    assert again == spec


def test_canary_spec_roundtrip():
    spec = JobSpec.from_dict({"kind": "canary", "seconds": 1.5,
                              "fail_attempts": 2})
    assert JobSpec.from_dict(spec.to_dict()) == spec
    # canary serialization carries no harness fields
    assert set(spec.to_dict()) == {"kind", "seconds", "fail_attempts"}


def test_defaults_are_quick_and_verified():
    spec = JobSpec.from_dict({"experiments": ["fig1"]})
    assert spec.kind == "harness"
    assert spec.quick is True
    assert spec.verify is True
    assert spec.jobs == 1


@pytest.mark.parametrize("bad", [
    {"kind": "bogus"},
    {"kind": "harness"},                                # no experiments
    {"kind": "harness", "experiments": ["nope"]},       # unknown id
    {"kind": "harness", "experiments": ["fig1"], "jobs": 0},
    {"kind": "harness", "experiments": ["fig1"], "scale_factor": 0},
    {"kind": "harness", "experiments": ["fig1"], "surprise": 1},
    {"kind": "canary", "seconds": -1},
    {"kind": "canary", "fail_attempts": -1},
    "not a dict",
    None,
])
def test_invalid_specs_rejected(bad):
    with pytest.raises(SpecError):
        JobSpec.from_dict(bad)


def test_json_numeric_coercion():
    spec = JobSpec.from_dict({
        "kind": "harness", "experiments": ["fig1"],
        "scale_factor": 1, "jobs": 2.0 if False else 2,
    })
    assert isinstance(spec.scale_factor, float)
    assert isinstance(spec.jobs, int)


def test_config_matches_harness_cli_shape():
    """The hashed config must equal the CLI's, so runs diff compares."""
    from repro.obs.ledger import config_hash

    spec = JobSpec.from_dict({"experiments": ["fig1"], "quick": True})
    cli_config = {
        "experiments": ["fig1"],
        "quick": True,
        "scale_factor": 1.0,
        "verify": True,
    }
    assert config_hash(spec.config()) == config_hash(cli_config)


def test_config_excludes_execution_knobs():
    a = JobSpec.from_dict({"experiments": ["fig1"], "jobs": 1,
                           "flight": False})
    b = JobSpec.from_dict({"experiments": ["fig1"], "jobs": 4,
                           "flight": True})
    assert a.config() == b.config()


def test_run_job_spec_rejects_canary(tmp_path):
    spec = JobSpec.from_dict({"kind": "canary"})
    from repro.harness.jobspec import run_job_spec

    with pytest.raises(SpecError):
        run_job_spec(spec, str(tmp_path))


def test_submitting_job_id_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOB_ID", raising=False)
    assert submitting_job_id() is None
    monkeypatch.setenv("REPRO_JOB_ID", "job-abc")
    assert submitting_job_id() == "job-abc"
    monkeypatch.setenv("REPRO_JOB_ID", "")
    assert submitting_job_id() is None


def test_ledger_records_job_id(tmp_path, monkeypatch):
    """Ledger entries carry job_id in both the manifest and the index."""
    from repro.obs.ledger import Ledger

    root = tmp_path / "ledger"
    ledger = Ledger(root)
    entry = ledger.record(
        kind="serve", config={"x": 1}, metrics={}, wall_seconds=0.1,
        job_id="job-xyz",
    )
    assert entry["job_id"] == "job-xyz"
    assert ledger.load(entry["run_id"])["job_id"] == "job-xyz"
    assert ledger.entries()[-1]["job_id"] == "job-xyz"
    # CLI-style entries without a job record None, not a crash
    entry2 = ledger.record(
        kind="harness", config={"x": 1}, metrics={}, wall_seconds=0.1,
    )
    assert entry2["job_id"] is None
