"""Integration tests for the persistent-thread scheduler."""

import numpy as np
import pytest

from repro import simt
from repro.core import (
    QUEUE_VARIANTS,
    SchedulerControl,
    WavefrontQueueState,
    WorkCycleResult,
    make_queue,
    persistent_kernel,
)
from repro.simt import Compute, Engine

ALL_VARIANTS = sorted(QUEUE_VARIANTS)


class CountdownWorker:
    """Toy irregular workload: token v spawns token v-1 while v > 0.

    Total tasks for seed v is v+1, giving an exact oracle for the
    termination protocol and the task accounting.
    """

    def make_state(self, ctx):
        return None

    def work_cycle(self, ctx, wstate, st):
        active = st.has_token
        yield Compute(4)
        toks = st.token.copy()
        completed = active.copy()
        counts = np.where(active & (toks > 0), 1, 0).astype(np.int64)
        new = np.maximum(toks - 1, 0).reshape(-1, 1)
        return WorkCycleResult(
            completed=completed, new_counts=counts, new_tokens=new
        )


class FanoutWorker:
    """Token v in [0, n) spawns children 2v+1 and 2v+2 while < n (binary
    tree): exercises multi-token publishes and wide parallelism."""

    def __init__(self, n):
        self.n = n

    def make_state(self, ctx):
        return None

    def work_cycle(self, ctx, wstate, st):
        active = st.has_token
        yield Compute(4)
        wf = st.wavefront_size
        counts = np.zeros(wf, dtype=np.int64)
        new = np.zeros((wf, 2), dtype=np.int64)
        for lane in np.flatnonzero(active):
            v = int(st.token[lane])
            kids = [c for c in (2 * v + 1, 2 * v + 2) if c < self.n]
            counts[lane] = len(kids)
            for j, c in enumerate(kids):
                new[lane, j] = c
        return WorkCycleResult(
            completed=active.copy(), new_counts=counts, new_tokens=new
        )


def run_workload(variant, worker, seeds, testgpu, capacity=8192, n_wf=6):
    eng = Engine(testgpu)
    q = make_queue(variant, capacity=capacity)
    sched = SchedulerControl()
    q.allocate(eng.memory)
    sched.allocate(eng.memory)
    q.seed(eng.memory, seeds)
    sched.seed(eng.memory, len(seeds))
    kern = persistent_kernel(q, worker, sched)
    res = eng.launch(kern, n_wf, params={"max_work_cycles": 200_000})
    return eng, sched, res


class TestTermination:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_countdown_completes_exact_task_count(self, variant, testgpu):
        seeds = [10, 7, 3, 25]
        eng, sched, res = run_workload(variant, CountdownWorker(), seeds, testgpu)
        expected = sum(v + 1 for v in seeds)
        assert res.stats.custom["scheduler.tasks_completed"] == expected
        assert sched.is_done(eng.memory)
        assert sched.pending(eng.memory) == 0

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_binary_tree_fanout(self, variant, testgpu):
        n = 255  # full binary tree: tokens 0..254
        eng, sched, res = run_workload(variant, FanoutWorker(n), [0], testgpu)
        assert res.stats.custom["scheduler.tasks_completed"] == n
        assert sched.is_done(eng.memory)

    def test_zero_seeds_terminates_immediately(self, testgpu):
        eng, sched, res = run_workload("RF/AN", CountdownWorker(), [], testgpu)
        assert res.stats.custom.get("scheduler.tasks_completed", 0) == 0
        assert sched.is_done(eng.memory)

    def test_single_task_no_children(self, testgpu):
        eng, sched, res = run_workload("RF/AN", CountdownWorker(), [0], testgpu)
        assert res.stats.custom["scheduler.tasks_completed"] == 1


class TestAccounting:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_enqueue_dequeue_balance(self, variant, testgpu):
        seeds = [12, 12, 12]
        eng, sched, res = run_workload(variant, CountdownWorker(), seeds, testgpu)
        c = res.stats.custom
        # all seeded + published tokens were dequeued
        published = c.get("queue.enqueued_tokens", 0)
        dequeued = c.get("queue.dequeued_tokens", 0)
        assert dequeued == published + len(seeds)
        assert dequeued == c["scheduler.tasks_completed"]

    def test_work_cycle_budget_enforced(self, testgpu):
        """max_work_cycles guards against a stuck termination protocol."""
        eng = Engine(testgpu)
        q = make_queue("RF/AN", capacity=64)
        sched = SchedulerControl()
        q.allocate(eng.memory)
        sched.allocate(eng.memory)
        q.seed(eng.memory, [1])
        # deliberately wrong: pending=5 but only 1 real task -> never done
        sched.seed(eng.memory, 5)
        kern = persistent_kernel(q, CountdownWorker(), sched)
        with pytest.raises(RuntimeError, match="max_work_cycles"):
            eng.launch(kern, 2, params={"max_work_cycles": 500})

    def test_subtasks_param_forwarded(self, testgpu):
        seen = {}

        class SpyWorker(CountdownWorker):
            def work_cycle(self, ctx, wstate, st):
                seen["sub"] = ctx.params["subtasks_per_cycle"]
                return (yield from super().work_cycle(ctx, wstate, st))

        eng = Engine(testgpu)
        q = make_queue("RF/AN", capacity=64)
        sched = SchedulerControl()
        q.allocate(eng.memory)
        sched.allocate(eng.memory)
        q.seed(eng.memory, [2])
        sched.seed(eng.memory, 1)
        kern = persistent_kernel(q, SpyWorker(), sched, subtasks_per_cycle=7)
        eng.launch(kern, 1)
        assert seen["sub"] == 7


class TestSchedulerControl:
    def test_seed_zero_sets_done(self, testgpu):
        eng = Engine(testgpu)
        sched = SchedulerControl()
        sched.allocate(eng.memory)
        sched.seed(eng.memory, 0)
        assert sched.is_done(eng.memory)

    def test_seed_negative_rejected(self, testgpu):
        eng = Engine(testgpu)
        sched = SchedulerControl()
        sched.allocate(eng.memory)
        with pytest.raises(ValueError):
            sched.seed(eng.memory, -1)
