"""Unit tests for simulated global memory."""

import numpy as np
import pytest

from repro.simt import GlobalMemory, MemoryFault


class TestAlloc:
    def test_alloc_fill(self):
        mem = GlobalMemory()
        buf = mem.alloc("a", 16, fill=-1)
        assert buf.shape == (16,)
        assert (buf == -1).all()
        assert buf.dtype == np.int64

    def test_alloc_duplicate_rejected(self):
        mem = GlobalMemory()
        mem.alloc("a", 4)
        with pytest.raises(MemoryFault):
            mem.alloc("a", 4)

    def test_alloc_negative_size_rejected(self):
        mem = GlobalMemory()
        with pytest.raises(MemoryFault):
            mem.alloc("a", -1)

    def test_alloc_from_copies(self):
        mem = GlobalMemory()
        src = np.arange(5, dtype=np.int32)
        buf = mem.alloc_from("a", src)
        src[0] = 99
        assert buf[0] == 0
        assert buf.dtype == np.int64

    def test_free(self):
        mem = GlobalMemory()
        mem.alloc("a", 4)
        mem.free("a")
        assert "a" not in mem
        mem.alloc("a", 8)  # name reusable after free

    def test_free_unknown_rejected(self):
        with pytest.raises(MemoryFault):
            GlobalMemory().free("nope")

    def test_unknown_buffer_lookup(self):
        with pytest.raises(MemoryFault):
            GlobalMemory()["ghost"]

    def test_total_words(self):
        mem = GlobalMemory()
        mem.alloc("a", 10)
        mem.alloc("b", 22)
        assert mem.total_words == 32

    def test_iteration(self):
        mem = GlobalMemory()
        mem.alloc("a", 1)
        mem.alloc("b", 1)
        assert sorted(mem) == ["a", "b"]


class TestHotMarking:
    def test_small_buffers_hot_automatically(self):
        mem = GlobalMemory()
        mem.alloc("ctrl", 2)
        assert mem.is_hot("ctrl")

    def test_large_buffers_cold_by_default(self):
        mem = GlobalMemory()
        mem.alloc("big", 100_000)
        assert not mem.is_hot("big")

    def test_mark_hot_explicit(self):
        mem = GlobalMemory()
        mem.alloc("queue", 100_000)
        mem.mark_hot("queue")
        assert mem.is_hot("queue")

    def test_mark_hot_unknown_rejected(self):
        with pytest.raises(MemoryFault):
            GlobalMemory().mark_hot("ghost")

    def test_free_clears_hot_flag(self):
        mem = GlobalMemory()
        mem.alloc("q", 1000)
        mem.mark_hot("q")
        mem.free("q")
        mem.alloc("q", 1000)
        assert not mem.is_hot("q")


class TestBounds:
    def test_in_bounds_scalar_and_vector(self):
        mem = GlobalMemory()
        mem.alloc("a", 8)
        assert mem.check_bounds("a", 3).tolist() == [3]
        assert mem.check_bounds("a", np.array([0, 7])).tolist() == [0, 7]

    def test_empty_index_ok(self):
        mem = GlobalMemory()
        mem.alloc("a", 8)
        assert mem.check_bounds("a", np.empty(0, dtype=np.int64)).size == 0

    @pytest.mark.parametrize("idx", [-1, 8, [0, 8], [-2, 3]])
    def test_out_of_bounds_faults(self, idx):
        mem = GlobalMemory()
        mem.alloc("a", 8)
        with pytest.raises(MemoryFault):
            mem.check_bounds("a", np.asarray(idx))
