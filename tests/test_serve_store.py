"""Unit coverage for the job store state machine (repro.serve.store).

Every legal and illegal transition, priority ordering, idempotent
resubmission, retry backoff eligibility, and orphan recovery — all
against a real sqlite file in a tmp dir, with a fake clock where
timing matters.
"""

from __future__ import annotations

import threading

import pytest

from repro.serve.store import (
    STATES,
    TERMINAL,
    IllegalTransition,
    JobStore,
    StoreError,
    UnknownJob,
)

SPEC = {"kind": "canary", "seconds": 0}


class FakeClock:
    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def store(tmp_path, clock):
    return JobStore(tmp_path / "jobs.sqlite", clock=clock)


def submit(store, **kw):
    return store.submit(SPEC, **kw)


# ----------------------------------------------------------------------
# the legal lifecycle
# ----------------------------------------------------------------------
def test_submit_claim_finish(store):
    job = submit(store)
    assert job["state"] == "queued"
    assert job["resubmitted"] is False
    claimed = store.claim("w0")
    assert claimed["id"] == job["id"]
    assert claimed["state"] == "running"
    assert claimed["attempts"] == 1
    assert claimed["worker"] == "w0"
    done = store.finish(job["id"], result={"artifacts": []})
    assert done["state"] == "done"
    assert done["result"] == {"artifacts": []}
    assert done["finished_at"] is not None


def test_fail_terminal(store):
    job = submit(store)
    store.claim("w0")
    failed = store.fail(job["id"], "boom", result={"traceback": "..."})
    assert failed["state"] == "failed"
    assert failed["error"] == "boom"
    assert failed["result"] == {"traceback": "..."}


def test_cancel_queued_is_immediate(store):
    job = submit(store)
    out = store.cancel(job["id"])
    assert out["state"] == "cancelled"
    assert out["changed"] is True
    # the cancelled job is never claimable
    assert store.claim("w0") is None


def test_cancel_running_sets_flag_then_mark(store):
    job = submit(store)
    store.claim("w0")
    out = store.cancel(job["id"])
    assert out["state"] == "running"  # worker has to deliver it
    assert out["changed"] is True
    assert store.cancel_requested(job["id"]) is True
    done = store.mark_cancelled(job["id"])
    assert done["state"] == "cancelled"


def test_cancel_terminal_is_idempotent_noop(store):
    job = submit(store)
    store.claim("w0")
    store.finish(job["id"])
    out = store.cancel(job["id"])
    assert out["state"] == "done"
    assert out["changed"] is False


def test_requeue_preserves_retry_budget(store):
    job = submit(store, max_retries=2)
    store.claim("w0")
    back = store.requeue(job["id"], reason="daemon shutdown")
    assert back["state"] == "queued"
    assert back["retries"] == 0
    assert back["worker"] is None
    assert back["started_at"] is None
    again = store.claim("w1")
    assert again["id"] == job["id"]
    assert again["attempts"] == 2


# ----------------------------------------------------------------------
# every illegal transition raises
# ----------------------------------------------------------------------
@pytest.mark.parametrize("terminal_via", ["finish", "fail", "cancelq"])
@pytest.mark.parametrize("op", ["finish", "fail", "requeue", "mark_cancelled"])
def test_terminal_states_are_terminal(store, terminal_via, op):
    job = submit(store)
    if terminal_via == "cancelq":
        store.cancel(job["id"])
    else:
        store.claim("w0")
        getattr(store, terminal_via)(
            *([job["id"]] if terminal_via == "finish" else [job["id"], "x"])
        )
    with pytest.raises(IllegalTransition):
        if op in ("fail",):
            store.fail(job["id"], "boom")
        elif op == "mark_cancelled":
            store.mark_cancelled(job["id"])
        else:
            getattr(store, op)(job["id"])


@pytest.mark.parametrize("op", ["finish", "fail", "requeue", "mark_cancelled"])
def test_running_only_ops_reject_queued(store, op):
    job = submit(store)
    with pytest.raises(IllegalTransition) as exc:
        if op == "fail":
            store.fail(job["id"], "boom")
        else:
            getattr(store, op)(job["id"])
    assert exc.value.have == "queued"


def test_unknown_job_everywhere(store):
    with pytest.raises(UnknownJob):
        store.get("job-nope")
    with pytest.raises(UnknownJob):
        store.cancel("job-nope")
    with pytest.raises(UnknownJob):
        store.cancel_requested("job-nope")
    with pytest.raises(UnknownJob):
        store.finish("job-nope")


def test_double_claim_needs_two_jobs(store):
    submit(store)
    assert store.claim("w0") is not None
    assert store.claim("w1") is None  # no second queued job


# ----------------------------------------------------------------------
# priority ordering and backoff eligibility
# ----------------------------------------------------------------------
def test_priority_then_fifo(store, clock):
    low1 = submit(store, priority=0)
    clock.advance(1)
    high = submit(store, priority=5)
    clock.advance(1)
    low2 = submit(store, priority=0)
    order = [store.claim("w")["id"] for _ in range(3)]
    assert order == [high["id"], low1["id"], low2["id"]]


def test_retry_backoff_gates_claim(store, clock):
    job = submit(store, max_retries=1)
    store.claim("w0")
    store.fail(job["id"], "flaky", retry_in=30.0)
    back = store.get(job["id"])
    assert back["state"] == "queued"
    assert back["retries"] == 1
    # not eligible yet: a backing-off job is invisible to claim
    assert store.claim("w0") is None
    clock.advance(31)
    assert store.claim("w0")["id"] == job["id"]


def test_backoff_does_not_starve_fresh_jobs(store, clock):
    slow = submit(store, priority=9, max_retries=1)
    store.claim("w0")
    store.fail(slow["id"], "flaky", retry_in=60.0)
    fresh = submit(store, priority=0)
    assert store.claim("w0")["id"] == fresh["id"]


# ----------------------------------------------------------------------
# idempotent resubmission
# ----------------------------------------------------------------------
def test_idem_key_dedupes(store):
    a = store.submit(SPEC, idem_key="abc", priority=3)
    b = store.submit({"kind": "canary", "seconds": 99}, idem_key="abc",
                     priority=7)
    assert b["id"] == a["id"]
    assert b["resubmitted"] is True
    # the original submission's knobs win
    assert b["priority"] == 3
    assert b["spec"]["seconds"] == 0
    assert store.queue_depth() == 1


def test_idem_key_matches_terminal_jobs_too(store):
    a = store.submit(SPEC, idem_key="abc")
    store.claim("w0")
    store.finish(a["id"])
    b = store.submit(SPEC, idem_key="abc")
    assert b["id"] == a["id"]
    assert b["state"] == "done"
    assert b["resubmitted"] is True


def test_no_idem_key_always_new(store):
    a = submit(store)
    b = submit(store)
    assert a["id"] != b["id"]
    assert store.queue_depth() == 2


# ----------------------------------------------------------------------
# orphan recovery
# ----------------------------------------------------------------------
def test_recover_orphans_requeues_running(store):
    a = submit(store)
    b = submit(store)
    store.claim("w0")
    store.claim("w1")
    out = store.recover_orphans()
    assert out == {"requeued": 2, "cancelled": 0}
    for job_id in (a["id"], b["id"]):
        job = store.get(job_id)
        assert job["state"] == "queued"
        assert job["retries"] == 0  # recovery never burns retry budget
        assert "orphaned" in job["error"]


def test_recover_orphans_honours_pending_cancel(store):
    job = submit(store)
    store.claim("w0")
    store.cancel(job["id"])  # flag set, worker died before delivering
    out = store.recover_orphans()
    assert out == {"requeued": 0, "cancelled": 1}
    assert store.get(job["id"])["state"] == "cancelled"


def test_recover_orphans_ignores_settled_jobs(store):
    a = submit(store)
    store.claim("w0")
    store.finish(a["id"])
    submit(store)  # queued
    assert store.recover_orphans() == {"requeued": 0, "cancelled": 0}


def test_recovery_survives_reopen(tmp_path, clock):
    """The store is durable: a second JobStore sees the first's rows."""
    store = JobStore(tmp_path / "jobs.sqlite", clock=clock)
    job = store.submit(SPEC)
    store.claim("w0")
    reopened = JobStore(tmp_path / "jobs.sqlite", clock=clock)
    assert reopened.get(job["id"])["state"] == "running"
    reopened.recover_orphans()
    assert reopened.claim("w1")["id"] == job["id"]


# ----------------------------------------------------------------------
# queries and misc
# ----------------------------------------------------------------------
def test_counts_and_listing(store):
    ids = [submit(store)["id"] for _ in range(3)]
    store.claim("w0")
    counts = store.counts()
    assert counts["queued"] == 2 and counts["running"] == 1
    assert set(STATES) == set(counts)
    running = store.list_jobs(state="running")
    assert [j["id"] for j in running] == [ids[0]]
    assert len(store.list_jobs()) == 3
    assert len(store.list_jobs(limit=2)) == 2
    with pytest.raises(StoreError):
        store.list_jobs(state="bogus")


def test_total_retries(store, clock):
    job = submit(store, max_retries=3)
    for _ in range(2):
        store.claim("w0")
        store.fail(job["id"], "flaky", retry_in=0.0)
        clock.advance(1)
    assert store.total_retries() == 2


def test_concurrent_claims_are_exclusive(tmp_path):
    """N threads racing claim() never double-claim one job."""
    store = JobStore(tmp_path / "jobs.sqlite")
    n_jobs = 8
    for _ in range(n_jobs):
        store.submit(SPEC)
    claimed, lock = [], threading.Lock()

    def worker(name):
        while True:
            job = store.claim(name)
            if job is None:
                return
            with lock:
                claimed.append(job["id"])

    threads = [threading.Thread(target=worker, args=(f"w{i}",))
               for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(claimed) == n_jobs
    assert len(set(claimed)) == n_jobs


def test_terminal_tuple_matches_states():
    assert set(TERMINAL) < set(STATES)
