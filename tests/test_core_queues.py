"""Integration tests for the three device-queue variants.

Each variant is exercised through small dedicated kernels (producer /
consumer / mixed) on the simulated GPU, checking the safety properties
the paper relies on:

* every enqueued token is dequeued exactly once (no loss, no duplication);
* RF/AN performs zero CAS operations (retry-free);
* RF/AN issues exactly one proxy atomic per wavefront batch (arbitrary-n);
* queue-full aborts the kernel;
* the queue-empty exception semantics differ per variant as specified.
"""

import numpy as np
import pytest

from repro import simt
from repro.core import (
    DNA,
    FRONT,
    REAR,
    QUEUE_VARIANTS,
    QueueFull,
    WavefrontQueueState,
    make_queue,
)
from repro.simt import Compute, Engine, KernelAbort

ALL_VARIANTS = sorted(QUEUE_VARIANTS)


def drain_kernel(queue, out_buf, rounds):
    """Kernel: every lane tries to acquire; tokens recorded to out_buf."""

    def kernel(ctx):
        st = WavefrontQueueState(ctx.device.wavefront_size)
        got = []
        for _ in range(rounds):
            yield from queue.acquire(ctx, st)
            lanes = np.flatnonzero(st.has_token)
            for lane in lanes:
                got.append(int(st.token[lane]))
            st.complete(lanes)
            yield Compute(4)
        base = ctx.wf_id * 1000
        if got:
            idx = base + np.arange(len(got), dtype=np.int64)
            yield simt.MemWrite(out_buf, idx, np.array(got, dtype=np.int64))

    return kernel


class TestSeedAndDrain:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_tokens_consumed_exactly_once(self, variant, testgpu):
        eng = Engine(testgpu)
        q = make_queue(variant, capacity=256)
        q.allocate(eng.memory)
        tokens = list(range(100, 140))
        q.seed(eng.memory, tokens)
        eng.memory.alloc("out", 8000, fill=-1)
        eng.launch(drain_kernel(q, "out", rounds=60), 4)
        out = eng.memory["out"]
        got = sorted(int(v) for v in out[out >= 0])
        assert got == sorted(tokens)

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_seed_sets_counters(self, variant, testgpu):
        eng = Engine(testgpu)
        q = make_queue(variant, capacity=64)
        q.allocate(eng.memory)
        q.seed(eng.memory, [5, 6, 7])
        ctrl = eng.memory[q.buf_ctrl]
        assert ctrl[FRONT] == 0
        assert ctrl[REAR] == 3

    def test_seed_overflow_rejected(self, testgpu):
        eng = Engine(testgpu)
        q = make_queue("RF/AN", capacity=2)
        q.allocate(eng.memory)
        with pytest.raises(QueueFull):
            q.seed(eng.memory, [1, 2, 3])

    def test_seed_negative_token_rejected(self, testgpu):
        eng = Engine(testgpu)
        q = make_queue("RF/AN", capacity=8)
        q.allocate(eng.memory)
        with pytest.raises(ValueError):
            q.seed(eng.memory, [-3])


class TestProduceConsume:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_kernel_side_publish_then_drain(self, variant, testgpu):
        """Wavefront 0 publishes tokens; all wavefronts drain them."""
        eng = Engine(testgpu)
        q = make_queue(variant, capacity=512)
        q.allocate(eng.memory)
        eng.memory.alloc("out", 8000, fill=-1)
        wf = testgpu.wavefront_size
        per_lane = 3

        def kernel(ctx):
            st = WavefrontQueueState(wf)
            if ctx.wf_id == 0:
                counts = np.full(wf, per_lane, dtype=np.int64)
                toks = (
                    np.arange(wf * per_lane, dtype=np.int64).reshape(wf, per_lane)
                    + 1000
                )
                yield from q.publish(ctx, st, counts, toks)
            got = []
            for _ in range(80):
                yield from q.acquire(ctx, st)
                lanes = np.flatnonzero(st.has_token)
                got.extend(int(t) for t in st.token[lanes])
                st.complete(lanes)
                yield Compute(2)
            if got:
                idx = ctx.wf_id * 1000 + np.arange(len(got), dtype=np.int64)
                yield simt.MemWrite("out", idx, np.array(got, dtype=np.int64))

        eng.launch(kernel, 4)
        out = eng.memory["out"]
        got = sorted(int(v) for v in out[out >= 0])
        assert got == list(range(1000, 1000 + wf * per_lane))

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_publish_nothing_is_free(self, variant, testgpu):
        eng = Engine(testgpu)
        q = make_queue(variant, capacity=32)
        q.allocate(eng.memory)

        def kernel(ctx):
            st = WavefrontQueueState(ctx.device.wavefront_size)
            counts = np.zeros(ctx.device.wavefront_size, dtype=np.int64)
            toks = np.zeros((ctx.device.wavefront_size, 1), dtype=np.int64)
            yield from q.publish(ctx, st, counts, toks)
            yield Compute(1)

        res = eng.launch(kernel, 1)
        assert res.stats.total_atomic_requests == 0


class TestQueueFull:
    # SPILL is exempt by design: past the high-water mark it dead-drops
    # into the host overflow ring instead of aborting (see the
    # dedicated test below and docs/capacity.md).
    @pytest.mark.parametrize(
        "variant", [v for v in ALL_VARIANTS if v != "SPILL"]
    )
    def test_publish_past_capacity_aborts(self, variant, testgpu):
        eng = Engine(testgpu)
        q = make_queue(variant, capacity=4)
        q.allocate(eng.memory)
        wf = testgpu.wavefront_size

        def kernel(ctx):
            st = WavefrontQueueState(wf)
            counts = np.full(wf, 2, dtype=np.int64)  # 16 tokens > capacity 4
            toks = np.ones((wf, 2), dtype=np.int64)
            yield from q.publish(ctx, st, counts, toks)

        with pytest.raises(KernelAbort, match="full"):
            eng.launch(kernel, 1)

    def test_spill_absorbs_overflow_instead_of_aborting(self, testgpu):
        eng = Engine(testgpu)
        q = make_queue("SPILL", capacity=4)
        q.allocate(eng.memory)
        wf = testgpu.wavefront_size

        def kernel(ctx):
            st = WavefrontQueueState(wf)
            counts = np.full(wf, 2, dtype=np.int64)  # 16 tokens > capacity 4
            toks = np.ones((wf, 2), dtype=np.int64)
            yield from q.publish(ctx, st, counts, toks)

        res = eng.launch(kernel, 1)  # must not abort
        spilled = res.stats.custom.get("queue.spill.tokens", 0)
        assert spilled > 0, "overflow should land in the host ring"


class TestVariantProperties:
    def test_rfan_is_retry_free(self, testgpu):
        """RF/AN must issue zero CAS requests, ever."""
        eng = Engine(testgpu)
        q = make_queue("RF/AN", capacity=256)
        q.allocate(eng.memory)
        q.seed(eng.memory, range(32))
        eng.memory.alloc("out", 8000, fill=-1)
        res = eng.launch(drain_kernel(q, "out", rounds=40), 4)
        assert res.stats.cas_attempts == 0
        assert res.stats.cas_failures == 0
        assert res.stats.custom.get("queue.empty_exceptions", 0) == 0

    def test_base_and_an_use_cas(self, testgpu):
        for variant in ("BASE", "AN"):
            eng = Engine(testgpu)
            q = make_queue(variant, capacity=256)
            q.allocate(eng.memory)
            q.seed(eng.memory, range(32))
            eng.memory.alloc("out", 8000, fill=-1)
            res = eng.launch(drain_kernel(q, "out", rounds=40), 4)
            assert res.stats.cas_attempts > 0, variant

    def test_arbitrary_n_single_atomic_per_batch(self, testgpu):
        """One RF/AN acquire for a whole hungry wavefront = 1 global atomic."""
        eng = Engine(testgpu)
        q = make_queue("RF/AN", capacity=64)
        q.allocate(eng.memory)
        q.seed(eng.memory, range(8))

        def kernel(ctx):
            st = WavefrontQueueState(ctx.device.wavefront_size)
            yield from q.acquire(ctx, st)

        res = eng.launch(kernel, 1)
        assert res.stats.atomic_requests.get("add", 0) == 1

    def test_base_flags_set(self):
        q = make_queue("BASE", 8)
        assert not q.retry_free and not q.arbitrary_n
        q = make_queue("AN", 8)
        assert not q.retry_free and q.arbitrary_n
        q = make_queue("RF/AN", 8)
        assert q.retry_free and q.arbitrary_n

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown queue variant"):
            make_queue("FANCY", 8)

    def test_rfan_overshoot_slots_wait_for_data(self, testgpu):
        """Hungry lanes past Rear park on slots and get fed by a later
        publish — the refactored queue-empty exception of §4.2."""
        eng = Engine(testgpu)
        q = make_queue("RF/AN", capacity=128)
        q.allocate(eng.memory)
        eng.memory.alloc("out", 8000, fill=-1)
        wf = testgpu.wavefront_size

        def consumer(ctx):
            st = WavefrontQueueState(wf)
            got = []
            for _ in range(300):
                yield from q.acquire(ctx, st)
                lanes = np.flatnonzero(st.has_token)
                got.extend(int(t) for t in st.token[lanes])
                st.complete(lanes)
                yield Compute(2)
            if got:
                idx = ctx.wf_id * 1000 + np.arange(len(got), dtype=np.int64)
                yield simt.MemWrite("out", idx, np.array(got, dtype=np.int64))

        def producer_then_consume(ctx):
            st = WavefrontQueueState(wf)
            yield Compute(2000)  # let consumers overshoot first
            counts = np.zeros(wf, dtype=np.int64)
            counts[0] = 5
            toks = np.zeros((wf, 5), dtype=np.int64)
            toks[0] = np.arange(5) + 77
            yield from q.publish(ctx, st, counts, toks)

        def kernel(ctx):
            if ctx.wf_id == 0:
                yield from producer_then_consume(ctx)
            else:
                yield from consumer(ctx)

        eng.launch(kernel, 3)
        out = eng.memory["out"]
        got = sorted(int(v) for v in out[out >= 0])
        assert got == [77, 78, 79, 80, 81]


class TestShardedStealCounters:
    """Steal-path instrumentation on a real multi-shard run.

    The per-victim stall counters and the claimed-batch-size histogram
    (`queue.steal_batch.<m>`) are documented in docs/sharding.md; this
    pins their presence and internal consistency on a workload that is
    imbalanced enough to actually steal.
    """

    @pytest.fixture(scope="class")
    def sharded_run(self):
        from repro.bfs.common import bfs_queue_capacity
        from repro.bfs.persistent import run_persistent_bfs
        from repro.core import ShardedQueue
        from repro.graphs import social_graph
        from repro.simt import TESTGPU

        g = social_graph(300, 8, seed=2)
        cap = bfs_queue_capacity(g, TESTGPU, 4)
        run = run_persistent_bfs(
            g, 0, "SHARDED", TESTGPU, 4, verify=True,
            queue_factory=lambda c: ShardedQueue(
                c, n_shards=4, steal=True, steal_quantum=8,
            ),
            capacity=cap,
        )
        return run

    def test_steals_happened(self, sharded_run):
        custom = sharded_run.stats.custom
        assert custom.get("queue.steal_attempts", 0) > 0
        assert custom.get("queue.stolen_tokens", 0) > 0

    def test_batch_histogram_is_bounded_and_conserves_tokens(
        self, sharded_run
    ):
        custom = sharded_run.stats.custom
        bins = {
            int(k.rsplit(".", 1)[1]): v
            for k, v in custom.items()
            if k.startswith("queue.steal_batch.")
        }
        assert bins, "expected at least one steal-batch histogram bin"
        assert all(0 <= m <= 8 for m in bins)  # bounded by steal_quantum
        assert all(count > 0 for count in bins.values())
        # every stolen token is accounted for by exactly one batch
        assert sum(m * count for m, count in bins.items()) == custom[
            "queue.stolen_tokens"
        ]
        # hits count batches that claimed at least one token
        assert sum(
            count for m, count in bins.items() if m > 0
        ) == custom["queue.steal_hits"]

    def test_per_shard_stall_counters_present(self, sharded_run):
        custom = sharded_run.stats.custom
        empty_shards = {
            k for k in custom
            if k.startswith("queue.shard") and k.endswith(".steal_empty")
        }
        assert empty_shards  # some victim probes found no surplus
        assert sum(custom[k] for k in empty_shards) == custom[
            "queue.steal_empty_probes"
        ]
        # successful transfers poll the claimed range at the home shard
        polls = [
            v for k, v in custom.items()
            if k.startswith("queue.shard") and k.endswith(".steal_poll_rounds")
        ]
        assert polls and all(v > 0 for v in polls)

    def test_single_shard_emits_no_steal_counters(self):
        from repro.bfs.common import bfs_queue_capacity
        from repro.bfs.persistent import run_persistent_bfs
        from repro.core import ShardedQueue
        from repro.graphs import roadmap_graph
        from repro.simt import TESTGPU

        g = roadmap_graph(8, 8, seed=1)
        cap = bfs_queue_capacity(g, TESTGPU, 2)
        run = run_persistent_bfs(
            g, 0, "SHARDED", TESTGPU, 2, verify=True,
            queue_factory=lambda c: ShardedQueue(c, n_shards=1),
            capacity=cap,
        )
        assert not [
            k for k in run.stats.custom
            if "steal" in k
        ]
