"""Tests for the run ledger and the ``runs`` CLI."""

import json

import pytest

from repro.harness.cli import main
from repro.obs.ledger import Ledger, LedgerError, config_hash


@pytest.fixture
def ledger(tmp_path):
    return Ledger(tmp_path / "ledger")


def _record(ledger, n=0, **metrics):
    metrics = metrics or {"sim.cycles": 100 + n, "tab1.seconds": 1.0}
    return ledger.record(
        kind="harness",
        config={"experiments": ["tab1"], "quick": True},
        metrics=metrics,
        wall_seconds=1.25,
        argv=["tab1", "--quick"],
        created=1_700_000_000 + n,  # distinct, deterministic timestamps
    )


class TestLedger:
    def test_record_writes_manifest_and_index(self, ledger):
        entry = _record(ledger)
        assert entry["schema"] == 1
        assert entry["config_hash"] == config_hash(entry["config"])
        assert entry["run_id"].endswith(entry["config_hash"][:8])
        on_disk = json.loads(
            (ledger.root / f"{entry['run_id']}.json").read_text()
        )
        assert on_disk == entry
        (line,) = ledger.entries()
        assert line["run_id"] == entry["run_id"]
        assert "metrics" not in line  # index lines stay slim

    def test_same_second_runs_get_distinct_ids(self, ledger):
        a = _record(ledger, n=0)
        b = ledger.record(
            kind="harness", config={"experiments": ["tab1"], "quick": True},
            metrics={}, wall_seconds=0.1, created=1_700_000_000,
        )
        assert a["run_id"] != b["run_id"]
        assert len(ledger.entries()) == 2

    def test_load_by_exact_prefix_last_and_last_n(self, ledger):
        first = _record(ledger, n=0)
        second = _record(ledger, n=60)
        assert ledger.load(first["run_id"])["run_id"] == first["run_id"]
        assert ledger.load("last")["run_id"] == second["run_id"]
        assert ledger.load("last~1")["run_id"] == first["run_id"]
        prefix = first["run_id"][: len(first["run_id"]) - 2]
        if not second["run_id"].startswith(prefix):
            assert ledger.load(prefix)["run_id"] == first["run_id"]

    def test_load_errors(self, ledger):
        with pytest.raises(LedgerError):
            ledger.load("last")  # empty ledger
        _record(ledger, n=0)
        _record(ledger, n=60)
        with pytest.raises(LedgerError):
            ledger.load("last~5")
        with pytest.raises(LedgerError):
            ledger.load("20")  # ambiguous prefix (both start with "20")
        with pytest.raises(LedgerError):
            ledger.load("no-such-run")

    def test_env_var_moves_the_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "elsewhere"))
        assert Ledger().root == tmp_path / "elsewhere"


class TestRunsCli:
    """The ``python -m repro.harness runs ...`` surface.

    The autouse ``_isolated_ledger`` fixture points ``$REPRO_LEDGER`` at
    a per-test tmp dir, so harness invocations here record into it.
    """

    def test_harness_run_records_and_lists(self, capsys):
        assert main(["tab1", "--quick"]) == 0
        captured = capsys.readouterr()
        assert "[ledger: recorded run " in captured.err
        assert "[ledger:" not in captured.out  # stdout stays report-only

        assert main(["runs", "list"]) == 0
        out = capsys.readouterr().out
        assert "harness" in out and "1 run(s)" in out

    def test_no_ledger_flag_skips_recording(self, capsys):
        assert main(["tab1", "--quick", "--no-ledger"]) == 0
        capsys.readouterr()
        # an empty ledger is an error for queries: one line, exit 1
        assert main(["runs", "list"]) == 1
        captured = capsys.readouterr()
        assert "no runs recorded" in captured.err
        assert captured.err.count("\n") == 1

    def test_empty_ledger_queries_exit_one(self, capsys):
        for argv in (["runs", "list"], ["runs", "report"],
                     ["runs", "diff", "last~1", "last"]):
            assert main(argv) == 1
            captured = capsys.readouterr()
            assert "no runs recorded" in captured.err

    def test_show_and_diff_identical_runs(self, capsys):
        assert main(["tab1", "--quick"]) == 0
        assert main(["tab1", "--quick"]) == 0
        capsys.readouterr()

        assert main(["runs", "show", "last"]) == 0
        out = capsys.readouterr().out
        assert "kind" in out and "harness" in out
        assert "tab1.seconds" in out

        # identical config, deterministic sim metrics: diff passes
        assert main(["runs", "diff", "last~1", "last"]) == 0
        out = capsys.readouterr().out
        assert "VERDICT: PASS" in out

    def test_diff_flags_injected_regression(self, capsys, monkeypatch, tmp_path):
        import os

        assert main(["tab1", "--quick"]) == 0
        capsys.readouterr()
        ledger = Ledger()
        base = ledger.load("last")
        worse = dict(base["metrics"])
        worse["experiments"] = worse.get("experiments", 1) - 1
        worse["tab1.seconds"] = worse.get("tab1.seconds", 1.0) * 10 + 1.0
        ledger.record(
            kind="harness", config=base["config"], metrics=worse,
            wall_seconds=99.0,
        )
        assert main(["runs", "diff", "last~1", "last"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "VERDICT: FAIL" in out
        assert "tab1.seconds" in out

    def test_report_shows_verdict_vs_predecessor(self, capsys):
        assert main(["tab1", "--quick"]) == 0
        assert main(["tab1", "--quick"]) == 0
        capsys.readouterr()
        assert main(["runs", "report"]) == 0
        out = capsys.readouterr().out
        assert "vs prev" in out
        assert "first" in out
        assert "ok" in out

    def test_unknown_ref_exits_1(self, capsys):
        assert main(["runs", "show", "nope"]) == 1
        assert "no run matching" in capsys.readouterr().err
