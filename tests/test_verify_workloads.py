"""Unit tests for the checker's ground-truth workloads.

The verification layer leans on ``repro.verify.workloads`` for one hard
guarantee: the *exact* number of tasks each scenario generates is known
in closed form, so the oracle can check conservation against it.  These
tests pin that arithmetic and each worker's spawn rules directly —
independent of the scheduler/queue machinery that usually drives them.
"""

import numpy as np
import pytest

from repro.core import WavefrontQueueState
from repro.simt import TESTGPU
from repro.verify.workloads import (
    WORKLOADS,
    CountdownWorker,
    FanoutWorker,
    build,
    max_enqueues,
)


class _Ctx:
    """Minimal kernel-context stand-in for driving a worker directly."""

    device = TESTGPU
    params = {"subtasks_per_cycle": 4}


def _drive(worker, tokens):
    """Run one work cycle with the given per-lane tokens; returns result."""
    wf = TESTGPU.wavefront_size
    st = WavefrontQueueState(wf)
    st.grant(np.arange(len(tokens)), np.asarray(tokens, dtype=np.int64))
    gen = worker.work_cycle(_Ctx(), worker.make_state(_Ctx()), st)
    try:
        op = next(gen)
        while True:
            op = gen.send(op)
    except StopIteration as stop:
        return stop.value


class TestBuild:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_total_matches_max_enqueues(self, name):
        for scale in (1, 5, 12, 63):
            _, seeds, total = build(name, scale)
            assert max_enqueues(name, scale) == total
            assert len(seeds) >= 1

    def test_countdown_closed_form(self):
        _, seeds, total = build("countdown", 12)
        assert seeds == [12, 11, 10]
        assert total == 13 + 12 + 11

    def test_countdown_clips_small_scales_at_zero(self):
        _, seeds, total = build("countdown", 1)
        assert seeds == [1, 0, 0]
        assert total == 2 + 1 + 1

    def test_fanout_total_is_tree_size(self):
        _, seeds, total = build("fanout", 63)
        assert seeds == [0]
        assert total == 63

    @pytest.mark.parametrize("scale", [0, -1])
    def test_invalid_scale_rejected(self, scale):
        with pytest.raises(ValueError):
            build("countdown", scale)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            build("mystery", 4)


class TestCountdownWorker:
    def test_positive_tokens_spawn_decrement(self):
        res = _drive(CountdownWorker(), [5, 3])
        assert res.completed[:2].all()
        assert res.new_counts[:2].tolist() == [1, 1]
        assert res.new_tokens[0, 0] == 4
        assert res.new_tokens[1, 0] == 2

    def test_zero_token_spawns_nothing(self):
        res = _drive(CountdownWorker(), [0])
        assert res.completed[0]
        assert res.new_counts[0] == 0

    def test_chain_length_equals_closed_form(self):
        # follow one chain to exhaustion: v spawns v-1 ... spawns 0,
        # v+1 tasks total — the closed form build() sums over seeds.
        v, tasks = 7, 0
        cur = [v]
        while cur:
            res = _drive(CountdownWorker(), cur)
            tasks += len(cur)
            k = int(res.new_counts[0])
            cur = [int(res.new_tokens[0, 0])] if k else []
        assert tasks == v + 1


class TestFanoutWorker:
    def test_children_below_scale_only(self):
        res = _drive(FanoutWorker(6), [1, 2])
        # token 1 -> children 3, 4; token 2 -> children 5 (6 clipped)
        assert res.new_counts[:2].tolist() == [2, 1]
        assert sorted(res.new_tokens[0, :2].tolist()) == [3, 4]
        assert res.new_tokens[1, 0] == 5

    def test_leaf_spawns_nothing(self):
        res = _drive(FanoutWorker(3), [1])
        assert res.completed[0]
        assert res.new_counts[0] == 0

    def test_full_tree_enumeration_matches_total(self):
        n = 31
        worker = FanoutWorker(n)
        frontier, seen = [0], 0
        while frontier:
            batch, frontier = frontier[:TESTGPU.wavefront_size], frontier[
                TESTGPU.wavefront_size:
            ]
            res = _drive(worker, batch)
            seen += len(batch)
            for lane in range(len(batch)):
                for j in range(int(res.new_counts[lane])):
                    frontier.append(int(res.new_tokens[lane, j]))
        assert seen == n == max_enqueues("fanout", n)
