"""Liveness watchdog: wedge detection without false positives.

The watchdog's contract has two halves, and both need pinning:

* **no false positives** — workloads that are slow but progressing
  (long BFS launches, countdown chains polled at an aggressively small
  window) must never escalate past a reset;
* **real wedges trip** — a planted starve-CU adversary from
  ``repro.verify`` (one CU never allowed to issue while its wavefronts
  hold the only remaining work) must escalate warn → snapshot → abort
  with a :class:`WedgeError` classified via the blame taxonomy, and the
  resulting post-mortem must render with that class.
"""

import pytest

from repro.bfs import run_persistent_bfs
from repro.core import SchedulerControl, make_queue, persistent_kernel
from repro.graphs import dataset
from repro.obs.blame import STALL_CLASSES
from repro.obs.flight import (
    FlightRecorder,
    build_postmortem,
    render_postmortem,
)
from repro.obs.watchdog import LivenessWatchdog
from repro.simt import Engine, TESTGPU, WedgeError
from repro.verify import StarveCUController
from repro.verify import workloads as vworkloads


def _watched_bfs(window):
    rec = FlightRecorder()
    wd = LivenessWatchdog(rec, window=window)
    spec = dataset("Synthetic")
    g = spec.build(spec.default_scale * 0.25)
    run = run_persistent_bfs(
        g, spec.source, "RF/AN", TESTGPU, 4, verify=False,
        probe=rec, watchdog=wd,
    )
    return run, wd


class TestNoFalsePositives:
    def test_progressing_bfs_never_escalates(self):
        run, wd = _watched_bfs(window=50_000)
        assert run.cycles > 50_000  # the watchdog did get polled
        assert wd.events == []
        assert wd.trips == 0

    def test_aggressive_window_may_warn_but_never_aborts(self):
        # a window far below the legitimate delivery gaps of the
        # workload may count isolated trips, but progress resets the
        # strike counter before the abort threshold.
        run, wd = _watched_bfs(window=2_000)
        assert all(action != "abort" for _, action, _ in wd.events)

    def test_slow_countdown_chain_never_escalates(self):
        # countdown: one task respawns its successor — long serial
        # chains with sparse deliveries, the classic slow-but-alive run.
        worker, seeds, _ = vworkloads.build("countdown", 6)
        eng = Engine(TESTGPU)
        sched = SchedulerControl()
        q = make_queue("RF/AN", capacity=256)
        q.allocate(eng.memory)
        sched.allocate(eng.memory)
        q.seed(eng.memory, seeds)
        sched.seed(eng.memory, len(seeds))
        rec = FlightRecorder()
        wd = LivenessWatchdog(rec, window=25_000)
        kern = persistent_kernel(q, worker, sched)
        eng.launch(
            kern, 4, params={"max_work_cycles": 500_000},
            probe=rec, watchdog=wd, max_cycles=10_000_000,
        )
        assert wd.events == []

    def test_validates_arguments(self):
        rec = FlightRecorder()
        with pytest.raises(ValueError, match="window"):
            LivenessWatchdog(rec, window=0)
        with pytest.raises(ValueError, match="escalations"):
            LivenessWatchdog(rec, escalations=0)


class TestPlantedWedge:
    def _wedge(self):
        """Starve CU 1 forever while its wavefronts hold live work."""
        worker, seeds, _ = vworkloads.build("countdown", 6)
        eng = Engine(TESTGPU)
        sched = SchedulerControl()
        q = make_queue("RF/AN", capacity=64)
        q.allocate(eng.memory)
        sched.allocate(eng.memory)
        q.seed(eng.memory, seeds)
        sched.seed(eng.memory, len(seeds))
        ctrl = StarveCUController(
            cid=1, period=1 << 30, duty=(1 << 30) - 1, max_holds=1 << 40,
        )
        rec = FlightRecorder()
        wd = LivenessWatchdog(rec, window=20_000)
        kern = persistent_kernel(q, worker, sched)
        with pytest.raises(WedgeError) as exc_info:
            eng.launch(
                kern, 4, params={"max_work_cycles": 500_000},
                probe=rec, controller=ctrl, watchdog=wd,
                max_cycles=10_000_000,
            )
        return exc_info.value, rec, wd

    def test_starved_cu_trips_the_watchdog(self):
        err, rec, wd = self._wedge()
        # full escalation ladder: warn, snapshot, abort — in order
        assert [action for _, action, _ in wd.events] == [
            "warn", "snapshot", "abort",
        ]
        assert wd.trips == 3
        assert wd.warns == 1
        assert len(wd.snapshots) == 1

    def test_wedge_is_classified_as_cu_occupancy(self):
        # wf1/wf3 live on the starved CU and never issue: the taxonomy
        # calls ready-but-held wavefronts cu_occupancy.
        err, rec, wd = self._wedge()
        assert err.classification == "cu_occupancy"
        assert err.classification in STALL_CLASSES
        assert "no progress" in str(err)
        assert err.snapshot is not None
        assert err.snapshot["stall_classes"].get("cu_occupancy", 0) > 0

    def test_wedge_postmortem_renders_with_stall_class(self, tmp_path):
        err, rec, wd = self._wedge()
        bundle = build_postmortem(recorder=rec, error=err)
        text = render_postmortem(bundle)
        assert "WedgeError" in text
        assert "watchdog classification: cu_occupancy" in text
        assert "ring events" in text
