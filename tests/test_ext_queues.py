"""Tests for the extension queues (naive CAS, distributed + stealing)."""

import numpy as np
import pytest

from repro import simt
from repro.core import SchedulerControl, persistent_kernel
from repro.ext import DistributedWorkQueues, NaiveCasQueue
from repro.simt import Engine

from test_core_scheduler import CountdownWorker, FanoutWorker


def run_with_queue(q, worker, seeds, testgpu, n_wf=6):
    eng = Engine(testgpu)
    sched = SchedulerControl()
    q.allocate(eng.memory)
    sched.allocate(eng.memory)
    q.seed(eng.memory, seeds)
    sched.seed(eng.memory, len(seeds))
    kern = persistent_kernel(q, worker, sched)
    res = eng.launch(kern, n_wf, params={"max_work_cycles": 500_000})
    return eng, sched, res


class TestNaiveCas:
    def test_countdown_correct(self, testgpu):
        q = NaiveCasQueue(capacity=4096)
        eng, sched, res = run_with_queue(
            q, CountdownWorker(), [8, 5, 2], testgpu
        )
        assert res.stats.custom["scheduler.tasks_completed"] == 8 + 5 + 2 + 3
        assert sched.is_done(eng.memory)

    def test_convoys_relative_to_base(self, testgpu):
        """The naive formulation burns far more CAS attempts than the
        ticket-speculated BASE on the same workload — the evidence for
        DESIGN.md §7."""
        from repro.core import make_queue

        results = {}
        for label, q in (
            ("NAIVE", NaiveCasQueue(capacity=8192)),
            ("BASE", make_queue("BASE", 8192)),
        ):
            eng, sched, res = run_with_queue(
                q, FanoutWorker(511), [0], testgpu, n_wf=8
            )
            results[label] = res
        assert (
            results["NAIVE"].stats.cas_attempts
            > results["BASE"].stats.cas_attempts
        )
        assert results["NAIVE"].cycles > results["BASE"].cycles


class TestDistributed:
    @pytest.mark.parametrize("n_queues", [1, 2, 4])
    def test_countdown_correct(self, n_queues, testgpu):
        q = DistributedWorkQueues(capacity=4096, n_queues=n_queues)
        eng, sched, res = run_with_queue(
            q, CountdownWorker(), [10, 6, 3, 1], testgpu
        )
        expected = 10 + 6 + 3 + 1 + 4
        assert res.stats.custom["scheduler.tasks_completed"] == expected
        assert sched.is_done(eng.memory)

    def test_fanout_with_stealing(self, testgpu):
        """Seeding one queue forces other wavefronts to steal."""
        q = DistributedWorkQueues(capacity=8192, n_queues=3)
        eng, sched, res = run_with_queue(
            q, FanoutWorker(1023), [0], testgpu, n_wf=6
        )
        assert res.stats.custom["scheduler.tasks_completed"] == 1023
        assert res.stats.custom.get("queue.steal_attempts", 0) > 0
        assert res.stats.custom.get("queue.steal_hits", 0) > 0

    def test_seed_round_robin(self, testgpu):
        eng = Engine(testgpu)
        q = DistributedWorkQueues(capacity=16, n_queues=2)
        q.allocate(eng.memory)
        q.seed(eng.memory, [1, 2, 3])
        assert eng.memory[q._ctrl(0)][1] == 2  # rear of queue 0
        assert eng.memory[q._ctrl(1)][1] == 1

    def test_invalid_n_queues(self):
        with pytest.raises(ValueError):
            DistributedWorkQueues(capacity=8, n_queues=0)

    def test_bfs_via_distributed_queue(self, testgpu):
        """The persistent BFS driver works with the distributed layout."""
        from repro.bfs.common import alloc_graph_buffers, read_costs
        from repro.bfs.persistent import BFSWorker
        from repro.graphs import bfs_levels, roadmap_graph

        g = roadmap_graph(10, 10, seed=11)
        eng = Engine(testgpu)
        alloc_graph_buffers(eng.memory, g, 0)
        q = DistributedWorkQueues(capacity=2048, n_queues=2)
        sched = SchedulerControl()
        q.allocate(eng.memory)
        sched.allocate(eng.memory)
        q.seed(eng.memory, [0])
        sched.seed(eng.memory, 1)
        kern = persistent_kernel(q, BFSWorker(), sched)
        eng.launch(kern, 6, params={"max_work_cycles": 500_000})
        got = read_costs(eng.memory, g.n_vertices)
        assert np.array_equal(got, bfs_levels(g, 0))
