"""Tests for the regression sentinel and tools/bench_diff.py."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs.regress import (
    DEFAULT_RULES,
    Rule,
    check_floors,
    compare,
    extract_metrics,
    flatten_metrics,
    match_rule,
)

REPO = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "bench_diff", REPO / "tools" / "bench_diff.py"
)
bench_diff = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_diff)


class TestRules:
    def test_first_match_wins(self):
        rules = (Rule("a.*", better="lower"), Rule("*", better="higher"))
        assert match_rule("a.x", rules).better == "lower"
        assert match_rule("b.x", rules).better == "higher"

    def test_default_rules_classify_the_bench_namespace(self):
        assert match_rule("soup.cycles", DEFAULT_RULES).exact
        assert match_rule("sim.issued_ops", DEFAULT_RULES).exact
        assert match_rule("queue.cas_retry_rounds", DEFAULT_RULES).exact
        sec = match_rule("bfs.seconds", DEFAULT_RULES)
        assert not sec.exact and sec.better == "lower"
        ops = match_rule("soup.ops_per_sec", DEFAULT_RULES)
        assert ops.better == "higher"
        assert not match_rule("harness_quick.jobs", DEFAULT_RULES).gate

    def test_flight_and_watchdog_rules(self):
        # recorder overhead is a noisy wall-clock ratio: tolerant, lower
        # better; watchdog trips are deterministic windows: exact, so a
        # new trip on a previously clean config gates.
        frac = match_rule("flight.overhead_frac", DEFAULT_RULES)
        assert frac.better == "lower" and not frac.exact
        trips = match_rule("watchdog.trips", DEFAULT_RULES)
        assert trips.exact and trips.better == "lower"
        assert match_rule("watchdog.warns", DEFAULT_RULES).exact
        # the flight benchmark's simulated quantities stay exact via the
        # generic rules (flight.* wall metrics keep their own patterns)
        assert match_rule("flight.cycles", DEFAULT_RULES).exact
        sec = match_rule("flight.seconds", DEFAULT_RULES)
        assert not sec.exact and sec.better == "lower"


class TestFloors:
    def test_vector_throughput_floors_live_in_the_rule_table(self):
        # the CI bench-vector-guard step and bench_engine --vector-guard
        # both read these floors; they are the single source of truth.
        soup = match_rule("soup.ops_per_sec", DEFAULT_RULES)
        bfs = match_rule("bfs.ops_per_sec", DEFAULT_RULES)
        assert soup.floor and soup.floor > 0
        assert bfs.floor and bfs.floor > 0
        assert "floor" in soup.describe()

    def test_check_floors_flags_only_breaches(self):
        soup_floor = match_rule("soup.ops_per_sec", DEFAULT_RULES).floor
        good = {"soup.ops_per_sec": soup_floor + 1, "other.ops_per_sec": 1}
        assert check_floors(good) == {}
        bad = {"soup.ops_per_sec": soup_floor - 1}
        assert check_floors(bad) == {
            "soup.ops_per_sec": (soup_floor - 1, soup_floor)
        }

    def test_floors_do_not_leak_into_pairwise_compare(self):
        # a floor judges one run on its own; compare() stays strictly
        # baseline-relative so historic small-scale fixtures keep
        # working and bench_diff's tolerance semantics are unchanged.
        below = {"soup.ops_per_sec": 1800}
        assert compare(below, dict(below)).passed


class TestCompare:
    def test_exact_rule_fails_on_any_unfavourable_drift(self):
        cmp = compare({"soup.cycles": 100}, {"soup.cycles": 101})
        assert not cmp.passed
        assert cmp.regressions[0].name == "soup.cycles"

    def test_exact_rule_notes_favourable_drift_without_failing(self):
        cmp = compare({"soup.cycles": 100}, {"soup.cycles": 99})
        assert cmp.passed
        assert cmp.deltas[0].status == "changed"

    def test_tolerance_absorbs_wall_clock_noise(self):
        cmp = compare({"bfs.seconds": 1.0}, {"bfs.seconds": 1.2})
        assert cmp.passed  # +20% < 35% tolerance
        cmp = compare({"bfs.seconds": 1.0}, {"bfs.seconds": 1.5})
        assert not cmp.passed

    def test_direction_aware_ops_per_sec(self):
        cmp = compare({"x.ops_per_sec": 1000}, {"x.ops_per_sec": 500})
        assert not cmp.passed
        cmp = compare({"x.ops_per_sec": 500}, {"x.ops_per_sec": 1000})
        assert cmp.passed
        assert cmp.deltas[0].status == "improved"

    def test_added_and_removed_metrics_never_gate(self):
        cmp = compare({"gone.cycles": 5}, {"new.cycles": 7})
        assert cmp.passed
        assert {d.status for d in cmp.deltas} == {"added", "removed"}

    def test_render_table_and_verdict(self):
        cmp = compare(
            {"soup.cycles": 100, "bfs.seconds": 1.0},
            {"soup.cycles": 110, "bfs.seconds": 1.0},
            label_a="base", label_b="cand",
        )
        text = cmp.render()
        assert "REGRESSION" in text
        assert "VERDICT: FAIL" in text
        assert "base" in text and "cand" in text
        passing = compare({"a.cycles": 1}, {"a.cycles": 1}).render()
        assert "VERDICT: PASS" in passing

    def test_flatten_and_extract(self):
        bench = {"benchmarks": {"soup": {"cycles": 5, "label": "x"}}}
        assert extract_metrics(bench) == {"soup.cycles": 5}
        entry = {"metrics": {"sim.cycles": 9}}
        assert extract_metrics(entry) == {"sim.cycles": 9}
        assert flatten_metrics({"a": {"b": 1}, "flag": True}) == {"a.b": 1}


@pytest.fixture
def bench_pair(tmp_path):
    base = {
        "benchmarks": {
            "soup": {"seconds": 0.5, "issued_ops": 900, "cycles": 1000,
                     "ops_per_sec": 1800},
            "bfs": {"seconds": 1.0, "issued_ops": 5000, "cycles": 9000,
                    "ops_per_sec": 5000},
        }
    }
    base_path = tmp_path / "base.json"
    base_path.write_text(json.dumps(base))
    return base, base_path


class TestBenchDiffCli:
    def test_identical_passes(self, bench_pair, tmp_path, capsys):
        base, base_path = bench_pair
        same = tmp_path / "same.json"
        same.write_text(json.dumps(base))
        assert bench_diff.main([str(base_path), str(same)]) == 0
        assert "VERDICT: PASS" in capsys.readouterr().out

    def test_injected_regression_fails(self, bench_pair, tmp_path, capsys):
        base, base_path = bench_pair
        bad = json.loads(json.dumps(base))
        bad["benchmarks"]["soup"]["cycles"] += 1       # sim drift: exact
        bad["benchmarks"]["bfs"]["seconds"] *= 2.0     # wall: over tolerance
        bad_path = tmp_path / "bad.json"
        bad_path.write_text(json.dumps(bad))
        assert bench_diff.main([str(base_path), str(bad_path)]) == 1
        out = capsys.readouterr().out
        assert "soup.cycles" in out and "bfs.seconds" in out
        assert "VERDICT: FAIL — 2 regression(s)" in out

    def test_tolerance_flag_widens_wall_gate(self, bench_pair, tmp_path):
        base, base_path = bench_pair
        slow = json.loads(json.dumps(base))
        slow["benchmarks"]["bfs"]["seconds"] *= 2.0
        slow["benchmarks"]["bfs"]["ops_per_sec"] //= 2
        slow_path = tmp_path / "slow.json"
        slow_path.write_text(json.dumps(slow))
        assert bench_diff.main([str(base_path), str(slow_path)]) == 1
        assert bench_diff.main(
            [str(base_path), str(slow_path), "--tolerance", "1.5"]
        ) == 0

    def test_missing_input_exits_2(self, bench_pair, tmp_path):
        _, base_path = bench_pair
        with pytest.raises(SystemExit) as exc:
            bench_diff.main([str(base_path), str(tmp_path / "absent.json")])
        assert exc.value.code == 2

    def test_ledger_refs_resolve(self, bench_pair, tmp_path, monkeypatch, capsys):
        from repro.obs.ledger import Ledger

        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger"))
        ledger = Ledger()
        cfg = {"benchmarks": ["soup"]}
        ledger.record("bench_engine", cfg, {"soup.cycles": 10},
                      wall_seconds=1.0, created=1_700_000_000)
        ledger.record("bench_engine", cfg, {"soup.cycles": 10},
                      wall_seconds=1.0, created=1_700_000_060)
        assert bench_diff.main(["last~1", "last"]) == 0
        assert "VERDICT: PASS" in capsys.readouterr().out
