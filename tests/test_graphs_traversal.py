"""Tests for the CPU reference BFS (the reproduction's oracle) — checked
against networkx, so the oracle itself has an independent oracle."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    CSRGraph,
    bfs_levels,
    complete_binary_tree,
    eccentricity,
    level_profile,
    path_graph,
    reachable_count,
    saturation_levels,
    star_graph,
)


class TestBfsLevels:
    def test_path(self):
        g = path_graph(5)
        assert bfs_levels(g, 0).tolist() == [0, 1, 2, 3, 4]
        assert bfs_levels(g, 2).tolist() == [-1, -1, 0, 1, 2]

    def test_star(self):
        g = star_graph(6)
        assert bfs_levels(g, 0).tolist() == [0, 1, 1, 1, 1, 1]

    def test_binary_tree(self):
        g = complete_binary_tree(3)
        lv = bfs_levels(g, 0)
        assert lv[0] == 0
        assert (lv[1:3] == 1).all()
        assert (lv[3:7] == 2).all()
        assert (lv[7:] == 3).all()

    def test_unreachable(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        assert bfs_levels(g, 0).tolist() == [0, 1, -1]

    def test_bad_source(self):
        with pytest.raises(ValueError):
            bfs_levels(path_graph(3), 5)

    def test_zero_degree_frontier(self):
        # frontier consisting only of sinks must terminate cleanly
        g = CSRGraph.from_edges(4, [(0, 1), (0, 2)])
        assert bfs_levels(g, 0).tolist() == [0, 1, 1, -1]

    @given(
        st.integers(2, 25).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                    max_size=80,
                ),
            )
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_property_matches_networkx(self, args):
        n, edges = args
        g = CSRGraph.from_edges(n, edges)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(n))
        nxg.add_edges_from(edges)
        ref = nx.single_source_shortest_path_length(nxg, 0)
        got = bfs_levels(g, 0)
        for v in range(n):
            assert int(got[v]) == ref.get(v, -1)


class TestProfiles:
    def test_level_profile_tree(self):
        g = complete_binary_tree(3)
        assert level_profile(g, 0).tolist() == [1, 2, 4, 8]

    def test_level_profile_unreachable_excluded(self):
        g = CSRGraph.from_edges(4, [(0, 1)])
        assert level_profile(g, 0).tolist() == [1, 1]

    def test_reachable_count(self):
        g = CSRGraph.from_edges(4, [(0, 1), (2, 3)])
        assert reachable_count(g, 0) == 2

    def test_eccentricity(self):
        assert eccentricity(path_graph(7), 0) == 6
        assert eccentricity(star_graph(9), 0) == 1

    def test_saturation_levels(self):
        prof = np.array([1, 4, 16, 64, 64, 8])
        assert saturation_levels(prof, 16) == [2, 3, 4]
        assert saturation_levels(prof, 100) == []
