"""Tests for stall attribution and causal what-if (repro.obs.blame).

The probe-disabled bit-identity guarantee is pinned in
``tests/test_simt_determinism.py``; this file covers the analysis on
top of recorded evidence: exact lifetime tiling, stall coverage,
critical-path extraction (against a brute-force walk on a fixture),
identity/scaled replay, planted-slowdown localization, summary
merge/JSON round trips, metric publication, and the CLI.
"""

import json

import pytest

from repro.bfs.persistent import run_persistent_bfs
from repro.graphs import roadmap_graph
from repro.graphs.generators import social_graph
from repro.obs.blame import (
    ALL_CLASSES,
    COMPUTE,
    STALL_CLASSES,
    BlameGraph,
    BlameProbe,
    BlameSession,
    BlameSummary,
    Segment,
    build_graph,
    critical_path,
    publish_blame,
    replay,
    scale_graph,
    summarize_graph,
)
from repro.simt import TESTGPU


@pytest.fixture(scope="module")
def blame_run():
    """One blamed RF/AN BFS on the test GPU, shared across tests."""
    g = roadmap_graph(12, 12, seed=3)
    probe = BlameProbe()
    run = run_persistent_bfs(
        g, 0, "RF/AN", TESTGPU, 4, verify=False, probe=probe
    )
    graph = build_graph(probe)
    return probe, run, graph


@pytest.fixture(scope="module")
def blame_social():
    """A blamed BFS with real parallel work (social graph).

    The roadmap fixture is termination-dominated (tiny frontier); this
    one spreads cycles across reserve/dna_spin/termination, which the
    what-if localization tests need so a planted slowdown's signal is
    not drowned by one dominant class.
    """
    g = social_graph(400, 8, seed=1)
    probe = BlameProbe()
    run = run_persistent_bfs(
        g, 0, "RF/AN", TESTGPU, 4, verify=False, probe=probe
    )
    return probe, run, build_graph(probe)


class TestGraph:
    def test_segments_tile_each_lifetime_exactly(self, blame_run):
        _, _, graph = blame_run
        assert graph.segments
        for wf, segs in graph.segments.items():
            assert segs, f"wavefront {wf} has no segments"
            for a, b in zip(segs, segs[1:]):
                assert a.end == b.start  # contiguous, no gaps or overlap
            for seg in segs:
                assert seg.dur >= 0
                assert seg.cls in ALL_CLASSES

    def test_stall_classes_cover_noncompute_within_1pct(self, blame_run):
        # the acceptance bar: stall-class totals must account for all
        # non-compute cycles to within 1% (the tiling makes this exact
        # up to the explicit 'other' residual).
        _, _, graph = blame_run
        s = summarize_graph(graph, whatif=False)
        noncompute = s.wf_cycles - s.cycles.get(COMPUTE, 0.0)
        stalls = sum(s.cycles.get(c, 0.0) for c in STALL_CLASSES)
        assert noncompute > 0
        assert stalls >= 0.99 * noncompute
        assert stalls <= noncompute + 1e-9

    def test_summary_cycles_sum_to_wf_cycles(self, blame_run):
        _, _, graph = blame_run
        s = summarize_graph(graph, whatif=False)
        assert sum(s.cycles.values()) == pytest.approx(s.wf_cycles)

    def test_find_locates_containing_segment(self, blame_run):
        _, _, graph = blame_run
        wf = next(iter(graph.segments))
        seg = graph.segments[wf][len(graph.segments[wf]) // 2]
        mid = (seg.start + seg.end) / 2.0
        found = graph.find(wf, mid)
        assert found is seg or (found.start <= mid <= found.end)


class TestReplay:
    def test_identity_replay_reproduces_makespan_exactly(self, blame_run):
        _, _, graph = blame_run
        assert replay(graph) == pytest.approx(graph.total)
        assert replay(graph, {c: 1.0 for c in STALL_CLASSES}) == (
            pytest.approx(graph.total)
        )

    def test_scaling_down_shortens_scaling_up_lengthens(self, blame_run):
        _, _, graph = blame_run
        s = summarize_graph(graph, whatif=False)
        cls = max(STALL_CLASSES, key=lambda c: s.cycles.get(c, 0.0))
        assert s.cycles[cls] > 0
        assert replay(graph, {cls: 0.0}) < graph.total
        assert replay(graph, {cls: 2.0}) > graph.total

    def test_scale_then_inverse_recovers_original(self, blame_social):
        _, _, graph = blame_social
        s = summarize_graph(graph, whatif=False)
        for cls in ("dna_spin", "reserve", "termination"):
            assert s.cycles.get(cls, 0.0) > 0
            doubled = scale_graph(graph, {cls: 2.0})
            assert doubled.total > graph.total
            assert replay(doubled, {cls: 0.5}) == pytest.approx(graph.total)


def _fixture_graph():
    """Two wavefronts with a cross-wavefront causal wait.

    wf0: compute [0, 60].
    wf1: compute [0, 20]; dna_spin [20, 70] elastic, anchored to wf0's
    cycle 60 (residual 10); compute [70, 90].  Makespan 90.
    """
    segs = {
        0: [Segment(0, 0.0, 60.0, COMPUTE)],
        1: [
            Segment(1, 0.0, 20.0, COMPUTE),
            Segment(1, 20.0, 70.0, "dna_spin", elastic=True,
                    dep_wf=0, dep_cycle=60.0),
            Segment(1, 70.0, 90.0, COMPUTE),
        ],
    }
    return BlameGraph(segments=segs, total=90.0)


def _brute_force_chains(graph):
    """All legal backward chains from the final segment, exhaustively.

    At each elastic segment with an in-window anchor the walk may jump
    to the producer OR fall back to the wavefront's own predecessor;
    rigid segments only have the predecessor move.  Yields the
    per-class charge dict of every complete chain.
    """
    end_wf = max(graph.segments, key=lambda w: graph.segments[w][-1].end)
    start = (end_wf, len(graph.segments[end_wf]) - 1,
             graph.segments[end_wf][-1].end)

    out = []

    def walk(wf, i, cut, charged):
        seg = graph.segments[wf][i]
        prev_end = graph.segments[wf][i - 1].end if i > 0 else seg.start
        if (seg.elastic and seg.dep_cycle >= 0 and seg.dep_cycle >= prev_end
                and seg.dep_cycle <= cut and seg.dep_wf in graph.segments):
            nxt = dict(charged)
            nxt[seg.cls] = nxt.get(seg.cls, 0.0) + (cut - seg.dep_cycle)
            target = graph.find(seg.dep_wf, seg.dep_cycle)
            j = graph.segments[seg.dep_wf].index(target)
            walk(seg.dep_wf, j, seg.dep_cycle, nxt)
        nxt = dict(charged)
        nxt[seg.cls] = nxt.get(seg.cls, 0.0) + (cut - seg.start)
        if i > 0:
            walk(wf, i - 1, seg.start, nxt)
        else:
            out.append(nxt)

    walk(*start, {})
    return out


class TestCriticalPath:
    def test_fixture_matches_brute_force(self):
        graph = _fixture_graph()
        totals, chain = critical_path(graph)
        # every backward chain telescopes to the makespan...
        chains = _brute_force_chains(graph)
        assert chains
        for charged in chains:
            assert sum(charged.values()) == pytest.approx(graph.total)
        # ...and the walk returns the anchor-preferring one exactly
        assert totals == {COMPUTE: 80.0, "dna_spin": 10.0}
        assert {c: v for c, v in totals.items()} in chains
        assert sum(v for _, v in chain) == pytest.approx(graph.total)
        # the chain crossed into the producer wavefront
        assert {seg.wf for seg, _ in chain} == {0, 1}

    def test_anchor_outside_window_falls_back_to_predecessor(self):
        graph = _fixture_graph()
        # push the anchor before the wait even started: not binding
        graph.segments[1][1].dep_cycle = 10.0
        totals, chain = critical_path(graph)
        assert sum(totals.values()) == pytest.approx(graph.total)
        assert {seg.wf for seg, _ in chain} == {1}
        assert totals["dna_spin"] == pytest.approx(50.0)

    def test_bfs_chain_sums_to_makespan(self, blame_run):
        _, run, graph = blame_run
        totals, chain = critical_path(graph)
        assert chain
        # the chain telescopes from the last exit down to the first
        # issue of whichever wavefront it bottoms out in (launch ramp).
        root_start = chain[-1][0].start
        assert 0 <= root_start <= 64
        assert sum(totals.values()) == pytest.approx(
            graph.total - root_start
        )
        assert graph.total == pytest.approx(run.cycles)

    def test_empty_graph(self):
        totals, chain = critical_path(BlameGraph(segments={}, total=0.0))
        assert totals == {} and chain == []


class TestWhatIf:
    @pytest.mark.parametrize(
        "planted", ["dna_spin", "reserve", "termination"]
    )
    def test_planted_2x_slowdown_is_localized(self, blame_social, planted):
        # plant a 2x slowdown in one stall class, then ask the what-if
        # projector which class to fix: it must name the planted one,
        # and undoing it must recover the original makespan exactly.
        _, _, graph = blame_social
        base = summarize_graph(graph, whatif=False)
        assert base.cycles.get(planted, 0.0) > 0
        slowed = scale_graph(graph, {planted: 2.0})
        s = summarize_graph(slowed, whatif=True)
        best = max(
            (c for c in STALL_CLASSES if c in s.projections),
            key=lambda c: s.speedup(c, "half"),
        )
        assert best == planted
        assert replay(slowed, {planted: 0.5}) == pytest.approx(graph.total)

    def test_projection_keys_and_monotonicity(self, blame_run):
        _, _, graph = blame_run
        s = summarize_graph(graph, whatif=True)
        assert s.projections
        for cls, proj in s.projections.items():
            assert set(proj) == {"half", "zero"}
            assert proj["zero"] <= proj["half"] <= s.end_cycles
            assert s.speedup(cls, "zero") >= s.speedup(cls, "half") >= 1.0


class TestSummary:
    def test_json_round_trip(self, blame_run):
        _, _, graph = blame_run
        s = summarize_graph(graph, whatif=True)
        data = json.loads(json.dumps(s.to_json()))
        back = BlameSummary.from_json(data)
        assert back.to_json() == s.to_json()

    def test_merge_adds(self, blame_run):
        _, _, graph = blame_run
        a = summarize_graph(graph, whatif=True)
        b = summarize_graph(graph, whatif=True)
        m = BlameSummary()
        m.merge(a).merge(b)
        assert m.launches == 2
        assert m.end_cycles == pytest.approx(2 * graph.total)
        for cls, v in a.cycles.items():
            assert m.cycles[cls] == pytest.approx(2 * v)
        # fractions are ratio-preserving under merge
        for cls in a.cycles:
            assert m.fraction(cls) == pytest.approx(a.fraction(cls))


class TestPublish:
    def test_metrics_names_and_regress_rules(self, blame_run):
        from repro.obs.regress import DEFAULT_RULES, match_rule
        from repro.obs.registry import MetricsRegistry

        _, _, graph = blame_run
        s = summarize_graph(graph, whatif=False)
        reg = MetricsRegistry()
        publish_blame(s, reg)
        scalars = reg.scalars()
        for cls, v in s.cycles.items():
            assert scalars[f"blame.cycles.{cls}"] == int(v)
            assert scalars[f"blame.frac.{cls}"] == pytest.approx(
                s.fraction(cls), abs=1e-6
            )
        # the sentinel judges fractions with a wide band, cycles exactly
        frac_rule = match_rule("blame.frac.dna_spin", DEFAULT_RULES)
        assert frac_rule is not None and not frac_rule.exact
        assert frac_rule.tolerance == pytest.approx(0.25)
        cyc_rule = match_rule("blame.cycles.compute", DEFAULT_RULES)
        assert cyc_rule is not None and cyc_rule.exact


class TestBlameSession:
    def test_collects_and_restores_factory(self):
        import repro.simt.engine as engine_mod

        g = roadmap_graph(8, 8, seed=2)
        assert engine_mod.PROBE_FACTORY is None
        with BlameSession(keep_graphs=True, keep_probes=True) as session:
            run = run_persistent_bfs(g, 0, "RF/AN", TESTGPU, 2, verify=False)
        assert engine_mod.PROBE_FACTORY is None
        assert len(session.launches) == 1
        assert len(session.graphs) == 1
        assert len(session.probes) == 1
        assert session.merged().end_cycles == pytest.approx(run.cycles)

    def test_not_reentrant(self):
        with BlameSession() as session:
            with pytest.raises(RuntimeError):
                session.__enter__()


class TestCli:
    def test_blame_main_bfs_quick(self, tmp_path, capsys):
        from repro.harness.cli import main

        rc = main(
            [
                "blame", "bfs",
                "--device", "testgpu",
                "--quick",
                "--no-ledger",
                "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "stall attribution" in out
        assert "what-if" in out

        payload = json.loads((tmp_path / "blame.json").read_text())
        blame = payload["blame"]
        # the emitted totals satisfy the 1%-of-non-compute bar
        noncompute = blame["wf_cycles"] - blame["cycles"].get(COMPUTE, 0.0)
        stalls = sum(
            v for c, v in blame["cycles"].items() if c in STALL_CLASSES
        )
        assert stalls >= 0.99 * noncompute

        trace = json.loads((tmp_path / "trace.json").read_text())
        flows = [
            e for e in trace["traceEvents"] if e.get("cat") == "blame"
        ]
        assert flows
        assert {e["ph"] for e in flows} == {"s", "f"}

    def test_blame_main_no_trace(self, tmp_path, capsys):
        from repro.harness.blame import blame_main

        rc = blame_main(
            [
                "nqueens",
                "--device", "testgpu",
                "--quick",
                "--no-ledger",
                "--no-trace",
                "--no-whatif",
                "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        assert (tmp_path / "blame.json").exists()
        assert not (tmp_path / "trace.json").exists()


class TestSummarizeResults:
    def test_top3_blame_rendering_and_graceful_degrade(self, tmp_path):
        import sys

        sys.path.insert(0, "tools")
        try:
            from summarize_results import summarize_blame
        finally:
            sys.path.pop(0)

        # no artifacts: empty string, no exception
        assert summarize_blame(tmp_path) == ""

        # a malformed artifact degrades to a skip
        (tmp_path / "broken.blame.json").write_text("{not json")
        assert summarize_blame(tmp_path) == ""

        payload = {
            "workload": "bfs/tiny",
            "blame": {
                "end_cycles": 1000.0,
                "wf_cycles": 4000.0,
                "cycles": {
                    "compute": 2000.0, "dna_spin": 900.0,
                    "reserve": 700.0, "termination": 300.0,
                    "atomic_serial": 100.0,
                },
                "projections": {"dna_spin": {"half": 900.0, "zero": 800.0}},
            },
        }
        (tmp_path / "blame.json").write_text(json.dumps(payload))
        text = summarize_blame(tmp_path)
        assert "bfs/tiny" in text
        # top-3 stall classes only
        assert "dna_spin" in text and "reserve" in text
        assert "termination" in text and "atomic_serial" not in text
        assert "compute" not in text
