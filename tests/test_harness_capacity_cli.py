"""Tests for ``python -m repro.harness capacity`` — the capacity advisor."""

import json

import numpy as np
import pytest

from repro.harness.capacity import (
    SCHEMA,
    _hist_samples,
    _pow2_ceil,
    _tail_probability,
    advise_queue,
    aggregate_queues,
    capacity_main,
)
from repro.harness.cli import main


def _launch(highwater, demand, n_wf=2, wf_size=8, variant="RF/AN",
            hist=None, capacity=64):
    return {
        "n_wavefronts": n_wf,
        "wavefront_size": wf_size,
        "queues": {
            "wq": {
                "variant": variant,
                "capacity": capacity,
                "highwater": highwater,
                "max_raw_index": demand,
                "fill_hist": hist,
            }
        },
    }


def _hist(depths):
    depths = np.asarray(depths, dtype=np.float64)
    hi = max(int(depths.max()), 1)
    counts, edges = np.histogram(depths, bins=min(32, hi + 1),
                                 range=(0, hi + 1))
    return {
        "edges": [float(e) for e in edges],
        "counts": [int(c) for c in counts],
        "samples": int(depths.size),
    }


class TestAdvisorMath:
    def test_pow2_ceil(self):
        assert _pow2_ceil(0) == 1
        assert _pow2_ceil(1) == 1
        assert _pow2_ceil(5) == 8
        assert _pow2_ceil(64) == 64
        assert _pow2_ceil(65) == 128

    def test_hist_roundtrip_tail(self):
        depths = [2] * 90 + [30] * 10
        samples = _hist_samples(_hist(depths))
        assert samples.size == 100
        # ~10% of publishes sit at depth >= 20
        assert _tail_probability(samples, 20) == pytest.approx(0.1)
        assert _tail_probability(samples, 100) == 0.0
        assert _tail_probability(np.zeros(0), 5) == 0.0

    def test_aggregate_takes_maxima_across_launches(self):
        agg = aggregate_queues([
            _launch(10, 100, hist=_hist([5, 10])),
            _launch(40, 60, hist=_hist([20, 40])),
        ])
        a = agg["wq"]
        assert a["highwater"] == 40
        assert a["demand"] == 100
        assert a["lanes"] == 16
        assert a["launches"] == 2
        assert a["samples"].size == 4


class TestModeSelection:
    def test_abort_when_demand_fits_budget(self):
        agg = aggregate_queues([_launch(50, 60, hist=_hist([50]))])
        a = advise_queue("wq", agg["wq"], budget=4096, safety=1.5)
        assert a["mode"] == "abort"
        assert a["recommended"]["capacity"] >= 60
        assert a["projected_overflow_probability"] == 0.0

    def test_spill_when_reuse_is_high_and_ring_fits(self):
        # occupancy 30 vs demand 5000: circular reuse pays off, but the
        # bare monotonic sizing (8192) busts the 1024 budget.
        agg = aggregate_queues([_launch(30, 5000, hist=_hist([10, 30]))])
        a = advise_queue("wq", agg["wq"], budget=1024, safety=1.5)
        assert a["mode"] == "spill"
        rec = a["recommended"]
        assert rec["capacity"] <= 1024
        assert 0 < rec["low_water"] <= rec["high_water"] <= rec["capacity"]
        assert rec["spill_capacity"] >= 64

    def test_grow_when_occupancy_tracks_demand(self):
        # everything resident at peak: a ring would need as much memory
        # as a flat buffer, so segment chaining is the answer.
        agg = aggregate_queues(
            [_launch(4800, 5000, hist=_hist([4000, 4800]))]
        )
        a = advise_queue("wq", agg["wq"], budget=1024, safety=1.5)
        assert a["mode"] == "grow"
        rec = a["recommended"]
        assert rec["max_segments"] * rec["seg_cap"] >= 5000
        assert rec["pool_segments"] >= 2

    def test_overflow_ladder_is_monotone_decreasing(self):
        agg = aggregate_queues(
            [_launch(60, 5000, hist=_hist(list(range(0, 64))))]
        )
        a = advise_queue("wq", agg["wq"], budget=1024, safety=1.5)
        ladder = a["overflow_probability_by_capacity"]
        caps = sorted(int(c) for c in ladder)
        probs = [ladder[str(c)] for c in caps]
        assert probs == sorted(probs, reverse=True)


class TestCapacityCli:
    def _metrics_file(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({
            "workload": "synthetic",
            "launches": [_launch(30, 5000, hist=_hist([10, 30]))],
        }))
        return str(path)

    def test_from_metrics_writes_artifact(self, tmp_path, capsys):
        rc = main([
            "capacity",
            "--from-metrics", self._metrics_file(tmp_path),
            "--budget", "1024",
            "--out", str(tmp_path / "cap"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-queue recommendation" in out
        payload = json.loads(
            (tmp_path / "cap" / "capacity.json").read_text()
        )
        assert payload["schema"] == SCHEMA
        assert payload["queues"][0]["mode"] == "spill"
        assert payload["queues"][0]["rationale"]

    def test_replay_smoke_on_testgpu(self, tmp_path, capsys):
        rc = capacity_main([
            "bfs",
            "--device", "testgpu",
            "--quick",
            "--out", str(tmp_path),
        ])
        assert rc == 0
        payload = json.loads((tmp_path / "capacity.json").read_text())
        q = payload["queues"][0]
        assert q["queue"] == "wq"
        assert q["observed"]["fill_samples"] > 0
        assert q["mode"] in ("abort", "grow", "spill")

    def test_workload_required_without_from_metrics(self):
        with pytest.raises(SystemExit):
            capacity_main(["--budget", "64"])

    def test_wrong_shape_metrics_file_rejected(self, tmp_path, capsys):
        # feeding the advisor its own capacity.json (whose "launches"
        # is a count, not a list) must be a clean exit 2, not a crash
        path = tmp_path / "capacity.json"
        path.write_text(json.dumps({"workload": "bfs", "launches": 27}))
        assert capacity_main(["--from-metrics", str(path)]) == 2
        assert "not a profile metrics file" in capsys.readouterr().err
        missing = str(tmp_path / "nope.json")
        assert capacity_main(["--from-metrics", missing]) == 2

    def test_bad_budget_and_safety_rejected(self, tmp_path):
        path = self._metrics_file(tmp_path)
        assert capacity_main(["--from-metrics", path, "--budget", "1"]) == 2
        assert capacity_main(
            ["--from-metrics", path, "--safety", "0.5"]
        ) == 2
