"""Schedule controllers: legality, reproducibility, bit-invisibility.

The controller hook rides the engine's issue-selection point, so the
burden of proof is twofold: an engine-order controller must be
*bit-identical* to no controller at all (the hook costs nothing when it
changes nothing), and the adversarial controllers must stay inside the
space of legal executions — same tasks completed, same verified-clean
oracle history, merely a different interleaving.
"""

import numpy as np
import pytest

import repro.simt.engine as engine_mod
from repro.core import SchedulerControl, make_queue, persistent_kernel
from repro.core.scheduler import K_TASKS_DONE
from repro.simt import TESTGPU, Engine
from repro.verify import workloads
from repro.verify.schedule import (
    DelayWavefrontController,
    FifoController,
    RandomController,
    ScheduleController,
    StarveCUController,
    build_controller,
)


def _run(controller=None, scale=12, n_wf=6):
    """One RF/AN countdown launch; returns (result, memory snapshot)."""
    worker, seeds, expected = workloads.build("countdown", scale)
    q = make_queue("RF/AN", capacity=workloads.max_enqueues("countdown", scale))
    sched = SchedulerControl()
    eng = Engine(TESTGPU)
    q.allocate(eng.memory)
    sched.allocate(eng.memory)
    q.seed(eng.memory, seeds)
    sched.seed(eng.memory, len(seeds))
    kern = persistent_kernel(q, worker, sched)
    res = eng.launch(
        kern, n_wf, params={"max_work_cycles": 20_000}, controller=controller
    )
    snap = {name: eng.memory[name].copy() for name in (q.buf_ctrl, q.buf_data)}
    return res, snap, expected


class TestBitIdentity:
    def test_fifo_controller_is_bit_identical_to_uncontrolled(self):
        plain, mem_plain, _ = _run(controller=None)
        piped, mem_piped, _ = _run(controller=FifoController())
        assert plain.cycles == piped.cycles
        assert plain.stats.snapshot() == piped.stats.snapshot()
        for name in mem_plain:
            assert np.array_equal(mem_plain[name], mem_piped[name])

    def test_controller_factory_hook_is_bit_identical_and_scoped(self):
        plain, mem_plain, _ = _run()
        assert engine_mod.CONTROLLER_FACTORY is None
        try:
            engine_mod.CONTROLLER_FACTORY = FifoController
            hooked, mem_hooked, _ = _run()
        finally:
            engine_mod.CONTROLLER_FACTORY = None
        assert plain.cycles == hooked.cycles
        assert plain.stats.snapshot() == hooked.stats.snapshot()
        for name in mem_plain:
            assert np.array_equal(mem_plain[name], mem_hooked[name])

    def test_base_controller_defaults_to_engine_order(self):
        plain, _, _ = _run()
        based, _, _ = _run(controller=ScheduleController())
        assert plain.cycles == based.cycles
        assert plain.stats.snapshot() == based.stats.snapshot()


class TestLegality:
    @pytest.mark.parametrize("ctrl", [
        RandomController(seed=7, hold_prob=0.15, burst=48),
        DelayWavefrontController(target=0, patience=96),
        StarveCUController(cid=0, period=256, duty=128),
    ], ids=["random", "delay", "starve"])
    def test_perturbed_runs_complete_the_same_work(self, ctrl):
        res, _, expected = _run(controller=ctrl)
        assert int(res.stats.custom[K_TASKS_DONE]) == expected

    def test_random_controller_actually_perturbs(self):
        plain, _, _ = _run()
        shaken, _, _ = _run(
            controller=RandomController(seed=7, hold_prob=0.15, burst=48)
        )
        assert shaken.cycles > plain.cycles  # holds cost simulated time


class TestReproducibility:
    def test_same_seed_same_execution(self):
        a, mem_a, _ = _run(controller=RandomController(seed=11, hold_prob=0.2))
        b, mem_b, _ = _run(controller=RandomController(seed=11, hold_prob=0.2))
        assert a.cycles == b.cycles
        assert a.stats.snapshot() == b.stats.snapshot()
        for name in mem_a:
            assert np.array_equal(mem_a[name], mem_b[name])

    def test_one_instance_replays_across_launches(self):
        # launch_begin must reset the PRNG: the same object driving two
        # launches explores the same schedule twice.
        ctrl = RandomController(seed=11, hold_prob=0.2)
        a, _, _ = _run(controller=ctrl)
        b, _, _ = _run(controller=ctrl)
        assert a.cycles == b.cycles
        assert a.stats.snapshot() == b.stats.snapshot()


class TestBuildController:
    def test_none_and_kind_none_mean_uncontrolled(self):
        assert build_controller(None) is None
        assert build_controller({"kind": "none"}) is None

    @pytest.mark.parametrize("spec, cls", [
        ({"kind": "fifo"}, FifoController),
        ({"kind": "random", "seed": 3}, RandomController),
        ({"kind": "delay", "target": 2}, DelayWavefrontController),
        ({"kind": "starve", "cid": 1}, StarveCUController),
    ])
    def test_kinds_map_to_classes(self, spec, cls):
        assert isinstance(build_controller(spec), cls)

    @pytest.mark.parametrize("ctrl", [
        FifoController(),
        RandomController(seed=9, hold_prob=0.3, burst=24, max_holds=100),
        DelayWavefrontController(target=5, patience=32, max_holds=50),
        StarveCUController(cid=1, period=128, duty=64, max_holds=200),
    ], ids=["fifo", "random", "delay", "starve"])
    def test_describe_round_trips(self, ctrl):
        rebuilt = build_controller(ctrl.describe())
        assert rebuilt.describe() == ctrl.describe()

    def test_unknown_kind_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown schedule kind"):
            build_controller({"kind": "chaos"})

    def test_starve_rejects_degenerate_duty_cycle(self):
        with pytest.raises(ValueError, match="duty"):
            StarveCUController(cid=0, period=100, duty=100)
        with pytest.raises(ValueError, match="duty"):
            StarveCUController(cid=0, period=100, duty=0)
