"""Property tests of the queue algorithms via host-side step machines.

Hypothesis drives arbitrary interleavings of producer/consumer steps;
every interleaving is a legal concurrent history of the algorithm because
each step touches shared state exactly once.  Safety invariants checked:

* no token lost, none duplicated;
* RF/AN consumers parked past the rear receive data once producers
  catch up (the refactored queue-empty exception);
* queue-full detected (never silent corruption).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CasConsumer,
    CasProducer,
    HostCasQueue,
    HostRFANQueue,
    QueueFull,
    RFANConsumer,
    RFANProducer,
)


def interleave(machines, schedule):
    """Drive step machines in the order given by `schedule` (indices)."""
    for i in schedule:
        m = machines[i % len(machines)]
        if not m.done:
            m.step()
    # drain: run everything to completion deterministically
    for _ in range(10_000):
        progressed = False
        for m in machines:
            if not m.done and m.step():
                progressed = True
        if all(m.done for m in machines):
            return
        if not progressed:
            break
    raise AssertionError("machines failed to converge")


class TestRFANHost:
    @given(
        tokens=st.lists(
            st.lists(st.integers(0, 1000), min_size=1, max_size=5),
            min_size=1,
            max_size=6,
        ),
        schedule=st.lists(st.integers(0, 63), max_size=200),
    )
    @settings(max_examples=200, deadline=None)
    def test_no_loss_no_duplication(self, tokens, schedule):
        total = sum(len(batch) for batch in tokens)
        q = HostRFANQueue(capacity=total + 16)
        producers = [RFANProducer(q, batch) for batch in tokens]
        consumers = [RFANConsumer(q) for _ in range(total)]
        interleave(producers + consumers, schedule)
        got = sorted(c.got for c in consumers)
        want = sorted(t for batch in tokens for t in batch)
        assert got == want

    @given(extra=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_overshoot_consumers_fed_later(self, extra):
        """Consumers reserving slots before any data exists block politely
        and are fed by a later producer — never an exception."""
        q = HostRFANQueue(capacity=64)
        consumers = [RFANConsumer(q) for _ in range(extra)]
        for c in consumers:
            c.step()  # all reserve slots on the empty queue
        assert q.front == extra and q.rear == 0
        for c in consumers:
            c.step()
            assert not c.done  # polls return nothing yet
        producer = RFANProducer(q, list(range(100, 100 + extra)))
        while not producer.done:
            producer.step()
        for c in consumers:
            while not c.done:
                c.step()
        assert sorted(c.got for c in consumers) == list(range(100, 100 + extra))

    def test_queue_full_detected_monotonic(self):
        q = HostRFANQueue(capacity=2)
        p = RFANProducer(q, [1, 2, 3])
        with pytest.raises(QueueFull):
            while not p.done:
                p.step()

    def test_circular_reuse(self):
        q = HostRFANQueue(capacity=2, circular=True)
        for round_ in range(5):
            p = RFANProducer(q, [round_])
            c = RFANConsumer(q)
            while not (p.done and c.done):
                p.step()
                c.step()
            assert c.got == round_

    def test_circular_full_detected(self):
        q = HostRFANQueue(capacity=2, circular=True)
        p = RFANProducer(q, [1, 2, 3])  # 3 tokens into 2 slots, no consumer
        with pytest.raises(QueueFull):
            while not p.done:
                p.step()

    def test_negative_token_rejected(self):
        q = HostRFANQueue(capacity=4)
        p = RFANProducer(q, [-1])
        p.step()
        with pytest.raises(ValueError):
            p.step()


class TestCasHost:
    @given(
        n_tokens=st.integers(1, 12),
        schedule=st.lists(st.integers(0, 63), max_size=300),
    )
    @settings(max_examples=200, deadline=None)
    def test_no_loss_no_duplication(self, n_tokens, schedule):
        q = HostCasQueue(capacity=n_tokens + 8)
        producers = [CasProducer(q, 100 + i) for i in range(n_tokens)]
        consumers = [CasConsumer(q) for _ in range(n_tokens)]
        interleave(producers + consumers, schedule)
        got = sorted(c.got for c in consumers)
        assert got == [100 + i for i in range(n_tokens)]

    @given(schedule=st.lists(st.integers(0, 63), max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_cas_failures_counted_not_fatal(self, schedule):
        q = HostCasQueue(capacity=32)
        producers = [CasProducer(q, i) for i in range(6)]
        consumers = [CasConsumer(q) for _ in range(6)]
        interleave(producers + consumers, schedule)
        # whatever the interleaving, the data arrives intact
        assert sorted(c.got for c in consumers) == list(range(6))

    def test_empty_queue_is_exception_not_block(self):
        q = HostCasQueue(capacity=8)
        c = CasConsumer(q)
        for _ in range(5):
            c.step()
        assert not c.done
        assert c.empty_seen == 5  # each attempt raised queue-empty

    def test_full_detected(self):
        q = HostCasQueue(capacity=1)
        p1 = CasProducer(q, 1)
        while not p1.done:
            p1.step()
        p2 = CasProducer(q, 2)
        with pytest.raises(QueueFull):
            while not p2.done:
                p2.step()


class TestContrast:
    def test_rfan_reservation_vs_cas_exception(self):
        """The defining behavioural difference: on an empty queue, RF/AN
        hands out a slot to monitor; BASE raises an exception."""
        rfan = HostRFANQueue(capacity=8)
        rc = RFANConsumer(rfan)
        rc.step()
        assert rc.slot is not None  # parked, waiting for data

        cas = HostCasQueue(capacity=8)
        cc = CasConsumer(cas)
        cc.step()
        assert cc.slot is None
        assert cc.empty_seen == 1  # exception, stays hungry
