"""Tests for the run log, live reporter, and run_many observer wiring."""

import io
import json

from repro.harness import HarnessConfig
from repro.harness.experiments import run_many
from repro.obs.registry import MetricsRegistry
from repro.obs.runlog import (
    SCHEMA,
    LiveReporter,
    MultiObserver,
    RunLog,
    RunObserver,
    read_runlog,
)


class TestRunLog:
    def test_events_are_schema_versioned_jsonl(self, tmp_path):
        path = tmp_path / "sub" / "run.jsonl"
        log = RunLog(path)
        log.run_started(["tab1"], [["tab1"]], jobs=2)
        log.job_started("tab1", 0, 1)
        log.job_finished("tab1", 0, 1, elapsed=1.5)
        log.warning("low disk")
        log.abort("queue full at launch 3")
        log.run_finished(elapsed=2.0, ok=True)
        log.close()

        events = read_runlog(path)
        assert [e["event"] for e in events] == [
            "run_started", "job_started", "job_finished",
            "warning", "abort", "run_finished",
        ]
        assert all(e["schema"] == SCHEMA for e in events)
        assert events[2]["elapsed_s"] == 1.5
        assert events[2]["ok"] is True
        assert events[4]["reason"] == "queue full at launch 3"

    def test_failed_job_carries_error(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = RunLog(path)
        log.job_finished("tab9", 0, 1, elapsed=0.2, error="ValueError('x')")
        log.close()
        (event,) = read_runlog(path)
        assert event["ok"] is False
        assert event["error"] == "ValueError('x')"

    def test_reader_skips_bad_and_newer_schema_lines(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps({"schema": 1, "event": "ok"}) + "\n"
            + "this is not json\n"
            + json.dumps({"schema": 99, "event": "from_the_future"}) + "\n"
        )
        events = read_runlog(path)
        assert [e["event"] for e in events] == ["ok"]
        err = capsys.readouterr().err
        assert "unparseable" in err
        assert "schema 99" in err

    def test_stream_target_is_not_closed(self):
        buf = io.StringIO()
        log = RunLog(buf)
        log.emit("ping")
        log.close()
        assert not buf.closed
        assert json.loads(buf.getvalue())["event"] == "ping"


class TestLiveReporter:
    def test_progress_lines_and_eta(self):
        buf = io.StringIO()
        ticks = iter([0.0, 10.0, 20.0])
        live = LiveReporter(stream=buf, clock=lambda: next(ticks))
        live.run_started(["a", "b"], [["a"], ["b"]], jobs=2)
        live.job_started("a", 0, 2)
        live.job_started("b", 1, 2)
        live.job_finished("a", 0, 2, elapsed=10.0)
        live.job_finished("b", 1, 2, elapsed=20.0, error="boom")
        live.run_finished(20.0, ok=False)
        out = buf.getvalue()
        assert "2 experiment(s) in 2 group(s) over 2 worker(s)" in out
        assert "a done in 10.0s — 1/2 done, 0 failed, eta ~10s" in out
        assert "running: b" in out
        assert "b failed" in out
        assert "b error: boom" in out
        assert "run FAILED: 2/2 group(s), 1 failed" in out


class _Recorder(RunObserver):
    def __init__(self):
        self.calls = []

    def run_started(self, ids, groups, jobs):
        self.calls.append(("run_started", tuple(ids), jobs))

    def job_started(self, job, index, total):
        self.calls.append(("job_started", job))

    def job_finished(self, job, index, total, elapsed, error=None):
        self.calls.append(("job_finished", job, error))
        assert elapsed >= 0

    def run_finished(self, elapsed, ok):
        self.calls.append(("run_finished", ok))


class TestRunManyObservers:
    def test_sequential_lifecycle_events(self):
        cfg = HarnessConfig(quick=True)
        rec = _Recorder()
        run_many(cfg, ["tab1", "tab2"], jobs=1, observer=rec)
        assert rec.calls[0] == ("run_started", ("tab1", "tab2"), 1)
        assert ("job_started", "tab1") in rec.calls
        assert ("job_finished", "tab2", None) in rec.calls
        assert rec.calls[-1] == ("run_finished", True)

    def test_parallel_run_reports_and_metrics_match_sequential(self):
        cfg = HarnessConfig(quick=True)
        rec = _Recorder()
        reg_seq = MetricsRegistry()
        reg_par = MetricsRegistry()
        seq = run_many(cfg, ["tab1", "tab2"], jobs=1, registry=reg_seq)
        par = run_many(
            cfg, ["tab1", "tab2"], jobs=2, observer=rec, registry=reg_par
        )
        assert [r.exp_id for r in par] == ["tab1", "tab2"]
        assert [r.text for r in seq] == [r.text for r in par]
        # metrics aggregate identically across process boundaries
        assert reg_seq.scalars() == reg_par.scalars()
        assert rec.calls[-1] == ("run_finished", True)

    def test_multi_observer_fans_out(self):
        a, b = _Recorder(), _Recorder()
        multi = MultiObserver(a, b, None)
        multi.run_started(["x"], [["x"]], 1)
        multi.run_finished(0.1, True)
        assert a.calls == b.calls
        assert len(a.calls) == 2

    def test_failing_experiment_emits_error_event(self, monkeypatch):
        from repro.harness.experiments import EXPERIMENTS

        def _boom(cfg):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(EXPERIMENTS, "boomexp", _boom)
        cfg = HarnessConfig(quick=True)
        rec = _Recorder()
        try:
            run_many(cfg, ["boomexp"], jobs=1, observer=rec)
        except RuntimeError:
            pass
        else:
            raise AssertionError("experiment failure was swallowed")
        finished = [c for c in rec.calls if c[0] == "job_finished"]
        assert finished and "synthetic failure" in finished[0][2]
        assert rec.calls[-1] == ("run_finished", False)


class TestCliLiveAndRunLog:
    def test_live_keeps_reports_byte_identical(self, tmp_path, capsys):
        from repro.harness.cli import main

        out_plain = tmp_path / "plain"
        out_live = tmp_path / "live"
        runlog_path = tmp_path / "run.jsonl"
        assert main(["tab1", "--quick", "--out", str(out_plain)]) == 0
        plain = capsys.readouterr()
        assert main([
            "tab1", "--quick", "--out", str(out_live),
            "--live", "--run-log", str(runlog_path),
        ]) == 0
        live = capsys.readouterr()

        # stdout reports and saved artifacts are unchanged by
        # --live/--run-log ([saved <path>]/timing status lines differ by
        # out dir and wall clock, so compare the report body only)
        def report_body(text):
            return [l for l in text.splitlines() if not l.startswith("[")]

        assert report_body(plain.out) == report_body(live.out)
        for suffix in ("txt", "json"):
            assert (
                (out_plain / f"tab1.{suffix}").read_text()
                == (out_live / f"tab1.{suffix}").read_text()
            )
        # progress went to stderr only
        assert "[live]" in live.err
        assert "[live]" not in live.out

        # the run log captured the lifecycle plus a metrics snapshot
        events = [e["event"] for e in read_runlog(runlog_path)]
        assert events[0] == "run_started"
        assert "job_finished" in events
        assert "metrics" in events
