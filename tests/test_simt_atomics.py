"""Unit and property tests for the atomic system's service paths.

The engine routes atomic batches through four implementations (scalar,
same-address closed forms, distinct-address vectorized, general walk);
these tests pin their semantics against a trivial sequential reference,
including the timing contracts (serialization per address, parallel
service across addresses, hot-buffer cross-batch occupancy).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simt import AtomicKind, AtomicRMW, DeviceSpec, GlobalMemory, SimStats
from repro.simt.atomics import AtomicSystem
from repro.simt.memory import HOT_BUFFER_WORDS


def make_system(buf_size=8, fill=0):
    dev = DeviceSpec(name="t", n_cus=1, atomic_service=5, l2_latency=10)
    mem = GlobalMemory()
    mem.alloc("b", buf_size, fill=fill)
    stats = SimStats()
    return AtomicSystem(dev, mem, stats), mem, stats


def sequential_reference(values, idx, kind, operand, operand2=None):
    """Lane-order walk — the semantics every fast path must match."""
    values = list(values)
    old, success = [], []
    for j in range(len(idx)):
        a = idx[j]
        cur = values[a]
        old.append(cur)
        if kind is AtomicKind.CAS:
            ok = cur == operand[j]
            success.append(ok)
            if ok:
                values[a] = operand2[j]
        elif kind is AtomicKind.ADD:
            values[a] = cur + operand[j]
        elif kind is AtomicKind.MIN:
            values[a] = min(cur, operand[j])
        elif kind is AtomicKind.MAX:
            values[a] = max(cur, operand[j])
        elif kind is AtomicKind.EXCH:
            values[a] = operand[j]
    return values, old, success


class TestScalarPath:
    @pytest.mark.parametrize(
        "kind,operand,expected_val,expected_old",
        [
            (AtomicKind.ADD, 7, 17, 10),
            (AtomicKind.MIN, 3, 3, 10),
            (AtomicKind.MIN, 30, 10, 10),
            (AtomicKind.MAX, 30, 30, 10),
            (AtomicKind.EXCH, 5, 5, 10),
        ],
    )
    def test_rmw_kinds(self, kind, operand, expected_val, expected_old):
        sys_, mem, _ = make_system(fill=10)
        op = AtomicRMW("b", 0, kind, operand)
        sys_.service(op, arrival=100)
        assert mem["b"][0] == expected_val
        assert int(op.old[0]) == expected_old
        assert bool(op.success[0])

    def test_cas_success_and_failure(self):
        sys_, mem, stats = make_system(fill=10)
        ok = AtomicRMW("b", 0, AtomicKind.CAS, 10, 99)
        sys_.service(ok, 0)
        assert mem["b"][0] == 99 and bool(ok.success[0])
        bad = AtomicRMW("b", 0, AtomicKind.CAS, 10, 5)
        sys_.service(bad, 0)
        assert mem["b"][0] == 99 and not bool(bad.success[0])
        assert stats.cas_failures == 1

    def test_hot_buffer_serializes_across_batches(self):
        sys_, mem, _ = make_system(buf_size=2)  # hot (tiny) buffer
        end1 = sys_.service(AtomicRMW("b", 0, AtomicKind.ADD, 1), arrival=0)
        end2 = sys_.service(AtomicRMW("b", 0, AtomicKind.ADD, 1), arrival=0)
        assert end2 == end1 + 5  # queued behind the first service

    def test_cold_buffer_does_not_track_cross_batch(self):
        sys_, mem, _ = make_system(buf_size=HOT_BUFFER_WORDS + 1)
        end1 = sys_.service(AtomicRMW("b", 0, AtomicKind.ADD, 1), arrival=0)
        end2 = sys_.service(AtomicRMW("b", 0, AtomicKind.ADD, 1), arrival=0)
        assert end1 == end2 == 5


class TestSameAddressPath:
    def test_add_closed_form(self):
        sys_, mem, _ = make_system(fill=100)
        op = AtomicRMW(
            "b", np.zeros(4, dtype=np.int64), AtomicKind.ADD,
            np.array([1, 2, 3, 4]),
        )
        sys_.service(op, 0)
        assert mem["b"][0] == 110
        assert op.old.tolist() == [100, 101, 103, 106]

    def test_min_max_running(self):
        sys_, mem, _ = make_system(fill=50)
        op = AtomicRMW(
            "b", np.zeros(4, dtype=np.int64), AtomicKind.MIN,
            np.array([60, 40, 45, 30]),
        )
        sys_.service(op, 0)
        assert mem["b"][0] == 30
        assert op.old.tolist() == [50, 50, 40, 40]

        sys2, mem2, _ = make_system(fill=5)
        op2 = AtomicRMW(
            "b", np.zeros(3, dtype=np.int64), AtomicKind.MAX,
            np.array([3, 9, 7]),
        )
        sys2.service(op2, 0)
        assert mem2["b"][0] == 9
        assert op2.old.tolist() == [5, 5, 9]

    def test_exch_chain(self):
        sys_, mem, _ = make_system(fill=1)
        op = AtomicRMW(
            "b", np.zeros(3, dtype=np.int64), AtomicKind.EXCH,
            np.array([2, 3, 4]),
        )
        sys_.service(op, 0)
        assert mem["b"][0] == 4
        assert op.old.tolist() == [1, 2, 3]

    def test_cas_ladder(self):
        sys_, mem, stats = make_system(fill=0)
        expected = np.array([0, 1, 2, 9])
        op = AtomicRMW(
            "b", np.zeros(4, dtype=np.int64), AtomicKind.CAS,
            expected, expected + 1,
        )
        sys_.service(op, 0)
        assert op.success.tolist() == [True, True, True, False]
        assert mem["b"][0] == 3
        assert stats.cas_failures == 1

    def test_timing_full_serialization(self):
        sys_, mem, _ = make_system()
        op = AtomicRMW("b", np.zeros(6, dtype=np.int64), AtomicKind.ADD, 1)
        end = sys_.service(op, arrival=100)
        assert end == 100 + 6 * 5


class TestDistinctPath:
    def test_vectorized_apply(self):
        sys_, mem, _ = make_system(buf_size=200, fill=10)
        idx = np.array([0, 5, 7, 100])
        op = AtomicRMW("b", idx, AtomicKind.ADD, np.array([1, 2, 3, 4]))
        end = sys_.service(op, arrival=50)
        assert end == 55  # parallel units: one service time
        assert mem["b"][idx].tolist() == [11, 12, 13, 14]
        assert op.old.tolist() == [10, 10, 10, 10]

    def test_cas_vectorized(self):
        sys_, mem, _ = make_system(buf_size=100, fill=10)
        idx = np.array([1, 2, 3])
        op = AtomicRMW(
            "b", idx, AtomicKind.CAS,
            np.array([10, 99, 10]), np.array([20, 20, 20]),
        )
        sys_.service(op, 0)
        assert op.success.tolist() == [True, False, True]
        assert mem["b"][1:4].tolist() == [20, 10, 20]


class TestGeneralPath:
    @given(
        idx=st.lists(st.integers(0, 3), min_size=2, max_size=12),
        operands=st.lists(st.integers(-5, 5), min_size=12, max_size=12),
        kind=st.sampled_from(
            [AtomicKind.ADD, AtomicKind.MIN, AtomicKind.MAX, AtomicKind.EXCH]
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_matches_sequential_reference(self, idx, operands, kind):
        sys_, mem, _ = make_system(buf_size=4, fill=0)
        n = len(idx)
        operand = np.array(operands[:n], dtype=np.int64)
        op = AtomicRMW("b", np.array(idx, dtype=np.int64), kind, operand)
        sys_.service(op, 0)
        ref_vals, ref_old, _ = sequential_reference(
            [0, 0, 0, 0], idx, kind, operand.tolist()
        )
        assert mem["b"][:4].tolist() == ref_vals
        assert op.old.tolist() == ref_old

    @given(
        idx=st.lists(st.integers(0, 2), min_size=2, max_size=10),
        data=st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_cas_matches_reference(self, idx, data):
        n = len(idx)
        expected = np.array(
            data.draw(st.lists(st.integers(0, 3), min_size=n, max_size=n)),
            dtype=np.int64,
        )
        new = np.array(
            data.draw(st.lists(st.integers(0, 9), min_size=n, max_size=n)),
            dtype=np.int64,
        )
        sys_, mem, _ = make_system(buf_size=3, fill=0)
        op = AtomicRMW(
            "b", np.array(idx, dtype=np.int64), AtomicKind.CAS, expected, new
        )
        sys_.service(op, 0)
        ref_vals, ref_old, ref_ok = sequential_reference(
            [0, 0, 0], idx, AtomicKind.CAS, expected.tolist(), new.tolist()
        )
        assert mem["b"][:3].tolist() == ref_vals
        assert op.old.tolist() == ref_old
        assert op.success.tolist() == ref_ok


class TestStatsAccounting:
    def test_requests_counted_by_kind(self):
        sys_, _, stats = make_system(buf_size=100)
        sys_.service(
            AtomicRMW("b", np.arange(4), AtomicKind.ADD, 1), 0
        )
        sys_.service(AtomicRMW("b", 0, AtomicKind.CAS, 0, 1), 0)
        assert stats.atomic_requests["add"] == 4
        assert stats.atomic_requests["cas"] == 1
        assert stats.total_atomic_requests == 5

    def test_reset_timing(self):
        sys_, _, _ = make_system(buf_size=2)
        end1 = sys_.service(AtomicRMW("b", 0, AtomicKind.ADD, 1), 0)
        sys_.reset_timing()
        end2 = sys_.service(AtomicRMW("b", 0, AtomicKind.ADD, 1), 0)
        assert end1 == end2


class TestLaunchScopedTiming:
    def test_sequential_launches_see_fresh_atomic_units(self):
        """Unit-occupancy state must not leak across Engine.launch calls.

        Two identical launches on one engine, with memory reset in
        between, must cost identical cycles: each launch restarts the
        simulated clock at zero, so ``_free_at`` entries from the first
        launch (which end at large absolute cycles) would stall the
        second launch's atomics far into the future if they survived.
        """
        from repro.simt import Engine, GlobalMemory, TESTGPU

        def kernel(ctx):
            # contended hot-word atomics: every wavefront hammers ctrl[0],
            # building up large _free_at end times.
            for _ in range(20):
                yield AtomicRMW("ctrl", 0, AtomicKind.ADD, 1)

        mem = GlobalMemory()
        mem.alloc("ctrl", 2, fill=0)
        eng = Engine(TESTGPU, mem)

        first = eng.launch(kernel, 8)
        assert mem["ctrl"][0] == 8 * 20
        mem["ctrl"][:] = 0  # host resets between launches
        second = eng.launch(kernel, 8)

        assert second.cycles == first.cycles
        assert second.stats.snapshot() == first.stats.snapshot()
