"""Unit tests for the harness's text rendering and result persistence."""

import json

import pytest

from repro.harness.report import ascii_chart, render_series, render_table
from repro.harness.results import ExperimentResult


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(
            ["name", "v"],
            [["alpha", 1], ["b", 22222]],
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "v" in lines[1]
        assert "alpha" in lines[3]
        assert "22222" in lines[4]
        # all data rows share one width
        assert len(lines[3]) == len(lines[4])

    def test_float_formatting(self):
        out = render_table(["x"], [[0.000123456], [1234.5], [0.5], [0]])
        assert "1.235e-04" in out
        assert "1.234e+03" in out  # large magnitudes go scientific
        assert "0.5" in out

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestAsciiChart:
    def test_renders_series_glyphs(self):
        out = ascii_chart(
            {"up": [1, 2, 3], "down": [3, 2, 1]}, x=[1, 2, 3], title="C"
        )
        assert out.startswith("C")
        assert "*" in out and "o" in out
        assert "*=up" in out and "o=down" in out

    def test_log_scale(self):
        out = ascii_chart({"s": [1, 10, 100]}, x=[0, 1, 2], logy=True)
        assert "100" in out

    def test_empty(self):
        out = ascii_chart({"s": []}, x=[], title="E")
        assert "no data" in out

    def test_constant_series(self):
        out = ascii_chart({"s": [5, 5, 5]}, x=[0, 1, 2])
        assert "*" in out

    def test_none_points_skipped(self):
        out = ascii_chart({"s": [1, None, 3]}, x=[0, 1, 2])
        assert "*" in out


class TestRenderSeries:
    def test_rows_per_x(self):
        out = render_series({"a": [10, 20], "b": [1, 2]}, x=["p", "q"])
        assert "p" in out and "q" in out
        assert "20" in out and "2" in out

    def test_ragged_series_padded(self):
        out = render_series({"a": [10], "b": [1, 2]}, x=[0, 1])
        assert "None" in out


class TestExperimentResult:
    def test_save_roundtrip(self, tmp_path):
        import numpy as np

        res = ExperimentResult(
            "tabX", "demo", "body",
            {"n": np.int64(3), "xs": np.arange(2), "f": np.float64(0.5)},
        )
        path = res.save(tmp_path)
        assert (tmp_path / "tabX.txt").read_text() == "body\n"
        data = json.loads(path.read_text())
        assert data == {"n": 3, "xs": [0, 1], "f": 0.5}

    def test_unserializable_rejected(self, tmp_path):
        res = ExperimentResult("bad", "t", "x", {"obj": object()})
        with pytest.raises(TypeError):
            res.save(tmp_path)
