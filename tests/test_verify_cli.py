"""CLI contract for ``python -m repro.verify``.

The exit-code protocol is what CI consumes: 0 = verified clean,
1 = counterexample found / reproduced, 2 = checker insensitivity or a
usage problem.  These tests call :func:`repro.verify.cli.main` directly
with argv lists — same code path as the module entry point, no
subprocess overhead.
"""

import json

import pytest

from repro.verify.cli import main
from repro.verify.scenario import Scenario, run_scenario
from repro.verify.shrink import (
    SCHEMA,
    counterexample_dict,
    load_counterexample,
    shrink,
    write_counterexample,
)


class TestExplore:
    def test_quick_subset_passes(self, capsys):
        rc = main(["--quick", "--max-scenarios", "8", "--no-selftest"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "8/8 scenarios passed" in out
        assert "PASS" in out

    def test_explore_subcommand_matches_top_level(self, capsys):
        rc = main(["explore", "--max-scenarios", "4", "--no-selftest"])
        assert rc == 0
        assert "4/4 scenarios passed" in capsys.readouterr().out

    def test_variant_filter_restricts_the_plan(self, capsys):
        rc = main([
            "--quick", "--variant", "RF/AN", "--max-scenarios", "6",
            "--no-selftest", "-v",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "] RF/AN/" in out  # verbose lines show scenario labels
        for other in ("] AN/", "] BASE/", "] NAIVE/"):
            assert other not in out


class TestSelftest:
    def test_selftest_passes_and_reports_every_plant(self, capsys):
        rc = main(["selftest"])
        out = capsys.readouterr().out
        assert rc == 0
        for plant in ("skip-dna-restore", "over-reserve", "lost-store",
                      "valid-before-data"):
            assert f"selftest {plant}" in out
            assert "MISSED" not in out
        assert "selftest: PASS" in out


def _failing_artifact(tmp_path):
    """Shrink a planted failure into a replayable artifact on disk."""
    sc = Scenario(plant="over-reserve", variant="RF/AN", scale=12,
                  max_work_cycles=3_000)
    failure = run_scenario(sc)
    assert not failure.ok
    shrunk_sc, shrunk_out, runs = shrink(failure)
    path = tmp_path / "counterexample.json"
    write_counterexample(
        str(path), counterexample_dict(failure, shrunk_sc, shrunk_out, runs)
    )
    return path, failure


class TestReplay:
    def test_replay_reproduces_a_real_counterexample(self, tmp_path, capsys):
        path, failure = _failing_artifact(tmp_path)
        rc = main(["replay", str(path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REPRODUCED" in out
        assert failure.invariant in out

    def test_replay_of_a_fixed_bug_exits_zero(self, tmp_path, capsys):
        # same artifact shape, but the scenario is clean (the "bug" is
        # gone): replay must report non-reproduction.
        clean = Scenario(variant="RF/AN", scale=8)
        payload = {
            "schema": SCHEMA,
            "invariant": "slot-stored-twice",
            "detail": "synthetic",
            "scenario": clean.to_dict(),
            "original_scenario": clean.to_dict(),
            "original_detail": "synthetic",
            "shrink_runs": 0,
            "replay": "python -m repro.verify replay <this-file>",
        }
        path = tmp_path / "fixed.json"
        write_counterexample(str(path), payload)
        rc = main(["replay", str(path)])
        assert rc == 0
        assert "does NOT reproduce" in capsys.readouterr().out

    def test_replay_rejects_wrong_schema(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        rc = main(["replay", str(path)])
        assert rc == 2
        assert "cannot load" in capsys.readouterr().err

    def test_replay_missing_file_exits_two(self, tmp_path, capsys):
        rc = main(["replay", str(tmp_path / "nope.json")])
        assert rc == 2


class TestShrinker:
    def test_shrink_reduces_and_preserves_the_invariant(self):
        sc = Scenario(plant="over-reserve", variant="RF/AN", scale=12,
                      n_wavefronts=6, max_work_cycles=3_000)
        failure = run_scenario(sc)
        assert not failure.ok
        shrunk_sc, shrunk_out, runs = shrink(failure, budget=40)
        assert runs <= 40
        assert shrunk_out.invariant == failure.invariant
        assert (shrunk_sc.scale, shrunk_sc.n_wavefronts) <= (
            sc.scale, sc.n_wavefronts
        )
        # and the shrunk scenario really does still fail on a fresh run
        fresh = run_scenario(shrunk_sc)
        assert not fresh.ok
        assert fresh.invariant == failure.invariant

    def test_artifact_round_trips_through_loader(self, tmp_path):
        path, failure = _failing_artifact(tmp_path)
        sc, expected = load_counterexample(str(path))
        assert expected == failure.invariant
        assert isinstance(sc, Scenario)

    def test_loader_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope", "scenario": {}}))
        with pytest.raises(ValueError, match="not a"):
            load_counterexample(str(path))
