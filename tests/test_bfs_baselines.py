"""Integration tests for the Rodinia-style and CHAI-style BFS baselines."""

import numpy as np
import pytest

from repro import simt
from repro.bfs import run_chai_bfs, run_persistent_bfs, run_rodinia_bfs
from repro.graphs import (
    CSRGraph,
    complete_binary_tree,
    path_graph,
    roadmap_graph,
    rodinia_graph,
    social_graph,
    star_graph,
)


class TestRodinia:
    def test_correct_on_graph_zoo(self, testgpu):
        for g in (
            path_graph(30),
            star_graph(60),
            complete_binary_tree(5),
            rodinia_graph(400, seed=1),
            roadmap_graph(10, 10, seed=2),
        ):
            run_rodinia_bfs(g, 0, testgpu, verify=True)

    def test_level_count_reported(self, testgpu):
        g = path_graph(12)
        run = run_rodinia_bfs(g, 0, testgpu, verify=True)
        # one launch pair per level (+ final empty check)
        assert run.extra["levels"] >= 12
        assert run.extra["kernel_launches"] == 2 * run.extra["levels"]

    def test_launch_overhead_charged_per_level(self, testgpu):
        """Deep graphs pay per-level launch overhead — Rodinia's weakness
        on roadmaps (§6.4.2)."""
        g = path_graph(50)
        run = run_rodinia_bfs(g, 0, testgpu)
        min_overhead = run.extra["kernel_launches"] * testgpu.kernel_launch_cycles
        assert run.cycles >= min_overhead

    def test_disconnected(self, testgpu):
        g = CSRGraph.from_edges(5, [(0, 1), (3, 4)])
        run = run_rodinia_bfs(g, 0, testgpu, verify=True)
        assert run.costs.tolist() == [0, 1, -1, -1, -1]

    def test_deterministic(self, testgpu):
        g = rodinia_graph(300, seed=9)
        a = run_rodinia_bfs(g, 0, testgpu)
        b = run_rodinia_bfs(g, 0, testgpu)
        assert a.cycles == b.cycles


class TestChai:
    def test_correct_on_graph_zoo(self, testgpu):
        for g in (
            path_graph(30),
            star_graph(60),
            complete_binary_tree(5),
            rodinia_graph(400, seed=3),
            roadmap_graph(10, 10, seed=4),
            social_graph(200, avg_degree=5, seed=5),
        ):
            run_chai_bfs(g, 0, testgpu, verify=True)

    def test_uses_cas_for_output_frontier(self, testgpu):
        g = star_graph(200)  # one giant frontier -> tail contention
        run = run_chai_bfs(g, 0, testgpu)
        assert run.stats.cas_attempts > 0

    def test_level_synchronous(self, testgpu):
        g = path_graph(15)
        run = run_chai_bfs(g, 0, testgpu)
        assert run.extra["levels"] >= 15

    def test_deterministic(self, testgpu):
        g = social_graph(150, avg_degree=4, seed=6)
        a = run_chai_bfs(g, 0, testgpu)
        b = run_chai_bfs(g, 0, testgpu)
        assert a.cycles == b.cycles


class TestComparativeShape:
    """The qualitative outcomes of §6.4 must hold on the simulator."""

    def test_rfan_beats_rodinia_on_deep_graph(self, testgpu):
        """Table 6 / §6.4.2: per-level relaunch buries Rodinia on deep
        inputs; the persistent queue-driven BFS avoids it."""
        g = roadmap_graph(16, 16, seed=7)
        rodinia = run_rodinia_bfs(g, 0, testgpu, verify=True)
        rfan = run_persistent_bfs(g, 0, "RF/AN", testgpu, 8, verify=True)
        assert rfan.cycles < rodinia.cycles

    def test_rfan_beats_chai(self, testgpu):
        """Table 5: RF/AN outperforms the CAS-frontier collaborative BFS
        on road-map-like graphs."""
        g = roadmap_graph(14, 14, seed=8)
        chai = run_chai_bfs(g, 0, testgpu, verify=True)
        rfan = run_persistent_bfs(g, 0, "RF/AN", testgpu, 8, verify=True)
        assert rfan.cycles < chai.cycles

    def test_rodinia_overhead_grows_with_depth_not_size(self, testgpu):
        """Same vertex count, different depth: deeper graph costs Rodinia
        disproportionately more."""
        shallow = star_graph(256)
        deep = path_graph(256)
        r_shallow = run_rodinia_bfs(shallow, 0, testgpu)
        r_deep = run_rodinia_bfs(deep, 0, testgpu)
        assert r_deep.cycles > 5 * r_shallow.cycles
