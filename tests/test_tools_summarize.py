"""Tests for tools/summarize_results.py (the EXPERIMENTS.md helper)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "summarize_results", REPO / "tools" / "summarize_results.py"
)
summarize = importlib.util.module_from_spec(spec)
spec.loader.exec_module(summarize)


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "tab3.json").write_text(json.dumps({
        "cells": {
            "Fiji|Synthetic": {
                "seconds": {"BASE": 0.01, "AN": 0.004, "RF/AN": 0.002},
                "paper": {"BASE": 0.0976, "AN": 0.06777, "RF/AN": 0.00865},
            }
        }
    }))
    (tmp_path / "fig1.json").write_text(json.dumps({
        "workgroups": [1, 4], "cas_failures": [0, 10],
        "cas_attempts": [100, 110],
    }))
    (tmp_path / "tab5.json").write_text(json.dumps({
        "NYR_input": {"speedup": 7.3, "paper": [20.8, 8.08, 2.574]},
    }))
    (tmp_path / "tab6.json").write_text(json.dumps({
        "graph4096|Fiji": {"speedup": 8.8, "paper": [5.93, 0.20, 28.95]},
    }))
    (tmp_path / "fig5.json").write_text(json.dumps({
        "Fiji|Synthetic": {
            "workgroups": [1, 224],
            "queue_atomic_ratio": [80.0, 40.0],
            "atomic_ratio": [2.0, 1.5],
        }
    }))
    (tmp_path / "fig4.json").write_text(json.dumps({
        "Fiji|Synthetic": {
            "workgroups": [1, 224],
            "speedup": {"RF/AN": [1, 200], "AN": [1, 100], "BASE": [1, 10]},
        }
    }))
    return tmp_path


class TestSummarize:
    def test_full_directory(self, results_dir, capsys):
        assert summarize.main(["prog", str(results_dir)]) == 0
        out = capsys.readouterr().out
        assert "Table 3 shape" in out
        assert "Figure 1" in out
        assert "Table 5" in out and "Table 6" in out
        assert "Figure 5" in out and "Figure 4" in out
        # the tab3 ratio math: 0.01/0.002 = 5 measured, 11.28 paper
        assert "11.28" in out
        tab3_line = [l for l in out.splitlines() if "Fiji" in l][0]
        assert " 5 " in tab3_line

    def test_missing_files_tolerated(self, tmp_path, capsys):
        assert summarize.main(["prog", str(tmp_path)]) == 0
        assert "not present" in capsys.readouterr().out

    def test_missing_directory(self, tmp_path, capsys):
        assert summarize.main(["prog", str(tmp_path / "nope")]) == 2


class TestOldFormatGracefulDegrade:
    """Pre-PR2 results files must warn, not crash the whole summary."""

    def test_old_format_payload_warns_and_skips(self, results_dir, capsys):
        # overwrite tab3.json with a pre-stats-era payload: no "cells"
        (results_dir / "tab3.json").write_text(json.dumps({
            "rows": [["Fiji", "Synthetic", 0.01, 0.004, 0.002]],
        }))
        assert summarize.main(["prog", str(results_dir)]) == 0
        captured = capsys.readouterr()
        assert "tab3" in captured.err
        assert "skipped" in captured.err
        # the rest of the directory still renders
        assert "Figure 1" in captured.out
        assert "Table 5" in captured.out

    def test_unparseable_json_warns_and_skips(self, results_dir, capsys):
        (results_dir / "fig1.json").write_text("{not json")
        assert summarize.main(["prog", str(results_dir)]) == 0
        captured = capsys.readouterr()
        assert "not valid JSON" in captured.err
        assert "Table 3 shape" in captured.out

    def test_old_tab3_without_per_variant_stats_renders_no_queue_table(
        self, results_dir, capsys
    ):
        # PR1-era tab3 payloads carry cells but no "stats" key: the main
        # ratio table must render and the queue-counter table is absent.
        assert summarize.main(["prog", str(results_dir)]) == 0
        out = capsys.readouterr().out
        assert "Table 3 shape" in out
        assert "queue counters" not in out
