"""Executable-documentation tests.

The worked example in docs/extending.md and the example scripts must
keep working; these tests run the doc's code verbatim (tree sum) and
smoke-check every example script's structure.
"""

import ast
from pathlib import Path

import numpy as np
import pytest

from repro import simt
from repro.core import SchedulerControl, WorkCycleResult, make_queue, persistent_kernel
from repro.simt import AtomicKind, AtomicRMW, Compute

# the quickstart example simulates a full harness-scale BFS launch —
# multi-second; ride the slow CI shard with the other end-to-end runs.
pytestmark = pytest.mark.slow

REPO = Path(__file__).resolve().parents[1]


class TreeSumWorker:
    """The docs/extending.md worker, verbatim."""

    def __init__(self, n):
        self.n = n

    def make_state(self, ctx):
        return None

    def work_cycle(self, ctx, ws, st):
        wf = ctx.device.wavefront_size
        active = st.has_token
        yield Compute(2)
        counts = np.zeros(wf, dtype=np.int64)
        kids = np.zeros((wf, 2), dtype=np.int64)
        if active.any():
            v = st.token[active]
            acc = AtomicRMW(
                "sum", np.zeros(v.size, dtype=np.int64), AtomicKind.ADD, v
            )
            yield acc
            for j, lane in enumerate(np.flatnonzero(active)):
                for c in (2 * int(v[j]) + 1, 2 * int(v[j]) + 2):
                    if c < self.n:
                        kids[lane, counts[lane]] = c
                        counts[lane] += 1
        return WorkCycleResult(
            completed=active.copy(), new_counts=counts, new_tokens=kids
        )


class TestExtendingDoc:
    @pytest.mark.parametrize("variant", ["BASE", "AN", "RF/AN"])
    def test_tree_sum_worker(self, variant, testgpu):
        n = 1023
        engine = simt.Engine(testgpu)
        engine.memory.alloc("sum", 1)
        queue = make_queue(variant, capacity=4 * n)
        sched = SchedulerControl()
        queue.allocate(engine.memory)
        sched.allocate(engine.memory)
        queue.seed(engine.memory, [0])
        sched.seed(engine.memory, 1)
        engine.launch(persistent_kernel(queue, TreeSumWorker(n), sched), 8)
        assert engine.memory["sum"][0] == n * (n - 1) // 2


class TestExampleScripts:
    EXAMPLES = sorted((REPO / "examples").glob("*.py"))

    def test_at_least_five_examples(self):
        assert len(self.EXAMPLES) >= 5

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=lambda p: p.name
    )
    def test_example_is_wellformed(self, path):
        """Each example parses, has a module docstring with a Run line,
        a main(), and a __main__ guard."""
        tree = ast.parse(path.read_text())
        doc = ast.get_docstring(tree) or ""
        assert "Run:" in doc, path.name
        names = {
            node.name for node in tree.body if isinstance(node, ast.FunctionDef)
        }
        assert "main" in names, path.name
        guards = [
            node
            for node in tree.body
            if isinstance(node, ast.If)
            and isinstance(node.test, ast.Compare)
        ]
        assert guards, f"{path.name} lacks a __main__ guard"

    def test_quickstart_runs_end_to_end(self, capsys):
        import runpy
        import sys

        path = REPO / "examples" / "quickstart.py"
        sys.argv = [str(path)]
        runpy.run_path(str(path), run_name="__main__")
        out = capsys.readouterr().out
        assert "RF/AN vs BASE speedup" in out
