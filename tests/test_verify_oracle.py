"""The invariant oracle: spec-replay checks for the queue family.

Two layers:

* callback-level unit tests drive the oracle directly with synthetic
  event streams, pinning both the violations it must catch and the
  cross-wavefront reporting skew it must *tolerate* (reservations may
  be reported out of order — see the soundness note in
  ``repro.verify.oracle``);
* scenario-level tests run real launches under the oracle: every
  shipping variant verifies clean (with and without adversarial
  schedules), and every planted bug from ``repro.verify.faults`` is
  caught with the invariant its plant advertises.
"""

import numpy as np
import pytest

from repro.core.constants import DNA
from repro.verify.faults import PLANTS
from repro.verify.oracle import InvariantOracle, VerificationError
from repro.verify.runner import _selftest_scenarios
from repro.verify.scenario import ALL_VARIANTS, Scenario, run_scenario


class _StubQueue:
    """Just enough queue surface for a detached oracle."""

    def __init__(self, retry_free=True, circular=False, capacity=16):
        self.prefix = "wq"
        self.capacity = capacity
        self.circular = circular
        self.retry_free = retry_free
        self.variant = "RF/AN" if retry_free else "BASE"
        self.buf_ctrl = "wq_ctrl"
        self.buf_data = "wq_data"


def _oracle(**kw):
    return InvariantOracle(_StubQueue(**kw))


def _expect(invariant, fn):
    with pytest.raises(VerificationError) as exc:
        fn()
    assert exc.value.invariant == invariant


class TestReservationAccounting:
    def test_out_of_order_reservation_reports_are_tolerated(self):
        # the wavefront that reserved [8, 16) may report *before* the
        # one that reserved [0, 8): interval accounting must accept it.
        o = _oracle()
        o.queue_reserve("wq", "publish", 8, 8)
        o.queue_reserve("wq", "publish", 0, 8)
        o.queue_store("wq", np.arange(16), np.arange(100, 116))
        o.queue_reserve("wq", "acquire", 4, 12)
        o.queue_watch("wq", np.arange(4, 16), cycle=0)
        o.queue_reserve("wq", "acquire", 0, 4)
        o.queue_watch("wq", np.arange(0, 4), cycle=0)
        o.queue_deliver("wq", np.arange(16), np.arange(100, 116))
        o.finish(None)  # tiles [0, 16) on both sides, nothing lost

    def test_overlapping_publish_reservations_fail(self):
        o = _oracle()
        o.queue_reserve("wq", "publish", 0, 8)
        _expect(
            "enq-reservation-overlap",
            lambda: o.queue_reserve("wq", "publish", 4, 8),
        )

    def test_overlapping_acquire_reservations_fail(self):
        o = _oracle()
        o.queue_reserve("wq", "acquire", 0, 4)
        _expect(
            "deq-reservation-overlap",
            lambda: o.queue_reserve("wq", "acquire", 3, 2),
        )

    def test_empty_reservation_fails(self):
        o = _oracle()
        _expect("reserve-empty", lambda: o.queue_reserve("wq", "publish", 0, 0))

    def test_reservation_gap_caught_at_quiescence(self):
        # [4, 8) reserved but [0, 4) never was: a lost range.
        o = _oracle()
        o.queue_reserve("wq", "publish", 4, 4)
        _expect("enq-reservation-gap", lambda: o.finish(None))

    def test_other_queue_prefixes_are_ignored(self):
        o = _oracle()
        o.queue_reserve("other", "publish", 0, 0)  # would be reserve-empty
        assert o.events == 0


class TestDequeueOverrun:
    def test_overrun_without_retry_free_fails(self):
        o = _oracle(retry_free=False)
        _expect("deq-overrun", lambda: o.queue_reserve("wq", "acquire", 0, 4))

    def test_sampled_rear_justifies_the_reservation(self):
        # the claiming wavefront sampled Rear=4 earlier in its own
        # program order, so reserving [0, 4) is legitimate even though
        # no publish reservation has been *reported* yet.
        o = _oracle(retry_free=False)
        o.queue_counter("wq", "rear", 0, 4)
        o.queue_reserve("wq", "acquire", 0, 4)

    def test_retry_free_front_may_overrun_rear(self):
        o = _oracle(retry_free=True)
        o.queue_reserve("wq", "acquire", 0, 4)  # hungry lanes park ahead

    def test_front_exceeds_rear_in_consistent_snapshot(self):
        o = _oracle(retry_free=False)
        o.queue_counter("wq", "front", 0, 5)
        _expect(
            "front-exceeds-rear", lambda: o.queue_counter("wq", "rear", 0, 3)
        )

    def test_negative_counter_fails(self):
        o = _oracle()
        _expect(
            "counter-negative", lambda: o.queue_counter("wq", "front", 0, -1)
        )


class TestWatchSet:
    def test_watch_must_match_the_proxy_reservation(self):
        # proxy reserved 4 slots but only parked 3 lanes.
        o = _oracle()
        o.queue_reserve("wq", "acquire", 0, 4)
        _expect(
            "watch-reservation-mismatch",
            lambda: o.queue_watch("wq", [0, 1, 2], cycle=0),
        )

    def test_same_slot_watched_twice_fails(self):
        o = _oracle()
        o.queue_reserve("wq", "acquire", 0, 1)
        o.queue_watch("wq", [0], cycle=0)
        _expect("slot-watched-twice", lambda: o.queue_watch("wq", [0], cycle=1))

    def test_watch_without_reservation_fails(self):
        o = _oracle()
        _expect(
            "watch-unreserved-slot", lambda: o.queue_watch("wq", [9], cycle=0)
        )


class TestStoreAndDeliver:
    def _reserved(self, **kw):
        o = _oracle(**kw)
        o.queue_reserve("wq", "publish", 0, 8)
        o.queue_reserve("wq", "acquire", 0, 8)
        return o

    def test_store_twice_fails(self):
        o = self._reserved()
        o.queue_store("wq", [3], [30])
        _expect("slot-stored-twice", lambda: o.queue_store("wq", [3], [31]))

    def test_store_without_reservation_fails(self):
        o = self._reserved()
        _expect(
            "store-unreserved-slot", lambda: o.queue_store("wq", [12], [1])
        )

    def test_storing_the_sentinel_fails(self):
        o = self._reserved()
        _expect("store-sentinel", lambda: o.queue_store("wq", [0], [DNA]))

    def test_store_beyond_monotonic_capacity_fails(self):
        o = _oracle(capacity=4)
        o.queue_reserve("wq", "publish", 0, 8)
        _expect(
            "store-beyond-capacity", lambda: o.queue_store("wq", [5], [1])
        )

    def test_wrap_overwrite_of_undelivered_slot_fails(self):
        o = _oracle(circular=True, capacity=4)
        o.queue_reserve("wq", "publish", 0, 8)
        o.queue_store("wq", [0, 1, 2, 3], [10, 11, 12, 13])
        # raw slot 4 reuses physical slot 0, whose occupant (raw 0)
        # was never delivered: a wrap-around overwrite.
        _expect("wrap-overwrite", lambda: o.queue_store("wq", [4], [14]))

    def test_wrap_after_delivery_is_legal(self):
        o = _oracle(circular=True, capacity=4)
        o.queue_reserve("wq", "publish", 0, 8)
        o.queue_store("wq", [0, 1, 2, 3], [10, 11, 12, 13])
        o.queue_reserve("wq", "acquire", 0, 1)
        o.queue_deliver("wq", [0], [10])
        o.queue_store("wq", [4], [14])

    def test_deliver_unwritten_slot_fails(self):
        o = self._reserved()
        _expect(
            "deliver-unwritten-slot", lambda: o.queue_deliver("wq", [2], [99])
        )

    def test_delivered_token_must_equal_stored_token(self):
        o = self._reserved()
        o.queue_store("wq", [2], [20])
        _expect("token-corrupted", lambda: o.queue_deliver("wq", [2], [21]))

    def test_deliver_twice_fails(self):
        o = self._reserved()
        o.queue_store("wq", [2], [20])
        o.queue_deliver("wq", [2], [20])
        _expect(
            "slot-delivered-twice", lambda: o.queue_deliver("wq", [2], [20])
        )

    def test_deliver_without_reservation_fails(self):
        o = _oracle()
        o.queue_reserve("wq", "publish", 0, 4)
        o.queue_store("wq", [1], [11])
        _expect(
            "deliver-unreserved-slot", lambda: o.queue_deliver("wq", [1], [11])
        )


class TestQuiescence:
    def test_stored_but_undelivered_token_is_lost(self):
        o = _oracle()
        o.queue_reserve("wq", "publish", 0, 1)
        o.queue_store("wq", [0], [7])
        _expect("token-lost", lambda: o.finish(None))

    def test_reservation_without_store_is_unfilled(self):
        o = _oracle()
        o.queue_reserve("wq", "publish", 0, 2)
        o.queue_store("wq", [0], [7])
        o.queue_reserve("wq", "acquire", 0, 2)
        o.queue_deliver("wq", [0], [7])
        _expect("reservation-unfilled", lambda: o.finish(None))

    def test_host_seed_round_trip_is_clean(self):
        o = _oracle()
        o.note_seed([5, 6])
        o.queue_reserve("wq", "acquire", 0, 2)
        o.queue_deliver("wq", [0, 1], [5, 6])
        o.finish(None)

    def test_register_capacity_mismatch_fails(self):
        o = _oracle(capacity=16)
        _expect(
            "register-mismatch",
            lambda: o.queue_register("wq", 8, "RF/AN"),
        )


# ----------------------------------------------------------------------
# scenario level: real launches under the oracle
# ----------------------------------------------------------------------
class TestCleanScenarios:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_native_order_verifies_clean(self, variant):
        out = run_scenario(Scenario(variant=variant, scale=8))
        assert out.ok, f"{out.invariant}: {out.detail}"
        assert out.events > 0
        assert out.tasks_completed == 8 + 7 + 6 + 3  # sum(v + 1)

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_adversarial_schedule_verifies_clean(self, variant):
        out = run_scenario(Scenario(
            variant=variant, scale=8,
            schedule={"kind": "random", "seed": 3,
                      "hold_prob": 0.15, "burst": 48},
        ))
        assert out.ok, f"{out.invariant}: {out.detail}"

    def test_circular_wraparound_verifies_clean(self):
        out = run_scenario(Scenario(
            variant="RF/AN", scale=24, circular=True, capacity=60,
            schedule={"kind": "random", "seed": 0,
                      "hold_prob": 0.15, "burst": 48},
        ))
        assert out.ok, f"{out.invariant}: {out.detail}"

    def test_expected_queue_full_counts_as_pass(self):
        out = run_scenario(Scenario(
            variant="RF/AN", scale=20, capacity=30, expect_full=True,
        ))
        assert out.ok
        assert "aborted as expected" in out.detail

    def test_missed_queue_full_is_a_finding(self):
        # plenty of capacity, but the scenario *claims* it must fill:
        # completing cleanly is then the failure.
        out = run_scenario(Scenario(
            variant="RF/AN", scale=4, capacity=500, expect_full=True,
        ))
        assert not out.ok
        assert out.invariant == "missed-queue-full"


class TestPlantedBugs:
    @pytest.mark.parametrize(
        "plant",
        [p for p, spec in sorted(PLANTS.items()) if not spec["needs_schedule"]],
    )
    def test_deterministic_plants_are_caught(self, plant):
        # the runner knows which workload/geometry exposes each plant
        # (e.g. the steal plants need fanout bursts on a 2-shard queue)
        spec = PLANTS[plant]
        out = run_scenario(_selftest_scenarios(plant, deep=False)[0])
        assert not out.ok, f"oracle is blind to planted bug {plant}"
        assert out.invariant in spec["invariants"], out.detail

    def test_publication_race_needs_schedule_exploration(self):
        # the valid-before-data plant is invisible in native order ...
        sc = Scenario(plant="valid-before-data", variant="BASE", scale=12,
                      max_work_cycles=3_000)
        assert run_scenario(sc).ok
        # ... and caught once a burst schedule stretches the window
        # between the flag write and the data write (seed pinned from
        # the selftest sweep).
        sc.schedule = {"kind": "random", "seed": 4,
                       "hold_prob": 0.15, "burst": 48}
        out = run_scenario(sc)
        assert not out.ok
        assert out.invariant in PLANTS["valid-before-data"]["invariants"]

    def test_outcome_scenario_round_trips(self):
        sc = Scenario(plant="over-reserve", variant="RF/AN", scale=12,
                      max_work_cycles=3_000)
        out = run_scenario(sc)
        assert not out.ok
        assert Scenario.from_dict(out.scenario) == sc
