"""Unit and property tests for the lane-mask helpers behind arbitrary-n."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simt import ballot, first_active, lane_ids, rank_within, segmented_rank


class TestRankWithin:
    def test_all_set(self):
        ranks, total = rank_within(np.ones(8, dtype=bool))
        assert total == 8
        assert ranks.tolist() == list(range(8))

    def test_none_set(self):
        ranks, total = rank_within(np.zeros(8, dtype=bool))
        assert total == 0
        assert (ranks == 0).all()

    def test_sparse(self):
        mask = np.array([0, 1, 0, 1, 1, 0, 0, 1], dtype=bool)
        ranks, total = rank_within(mask)
        assert total == 4
        assert ranks[mask].tolist() == [0, 1, 2, 3]

    def test_empty_mask(self):
        ranks, total = rank_within(np.zeros(0, dtype=bool))
        assert total == 0
        assert ranks.size == 0

    @given(st.lists(st.booleans(), min_size=1, max_size=64))
    def test_property_ranks_are_dense_prefix(self, bits):
        """Set lanes receive exactly 0..total-1, in lane order."""
        mask = np.array(bits, dtype=bool)
        ranks, total = rank_within(mask)
        assert total == int(mask.sum())
        assert ranks[mask].tolist() == list(range(total))


class TestSegmentedRank:
    def test_counts_prefix(self):
        mask = np.array([1, 0, 1, 1], dtype=bool)
        counts = np.array([3, 9, 2, 1])
        ranks, total = segmented_rank(mask, counts)
        assert total == 6  # 3 + 2 + 1; masked-out lane ignored
        assert ranks[mask].tolist() == [0, 3, 5]

    def test_empty(self):
        ranks, total = segmented_rank(np.zeros(0, dtype=bool), np.zeros(0))
        assert total == 0

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=7)),
            min_size=1,
            max_size=64,
        )
    )
    def test_property_segments_tile_exactly(self, pairs):
        """Per-lane segments [base+rank, base+rank+count) tile [0, total)."""
        mask = np.array([p[0] for p in pairs], dtype=bool)
        counts = np.array([p[1] for p in pairs], dtype=np.int64)
        ranks, total = segmented_rank(mask, counts)
        covered = []
        for i in range(len(pairs)):
            if mask[i]:
                covered.extend(range(int(ranks[i]), int(ranks[i] + counts[i])))
        assert sorted(covered) == list(range(total))


class TestMisc:
    def test_lane_ids(self):
        assert lane_ids(4).tolist() == [0, 1, 2, 3]

    def test_first_active(self):
        assert first_active(np.array([0, 0, 1, 1], dtype=bool)) == 2
        assert first_active(np.zeros(4, dtype=bool)) == -1

    def test_ballot(self):
        assert ballot(np.array([1, 0, 1], dtype=bool)) == 0b101
        assert ballot(np.zeros(3, dtype=bool)) == 0
