"""Tests for the connected-components workload."""

import numpy as np
import pytest

from repro.core import QUEUE_VARIANTS
from repro.graphs import (
    CSRGraph,
    complete_binary_tree,
    path_graph,
    roadmap_graph,
    social_graph,
)
from repro.workloads import reference_components, run_components

ALL_VARIANTS = sorted(QUEUE_VARIANTS)


class TestReference:
    def test_two_components(self):
        g = CSRGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)]).symmetrized()
        assert reference_components(g).tolist() == [0, 0, 0, 3, 3]

    def test_isolated_vertices(self):
        g = CSRGraph.from_edges(3, [])
        assert reference_components(g).tolist() == [0, 1, 2]

    def test_direction_ignored(self):
        # weak connectivity: a directed chain is one component
        g = path_graph(6)
        ref = reference_components(g.symmetrized())
        assert (ref == 0).all()


class TestSimulated:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_multi_component_graph(self, variant, testgpu):
        edges = [(0, 1), (1, 2), (4, 5), (5, 6), (8, 9)]
        g = CSRGraph.from_edges(10, edges, name="multi")
        result = run_components(g, variant, testgpu, 6)
        assert result.n_components == 5  # {0,1,2} {4,5,6} {8,9} {3} {7}
        assert result.labels[2] == 0
        assert result.labels[6] == 4
        assert result.labels[3] == 3

    def test_single_component_grid(self, testgpu):
        g = roadmap_graph(8, 8, seed=1)
        result = run_components(g, "RF/AN", testgpu, 6)
        assert result.n_components == 1
        assert (result.labels == 0).all()

    def test_social_graph(self, testgpu):
        g = social_graph(200, avg_degree=4, seed=2)
        result = run_components(g, "RF/AN", testgpu, 6)
        ref = reference_components(g.symmetrized())
        assert result.n_components == np.unique(ref).size

    def test_tree(self, testgpu):
        g = complete_binary_tree(5)
        result = run_components(g, "AN", testgpu, 4)
        assert result.n_components == 1

    def test_verify_catches_corruption(self, testgpu):
        g = path_graph(8)
        result = run_components(g, "RF/AN", testgpu, 2)
        result.labels[4] = 99
        with pytest.raises(AssertionError, match="vertex 4"):
            result.verify(g)
