"""Property-based integration tests: random workloads, every variant.

Hypothesis generates random graphs and scheduler configurations; every
simulated run must agree exactly with its oracle.  These are the tests
that catch interleaving bugs no hand-written case would find (they are
bounded tightly so the whole module stays under a minute).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import simt
from repro.bfs import run_persistent_bfs
from repro.core import QUEUE_VARIANTS, SchedulerControl, make_queue, persistent_kernel
from repro.graphs import CSRGraph

from test_core_scheduler import CountdownWorker

VARIANTS = sorted(QUEUE_VARIANTS)


def graphs_strategy(max_n=40, max_m=120):
    return st.integers(2, max_n).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=max_m,
            ),
        )
    )


class TestRandomBFS:
    @given(
        args=graphs_strategy(),
        variant=st.sampled_from(VARIANTS),
        n_wf=st.integers(1, 8),
        subtasks=st.integers(1, 6),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_bfs_always_matches_oracle(self, args, variant, n_wf, subtasks):
        n, edges = args
        g = CSRGraph.from_edges(n, edges, name="hyp")
        run_persistent_bfs(
            g, 0, variant, simt.TESTGPU, n_wf,
            subtasks_per_cycle=subtasks, verify=True,
        )


class TestAdaptiveOverflowProperties:
    """Property sweeps over the overflow paths of GROW and SPILL.

    Capacities here are chosen to *force* the adaptive machinery —
    segment recycling, host-ring spills — on every example, and each run
    passes through the full invariant oracle (conservation, no duplicate
    delivery, reservation accounting, spill/grow bookkeeping).
    """

    @given(
        scale=st.integers(6, 24),
        seg_cap=st.sampled_from((4, 8)),
        n_wf=st.integers(1, 6),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_grow_conserves_through_forced_recycling(
        self, scale, seg_cap, n_wf
    ):
        from repro.verify.scenario import Scenario, run_scenario

        # countdown/scale stores ~3*scale tokens through a 3-segment
        # pool: recycling is mandatory for every scale above seg_cap.
        out = run_scenario(Scenario(
            variant="GROW", workload="countdown", scale=scale,
            n_wavefronts=n_wf, capacity=3 * seg_cap,
            seg_cap=seg_cap, pool_segments=3, max_work_cycles=10_000,
        ))
        assert out.ok, f"[{out.invariant}] {out.detail}"
        assert out.delivered_counts

    @given(
        scale=st.sampled_from((31, 63, 127, 255)),
        slack=st.integers(8, 24),
        high=st.integers(4, 12),
        low_frac=st.floats(0.2, 1.0),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_spill_conserves_through_forced_backpressure(
        self, scale, slack, high, low_frac
    ):
        from repro.verify.scenario import Scenario, run_scenario

        # 2 wavefronts = 16 resident lanes on TESTGPU; the ring gets
        # `slack` usable slots beyond them (§4.2), small enough that
        # fanout bursts overflow into the host ring on larger scales.
        lanes = 2 * simt.TESTGPU.wavefront_size
        low = max(1, int(high * low_frac))
        out = run_scenario(Scenario(
            variant="SPILL", workload="fanout", scale=scale,
            n_wavefronts=2, capacity=lanes + slack,
            spill_capacity=2048, high_water=high, low_water=low,
            max_work_cycles=10_000,
        ))
        assert out.ok, f"[{out.invariant}] {out.detail}"
        assert out.delivered_counts

    @given(
        scale=st.integers(10, 24),
        n_wf=st.integers(1, 6),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_grow_memory_stays_bounded(self, scale, n_wf):
        """Bounded steady-state memory: with a 3-segment pool, resident
        segments never exceed the pool and the free-list never holds
        more than 2 idle segments while the run is in flight."""
        from repro.core import GrowQueue, SchedulerControl, persistent_kernel
        from repro.obs.timeline import TimelineProbe
        from repro.simt import engine as simt_engine
        from repro.verify.workloads import build

        worker, seeds, expected = build("countdown", scale)
        probe = TimelineProbe()
        prev = simt_engine.PROBE_FACTORY
        simt_engine.PROBE_FACTORY = lambda: probe
        try:
            eng = simt.Engine(simt.TESTGPU)
            q = GrowQueue(24, seg_cap=8, pool_segments=3)
            sched = SchedulerControl()
            q.allocate(eng.memory)
            sched.allocate(eng.memory)
            q.seed(eng.memory, seeds)
            sched.seed(eng.memory, len(seeds))
            res = eng.launch(
                persistent_kernel(q, worker, sched),
                n_wf, params={"max_work_cycles": 100_000},
            )
        finally:
            simt_engine.PROBE_FACTORY = prev
        assert res.stats.custom["scheduler.tasks_completed"] == expected
        links = probe.segment_links.get("wq", [])
        releases = probe.segment_releases.get("wq", [])
        # same-cycle link+release: count the link first (sort key -d)
        events = sorted(
            [(c, 1) for c, _, _ in links]
            + [(c, -1) for c, _, _ in releases],
            key=lambda e: (e[0], -e[1]),
        )

        def backlog_at(cycle):
            # rear - front from the latest control-word samples at cycle
            depth = {}
            for name in ("rear", "front"):
                pts = probe.counters.get(("wq", name), [])
                depth[name] = max(
                    (v for c, v in pts if c <= cycle), default=0
                )
            return depth["rear"] - depth["front"]

        live = 1  # host-mapped segment 0 is live from seed
        for cycle, d in events:
            live += d
            assert 0 <= live <= 3, "resident segments left the pool bound"
            if live == 0:
                # the free-list only goes fully idle when the queue is
                # drained: while any token is undelivered at most
                # pool-1 = 2 segments sit idle (bounded steady-state
                # memory, not a slow leak of recycled segments).
                assert backlog_at(cycle) <= 0, (
                    "free-list exceeded 2 idle segments while tokens "
                    "were in flight"
                )


class TestRandomCountdown:
    @given(
        seeds=st.lists(st.integers(0, 20), min_size=1, max_size=12),
        variant=st.sampled_from(VARIANTS),
        n_wf=st.integers(1, 8),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_exact_task_accounting(self, seeds, variant, n_wf):
        eng = simt.Engine(simt.TESTGPU)
        q = make_queue(variant, capacity=4096)
        sched = SchedulerControl()
        q.allocate(eng.memory)
        sched.allocate(eng.memory)
        q.seed(eng.memory, seeds)
        sched.seed(eng.memory, len(seeds))
        kern = persistent_kernel(q, CountdownWorker(), sched)
        res = eng.launch(kern, n_wf, params={"max_work_cycles": 100_000})
        expected = sum(v + 1 for v in seeds)
        assert res.stats.custom["scheduler.tasks_completed"] == expected
        assert sched.pending(eng.memory) == 0
