"""Property-based integration tests: random workloads, every variant.

Hypothesis generates random graphs and scheduler configurations; every
simulated run must agree exactly with its oracle.  These are the tests
that catch interleaving bugs no hand-written case would find (they are
bounded tightly so the whole module stays under a minute).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import simt
from repro.bfs import run_persistent_bfs
from repro.core import QUEUE_VARIANTS, SchedulerControl, make_queue, persistent_kernel
from repro.graphs import CSRGraph

from test_core_scheduler import CountdownWorker

VARIANTS = sorted(QUEUE_VARIANTS)


def graphs_strategy(max_n=40, max_m=120):
    return st.integers(2, max_n).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=max_m,
            ),
        )
    )


class TestRandomBFS:
    @given(
        args=graphs_strategy(),
        variant=st.sampled_from(VARIANTS),
        n_wf=st.integers(1, 8),
        subtasks=st.integers(1, 6),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_bfs_always_matches_oracle(self, args, variant, n_wf, subtasks):
        n, edges = args
        g = CSRGraph.from_edges(n, edges, name="hyp")
        run_persistent_bfs(
            g, 0, variant, simt.TESTGPU, n_wf,
            subtasks_per_cycle=subtasks, verify=True,
        )


class TestRandomCountdown:
    @given(
        seeds=st.lists(st.integers(0, 20), min_size=1, max_size=12),
        variant=st.sampled_from(VARIANTS),
        n_wf=st.integers(1, 8),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_exact_task_accounting(self, seeds, variant, n_wf):
        eng = simt.Engine(simt.TESTGPU)
        q = make_queue(variant, capacity=4096)
        sched = SchedulerControl()
        q.allocate(eng.memory)
        sched.allocate(eng.memory)
        q.seed(eng.memory, seeds)
        sched.seed(eng.memory, len(seeds))
        kern = persistent_kernel(q, CountdownWorker(), sched)
        res = eng.launch(kern, n_wf, params={"max_work_cycles": 100_000})
        expected = sum(v + 1 for v in seeds)
        assert res.stats.custom["scheduler.tasks_completed"] == expected
        assert sched.pending(eng.memory) == 0
