"""Coverage for the distributed-queues extension's less-travelled paths.

``tests/test_ext_queues.py`` pins the happy paths (home dequeue,
stealing, seeding); these tests exercise what it leaves dark: the
donation mechanism, constructor/seed validation, circular layouts,
steal-cursor rotation, and the queue-full abort surfacing through the
scheduler.
"""

import numpy as np
import pytest

from repro.core import QueueFull, SchedulerControl, persistent_kernel
from repro.ext import DistributedWorkQueues
from repro.ext.distributed import K_DONATIONS, K_STEALS
from repro.simt import Engine, KernelAbort

from test_core_scheduler import CountdownWorker, FanoutWorker


def run_with_queue(q, worker, seeds, testgpu, n_wf=6):
    eng = Engine(testgpu)
    sched = SchedulerControl()
    q.allocate(eng.memory)
    sched.allocate(eng.memory)
    q.seed(eng.memory, seeds)
    sched.seed(eng.memory, len(seeds))
    kern = persistent_kernel(q, worker, sched)
    res = eng.launch(kern, n_wf, params={"max_work_cycles": 500_000})
    return eng, sched, res


class TestDonation:
    def test_burst_publishes_are_donated(self, testgpu):
        # fanout's binary-tree bursts exceed a threshold of 1 whenever a
        # wavefront publishes two children in one batch; the excess must
        # land on the neighbour queue and be counted.
        q = DistributedWorkQueues(
            capacity=8192, n_queues=3, donate_threshold=1
        )
        eng, sched, res = run_with_queue(
            q, FanoutWorker(1023), [0], testgpu, n_wf=6
        )
        assert res.stats.custom["scheduler.tasks_completed"] == 1023
        assert res.stats.custom[K_DONATIONS] > 0
        assert sched.is_done(eng.memory)

    def test_donation_spreads_load_across_queues(self, testgpu):
        # with a single seeded home queue and no donation, the other
        # queues only fill via stealing; donation must put tokens there
        # directly — observable as rear > 0 on a neighbour queue.
        q = DistributedWorkQueues(
            capacity=8192, n_queues=2, donate_threshold=1
        )
        eng, _, res = run_with_queue(
            q, FanoutWorker(255), [0], testgpu, n_wf=2
        )
        rears = [int(eng.memory[q._ctrl(i)][1]) for i in range(2)]
        assert min(rears) > 0
        assert res.stats.custom[K_DONATIONS] > 0

    def test_single_queue_never_donates(self, testgpu):
        q = DistributedWorkQueues(
            capacity=8192, n_queues=1, donate_threshold=1
        )
        _, _, res = run_with_queue(q, FanoutWorker(255), [0], testgpu)
        assert res.stats.custom.get(K_DONATIONS, 0) == 0

    def test_invalid_donate_threshold(self):
        with pytest.raises(ValueError):
            DistributedWorkQueues(capacity=8, n_queues=2, donate_threshold=0)
        with pytest.raises(ValueError):
            DistributedWorkQueues(capacity=8, n_queues=2, donate_threshold=-3)


class TestValidationAndLayout:
    def test_seed_overflow_raises_queue_full(self, testgpu):
        eng = Engine(testgpu)
        q = DistributedWorkQueues(capacity=2, n_queues=2)
        q.allocate(eng.memory)
        with pytest.raises(QueueFull):
            q.seed(eng.memory, [1, 2, 3, 4, 5])

    def test_seed_rejects_negative_tokens(self, testgpu):
        eng = Engine(testgpu)
        q = DistributedWorkQueues(capacity=8, n_queues=2)
        q.allocate(eng.memory)
        with pytest.raises(ValueError):
            q.seed(eng.memory, [1, -2])

    def test_circular_layout_completes_countdown(self, testgpu):
        # tight circular rings force physical-slot wrap-around in every
        # queue; the run must still complete exactly.
        q = DistributedWorkQueues(capacity=48, n_queues=2, circular=True)
        eng, sched, res = run_with_queue(
            q, CountdownWorker(), [12, 9, 5], testgpu
        )
        assert res.stats.custom["scheduler.tasks_completed"] == 12 + 9 + 5 + 3
        assert sched.is_done(eng.memory)

    def test_queue_full_aborts_launch(self, testgpu):
        # undersized non-circular queues must surface the full condition
        # as a kernel abort, not silently drop tokens.
        q = DistributedWorkQueues(capacity=6, n_queues=2)
        eng = Engine(testgpu)
        sched = SchedulerControl()
        q.allocate(eng.memory)
        sched.allocate(eng.memory)
        q.seed(eng.memory, [30, 30, 30, 30])
        sched.seed(eng.memory, 4)
        kern = persistent_kernel(q, CountdownWorker(), sched)
        with pytest.raises(KernelAbort):
            eng.launch(kern, 6, params={"max_work_cycles": 500_000})


class TestStealRotation:
    def test_steal_attempts_cover_multiple_victims(self, testgpu):
        # with 4 queues and only queue 0 seeded, a starved wavefront's
        # round-robin cursor must rotate across victims rather than
        # re-probing one; stealing more than once proves rotation since
        # each work cycle probes a different victim.
        q = DistributedWorkQueues(capacity=8192, n_queues=4)
        _, _, res = run_with_queue(
            q, FanoutWorker(2047), [0], testgpu, n_wf=8
        )
        assert res.stats.custom["scheduler.tasks_completed"] == 2047
        assert res.stats.custom[K_STEALS] > res.stats.custom.get(
            "queue.steal_hits", 0
        )
