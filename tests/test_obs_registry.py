"""Tests for the run-level metrics registry (``repro.obs.registry``)."""

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSession,
)
from repro.simt import Compute, Engine, TESTGPU
from repro.simt.stats import SimStats


class TestPrimitives:
    def test_counter_increments_and_rejects_negative(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3.5)
        g.set(1.0)
        assert g.value == 1.0

    def test_histogram_buckets_and_summary(self):
        h = Histogram(buckets=(1, 10, 100))
        for v in (0, 1, 5, 50, 5000):
            h.observe(v)
        assert h.count == 5
        assert h.sum == 5056
        assert h.min == 0
        assert h.max == 5000
        assert h.mean == pytest.approx(5056 / 5)

    def test_histogram_merge_requires_equal_buckets(self):
        a = Histogram(buckets=(1, 2))
        b = Histogram(buckets=(1, 3))
        with pytest.raises(ValueError):
            a._merge(b._data())


class TestRegistry:
    def test_labelled_series_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("sim.cycles", device="a").inc(10)
        reg.counter("sim.cycles", device="b").inc(32)
        assert reg.value("sim.cycles", device="a") == 10
        assert reg.value("sim.cycles", device="b") == 32
        assert reg.total("sim.cycles") == 42

    def test_kind_conflict_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c", device="d").inc(7)
        reg.gauge("g").set(2.5)
        reg.histogram("h").observe(12)
        clone = MetricsRegistry.from_snapshot(reg.snapshot())
        assert clone.snapshot() == reg.snapshot()

    def test_merge_adds_counters_across_processes(self):
        # simulates the parent merging two workers' snapshots
        parent = MetricsRegistry()
        for _ in range(2):
            worker = MetricsRegistry()
            worker.counter("sim.launches").inc(3)
            worker.histogram("lat").observe(100)
            parent.merge(worker.snapshot())
        assert parent.total("sim.launches") == 6
        (hist,) = [m for n, _, m in parent.series() if n == "lat"]
        assert hist.count == 2

    def test_merge_rejects_unknown_schema(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.merge({"schema": 999, "metrics": []})

    def test_ingest_simstats_namespaces(self):
        stats = SimStats()
        stats.issued_ops = 11
        stats.sim_cycles = 400
        stats.custom["queue.enqueued_tokens"] = 5
        reg = MetricsRegistry()
        reg.ingest_simstats(stats, device="testgpu")
        assert reg.value("sim.issued_ops", device="testgpu") == 11
        assert reg.value("queue.enqueued_tokens", device="testgpu") == 5
        assert reg.value("sim.launches", device="testgpu") == 1

    def test_scalars_is_flat_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a", device="x").inc(1)
        reg.counter("a", device="y").inc(1)
        assert reg.scalars() == {"a": 2, "b": 2}


def _tiny_kernel(ctx):
    yield Compute(3)


class TestMetricsSession:
    def test_session_collects_launches_and_restores_sink(self):
        import repro.simt.engine as engine_mod

        assert engine_mod.METRICS_SINK is None
        with MetricsSession() as session:
            Engine(TESTGPU).launch(_tiny_kernel, 2)
            Engine(TESTGPU).launch(_tiny_kernel, 2)
        assert engine_mod.METRICS_SINK is None
        reg = session.registry
        assert reg.total("sim.launches") == 2
        assert reg.value("sim.launches", device="TestGPU") == 2
        assert reg.total("sim.cycles") > 0

    def test_session_not_reentrant(self):
        with MetricsSession() as session:
            with pytest.raises(RuntimeError):
                session.__enter__()

    def test_exit_without_enter_raises(self):
        with pytest.raises(RuntimeError):
            MetricsSession().__exit__(None, None, None)
