"""Unit tests for the per-wavefront scheduler state."""

import numpy as np
import pytest

from repro.core import DNA, WavefrontQueueState


class TestWavefrontQueueState:
    def test_initial(self):
        st = WavefrontQueueState(8)
        assert st.needs_work.all()
        assert not st.has_token.any()
        assert (st.slot == -1).all()
        assert (st.token == DNA).all()
        assert st.wavefront_size == 8

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            WavefrontQueueState(0)

    def test_grant_and_complete(self):
        st = WavefrontQueueState(8)
        lanes = np.array([1, 4])
        st.grant(lanes, np.array([10, 20]))
        assert st.has_token[1] and st.has_token[4]
        assert not st.needs_work[1]
        assert st.token[4] == 20
        st.check_invariants()

        st.complete(np.array([1]))
        assert not st.has_token[1]
        assert st.needs_work[1]
        assert st.has_token[4]
        st.check_invariants()

    def test_hungry_mask_excludes_watchers(self):
        st = WavefrontQueueState(4)
        st.slot[2] = 7  # lane 2 is parked on a slot
        hungry = st.hungry_mask()
        assert hungry.tolist() == [True, True, False, True]

    def test_invariant_violation_detected(self):
        st = WavefrontQueueState(4)
        st.has_token[0] = True  # needs_work still set -> inconsistent
        with pytest.raises(AssertionError):
            st.check_invariants()
