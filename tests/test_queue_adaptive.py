"""Unit tests for the adaptive-capacity queue variants (GROW / SPILL).

Direct engine runs — no verify-layer scaffolding — pinning the two
overflow strategies of :mod:`repro.core.queue_adaptive`:

* GROW chains pool segments under a single never-retried CAS and
  recycles drained ones, so a buffer of ``pool_segments * seg_cap``
  resident slots serves a workload whose total store demand is far
  larger;
* SPILL dead-drops overflowing publishes into a host-side ring and the
  drain pump re-injects them below the low-water mark, so a small ring
  completes workloads that would abort every fixed-capacity variant.

Both must deliver exact task accounting (the countdown/fanout workloads
have closed-form totals) and expose their protocol traffic through the
``queue.grow.*`` / ``queue.spill.*`` stat counters and the timeline
probe streams consumed by :mod:`repro.obs.metrics`.
"""

import numpy as np
import pytest

from repro import simt
from repro.core import GrowQueue, SchedulerControl, SpillQueue, persistent_kernel
from repro.core.queue_adaptive import (
    K_GROW_LINKS,
    K_GROW_PEAK_LIVE,
    K_GROW_RELEASES,
    K_SPILL_PUMP_RUNS,
    K_SPILL_REINJECTED,
    K_SPILL_TOKENS,
)
from repro.verify.workloads import build

DONE = "scheduler.tasks_completed"


def _run(queue, workload, scale, n_wf, max_work_cycles=100_000):
    worker, seeds, expected = build(workload, scale)
    eng = simt.Engine(simt.TESTGPU)
    sched = SchedulerControl()
    queue.allocate(eng.memory)
    sched.allocate(eng.memory)
    queue.seed(eng.memory, seeds)
    sched.seed(eng.memory, len(seeds))
    kern = persistent_kernel(queue, worker, sched)
    res = eng.launch(kern, n_wf, params={"max_work_cycles": max_work_cycles})
    return res, expected, sched, eng


class TestGrowQueue:
    def test_rejects_circular(self):
        with pytest.raises(ValueError, match="circular"):
            GrowQueue(64, circular=True)

    def test_geometry_defaults(self):
        q = GrowQueue(48, seg_cap=8, pool_segments=6)
        assert q.capacity == 48
        assert q.growable
        assert q.logical_capacity == q.max_segments * q.seg_cap
        assert q.logical_capacity >= 48

    def test_completes_workload_larger_than_resident_buffer(self):
        # countdown/20 stores 60 tokens total through 24 resident slots:
        # impossible without linking fresh segments and recycling
        # drained ones.
        q = GrowQueue(24, seg_cap=8, pool_segments=3)
        res, expected, sched, eng = _run(q, "countdown", 20, 6)
        assert res.stats.custom[DONE] == expected
        assert sched.pending(eng.memory) == 0
        assert res.stats.custom[K_GROW_LINKS] >= 1
        assert res.stats.custom[K_GROW_RELEASES] >= 1
        assert res.stats.custom[K_GROW_PEAK_LIVE] <= 3

    def test_pool_exhaustion_aborts_with_queue_full(self):
        # fanout/63 keeps ~63 tokens resident at its widest level; a
        # 3 x 8 pool cannot hold that and must abort gracefully, naming
        # the pool — not wedge or deliver short.
        q = GrowQueue(24, seg_cap=8, pool_segments=3)
        with pytest.raises(simt.KernelAbort, match="segment pool exhausted"):
            _run(q, "fanout", 63, 6)

    def test_deterministic_across_reruns(self):
        outs = []
        for _ in range(2):
            q = GrowQueue(24, seg_cap=8, pool_segments=3)
            res, expected, _, _ = _run(q, "countdown", 20, 6)
            outs.append(
                (res.cycles, res.stats.custom[DONE],
                 res.stats.custom[K_GROW_LINKS],
                 res.stats.custom[K_GROW_RELEASES])
            )
        assert outs[0] == outs[1]


class TestSpillQueue:
    def test_forces_circular_and_validates_watermarks(self):
        q = SpillQueue(24)
        assert q.circular and q.spillable
        with pytest.raises(ValueError, match="low_water"):
            SpillQueue(24, high_water=10, low_water=20)
        with pytest.raises(ValueError, match="low_water"):
            SpillQueue(24, high_water=30, low_water=2)

    def test_overflow_spills_and_reinjects_everything(self):
        # fanout/255 through a 24-slot ring with 16 resident lanes:
        # bursts past the high-water mark must dead-drop to the host
        # ring and every spilled token must come back via the pump.
        q = SpillQueue(24, spill_capacity=1024, high_water=10, low_water=6)
        res, expected, sched, eng = _run(q, "fanout", 255, 2)
        assert res.stats.custom[DONE] == expected
        assert sched.pending(eng.memory) == 0
        assert res.stats.custom[K_SPILL_TOKENS] > 0
        assert (
            res.stats.custom[K_SPILL_REINJECTED]
            == res.stats.custom[K_SPILL_TOKENS]
        )
        assert res.stats.custom[K_SPILL_PUMP_RUNS] >= 1

    def test_no_spill_when_ring_is_roomy(self):
        q = SpillQueue(256, spill_capacity=1024)
        res, expected, _, _ = _run(q, "fanout", 63, 2)
        assert res.stats.custom[DONE] == expected
        assert res.stats.custom.get(K_SPILL_TOKENS, 0) == 0

    def test_deterministic_across_reruns(self):
        outs = []
        for _ in range(2):
            q = SpillQueue(
                24, spill_capacity=1024, high_water=10, low_water=6
            )
            res, expected, _, _ = _run(q, "fanout", 255, 2)
            outs.append(
                (res.cycles, res.stats.custom[DONE],
                 res.stats.custom[K_SPILL_TOKENS])
            )
        assert outs[0] == outs[1]


class TestAdaptiveObservability:
    """The probe streams and metrics sections the advisor feeds on."""

    def test_grow_metrics_sections(self):
        from repro.obs import ProfileSession

        with ProfileSession(bins=16) as session:
            q = GrowQueue(24, seg_cap=8, pool_segments=3)
            _run(q, "countdown", 20, 6)
        m = session.launches[-1]["metrics"]
        wq = m["queues"]["wq"]
        assert wq["fill_hist"] is not None
        assert wq["fill_hist"]["samples"] > 0
        grow = wq["grow"]
        assert grow["segment_links"] >= 1
        assert grow["segment_releases"] >= 1
        # bounded steady-state memory: resident segments never exceed
        # the pool (host segment 0 + device-linked pool segments).
        assert grow["peak_linked_segments"] <= 3
        assert m["wavefront_size"] == simt.TESTGPU.wavefront_size

    def test_spill_metrics_sections(self):
        from repro.obs import ProfileSession

        with ProfileSession(bins=16) as session:
            q = SpillQueue(
                24, spill_capacity=1024, high_water=10, low_water=6
            )
            _run(q, "fanout", 255, 2)
        m = session.launches[-1]["metrics"]
        spill = m["queues"]["wq"]["spill"]
        assert spill["spilled"] > 0
        assert spill["reinjected"] == spill["spilled"]
        assert spill["peak_overflow_depth"] >= 1
        # conservation in the step series: the overflow ring drains to
        # empty by the end of the run.
        assert spill["overflow_depth"][-1] == 0

    def test_timeline_probe_streams(self):
        from repro.obs.timeline import TimelineProbe

        from repro.simt import engine as simt_engine

        probe = TimelineProbe()
        prev = simt_engine.PROBE_FACTORY
        simt_engine.PROBE_FACTORY = lambda: probe
        try:
            q = GrowQueue(24, seg_cap=8, pool_segments=3)
            _run(q, "countdown", 20, 6)
        finally:
            simt_engine.PROBE_FACTORY = prev
        links = probe.segment_links.get("wq", [])
        releases = probe.segment_releases.get("wq", [])
        assert links and releases
        # a segment is only recycled after it was linked: cumulative
        # releases never outrun cumulative links (+1 for the host-mapped
        # segment 0, which seeds the logical space without a link event).
        events = sorted(
            [(c, 1) for c, _, _ in links] + [(c, -1) for c, _, _ in releases]
        )
        live = 1
        for _, d in events:
            live += d
            assert live >= 0
            assert live <= 3  # never more resident than the pool
