"""Round-trip tests for the three graph file formats."""

import io

import numpy as np
import pytest

from repro.graphs import (
    CSRGraph,
    load_dimacs_gr,
    load_rodinia,
    load_snap_edgelist,
    rodinia_graph,
    save_dimacs_gr,
    save_rodinia,
    save_snap_edgelist,
)


def sample_graph():
    return CSRGraph.from_edges(
        5, [(0, 1), (0, 2), (1, 3), (3, 4), (4, 0)], name="sample"
    )


class TestDimacs:
    def test_roundtrip(self):
        g = sample_graph()
        buf = io.StringIO()
        save_dimacs_gr(g, buf, comment="test graph")
        buf.seek(0)
        g2 = load_dimacs_gr(buf)
        assert g2.n_vertices == g.n_vertices
        assert sorted(g2.iter_edges()) == sorted(g.iter_edges())

    def test_parse_real_format(self):
        text = """c 9th DIMACS Implementation Challenge
c sample
p sp 3 2
a 1 2 804
a 2 3 102
"""
        g = load_dimacs_gr(io.StringIO(text))
        assert g.n_vertices == 3
        assert sorted(g.iter_edges()) == [(0, 1), (1, 2)]

    def test_missing_problem_line(self):
        with pytest.raises(ValueError, match="problem"):
            load_dimacs_gr(io.StringIO("a 1 2 3\n"))

    def test_bad_arc_line(self):
        with pytest.raises(ValueError, match="arc"):
            load_dimacs_gr(io.StringIO("p sp 2 1\na 1\n"))

    def test_blank_lines_tolerated(self):
        g = load_dimacs_gr(io.StringIO("p sp 2 1\n\na 1 2 1\n\n"))
        assert g.n_edges == 1


class TestSnap:
    def test_roundtrip(self):
        g = sample_graph()
        buf = io.StringIO()
        save_snap_edgelist(g, buf, comment="sample")
        buf.seek(0)
        g2 = load_snap_edgelist(buf)
        assert sorted(g2.iter_edges()) == sorted(g.iter_edges())

    def test_id_compaction(self):
        """SNAP files use arbitrary ids; loader compacts to 0..n-1."""
        text = "# comment\n100\t200\n200\t300\n"
        g = load_snap_edgelist(io.StringIO(text))
        assert g.n_vertices == 3
        assert sorted(g.iter_edges()) == [(0, 1), (1, 2)]

    def test_bad_line(self):
        with pytest.raises(ValueError):
            load_snap_edgelist(io.StringIO("42\n"))

    def test_empty_file(self):
        g = load_snap_edgelist(io.StringIO("# nothing\n"))
        assert g.n_edges == 0


class TestRodinia:
    def test_roundtrip(self):
        g = rodinia_graph(64, seed=1)
        buf = io.StringIO()
        save_rodinia(g, buf, source=3)
        buf.seek(0)
        g2, src = load_rodinia(buf)
        assert src == 3
        assert g2.n_vertices == g.n_vertices
        assert np.array_equal(g2.offsets, g.offsets)
        assert np.array_equal(g2.targets, g.targets)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            load_rodinia(io.StringIO("5\n0 2\n"))

    def test_degree_sum_mismatch_rejected(self):
        # 1 vertex claiming 2 edges but edge count says 1
        with pytest.raises(ValueError):
            load_rodinia(io.StringIO("1\n0 2\n0\n1\n0 1\n"))
