"""Tests for the observability layer (repro.obs).

Covers the recording probe, metric reduction, Perfetto export, and
process-wide session attachment.  The perturbation guarantee itself
(profiled == unprofiled, bit for bit) is pinned in
``tests/test_simt_determinism.py``.
"""

import json

import numpy as np
import pytest

from repro.bfs.persistent import run_persistent_bfs
from repro.graphs import roadmap_graph
from repro.obs import (
    ProfileSession,
    TimelineProbe,
    compute_metrics,
    summarize,
    to_perfetto,
    write_trace,
)
from repro.simt import TESTGPU


@pytest.fixture(scope="module")
def bfs_probe():
    """One profiled RF/AN BFS on the test GPU, shared across tests."""
    g = roadmap_graph(12, 12, seed=3)
    probe = TimelineProbe()
    run = run_persistent_bfs(g, 0, "RF/AN", TESTGPU, 4, verify=True, probe=probe)
    return probe, run


class TestTimelineProbe:
    def test_launch_envelope(self, bfs_probe):
        probe, run = bfs_probe
        assert probe.device is TESTGPU
        assert probe.cycles == run.cycles
        assert probe.stats is run.stats
        assert probe.n_wavefronts == 4 * TESTGPU.max_wavefronts_per_cu or probe.n_wavefronts > 0

    def test_issue_stream_is_time_ordered_and_complete(self, bfs_probe):
        probe, run = bfs_probe
        cycles = [i[0] for i in probe.issues]
        assert cycles == sorted(cycles)
        assert len(probe.issues) == run.stats.issued_ops
        assert all(end >= c for c, _, _, _, end, _ in probe.issues)

    def test_exits_one_per_wavefront(self, bfs_probe):
        probe, _ = bfs_probe
        assert len(probe.exits) == probe.n_wavefronts
        assert len({wf for _, wf in probe.exits}) == probe.n_wavefronts

    def test_atomics_recorded_with_failures_and_addresses(self, bfs_probe):
        probe, run = bfs_probe
        assert probe.atomics
        total_failures = sum(a[5] for a in probe.atomics)
        assert total_failures == run.stats.cas_failures
        # scalar control-word atomics carry their concrete address
        ctrl = [a for a in probe.atomics if a[1].endswith(".ctrl")]
        assert ctrl and all(a[6] >= 0 for a in ctrl)

    def test_queue_registration_and_waits(self, bfs_probe):
        probe, _ = bfs_probe
        assert "wq" in probe.queues
        capacity, variant = probe.queues["wq"]
        assert variant == "RF/AN" and capacity > 0
        waits = probe.waits["wq"]
        assert waits and all(w >= 0 for w in waits)
        # every granted token came off a watched slot plus the host seed
        granted = probe.stats.custom.get("queue.dequeued_tokens", 0)
        assert len(waits) == granted

    def test_proxy_amortization_recorded(self, bfs_probe):
        probe, _ = bfs_probe
        acq = probe.proxy[("wq", "acquire")]
        assert acq and all(n >= 1 for n in acq)
        assert sum(acq) == probe.stats.custom.get("queue.dequeue_requests", 0)

    def test_parallelism_series_is_consistent(self, bfs_probe):
        probe, _ = bfs_probe
        vals = [v for _, v in probe.parallelism]
        assert vals and min(vals) >= 0
        assert max(vals) <= probe.n_wavefronts * TESTGPU.wavefront_size
        assert vals[-1] == 0  # all tokens drained at termination

    def test_truncation_cap(self):
        g = roadmap_graph(8, 8, seed=1)
        probe = TimelineProbe(max_events=100)
        run_persistent_bfs(g, 0, "RF/AN", TESTGPU, 2, verify=False, probe=probe)
        assert probe.truncated
        assert len(probe.issues) == 100
        # queue streams keep recording past the cap
        assert probe.waits["wq"]

    def test_invalid_max_events(self):
        with pytest.raises(ValueError):
            TimelineProbe(max_events=0)


class TestMetrics:
    def test_summarize(self):
        assert summarize([]) is None
        s = summarize([1, 2, 3, 4])
        assert s["count"] == 4
        assert s["min"] == 1 and s["max"] == 4 and s["mean"] == 2.5

    def test_shape_and_json_round_trip(self, bfs_probe):
        probe, _ = bfs_probe
        m = compute_metrics(probe, bins=24)
        assert m["bins"] == 24
        assert len(m["engine"]["occupancy"]) == 24
        assert m["bins"] * m["bin_cycles"] >= m["cycles"]
        json.loads(json.dumps(m))  # plain data, no numpy scalars

    def test_occupancy_bounded_and_consistent(self, bfs_probe):
        probe, run = bfs_probe
        m = compute_metrics(probe, bins=24)
        occ = m["engine"]["occupancy"]
        assert all(0.0 <= v <= 1.0 for v in occ)
        # binned issue counts cover every recorded issue exactly once
        assert sum(m["engine"]["issues_per_bin"]) == len(probe.issues)
        assert sum(m["engine"]["op_mix"].values()) == run.stats.issued_ops

    def test_queue_metrics(self, bfs_probe):
        probe, _ = bfs_probe
        m = compute_metrics(probe, bins=24)
        q = m["queues"]["wq"]
        assert q["variant"] == "RF/AN"
        assert q["dna_wait"]["count"] == len(probe.waits["wq"])
        assert 0 < q["fill_frac"] <= 1.0
        assert q["max_raw_index"] <= q["capacity"]
        assert q["proxy"]["acquire"]["mean"] >= 1.0

    def test_atomics_metrics(self, bfs_probe):
        probe, _ = bfs_probe
        m = compute_metrics(probe, bins=24)
        a = m["atomics"]
        assert sum(b["batches"] for b in a["by_buf"].values()) == len(probe.atomics)
        assert all(0.0 <= v <= 1.0 for v in a["busy_frac"])
        assert a["hot_addrs"]  # control words are hot by construction

    def test_single_bin_degenerate_case(self, bfs_probe):
        probe, _ = bfs_probe
        m = compute_metrics(probe, bins=1)
        assert len(m["engine"]["occupancy"]) == 1
        assert sum(m["engine"]["issues_per_bin"]) == len(probe.issues)


class TestPerfetto:
    def test_trace_structure(self, bfs_probe):
        probe, _ = bfs_probe
        doc = to_perfetto(probe)
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "C", "i"} <= phases
        names = {e["name"] for e in events if e["ph"] == "M"}
        assert "process_name" in names and "thread_name" in names
        assert doc["otherData"]["sim_cycles"] == probe.cycles

    def test_all_timestamps_in_range(self, bfs_probe):
        probe, _ = bfs_probe
        for e in to_perfetto(probe)["traceEvents"]:
            if "ts" in e:
                assert 0 <= e["ts"] <= probe.cycles
            if "dur" in e:
                assert e["dur"] >= 1

    def test_counter_and_instant_tracks(self, bfs_probe):
        probe, _ = bfs_probe
        events = to_perfetto(probe)["traceEvents"]
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert "wq.front" in counters and "wq.rear" in counters
        assert "wq.depth" in counters
        exits = [e for e in events if e["ph"] == "i" and e["name"] == "exit"]
        assert len(exits) == len(probe.exits)

    def test_write_trace_is_loadable(self, bfs_probe, tmp_path):
        probe, _ = bfs_probe
        path = tmp_path / "trace.json"
        write_trace(probe, path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_empty_probe_exports_metadata_only(self):
        # a probe that never saw a launch must still export cleanly
        doc = to_perfetto(TimelineProbe())
        assert all(e["ph"] == "M" for e in doc["traceEvents"])
        assert doc["otherData"]["sim_cycles"] == 0
        assert doc["otherData"]["truncated"] is False

    def test_truncated_timeline_is_flagged_and_exportable(self):
        g = roadmap_graph(8, 8, seed=1)
        probe = TimelineProbe(max_events=100)
        run_persistent_bfs(g, 0, "RF/AN", TESTGPU, 2, verify=False,
                           probe=probe)
        doc = to_perfetto(probe)
        assert doc["otherData"]["truncated"] is True
        assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) > 0

    def test_zero_duration_spans_clamp_to_one_microsecond(self, bfs_probe):
        # synthetic zero/negative-duration issue spans and an atomic
        # batch ending at its own start: every exported slice keeps
        # dur >= 1 so Perfetto renders it, and a wake at or before the
        # blocking issue produces no stall span at all.
        from repro.simt.engine import _K_COMPUTE, _K_READ

        probe, _ = bfs_probe
        synth = TimelineProbe()
        synth.device = probe.device
        synth.cycles = 100
        synth.n_wavefronts = 1
        synth.issues.append((5, 0, 0, _K_COMPUTE, 5, 0))   # zero-dur op
        synth.issues.append((7, 0, 0, _K_READ, 7, 1))      # blocking, 0-dur
        synth.wakes.append((7, 0))                         # wake <= issue
        synth.atomics.append((9, "buf.ctrl", "add", 1, 9, 0, 3))
        doc = to_perfetto(synth)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices and all(e["dur"] >= 1 for e in slices)
        assert not [e for e in slices if e["name"].startswith("stall:")]

    def test_flow_arrows_only_from_blame_probes(self, bfs_probe):
        # a plain TimelineProbe trace carries no blame flows...
        probe, _ = bfs_probe
        events = to_perfetto(probe)["traceEvents"]
        assert not [e for e in events if e.get("cat") == "blame"]
        # ...a BlameProbe recording of the same workload does, with
        # matched s/f pairs pointing at distinct wavefront tracks.
        from repro.obs import BlameProbe

        g = roadmap_graph(12, 12, seed=3)
        bprobe = BlameProbe()
        run_persistent_bfs(g, 0, "RF/AN", TESTGPU, 4, verify=False,
                           probe=bprobe)
        flows = [
            e for e in to_perfetto(bprobe)["traceEvents"]
            if e.get("cat") == "blame"
        ]
        assert flows
        by_id = {}
        for e in flows:
            by_id.setdefault(e["id"], []).append(e)
        for pair in by_id.values():
            assert sorted(e["ph"] for e in pair) == ["f", "s"]
            s = next(e for e in pair if e["ph"] == "s")
            f = next(e for e in pair if e["ph"] == "f")
            assert s["ts"] <= f["ts"]
            assert {e["name"] for e in pair} <= {"token_store", "done_flag"}


class TestProfileSession:
    def test_collects_every_launch(self):
        g = roadmap_graph(8, 8, seed=2)
        with ProfileSession(bins=8) as session:
            run_persistent_bfs(g, 0, "BASE", TESTGPU, 2, verify=False)
            run_persistent_bfs(g, 0, "RF/AN", TESTGPU, 2, verify=False)
        assert len(session.launches) == 2
        variants = [
            next(iter(e["metrics"]["queues"].values()))["variant"]
            for e in session.launches
        ]
        assert variants == ["BASE", "RF/AN"]
        assert session.total_cycles() == sum(
            e["metrics"]["cycles"] for e in session.launches
        )
        assert session.last is session.launches[-1]

    def test_keep_timelines_flag(self):
        g = roadmap_graph(8, 8, seed=2)
        with ProfileSession(keep_timelines=False) as session:
            run_persistent_bfs(g, 0, "RF/AN", TESTGPU, 2, verify=False)
        assert "timeline" not in session.launches[0]

    def test_not_reentrant(self):
        session = ProfileSession()
        with session:
            with pytest.raises(RuntimeError):
                session.__enter__()

    def test_explicit_probe_wins_over_factory(self):
        g = roadmap_graph(8, 8, seed=2)
        mine = TimelineProbe()
        with ProfileSession() as session:
            run_persistent_bfs(
                g, 0, "RF/AN", TESTGPU, 2, verify=False, probe=mine
            )
        assert mine.cycles > 0
        assert session.launches == []  # factory never consulted
