"""Tests for the harness configuration, paper-data constants, and CLI."""

import pytest

from repro.graphs import paper_dataset_names
from repro.harness import EXPERIMENTS, HarnessConfig
from repro.harness.cli import main
from repro.harness.paper_data import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6,
)
from repro.simt import FIJI, SPECTRE


class TestHarnessConfig:
    def test_paper_device_geometry(self):
        cfg = HarnessConfig()
        configs = dict((d.name, wg) for d, wg in cfg.device_configs())
        assert configs == {"Fiji": 224, "Spectre": 32}

    def test_quick_device_geometry_shrinks(self):
        cfg = HarnessConfig(quick=True)
        for dev, wg in cfg.device_configs():
            assert wg <= 56

    def test_wg_sweep_bounded_by_paper_top(self):
        cfg = HarnessConfig()
        fiji = cfg.wg_sweep(FIJI)
        spectre = cfg.wg_sweep(SPECTRE)
        assert fiji[0] == 1 and fiji[-1] == 224
        assert spectre[-1] == 32
        assert all(a < b for a, b in zip(fiji, fiji[1:]))

    def test_build_scales(self):
        small = HarnessConfig(quick=True).build("Synthetic")
        big = HarnessConfig().build("Synthetic")
        assert small.n_vertices < big.n_vertices

    def test_extra_factor(self):
        cfg = HarnessConfig()
        a = cfg.build("USA-road-d.NY", extra_factor=0.25)
        b = cfg.build("USA-road-d.NY")
        assert a.n_vertices < b.n_vertices


class TestPaperData:
    def test_table3_complete(self):
        names = set(paper_dataset_names())
        for dev in ("Fiji", "Spectre"):
            covered = {d for (g, d) in PAPER_TABLE3 if g == dev}
            assert covered == names

    def test_table4_consistent_with_table3(self):
        """Table 4 is Table 3's BASE/variant ratio; the transcriptions
        must agree within rounding."""
        for key, cell in PAPER_TABLE4.items():
            t3 = PAPER_TABLE3[key]
            for variant in ("AN", "RF/AN"):
                derived = 100.0 * t3["BASE"] / t3[variant]
                assert derived == pytest.approx(cell[variant], rel=0.01), key

    def test_table5_speedups_consistent(self):
        for name, (chai, rfan, speedup) in PAPER_TABLE5.items():
            assert chai / rfan == pytest.approx(speedup, rel=0.01), name

    def test_table6_speedups_consistent(self):
        for key, (rod, rfan, speedup) in PAPER_TABLE6.items():
            assert rod / rfan == pytest.approx(speedup, rel=0.01), key


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for exp in EXPERIMENTS:
            assert exp in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "tab3" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["tabZZ"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_and_saves(self, capsys, tmp_path):
        rc = main(["tab1", "--quick", "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "tab1.txt").exists()
        assert (tmp_path / "tab1.json").exists()
        assert "Table 1" in capsys.readouterr().out
