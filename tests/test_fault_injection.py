"""Failure-injection tests: the system must fail loudly, never silently.

Each test corrupts device state or configuration mid-experiment and
checks that the corresponding guard fires with a diagnosable error —
the behaviours a user will hit first when extending the library.
"""

import numpy as np
import pytest

from repro import simt
from repro.bfs import run_persistent_bfs
from repro.bfs.common import BUF_COSTS, alloc_graph_buffers
from repro.core import (
    DNA,
    QueueFull,
    SchedulerControl,
    WavefrontQueueState,
    make_queue,
    persistent_kernel,
)
from repro.graphs import path_graph, star_graph
from repro.simt import (
    Compute,
    Engine,
    KernelAbort,
    MemRead,
    MemoryFault,
    SimulationTimeout,
)

from test_core_scheduler import CountdownWorker


class TestMemoryFaults:
    def test_out_of_bounds_read_faults(self, testgpu):
        eng = Engine(testgpu)
        eng.memory.alloc("b", 4)

        def kernel(ctx):
            yield MemRead("b", 99)

        with pytest.raises(MemoryFault, match="out of bounds"):
            eng.launch(kernel, 1)

    def test_unknown_buffer_faults(self, testgpu):
        eng = Engine(testgpu)

        def kernel(ctx):
            yield MemRead("ghost", 0)

        with pytest.raises(MemoryFault, match="ghost"):
            eng.launch(kernel, 1)


class TestQueueCorruption:
    def test_clobbered_sentinel_triggers_queue_full(self, testgpu):
        """A non-sentinel value where the enqueuer expects `dna` is the
        paper's queue-full detection (Listing 3, line 25)."""
        eng = Engine(testgpu)
        q = make_queue("RF/AN", capacity=64)
        q.allocate(eng.memory)
        # corrupt a slot the first publish will target
        eng.memory[q.buf_data][0] = 12345

        def kernel(ctx):
            st = WavefrontQueueState(ctx.device.wavefront_size)
            counts = np.zeros(ctx.device.wavefront_size, dtype=np.int64)
            counts[0] = 1
            toks = np.zeros((ctx.device.wavefront_size, 1), dtype=np.int64)
            yield from q.publish(ctx, st, counts, toks)

        with pytest.raises(KernelAbort, match="data-not-arrived"):
            eng.launch(kernel, 1)

    def test_pending_undercount_cannot_look_successful(self, testgpu):
        """Seeding fewer in-flight tasks than tokens must fail loudly:
        either a racing decrement drives the counter negative (the
        scheduler raises), or the done flag fires early and the run
        visibly completes fewer tasks than the workload contains —
        never a clean-looking full run."""
        eng = Engine(testgpu)
        q = make_queue("RF/AN", capacity=128)
        sched = SchedulerControl()
        q.allocate(eng.memory)
        sched.allocate(eng.memory)
        q.seed(eng.memory, [3, 3, 3])
        sched.seed(eng.memory, 1)  # lie: 3 tokens, 1 counted
        kern = persistent_kernel(q, CountdownWorker(), sched)
        expected_tasks = (3 + 1) * 3
        try:
            res = eng.launch(kern, 2, params={"max_work_cycles": 10_000})
        except RuntimeError as exc:
            assert "negative" in str(exc)
        else:
            done = res.stats.custom.get("scheduler.tasks_completed", 0)
            assert done < expected_tasks

    def test_stuck_termination_hits_watchdog(self, testgpu):
        """Overcounting leaves pending > 0 forever; the engine watchdog
        (rather than a silent hang) reports it."""
        eng = Engine(testgpu)
        q = make_queue("RF/AN", capacity=128)
        sched = SchedulerControl()
        q.allocate(eng.memory)
        sched.allocate(eng.memory)
        q.seed(eng.memory, [1])
        sched.seed(eng.memory, 2)  # one phantom task
        kern = persistent_kernel(q, CountdownWorker(), sched)
        with pytest.raises(SimulationTimeout):
            eng.launch(kern, 2, max_cycles=500_000)


class TestCapacityPressure:
    @pytest.mark.parametrize("variant", ["BASE", "AN", "RF/AN"])
    def test_every_variant_aborts_clean_on_overflow(self, variant, testgpu):
        g = star_graph(500)
        with pytest.raises(QueueFull):
            run_persistent_bfs(
                g, 0, variant, testgpu, 4, capacity=8, grow_on_full=False
            )

    def test_costs_intact_after_grow_retry(self, testgpu):
        """The §4.4 regrow path must restart cleanly: final costs are
        correct even though earlier attempts aborted mid-flight."""
        g = star_graph(300)
        run = run_persistent_bfs(
            g, 0, "RF/AN", testgpu, 4, capacity=16, grow_on_full=True
        )
        run.verify(g, 0)


class TestHostCorruptionVisibility:
    def test_cost_corruption_caught_by_verify(self, testgpu):
        g = path_graph(16)
        run = run_persistent_bfs(g, 0, "AN", testgpu, 2)
        run.costs[7] = 0
        with pytest.raises(AssertionError, match="vertex 7"):
            run.verify(g, 0)


class TestOracleCatchesInjectedQueueFaults:
    """Faults injected into the queue protocol itself (repro.verify).

    The planted queues corrupt specific protocol steps — the arbitrary-n
    proxy reservation while it is in flight, the store leg of a publish
    reservation, the DNA-restore that makes wrap-around safe — and the
    invariant oracle must convict each one with a diagnosable invariant,
    not a downstream hang or silent wrong answer.
    """

    def test_fault_during_inflight_proxy_reservation(self):
        """The proxy AFAs Front by n+1 but parks only n lanes: an
        in-flight arbitrary-n reservation that claims more than the
        active mask.  The oracle matches the watch set against the
        reservation the proxy announced."""
        from repro.verify.faults import PLANTS
        from repro.verify.scenario import Scenario, run_scenario

        out = run_scenario(Scenario(
            plant="over-reserve", variant="RF/AN", scale=12,
            max_work_cycles=3_000,
        ))
        assert not out.ok
        assert out.invariant == "watch-reservation-mismatch"
        assert out.invariant in PLANTS["over-reserve"]["invariants"]

    def test_fault_in_the_store_leg_of_a_publish_reservation(self):
        """A lane's token store is dropped after its slot was reserved:
        at quiescence the reservation is unfilled (or, if a consumer got
        there first, the token is lost)."""
        from repro.verify.faults import PLANTS
        from repro.verify.scenario import Scenario, run_scenario

        out = run_scenario(Scenario(
            plant="lost-store", variant="RF/AN", scale=12,
            max_work_cycles=3_000,
        ))
        assert not out.ok
        assert out.invariant in PLANTS["lost-store"]["invariants"]

    def test_fault_during_wraparound_dna_restore(self):
        """Skipping the DNA restore on acquire breaks the invariant that
        makes circular reuse safe: once Rear wraps, a producer either
        sees the stale token (spurious queue-full) or the oracle sees a
        physical slot reused before its occupant was delivered."""
        from repro.verify.faults import PLANTS
        from repro.verify.scenario import Scenario, run_scenario

        out = run_scenario(Scenario(
            plant="skip-dna-restore", variant="RF/AN", workload="countdown",
            scale=20, circular=True, capacity=56, max_work_cycles=3_000,
        ))
        assert not out.ok
        assert out.invariant in PLANTS["skip-dna-restore"]["invariants"]

    def test_crash_between_segment_link_and_store_publish(self):
        """GROW's hand-off window: a producer wins the segment-link CAS
        but dies before its store lands in the freshly linked segment.
        The planted queue drops exactly that store — the slot stays DNA
        forever, and the oracle must convict the unfilled reservation
        (or the lost token, if a consumer parked on the slot) rather
        than let the run wedge silently."""
        from repro.verify.faults import PLANTS
        from repro.verify.scenario import Scenario, run_scenario

        spec = PLANTS["grow-link-lost-task"]
        out = run_scenario(Scenario(
            plant="grow-link-lost-task", variant="GROW",
            workload="countdown", scale=12, capacity=48,
            seg_cap=spec["kwargs"]["seg_cap"],
            pool_segments=spec["kwargs"]["pool_segments"],
            max_work_cycles=3_000,
        ))
        assert not out.ok
        assert out.invariant in spec["invariants"]

    def test_crash_between_spill_write_and_ring_head_advance(self):
        """SPILL's pump window: entries are read from the overflow ring
        and re-published, but the crash lands before the ring head
        advances past them.  The next pump run re-reads the same
        entries and re-announces tokens that were only spilled once —
        the oracle's spill ledger convicts the duplicate reinject."""
        from repro.verify.faults import PLANTS
        from repro.verify.scenario import Scenario, run_scenario

        spec = PLANTS["spill-reinject-double-deliver"]
        out = run_scenario(Scenario(
            plant="spill-reinject-double-deliver", variant="SPILL",
            workload="fanout", scale=255, n_wavefronts=2, capacity=24,
            spill_capacity=spec["kwargs"]["spill_capacity"],
            high_water=spec["kwargs"]["high_water"],
            low_water=spec["kwargs"]["low_water"],
            max_work_cycles=3_000,
        ))
        assert not out.ok
        assert out.invariant == "reinject-unspilled"
        assert out.invariant in spec["invariants"]

    @pytest.mark.parametrize("variant", ["GROW", "SPILL"])
    def test_real_adaptive_queues_acquitted_under_plant_configs(
        self, variant
    ):
        """The oracle must convict the plants *because of* the injected
        fault, not because the configurations are inherently doomed:
        the genuine queues pass clean under the identical geometry."""
        from repro.verify.scenario import Scenario, run_scenario

        if variant == "GROW":
            sc = Scenario(
                variant="GROW", workload="countdown", scale=12,
                capacity=48, seg_cap=8, pool_segments=6,
                max_work_cycles=3_000,
            )
        else:
            sc = Scenario(
                variant="SPILL", workload="fanout", scale=255,
                n_wavefronts=2, capacity=24, spill_capacity=1024,
                high_water=10, low_water=6, max_work_cycles=3_000,
            )
        out = run_scenario(sc)
        assert out.ok, f"[{out.invariant}] {out.detail}"
        assert out.delivered_counts

    def test_publication_order_fault_needs_an_adversarial_schedule(self):
        """Writing the valid flag before the data word is only visible
        when a schedule stretches the window between the two stores —
        the case that justifies schedule exploration (seed pinned from
        the selftest sweep)."""
        from repro.verify.faults import PLANTS
        from repro.verify.scenario import Scenario, run_scenario

        sc = Scenario(plant="valid-before-data", variant="BASE", scale=12,
                      max_work_cycles=3_000)
        assert run_scenario(sc).ok  # invisible in native order
        sc.schedule = {"kind": "random", "seed": 4,
                       "hold_prob": 0.15, "burst": 48}
        out = run_scenario(sc)
        assert not out.ok
        assert out.invariant in PLANTS["valid-before-data"]["invariants"]
