"""Unit tests for device specifications."""

import pytest

from repro import simt
from repro.simt.device import paper_workgroups


class TestDeviceSpec:
    def test_fiji_matches_paper(self):
        # §5.4: Fiji has 56 CUs; 224 workgroups of 64 threads = 14,336.
        assert simt.FIJI.n_cus == 56
        assert simt.FIJI.wavefront_size == 64
        assert paper_workgroups(simt.FIJI) == 224
        assert paper_workgroups(simt.FIJI) * 64 == 14_336

    def test_spectre_matches_paper(self):
        # §5.4: Spectre has 8 CUs; 32 workgroups = 2,048 threads.
        assert simt.SPECTRE.n_cus == 8
        assert paper_workgroups(simt.SPECTRE) == 32
        assert paper_workgroups(simt.SPECTRE) * 64 == 2_048

    def test_residency_accommodates_paper_launch(self):
        # 4 workgroups per CU must be resident for zero-cost switching.
        for dev in (simt.FIJI, simt.SPECTRE):
            assert paper_workgroups(dev) <= dev.max_resident_wavefronts

    def test_seconds_conversion(self):
        dev = simt.DeviceSpec(name="x", n_cus=1, clock_hz=2.0e9)
        assert dev.seconds(2_000_000_000) == pytest.approx(1.0)

    def test_with_override(self):
        dev = simt.FIJI.with_(n_cus=4)
        assert dev.n_cus == 4
        assert dev.name == simt.FIJI.name
        assert simt.FIJI.n_cus == 56  # original untouched

    def test_max_threads(self):
        dev = simt.TESTGPU
        assert dev.max_threads == dev.n_cus * dev.max_wavefronts_per_cu * dev.wavefront_size

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_cus": 0},
            {"n_cus": -1},
            {"wavefront_size": 0},
            {"max_wavefronts_per_cu": 0},
            {"clock_hz": 0.0},
            {"issue_cycles": -1},
            {"mem_latency": -5},
            {"l2_latency": -1},
            {"atomic_service": -2},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        base = dict(name="bad", n_cus=1)
        base.update(kwargs)
        with pytest.raises(ValueError):
            simt.DeviceSpec(**base)
