"""Tests for ``python -m repro.harness profile`` and ``--profile``."""

import json

import pytest

from repro.harness.cli import main
from repro.harness.experiments import EXPERIMENTS, ExperimentResult
from repro.harness.profile import profile_main


class TestProfileSubcommand:
    def test_bfs_smoke_writes_trace_and_metrics(self, tmp_path, capsys):
        rc = main(
            [
                "profile", "bfs",
                "--device", "testgpu",
                "--quick",
                "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "utilization over simulated time" in out
        assert "queue contention" in out

        trace = json.loads((tmp_path / "trace.json").read_text())
        assert trace["traceEvents"]
        assert trace["otherData"]["sim_cycles"] > 0

        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["workload"].startswith("bfs/")
        launch = metrics["launches"][-1]
        assert launch["device"] == "TestGPU"
        assert launch["queues"]  # the work queue registered itself

    def test_variant_flag_reaches_the_queue(self, tmp_path):
        rc = profile_main(
            [
                "bfs",
                "--device", "testgpu",
                "--variant", "BASE",
                "--quick",
                "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        variants = {
            q["variant"]
            for launch in metrics["launches"]
            for q in launch["queues"].values()
        }
        assert variants == {"BASE"}

    def test_nqueens_workload(self, tmp_path):
        rc = profile_main(
            [
                "nqueens",
                "--device", "testgpu",
                "--quick",
                "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["workload"].startswith("nqueens/")

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            profile_main(["mandelbrot"])


def _tiny_run(exp_id):
    """A stand-in experiment: one tiny BFS per queue variant."""
    from repro.bfs.persistent import run_persistent_bfs
    from repro.graphs import roadmap_graph
    from repro.simt import TESTGPU

    g = roadmap_graph(8, 8, seed=5)
    cycles = {}
    for variant in ("BASE", "RF/AN"):
        run = run_persistent_bfs(g, 0, variant, TESTGPU, 2, verify=False)
        cycles[variant] = run.cycles
    return ExperimentResult(
        exp_id, "tiny", f"cycles={cycles}", {"cycles": cycles}
    )


def _tiny_experiment(cfg):
    """A stand-in experiment: one tiny BFS per queue variant."""
    return _tiny_run("tinyexp")


def _tiny_experiment2(cfg):
    """A second stand-in experiment (distinct id for parallel runs)."""
    return _tiny_run("tinyexp2")


class TestProfileFlag:
    def test_profile_flag_keeps_report_and_adds_metrics(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setitem(EXPERIMENTS, "tinyexp", _tiny_experiment)

        rc = main(["tinyexp", "--out", str(tmp_path / "plain")])
        assert rc == 0
        plain = capsys.readouterr().out

        rc = main(["tinyexp", "--profile", "--out", str(tmp_path / "prof")])
        assert rc == 0
        profiled = capsys.readouterr().out

        # the report itself is unchanged by profiling
        plain_txt = (tmp_path / "plain" / "tinyexp.txt").read_text()
        prof_txt = (tmp_path / "prof" / "tinyexp.txt").read_text()
        assert plain_txt == prof_txt
        assert "cycles=" in plain and "cycles=" in profiled

        payload = json.loads(
            (tmp_path / "prof" / "tinyexp.profile.json").read_text()
        )
        assert len(payload["launches"]) == 2  # one per variant
        assert all(l["cycles"] > 0 for l in payload["launches"])
        assert not (tmp_path / "plain" / "tinyexp.profile.json").exists()

    def test_probe_factory_restored_after_profile_run(self, monkeypatch):
        import repro.simt.engine as engine_mod

        monkeypatch.setitem(EXPERIMENTS, "tinyexp", _tiny_experiment)
        assert engine_mod.PROBE_FACTORY is None
        assert main(["tinyexp", "--profile"]) == 0
        assert engine_mod.PROBE_FACTORY is None

    def test_profile_single_experiment_with_jobs_stays_quiet(
        self, monkeypatch, capsys
    ):
        # one experiment: nothing to fan out, no caching to lose.
        monkeypatch.setitem(EXPERIMENTS, "tinyexp", _tiny_experiment)
        assert main(["tinyexp", "--profile", "--jobs", "4"]) == 0
        err = capsys.readouterr().err
        assert "--profile" not in err

    def test_profile_composes_with_jobs(self, monkeypatch, capsys, tmp_path):
        # sessions open inside each worker; per-experiment metrics come
        # back attributed, and the warning explains the lost run cache.
        monkeypatch.setitem(EXPERIMENTS, "tinyexp", _tiny_experiment)
        monkeypatch.setitem(EXPERIMENTS, "tinyexp2", _tiny_experiment2)

        from repro.harness.config import HarnessConfig
        from repro.harness.experiments import run_many_profiled

        cfg = HarnessConfig(quick=True, verify=False)
        results, profiles = run_many_profiled(
            cfg, ["tinyexp", "tinyexp2"], jobs=2
        )
        assert [r.exp_id for r in results] == ["tinyexp", "tinyexp2"]
        for exp_id in ("tinyexp", "tinyexp2"):
            launches = profiles[exp_id]
            assert len(launches) == 2  # one per variant
            assert all(l["cycles"] > 0 for l in launches)

        # profiled parallel results match the sequential profiled path
        seq_results, seq_profiles = run_many_profiled(
            cfg, ["tinyexp", "tinyexp2"], jobs=1
        )
        assert [r.text for r in seq_results] == [r.text for r in results]
        assert seq_profiles == profiles


class TestProfileSessionEdgeCases:
    def test_double_attach_raises(self):
        from repro.obs import ProfileSession

        with ProfileSession() as session:
            with pytest.raises(RuntimeError):
                session.__enter__()

    def test_detach_without_attach_raises_and_preserves_factory(self):
        import repro.simt.engine as engine_mod
        from repro.obs import ProfileSession

        # an installed factory must survive a stray __exit__: restoring
        # from a never-entered session used to clobber it to None.
        with ProfileSession() as active:
            installed = engine_mod.PROBE_FACTORY
            assert installed is not None
            with pytest.raises(RuntimeError):
                ProfileSession().__exit__(None, None, None)
            assert engine_mod.PROBE_FACTORY is installed
        assert engine_mod.PROBE_FACTORY is None

    def test_session_reusable_after_clean_exit(self):
        import repro.simt.engine as engine_mod
        from repro.obs import ProfileSession

        session = ProfileSession()
        for _ in range(2):
            with session:
                assert engine_mod.PROBE_FACTORY is not None
            assert engine_mod.PROBE_FACTORY is None
