"""Tests for the process-parallel experiment driver (``--jobs N``).

The contract: worker count is a wall-clock knob only.  ``run_many`` with
any ``jobs`` value returns the experiments in requested order with
byte-identical reports, because every experiment re-simulates from the
same deterministic :class:`HarnessConfig`.
"""

import json

import pytest

from repro.harness import HarnessConfig
from repro.harness.cli import main
from repro.harness.experiments import plan_groups, run_many
from repro.harness.results import ExperimentResult


class TestPlanGroups:
    def test_singletons_preserve_order(self):
        # one overlapping experiment alone stays a singleton: there is
        # nothing for it to share a run cache with.
        assert plan_groups(["fig1", "tab1"]) == [["fig1"], ["tab1"]]

    def test_tab3_tab4_share_a_group(self):
        # tab4 derives from tab3's runs, and fig4's sweep covers tab3's
        # cells; splitting them across workers would re-simulate the
        # shared cells once per worker.  fig4 leads so its sweep
        # populates the group's run cache.
        assert plan_groups(["tab1", "tab3", "fig4", "tab4"]) == [
            ["tab1"], ["fig4", "tab3", "tab4"],
        ]

    def test_overlapping_sweeps_chunk_together(self):
        assert plan_groups(["fig1", "tab5", "fig5", "fig4"]) == [
            ["fig4", "fig1", "fig5"], ["tab5"],
        ]

    def test_tab4_alone_is_its_own_group(self):
        assert plan_groups(["tab4"]) == [["tab4"]]

    def test_all_ids_covered_exactly_once(self):
        ids = ["fig1", "tab3", "tab4", "tab5"]
        flat = [e for g in plan_groups(ids) for e in g]
        assert sorted(flat) == sorted(ids)


@pytest.fixture(scope="module")
def quick_cfg():
    return HarnessConfig(quick=True)


def _payload(results):
    """The exact bytes a --out directory would contain."""
    return {
        r.exp_id: (r.text, json.dumps(r.data, sort_keys=True, default=str))
        for r in results
    }


class TestRunMany:
    def test_sequential_and_parallel_reports_identical(self, quick_cfg):
        ids = ["tab1", "tab2"]
        seq = run_many(quick_cfg, ids, jobs=1)
        par = run_many(quick_cfg, ids, jobs=2)
        assert [r.exp_id for r in seq] == ids
        assert [r.exp_id for r in par] == ids
        assert _payload(seq) == _payload(par)

    def test_results_return_in_requested_order(self, quick_cfg):
        results = run_many(quick_cfg, ["tab2", "tab1"], jobs=2)
        assert [r.exp_id for r in results] == ["tab2", "tab1"]

    def test_elapsed_is_recorded_but_not_serialized(self, quick_cfg, tmp_path):
        (result,) = run_many(quick_cfg, ["tab1"], jobs=1)
        assert result.elapsed > 0
        path = result.save(tmp_path)
        assert "elapsed" not in path.read_text()

    def test_oversubscribed_jobs_clamp_to_group_count(self, quick_cfg):
        results = run_many(quick_cfg, ["tab1"], jobs=64)
        assert [r.exp_id for r in results] == ["tab1"]

    def test_parallel_simulation_reports_identical(self, quick_cfg):
        # a non-trivial config: two groups that each run real BFS
        # simulations (CHAI + Rodinia baselines and RF/AN cells), so a
        # worker-count-dependent divergence anywhere in the engine or
        # the run cache would surface as differing report bytes.
        ids = ["tab5", "tab6"]
        seq = run_many(quick_cfg, ids, jobs=1)
        par = run_many(quick_cfg, ids, jobs=2)
        assert _payload(seq) == _payload(par)


class TestCliJobs:
    def test_jobs_flag_produces_identical_artifacts(self, tmp_path, capsys):
        out1 = tmp_path / "j1"
        out2 = tmp_path / "j2"
        assert main(["tab1", "--quick", "--jobs", "1",
                     "--out", str(out1)]) == 0
        assert main(["tab1", "--quick", "--jobs", "2",
                     "--out", str(out2)]) == 0
        capsys.readouterr()
        for suffix in ("txt", "json"):
            a = (out1 / f"tab1.{suffix}").read_text()
            b = (out2 / f"tab1.{suffix}").read_text()
            assert a == b
