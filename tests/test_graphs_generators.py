"""Tests that the dataset generators reproduce the properties the paper's
evaluation depends on (category shapes of §5.2, Tables 1-2, Figure 3)."""

import numpy as np
import pytest

from repro.graphs import (
    bfs_levels,
    complete_binary_tree,
    eccentricity,
    level_profile,
    path_graph,
    reachable_count,
    roadmap_graph,
    rodinia_graph,
    social_graph,
    star_graph,
    synthetic_saturating,
)


class TestSyntheticSaturating:
    def test_level_structure_matches_paper(self):
        """Growth by 4x per level for 8 levels, then a constant plateau —
        §5.2's description of Figure 3a."""
        g = synthetic_saturating(200_000, fanout=4, plateau_width=4096)
        prof = level_profile(g, 0)
        assert prof[0] == 1
        for k in range(1, 7):
            assert prof[k] == 4 ** k
        plateau = prof[7:-1]
        assert (plateau == 4096).all()

    def test_fully_connected_from_root(self):
        g = synthetic_saturating(5000, plateau_width=256)
        assert reachable_count(g, 0) == 5000

    def test_every_internal_vertex_has_fanout_edges(self):
        g = synthetic_saturating(1000, fanout=4, plateau_width=64)
        deg = g.degree()
        prof = level_profile(g, 0)
        n_leaves = int(prof[-1])
        internal = deg[: g.n_vertices - n_leaves]
        assert (internal == 4).all()
        assert (deg[g.n_vertices - n_leaves :] == 0).all()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            synthetic_saturating(0)
        with pytest.raises(ValueError):
            synthetic_saturating(10, fanout=0)
        with pytest.raises(ValueError):
            synthetic_saturating(10, plateau_width=0)

    def test_deterministic(self):
        a = synthetic_saturating(1000, plateau_width=64)
        b = synthetic_saturating(1000, plateau_width=64)
        assert np.array_equal(a.targets, b.targets)


class TestSocialGraph:
    def test_shape_heavy_fanout_shallow_depth(self):
        """Social graphs: large skewed fanout, not very deep (§5.2)."""
        g = social_graph(4000, avg_degree=30, seed=1)
        s = g.degree_stats()
        assert s.max > 8 * s.avg  # heavy tail
        assert s.std > s.avg  # large std, as in Table 1
        src = int(np.argmax(g.degree()))
        assert eccentricity(g, src) <= 6  # shallow

    def test_avg_degree_roughly_controlled(self):
        g = social_graph(5000, avg_degree=20, seed=2)
        # symmetrization doubles edges; dedup removes a few
        assert 20 <= g.degree_stats().avg <= 48

    def test_deterministic_given_seed(self):
        a = social_graph(500, avg_degree=8, seed=7)
        b = social_graph(500, avg_degree=8, seed=7)
        assert np.array_equal(a.targets, b.targets)
        c = social_graph(500, avg_degree=8, seed=8)
        assert not np.array_equal(a.targets, c.targets) or a.n_edges != c.n_edges

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            social_graph(0, 5)
        with pytest.raises(ValueError):
            social_graph(10, 0)
        with pytest.raises(ValueError):
            social_graph(10, 5, exponent=1.0)


class TestRoadmapGraph:
    def test_degree_stats_in_table2_envelope(self):
        """Table 2: roadmaps have min>=1, max<=9, avg in [2.4, 2.8]."""
        g = roadmap_graph(80, 80, seed=3)
        s = g.degree_stats()
        assert s.min >= 1
        assert s.max <= 9
        assert 2.2 <= s.avg <= 3.0

    def test_connected_and_deep(self):
        g = roadmap_graph(40, 40, seed=4)
        assert reachable_count(g, 0) == 1600
        # BFS from a corner is O(width + height) deep
        assert eccentricity(g, 0) >= 40

    def test_undirected(self):
        g = roadmap_graph(10, 10, seed=5)
        edges = set(map(tuple, g.to_edges().tolist()))
        assert all((b, a) in edges for a, b in edges)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            roadmap_graph(1, 10)
        with pytest.raises(ValueError):
            roadmap_graph(10, 10, vertical_fraction=1.5)
        with pytest.raises(ValueError):
            roadmap_graph(10, 10, diagonal_fraction=-0.1)


class TestRodiniaGraph:
    def test_shallow_as_rodinia_inputs(self):
        """§6.4.2: none of Rodinia's datasets exceeds 11 BFS levels."""
        g = rodinia_graph(4096, avg_degree=6, seed=6)
        assert eccentricity(g, 0) <= 11

    def test_avg_degree(self):
        g = rodinia_graph(20_000, avg_degree=6, seed=7)
        assert 5.0 <= g.degree_stats().avg <= 7.0

    def test_mostly_reachable(self):
        g = rodinia_graph(4096, seed=8)
        assert reachable_count(g, 0) >= 4000

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            rodinia_graph(0)
        with pytest.raises(ValueError):
            rodinia_graph(10, avg_degree=1)


class TestToyGraphs:
    def test_path(self):
        g = path_graph(4)
        assert g.n_edges == 3
        assert bfs_levels(g, 0).tolist() == [0, 1, 2, 3]

    def test_star(self):
        g = star_graph(5)
        assert g.degree(0) == 4

    def test_btree(self):
        g = complete_binary_tree(2)
        assert g.n_vertices == 7
        assert g.n_edges == 6

    def test_invalid(self):
        with pytest.raises(ValueError):
            path_graph(0)
        with pytest.raises(ValueError):
            star_graph(0)
        with pytest.raises(ValueError):
            complete_binary_tree(-1)
