"""Tests for the utilization analysis layer."""

import numpy as np
import pytest

from repro import simt
from repro.simt import AtomicKind, AtomicRMW, Compute, Engine, MemRead, analyze
from repro.simt.analysis import utilization_report


def run(kernel, n_wf, testgpu, bufs=()):
    eng = Engine(testgpu)
    for name, size in bufs:
        eng.memory.alloc(name, size)
    return eng.launch(kernel, n_wf)


class TestAnalyze:
    def test_pure_compute_fully_utilizes_one_cu(self, testgpu):
        def kernel(ctx):
            yield Compute(1000)

        res = run(kernel, 1, testgpu)
        u = analyze(res)
        # one CU busy the whole time, the other idle
        assert u.issue_utilization == pytest.approx(1 / testgpu.n_cus)
        assert u.compute_fraction == pytest.approx(1 / testgpu.n_cus)
        assert u.atomic_pressure == 0.0
        assert u.cas_failure_rate == 0.0

    def test_memory_bound_low_issue_utilization(self, testgpu):
        def kernel(ctx):
            for _ in range(20):
                yield MemRead("b", 0)

        res = run(kernel, 1, testgpu, bufs=[("b", 1024)])
        u = analyze(res)
        assert u.issue_utilization < 0.2
        assert u.transactions_per_op == pytest.approx(1.0)

    def test_atomic_pressure_reflects_contention(self, testgpu):
        def contended(ctx):
            n = ctx.device.wavefront_size
            for _ in range(10):
                yield AtomicRMW("c", np.zeros(n, dtype=np.int64),
                                AtomicKind.ADD, 1)

        def proxy(ctx):
            for _ in range(10):
                yield AtomicRMW("c", 0, AtomicKind.ADD, 1)

        pressures = {}
        for name, k in (("contended", contended), ("proxy", proxy)):
            res = run(k, 4, testgpu, bufs=[("c", 1)])
            pressures[name] = analyze(res).atomic_pressure
        # per-lane bursts keep the unit saturated the whole run; the
        # proxy version leaves it idle between round trips.
        assert pressures["contended"] > 0.9
        assert pressures["contended"] > pressures["proxy"]

    def test_cas_failure_rate(self, testgpu):
        def kernel(ctx):
            n = ctx.device.wavefront_size
            yield AtomicRMW(
                "c", np.zeros(n, dtype=np.int64), AtomicKind.CAS,
                np.zeros(n, dtype=np.int64), ctx.lane + 1,
            )

        res = run(kernel, 2, testgpu, bufs=[("c", 1)])
        assert analyze(res).cas_failure_rate > 0


class TestReport:
    def test_report_renders_all_rows(self, testgpu):
        def kernel(ctx):
            yield Compute(10)

        results = {
            "a": run(kernel, 1, testgpu),
            "b": run(kernel, 2, testgpu),
        }
        text = utilization_report(results)
        assert "a" in text and "b" in text
        assert "issue util" in text
