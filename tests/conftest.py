"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import simt


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    """Point the run ledger at a per-test tmp dir.

    CLI invocations record manifests by default; without this, tests
    would write into the repo's ``results/ledger``.
    """
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger"))


@pytest.fixture
def testgpu() -> simt.DeviceSpec:
    """The small fast device every unit test runs on."""
    return simt.TESTGPU


@pytest.fixture
def engine(testgpu) -> simt.Engine:
    """A fresh engine with empty memory."""
    return simt.Engine(testgpu)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
