"""Bit-identity of the vectorized and scalar engine execution paths.

The engine's vectorized data movement (``repro.simt.engine.EXEC_MODE ==
"vector"``: array-wide NumPy reads/writes, epoch-based read elision) is
a host-side performance feature only — the simulation it produces must
be *bit-identical* to the straight-line per-lane reference path
(``"scalar"``).  This suite pins that contract across the whole queue
family by replaying pinned differential-suite configurations (same
seeded generator, ``tests/test_differential_queues.py``) through both
modes and demanding identical cycles, task counts, oracle event counts,
and delivered-token multisets.

It also sanity-checks that the two runs genuinely took different code
paths (via :data:`repro.simt.engine.EXEC_COUNTS`) — otherwise a broken
mode toggle would make the comparison vacuous.
"""

import pytest

from repro.simt import engine as simt_engine
from repro.simt.engine import exec_mode
from repro.verify.scenario import run_scenario

from test_differential_queues import FAMILY, N_CONFIGS, SEED, _configs, _scenario


def _representative_configs():
    """A pinned subset of the differential sweep: one configuration per
    (workload, native-vs-random-schedule) combination, in sweep order.

    The full differential suite already runs every config through every
    variant once; here each config runs twice per variant, so the subset
    keeps the suite inside the PR-gate time budget while still covering
    both workload shapes and both scheduling regimes.
    """
    chosen = {}
    for cfg in _configs(SEED, N_CONFIGS):
        workload, _scale, _n_wf, schedule = cfg
        key = (workload, schedule is None)
        if key not in chosen:
            chosen[key] = cfg
    return list(chosen.values())


CONFIGS = _representative_configs()


def _run_counted(sc, mode):
    """Run a scenario under a forced exec mode; return (outcome, counts)."""
    with exec_mode(mode):
        simt_engine.reset_exec_counts()
        out = run_scenario(sc)
        counts = dict(simt_engine.EXEC_COUNTS)
    return out, counts


@pytest.mark.parametrize("variant", FAMILY)
@pytest.mark.parametrize(
    "workload,scale,n_wf,schedule",
    CONFIGS,
    ids=[f"cfg{i}" for i in range(len(CONFIGS))],
)
def test_vector_and_scalar_simulate_identically(
    variant, workload, scale, n_wf, schedule
):
    sc = _scenario(variant, workload, scale, n_wf, schedule)
    vec, vec_counts = _run_counted(sc, "vector")
    sca, sca_counts = _run_counted(sc, "scalar")

    assert vec.ok, f"vector run failed: [{vec.invariant}] {vec.detail}"
    assert sca.ok, f"scalar run failed: [{sca.invariant}] {sca.detail}"

    # the contract: identical simulation, observed three independent
    # ways — engine clock, scheduler counters, and oracle event stream.
    assert vec.cycles == sca.cycles, sc.label()
    assert vec.tasks_completed == sca.tasks_completed, sc.label()
    assert vec.events == sca.events, sc.label()
    assert vec.delivered_counts == sca.delivered_counts, sc.label()

    # the comparison must not be vacuous: scalar mode never touches the
    # vectorized paths, and vector mode completes at least something
    # through them.
    assert sca_counts["reads_vector"] == 0
    assert sca_counts["reads_elided"] == 0
    assert sca_counts["writes_vector"] == 0
    assert (
        vec_counts["reads_vector"]
        + vec_counts["reads_elided"]
        + vec_counts["writes_vector"]
    ) > 0, f"vector run of {sc.label()} never used a vectorized path"


def test_exec_mode_context_restores_previous_mode():
    assert simt_engine.EXEC_MODE == "vector"
    with exec_mode("scalar"):
        assert simt_engine.EXEC_MODE == "scalar"
        with exec_mode("vector"):
            assert simt_engine.EXEC_MODE == "vector"
        assert simt_engine.EXEC_MODE == "scalar"
    assert simt_engine.EXEC_MODE == "vector"


def test_exec_mode_rejects_unknown_mode():
    with pytest.raises(ValueError):
        with exec_mode("simd"):
            pass  # pragma: no cover


def test_engine_level_override_beats_global():
    # Engine(exec_mode=...) pins one engine to a path regardless of the
    # process-wide mode; simulation results must still match exactly.
    sc = _scenario("RF/AN", "countdown", 6, 2, None)
    base, _ = _run_counted(sc, "vector")

    from repro.core import SchedulerControl, make_queue, persistent_kernel
    from repro.core.scheduler import K_TASKS_DONE
    from repro.simt import TESTGPU, Engine
    from repro.verify import workloads

    results = {}
    for override in ("vector", "scalar"):
        worker, seeds, _expected = workloads.build(sc.workload, sc.scale)
        eng = Engine(TESTGPU, exec_mode=override)
        q = make_queue(
            sc.variant, capacity=sc.resolved_capacity(), circular=sc.circular,
        )
        sched = SchedulerControl()
        q.allocate(eng.memory)
        sched.allocate(eng.memory)
        q.seed(eng.memory, seeds)
        sched.seed(eng.memory, len(seeds))
        kern = persistent_kernel(q, worker, sched)
        simt_engine.reset_exec_counts()
        res = eng.launch(
            kern, sc.n_wavefronts,
            params={"max_work_cycles": sc.max_work_cycles},
            max_cycles=sc.max_cycles,
        )
        counts = dict(simt_engine.EXEC_COUNTS)
        results[override] = (res.cycles, res.stats.custom.get(K_TASKS_DONE))
        if override == "scalar":
            # global mode is "vector" here: the per-engine override is
            # what forced the reference path.
            assert counts["reads_vector"] == 0
            assert counts["writes_vector"] == 0

    assert results["vector"] == results["scalar"]
    assert results["vector"][0] == base.cycles
