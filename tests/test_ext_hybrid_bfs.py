"""Tests for the direction-optimizing BFS extension."""

import pytest

from repro import simt
from repro.bfs import run_persistent_bfs
from repro.ext import run_hybrid_bfs
from repro.graphs import (
    CSRGraph,
    complete_binary_tree,
    path_graph,
    roadmap_graph,
    social_graph,
    star_graph,
)


class TestCorrectness:
    def test_graph_zoo_verified(self, testgpu):
        for g in (
            path_graph(25),
            star_graph(80),
            complete_binary_tree(6),
            roadmap_graph(10, 10, seed=1),
            social_graph(300, avg_degree=8, seed=2),
        ):
            run_hybrid_bfs(g, 0, testgpu, verify=True)

    def test_disconnected(self, testgpu):
        g = CSRGraph.from_edges(5, [(0, 1), (3, 4)])
        run = run_hybrid_bfs(g, 0, testgpu, verify=True)
        assert run.costs.tolist() == [0, 1, -1, -1, -1]

    def test_invalid_switch_fraction(self, testgpu):
        with pytest.raises(ValueError):
            run_hybrid_bfs(path_graph(4), 0, testgpu, switch_fraction=0.0)
        with pytest.raises(ValueError):
            run_hybrid_bfs(path_graph(4), 0, testgpu, switch_fraction=1.0)


class TestDirectionSwitching:
    def test_wide_frontier_triggers_bottom_up(self, testgpu):
        """A star graph's second level is the whole graph: must flip."""
        g = star_graph(400)
        run = run_hybrid_bfs(g, 0, testgpu, switch_fraction=0.05, verify=True)
        assert "bu" in run.extra["modes"]

    def test_narrow_frontier_stays_top_down(self, testgpu):
        g = path_graph(40)
        run = run_hybrid_bfs(g, 0, testgpu, switch_fraction=0.5, verify=True)
        assert set(run.extra["modes"]) == {"td"}

    def test_hybrid_beats_pure_topdown_on_shallow_social(self, testgpu):
        """The literature result the extension reproduces: on shallow
        wide graphs the bottom-up flip wins over edge-by-edge top-down
        (here: the level-synchronous comparison is apples-to-apples
        because both relaunch per level)."""
        from repro.bfs import run_rodinia_bfs

        g = social_graph(1_500, avg_degree=20, seed=3)
        topdown = run_rodinia_bfs(g, 0, testgpu, verify=True)
        hybrid = run_hybrid_bfs(g, 0, testgpu, verify=True)
        assert hybrid.cycles < topdown.cycles

    def test_persistent_rfan_beats_hybrid_on_deep_roadmap(self, testgpu):
        """And the converse: deep narrow graphs never flip, so the
        per-level relaunch cost buries any level-synchronous scheme
        against the paper's persistent queue-driven BFS."""
        g = roadmap_graph(14, 14, seed=4)
        hybrid = run_hybrid_bfs(g, 0, testgpu, verify=True)
        rfan = run_persistent_bfs(g, 0, "RF/AN", testgpu, 8, verify=True)
        assert rfan.cycles < hybrid.cycles
