"""Tests for the direction-optimizing BFS extension."""

import pytest

from repro import simt
from repro.bfs import run_persistent_bfs
from repro.ext import run_hybrid_bfs
from repro.graphs import (
    CSRGraph,
    complete_binary_tree,
    path_graph,
    roadmap_graph,
    social_graph,
    star_graph,
)


class TestCorrectness:
    def test_graph_zoo_verified(self, testgpu):
        for g in (
            path_graph(25),
            star_graph(80),
            complete_binary_tree(6),
            roadmap_graph(10, 10, seed=1),
            social_graph(300, avg_degree=8, seed=2),
        ):
            run_hybrid_bfs(g, 0, testgpu, verify=True)

    def test_disconnected(self, testgpu):
        g = CSRGraph.from_edges(5, [(0, 1), (3, 4)])
        run = run_hybrid_bfs(g, 0, testgpu, verify=True)
        assert run.costs.tolist() == [0, 1, -1, -1, -1]

    def test_invalid_switch_fraction(self, testgpu):
        with pytest.raises(ValueError):
            run_hybrid_bfs(path_graph(4), 0, testgpu, switch_fraction=0.0)
        with pytest.raises(ValueError):
            run_hybrid_bfs(path_graph(4), 0, testgpu, switch_fraction=1.0)


class TestDirectionSwitching:
    def test_wide_frontier_triggers_bottom_up(self, testgpu):
        """A star graph's second level is the whole graph: must flip."""
        g = star_graph(400)
        run = run_hybrid_bfs(g, 0, testgpu, switch_fraction=0.05, verify=True)
        assert "bu" in run.extra["modes"]

    def test_narrow_frontier_stays_top_down(self, testgpu):
        g = path_graph(40)
        run = run_hybrid_bfs(g, 0, testgpu, switch_fraction=0.5, verify=True)
        assert set(run.extra["modes"]) == {"td"}

    def test_hybrid_beats_pure_topdown_on_shallow_social(self, testgpu):
        """The literature result the extension reproduces: on shallow
        wide graphs the bottom-up flip wins over edge-by-edge top-down
        (here: the level-synchronous comparison is apples-to-apples
        because both relaunch per level)."""
        from repro.bfs import run_rodinia_bfs

        g = social_graph(1_500, avg_degree=20, seed=3)
        topdown = run_rodinia_bfs(g, 0, testgpu, verify=True)
        hybrid = run_hybrid_bfs(g, 0, testgpu, verify=True)
        assert hybrid.cycles < topdown.cycles

    def test_persistent_rfan_beats_hybrid_on_deep_roadmap(self, testgpu):
        """And the converse: deep narrow graphs never flip, so the
        per-level relaunch cost buries any level-synchronous scheme
        against the paper's persistent queue-driven BFS."""
        g = roadmap_graph(14, 14, seed=4)
        hybrid = run_hybrid_bfs(g, 0, testgpu, verify=True)
        rfan = run_persistent_bfs(g, 0, "RF/AN", testgpu, 8, verify=True)
        assert rfan.cycles < hybrid.cycles


class TestEdgesAndPlumbing:
    """The driver's less-travelled paths: degenerate graphs, the
    default-workgroups branch, and switching *back* to top-down."""

    def test_edgeless_graph_single_level(self, testgpu):
        # no edges at all: the reversed graph is empty too (the 1-word
        # in-sources fallback allocation), and a 1-vertex frontier on a
        # 4-vertex graph already exceeds the default switch fraction,
        # so this single level runs the *bottom-up* kernel over an
        # empty in-edge list.  One level, only the source reached.
        g = CSRGraph.from_edges(4, [])
        run = run_hybrid_bfs(g, 2, testgpu, verify=True)
        assert run.costs.tolist() == [-1, -1, 0, -1]
        assert run.extra["modes"] == ["bu"]
        assert run.extra["levels"] == 1

    def test_single_vertex(self, testgpu):
        run = run_hybrid_bfs(CSRGraph.from_edges(1, []), 0, testgpu)
        assert run.costs.tolist() == [0]

    def test_default_workgroups_is_device_max(self, testgpu):
        run = run_hybrid_bfs(path_graph(6), 0, testgpu, verify=True)
        assert run.n_workgroups == testgpu.max_resident_wavefronts

    def test_switches_back_to_topdown_when_frontier_shrinks(self, testgpu):
        # a star with a tail: the hub explosion crosses the switch
        # threshold (bottom-up), then the frontier collapses onto the
        # tail path and the driver must flip back to top-down.
        edges = [(0, v) for v in range(1, 12)]
        edges += [(11, 12), (12, 13), (13, 14)]
        g = CSRGraph.from_edges(15, edges)
        run = run_hybrid_bfs(
            g, 0, testgpu, switch_fraction=0.5, verify=True
        )
        modes = run.extra["modes"]
        assert "bu" in modes
        assert modes.index("bu") < len(modes) - 1
        assert modes[-1] == "td"
        assert run.costs[14] == 4

    def test_mode_log_matches_level_count(self, testgpu):
        run = run_hybrid_bfs(path_graph(9), 0, testgpu, verify=True)
        assert len(run.extra["modes"]) == run.extra["levels"]
