"""Unit tests for the op vocabulary itself."""

import numpy as np
import pytest

from repro.simt import (
    Abort,
    AtomicKind,
    AtomicRMW,
    Compute,
    Fence,
    LocalOp,
    MemRead,
    MemWrite,
)


class TestValidation:
    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1)

    def test_negative_localop_rejected(self):
        with pytest.raises(ValueError):
            LocalOp(-5)

    def test_zero_cycles_allowed(self):
        assert Compute(0).cycles == 0


class TestSlots:
    """Op classes are created millions of times; they must stay slotted
    (no per-instance __dict__)."""

    @pytest.mark.parametrize(
        "op",
        [
            Compute(1),
            LocalOp(1),
            MemRead("b", 0),
            MemWrite("b", 0, 1),
            AtomicRMW("b", 0, AtomicKind.ADD, 1),
            Fence(),
            Abort("x"),
        ],
    )
    def test_no_instance_dict(self, op):
        with pytest.raises(AttributeError):
            op.arbitrary_new_attribute = 1  # type: ignore[attr-defined]


class TestReprs:
    def test_reprs_are_informative(self):
        assert "Compute(3)" == repr(Compute(3))
        assert "buf" in repr(MemRead("buf", np.arange(4)))
        assert "add" in repr(AtomicRMW("b", 0, AtomicKind.ADD, 1))
        assert "full" in repr(Abort("queue full"))


class TestAtomicKinds:
    def test_all_kinds_distinct_values(self):
        values = [k.value for k in AtomicKind]
        assert len(values) == len(set(values))

    def test_expected_kinds_present(self):
        names = {k.name for k in AtomicKind}
        assert {"ADD", "MIN", "MAX", "EXCH", "CAS"} == names


class TestResultFields:
    def test_memread_result_initially_none(self):
        assert MemRead("b", 0).result is None

    def test_atomic_results_initially_none(self):
        op = AtomicRMW("b", 0, AtomicKind.CAS, 0, 1)
        assert op.old is None and op.success is None

    def test_precheck_defaults(self):
        rd = MemRead("b", 0)
        assert rd.prechecked is False and rd.trans is None
        wr = MemWrite("b", 0, 1, trans=2, prechecked=True)
        assert wr.trans == 2 and wr.prechecked
