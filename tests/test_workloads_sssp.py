"""Tests for the weighted SSSP workload (verified against SciPy)."""

import numpy as np
import pytest

from repro.core import QUEUE_VARIANTS
from repro.graphs import (
    CSRGraph,
    path_graph,
    roadmap_graph,
    rodinia_graph,
    social_graph,
)
from repro.workloads import random_weights, reference_sssp, run_sssp

ALL_VARIANTS = sorted(QUEUE_VARIANTS)


class TestReference:
    def test_unit_weights_match_bfs(self):
        from repro.graphs import bfs_levels

        g = rodinia_graph(300, seed=1)
        w = np.ones(g.n_edges, dtype=np.int64)
        assert np.array_equal(reference_sssp(g, w, 0), bfs_levels(g, 0))

    def test_weighted_path(self):
        g = path_graph(4)
        w = np.array([5, 7, 2])
        assert reference_sssp(g, w, 0).tolist() == [0, 5, 12, 14]

    def test_unreachable(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        w = np.array([4])
        assert reference_sssp(g, w, 0).tolist() == [0, 4, -1]


class TestSimulatedSSSP:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_random_graphs_verified(self, variant, testgpu):
        for g, seed in (
            (rodinia_graph(300, seed=2), 5),
            (roadmap_graph(12, 12, seed=3), 6),
            (social_graph(250, avg_degree=5, seed=4), 7),
        ):
            w = random_weights(g, max_weight=9, seed=seed)
            run_sssp(g, w, 0, variant, testgpu, 6, verify=True)

    def test_shortcut_graph_requires_reenqueue(self, testgpu):
        """A long cheap path discovered after a short expensive edge
        forces label correction (the re-enqueue machinery)."""
        # 0 -> 2 direct (cost 100); 0 -> 1 -> 2 (cost 1 + 1)
        g = CSRGraph.from_edges(3, [(0, 2), (0, 1), (1, 2)])
        w = np.zeros(g.n_edges, dtype=np.int64)
        for i, (u, v) in enumerate(g.iter_edges()):
            w[i] = 100 if (u, v) == (0, 2) else 1
        result = run_sssp(g, w, 0, "RF/AN", testgpu, 2, verify=True)
        assert result.dist.tolist() == [0, 1, 2]

    def test_zero_weights_allowed(self, testgpu):
        g = path_graph(5)
        w = np.zeros(4, dtype=np.int64)
        result = run_sssp(g, w, 0, "RF/AN", testgpu, 2, verify=True)
        assert result.dist.tolist() == [0, 0, 0, 0, 0]

    def test_negative_weights_rejected(self, testgpu):
        g = path_graph(3)
        with pytest.raises(ValueError):
            run_sssp(g, np.array([-1, 2]), 0, "RF/AN", testgpu, 2)

    def test_weight_count_mismatch_rejected(self, testgpu):
        g = path_graph(3)
        with pytest.raises(ValueError):
            run_sssp(g, np.array([1]), 0, "RF/AN", testgpu, 2)

    def test_reenqueues_reported(self, testgpu):
        g = social_graph(300, avg_degree=8, seed=9)
        w = random_weights(g, max_weight=16, seed=10)
        result = run_sssp(g, w, 0, "RF/AN", testgpu, 6, verify=True)
        # weighted relaxation on a dense-ish graph revisits vertices
        assert result.reenqueues > 0
