"""Unit tests for the BFS drivers' shared pieces."""

import numpy as np
import pytest

from repro import simt
from repro.bfs import (
    BFSRun,
    INF_COST,
    alloc_graph_buffers,
    bfs_queue_capacity,
    read_costs,
)
from repro.bfs.common import BUF_COSTS, BUF_OFFSETS, BUF_TARGETS
from repro.graphs import path_graph
from repro.simt import GlobalMemory, SimStats


class TestAllocGraphBuffers:
    def test_buffers_allocated_and_source_zeroed(self):
        mem = GlobalMemory()
        g = path_graph(5)
        alloc_graph_buffers(mem, g, 2)
        assert np.array_equal(mem[BUF_OFFSETS], g.offsets)
        assert np.array_equal(mem[BUF_TARGETS], g.targets)
        costs = mem[BUF_COSTS]
        assert costs[2] == 0
        assert (costs[[0, 1, 3, 4]] == INF_COST).all()

    def test_bad_source_rejected(self):
        mem = GlobalMemory()
        g = path_graph(5)
        with pytest.raises(ValueError):
            alloc_graph_buffers(mem, g, 5)
        with pytest.raises(ValueError):
            alloc_graph_buffers(mem, g, -1)


class TestReadCosts:
    def test_inf_maps_to_minus_one(self):
        mem = GlobalMemory()
        g = path_graph(3)
        alloc_graph_buffers(mem, g, 0)
        mem[BUF_COSTS][1] = 7
        out = read_costs(mem, 3)
        assert out.tolist() == [0, 7, -1]


class TestCapacityFormula:
    def test_scales_with_graph_and_threads(self, testgpu):
        g_small, g_big = path_graph(10), path_graph(10_000)
        assert bfs_queue_capacity(g_big, testgpu, 4) > bfs_queue_capacity(
            g_small, testgpu, 4
        )
        assert bfs_queue_capacity(g_small, testgpu, 8) > bfs_queue_capacity(
            g_small, testgpu, 1
        )

    def test_headroom(self, testgpu):
        g = path_graph(100)
        loose = bfs_queue_capacity(g, testgpu, 2, headroom=4.0)
        tight = bfs_queue_capacity(g, testgpu, 2, headroom=1.0)
        assert loose > tight >= g.n_vertices


class TestBFSRunVerify:
    def _run(self, costs):
        return BFSRun(
            implementation="X",
            dataset="path",
            device="t",
            n_workgroups=1,
            cycles=10,
            seconds=1e-8,
            costs=np.asarray(costs, dtype=np.int64),
            stats=SimStats(),
        )

    def test_accepts_correct(self):
        g = path_graph(4)
        self._run([0, 1, 2, 3]).verify(g, 0)

    def test_rejects_wrong_value(self):
        g = path_graph(4)
        with pytest.raises(AssertionError, match="vertex 2"):
            self._run([0, 1, 9, 3]).verify(g, 0)

    def test_rejects_wrong_shape(self):
        g = path_graph(4)
        with pytest.raises(AssertionError, match="shape"):
            self._run([0, 1]).verify(g, 0)
