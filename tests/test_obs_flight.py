"""Flight recorder, post-mortem bundles, and enriched queue-full errors.

Bit-identity of flight-recorded runs is pinned per queue variant in
``tests/test_simt_determinism.py``; this file covers the recorder's own
contracts: the bounded ring, the JSON-able snapshot, session hook
hygiene, the post-mortem round trip, and the structured context every
queue variant now attaches to a capacity abort.
"""

import json

import numpy as np
import pytest

from repro.bfs import run_persistent_bfs
from repro.core import WavefrontQueueState, make_queue
from repro.graphs import dataset
from repro.obs.flight import (
    FILL_BUCKETS,
    POSTMORTEM_SCHEMA,
    FlightRecorder,
    FlightSession,
    build_postmortem,
    load_postmortem,
    render_postmortem,
    write_postmortem,
)
from repro.simt import Engine, QueueFullError, TESTGPU, WedgeError


def _small_bfs(probe=None):
    spec = dataset("Synthetic")
    g = spec.build(spec.default_scale * 0.25)
    return run_persistent_bfs(
        g, spec.source, "RF/AN", TESTGPU, 4, verify=False, probe=probe
    )


class TestRing:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(ring=32)
        _small_bfs(probe=rec)
        # a full BFS emits far more than 32 events; only 32 remain
        assert rec.events.maxlen == 32
        assert len(rec.events) == 32
        assert rec.issues > 32

    def test_ring_keeps_the_newest_events(self):
        rec = FlightRecorder(ring=16)
        run = _small_bfs(probe=rec)
        cycles = [ev[0] for ev in rec.events]
        # ring events are recent: all within the launch, newest last
        assert max(cycles) <= run.cycles
        assert cycles[-1] == max(cycles)

    def test_progress_signature_advances(self):
        rec = FlightRecorder()
        before = rec.progress_signature()
        _small_bfs(probe=rec)
        after = rec.progress_signature()
        assert after != before
        assert rec.deliveries > 0 and rec.exits > 0


class TestSnapshot:
    def test_snapshot_round_trips_through_json(self):
        rec = FlightRecorder(ring=64)
        run = _small_bfs(probe=rec)
        snap = rec.snapshot()
        again = json.loads(json.dumps(snap))
        assert again["schema"] == snap["schema"]
        assert again["cycle"] == run.cycles
        assert again["finished"] is True
        assert again["live_wavefronts"] == 0
        assert again["ring_capacity"] == 64
        assert len(again["ring"]) == 64
        for q in again["queues"].values():
            assert q["fill"] >= 0  # RF/AN front may pass rear; clamped
            assert len(q["fill_hist"]) == FILL_BUCKETS
        assert again["progress"]["deliveries"] == rec.deliveries

    def test_stall_classes_of_unissued_wavefronts(self):
        rec = FlightRecorder()
        rec.launch_begin(TESTGPU, 4)
        # nothing ever issued: all 4 live wavefronts are ready-but-held
        assert rec.stall_classes() == {"cu_occupancy": 4}
        assert rec.top_stalls() == [("cu_occupancy", 4)]


class TestFlightSession:
    def test_restores_hooks_on_exception_and_writes_bundle(self, tmp_path):
        import repro.simt.engine as engine_mod

        with pytest.raises(RuntimeError, match="boom"):
            with FlightSession(
                watchdog=True, postmortem_dir=str(tmp_path),
                config={"experiments": ["tab1"]},
            ) as session:
                _small_bfs()  # populates session.last
                raise RuntimeError("boom")
        assert engine_mod.PROBE_FACTORY is None
        assert engine_mod.WATCHDOG_FACTORY is None
        assert session.postmortem_path is not None
        bundle = load_postmortem(session.postmortem_path)
        assert bundle["error"]["type"] == "RuntimeError"
        assert bundle["flight"]["finished"] is True
        assert bundle["config_hash"]

    def test_no_bundle_without_postmortem_dir(self, tmp_path):
        with pytest.raises(RuntimeError):
            with FlightSession() as session:
                raise RuntimeError("no dir configured")
        assert session.postmortem_path is None

    def test_not_reentrant(self):
        session = FlightSession()
        with session:
            with pytest.raises(RuntimeError, match="re-entrant"):
                session.__enter__()


class TestPostmortemBundle:
    def test_queue_full_round_trip(self, tmp_path):
        rec = FlightRecorder()
        _small_bfs(probe=rec)
        err = QueueFullError(
            "queue full: queue 'wq' fill 64/64",
            queue="wq", capacity=64, fill=64,
        )
        bundle = build_postmortem(
            recorder=rec, error=err, config={"experiments": ["fig1"]}
        )
        path = write_postmortem(bundle, str(tmp_path))
        again = load_postmortem(path)
        assert again["schema"] == POSTMORTEM_SCHEMA
        assert again["error"]["queue_full"] == {
            "queue": "wq", "capacity": 64, "fill": 64, "shard": None,
        }
        text = render_postmortem(again)
        assert "queue 'wq' fill 64/64" in text
        assert "ring events" in text

    def test_wedge_error_carries_classification(self, tmp_path):
        rec = FlightRecorder()
        rec.launch_begin(TESTGPU, 4)
        err = WedgeError(
            "launch wedged", classification="cu_occupancy",
            snapshot=rec.snapshot(),
        )
        bundle = build_postmortem(recorder=rec, error=err)
        assert bundle["error"]["classification"] == "cu_occupancy"
        assert bundle["wedge_snapshot"]["schema"] == rec.snapshot()["schema"]
        assert "cu_occupancy" in render_postmortem(bundle)

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "postmortem-x.json"
        path.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ValueError, match="schema"):
            load_postmortem(str(path))

    def test_write_never_clobbers(self, tmp_path):
        bundle = build_postmortem()
        a = write_postmortem(bundle, str(tmp_path))
        b = write_postmortem(bundle, str(tmp_path))
        assert a != b


class TestEnrichedQueueFull:
    @pytest.mark.parametrize("variant", ["BASE", "AN", "RF/AN"])
    def test_overflow_reports_queue_capacity_and_fill(self, variant):
        eng = Engine(TESTGPU)
        q = make_queue(variant, capacity=4)
        q.allocate(eng.memory)
        wf = TESTGPU.wavefront_size

        def kernel(ctx):
            st = WavefrontQueueState(wf)
            counts = np.full(wf, 2, dtype=np.int64)  # 2*wf tokens > 4
            toks = np.ones((wf, 2), dtype=np.int64)
            yield from q.publish(ctx, st, counts, toks)

        with pytest.raises(QueueFullError, match="queue full") as exc_info:
            eng.launch(kernel, 1)
        err = exc_info.value
        assert err.capacity == 4
        # an oversized burst can abort while the ring is still empty
        assert err.fill >= 0
        assert err.queue  # the owning buffer prefix
        assert err.queue in str(err)
        assert "/4" in str(err)
        info = err.info()
        assert info["capacity"] == 4 and info["queue"] == err.queue
