"""Tests for the opt-in execution tracer."""

import numpy as np
import pytest

from repro import simt
from repro.simt import (
    AtomicKind,
    AtomicRMW,
    Compute,
    Engine,
    MemRead,
    Tracer,
)


def demo_kernel(ctx):
    yield Compute(10)
    rd = MemRead("buf", ctx.lane)
    yield rd
    yield AtomicRMW("ctr", 0, AtomicKind.ADD, 1)


class TestTracer:
    def test_records_every_op_in_issue_order(self, testgpu):
        eng = Engine(testgpu)
        eng.memory.alloc("buf", 64)
        eng.memory.alloc("ctr", 1)
        tracer = Tracer()
        res = eng.launch(tracer.wrap(demo_kernel), 3)
        assert len(tracer.events) == res.stats.issued_ops == 9
        assert [e.seq for e in tracer.events] == list(range(9))
        assert tracer.counts_by_kind() == {
            "Compute": 3, "MemRead": 3, "AtomicRMW": 3,
        }

    def test_results_unchanged_by_tracing(self, testgpu):
        def run(tracer):
            eng = Engine(testgpu)
            eng.memory.alloc("buf", 64)
            eng.memory.alloc("ctr", 1)
            kern = tracer.wrap(demo_kernel) if tracer else demo_kernel
            res = eng.launch(kern, 3)
            return res.cycles, int(eng.memory["ctr"][0])

        assert run(None) == run(Tracer())

    def test_filtering(self, testgpu):
        eng = Engine(testgpu)
        eng.memory.alloc("buf", 64)
        eng.memory.alloc("ctr", 1)
        tracer = Tracer()
        eng.launch(tracer.wrap(demo_kernel), 2)
        assert len(tracer.filter(wf_id=0)) == 3
        assert len(tracer.filter(kind="AtomicRMW")) == 2
        assert len(tracer.filter(detail_contains="ctr")) == 2
        assert len(tracer.filter(wf_id=1, kind="Compute")) == 1

    def test_render(self, testgpu):
        eng = Engine(testgpu)
        eng.memory.alloc("buf", 64)
        eng.memory.alloc("ctr", 1)
        tracer = Tracer()
        eng.launch(tracer.wrap(demo_kernel), 1)
        text = tracer.render()
        assert "MemRead" in text and "ctr:add" in text

    def test_truncation(self, testgpu):
        eng = Engine(testgpu)
        eng.memory.alloc("buf", 64)
        eng.memory.alloc("ctr", 1)
        tracer = Tracer(max_events=2)
        eng.launch(tracer.wrap(demo_kernel), 2)
        assert len(tracer.events) == 2
        assert tracer.truncated
        assert "truncated" in tracer.render()

    def test_invalid_max_events(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)
