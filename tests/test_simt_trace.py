"""Tests for the opt-in execution tracer."""

import numpy as np
import pytest

from repro import simt
from repro.simt import (
    AtomicKind,
    AtomicRMW,
    Compute,
    Engine,
    MemRead,
    Tracer,
)


def demo_kernel(ctx):
    yield Compute(10)
    rd = MemRead("buf", ctx.lane)
    yield rd
    yield AtomicRMW("ctr", 0, AtomicKind.ADD, 1)


class TestTracer:
    def test_records_every_op_in_issue_order(self, testgpu):
        eng = Engine(testgpu)
        eng.memory.alloc("buf", 64)
        eng.memory.alloc("ctr", 1)
        tracer = Tracer()
        res = eng.launch(tracer.wrap(demo_kernel), 3)
        assert len(tracer.events) == res.stats.issued_ops == 9
        assert [e.seq for e in tracer.events] == list(range(9))
        assert tracer.counts_by_kind() == {
            "Compute": 3, "MemRead": 3, "AtomicRMW": 3,
        }

    def test_results_unchanged_by_tracing(self, testgpu):
        def run(tracer):
            eng = Engine(testgpu)
            eng.memory.alloc("buf", 64)
            eng.memory.alloc("ctr", 1)
            kern = tracer.wrap(demo_kernel) if tracer else demo_kernel
            res = eng.launch(kern, 3)
            return res.cycles, int(eng.memory["ctr"][0])

        assert run(None) == run(Tracer())

    def test_filtering(self, testgpu):
        eng = Engine(testgpu)
        eng.memory.alloc("buf", 64)
        eng.memory.alloc("ctr", 1)
        tracer = Tracer()
        eng.launch(tracer.wrap(demo_kernel), 2)
        assert len(tracer.filter(wf_id=0)) == 3
        assert len(tracer.filter(kind="AtomicRMW")) == 2
        assert len(tracer.filter(detail_contains="ctr")) == 2
        assert len(tracer.filter(wf_id=1, kind="Compute")) == 1

    def test_render(self, testgpu):
        eng = Engine(testgpu)
        eng.memory.alloc("buf", 64)
        eng.memory.alloc("ctr", 1)
        tracer = Tracer()
        eng.launch(tracer.wrap(demo_kernel), 1)
        text = tracer.render()
        assert "MemRead" in text and "ctr:add" in text

    def test_truncation(self, testgpu):
        eng = Engine(testgpu)
        eng.memory.alloc("buf", 64)
        eng.memory.alloc("ctr", 1)
        tracer = Tracer(max_events=2)
        eng.launch(tracer.wrap(demo_kernel), 2)
        assert len(tracer.events) == 2
        assert tracer.truncated
        assert "truncated" in tracer.render()

    def test_invalid_max_events(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)

    def test_truncation_respects_exact_cap_and_keeps_seqs(self, testgpu):
        eng = Engine(testgpu)
        eng.memory.alloc("buf", 64)
        eng.memory.alloc("ctr", 1)
        tracer = Tracer(max_events=5)
        res = eng.launch(tracer.wrap(demo_kernel), 3)
        assert len(tracer.events) == 5
        assert [e.seq for e in tracer.events] == list(range(5))
        assert tracer.truncated
        assert res.stats.issued_ops == 9  # simulation itself untouched

    def test_counts_by_kind_totals_match_issued_ops(self, testgpu):
        eng = Engine(testgpu)
        eng.memory.alloc("buf", 64)
        eng.memory.alloc("ctr", 1)
        tracer = Tracer()
        res = eng.launch(tracer.wrap(demo_kernel), 4)
        assert sum(tracer.counts_by_kind().values()) == res.stats.issued_ops


class TestTracerCycles:
    """Issue-cycle + lane-count stamping via the probe hook."""

    def test_cycles_recorded_when_tracer_is_the_probe(self, testgpu):
        eng = Engine(testgpu)
        eng.memory.alloc("buf", 64)
        eng.memory.alloc("ctr", 1)
        tracer = Tracer()
        res = eng.launch(tracer.wrap(demo_kernel), 2, probe=tracer)
        cycles = [e.cycle for e in tracer.events]
        assert all(c >= 0 for c in cycles)
        assert cycles == sorted(cycles)  # engine issues in time order
        assert max(cycles) <= res.cycles
        # per-wavefront streams start at cycle 0 (first issue of wf 0)
        assert min(cycles) == 0

    def test_lane_counts(self, testgpu):
        eng = Engine(testgpu)
        eng.memory.alloc("buf", 64)
        eng.memory.alloc("ctr", 1)
        tracer = Tracer()
        eng.launch(tracer.wrap(demo_kernel), 1, probe=tracer)
        by_kind = {e.kind: e.lanes for e in tracer.events}
        assert by_kind["Compute"] == testgpu.wavefront_size
        assert by_kind["MemRead"] == testgpu.wavefront_size  # per-lane index
        assert by_kind["AtomicRMW"] == 1  # scalar address

    def test_cycle_is_minus_one_without_probe(self, testgpu):
        eng = Engine(testgpu)
        eng.memory.alloc("buf", 64)
        eng.memory.alloc("ctr", 1)
        tracer = Tracer()
        eng.launch(tracer.wrap(demo_kernel), 1)
        assert all(e.cycle == -1 for e in tracer.events)

    def test_render_shows_cycle_column_only_when_timed(self, testgpu):
        eng = Engine(testgpu)
        eng.memory.alloc("buf", 64)
        eng.memory.alloc("ctr", 1)
        timed = Tracer()
        eng.launch(timed.wrap(demo_kernel), 1, probe=timed)
        assert "cycle" in timed.render()

        untimed = Tracer()
        eng2 = Engine(testgpu)
        eng2.memory.alloc("buf", 64)
        eng2.memory.alloc("ctr", 1)
        eng2.launch(untimed.wrap(demo_kernel), 1)
        assert "cycle" not in untimed.render()
        assert "lanes" in untimed.render()

    def test_render_elision_note(self, testgpu):
        eng = Engine(testgpu)
        eng.memory.alloc("buf", 64)
        eng.memory.alloc("ctr", 1)
        tracer = Tracer()
        eng.launch(tracer.wrap(demo_kernel), 3)
        text = tracer.render(limit=2)
        assert "7 more events not shown" in text

    def test_results_unchanged_by_probing_the_traced_launch(self, testgpu):
        def run(probed):
            eng = Engine(testgpu)
            eng.memory.alloc("buf", 64)
            eng.memory.alloc("ctr", 1)
            tracer = Tracer()
            res = eng.launch(
                tracer.wrap(demo_kernel), 3,
                probe=tracer if probed else None,
            )
            return res.cycles, res.stats.snapshot(), int(eng.memory["ctr"][0])

        assert run(True) == run(False)
