"""Unit and property tests for the CSR graph representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import CSRGraph


def edges_strategy(max_n=20, max_m=60):
    return st.integers(2, max_n).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=max_m,
            ),
        )
    )


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges(4, [(0, 1), (0, 2), (2, 3)])
        assert g.n_vertices == 4
        assert g.n_edges == 3
        assert sorted(g.neighbors(0).tolist()) == [1, 2]
        assert g.neighbors(1).tolist() == []
        assert g.neighbors(2).tolist() == [3]

    def test_empty_graph(self):
        g = CSRGraph.from_edges(3, [])
        assert g.n_vertices == 3
        assert g.n_edges == 0

    def test_dedup_drops_self_loops_and_dupes(self):
        g = CSRGraph.from_edges(
            3, [(0, 1), (0, 1), (1, 1), (1, 2)], dedup=True
        )
        assert g.n_edges == 2

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0]))  # offsets[0] != 0
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1]), np.array([0]))  # decreasing
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([5]))  # target out of range
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2]), np.array([0]))  # offsets[-1] mismatch

    def test_edge_endpoint_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 5)])
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(-1, 0)])

    @given(edges_strategy())
    @settings(max_examples=100, deadline=None)
    def test_property_roundtrip_from_to_edges(self, args):
        n, edges = args
        g = CSRGraph.from_edges(n, edges)
        back = g.to_edges()
        assert sorted(map(tuple, back.tolist())) == sorted(
            (int(a), int(b)) for a, b in edges
        )


class TestDerivedGraphs:
    def test_symmetrized(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)]).symmetrized()
        assert sorted(g.neighbors(1).tolist()) == [0, 2]
        assert g.neighbors(2).tolist() == [1]

    def test_reversed(self):
        g = CSRGraph.from_edges(3, [(0, 1), (0, 2)]).reversed()
        assert g.neighbors(1).tolist() == [0]
        assert g.neighbors(2).tolist() == [0]
        assert g.neighbors(0).tolist() == []

    @given(edges_strategy())
    @settings(max_examples=50, deadline=None)
    def test_property_reverse_involution(self, args):
        n, edges = args
        g = CSRGraph.from_edges(n, edges)
        gg = g.reversed().reversed()
        assert sorted(map(tuple, g.to_edges().tolist())) == sorted(
            map(tuple, gg.to_edges().tolist())
        )


class TestStats:
    def test_degree_stats(self):
        g = CSRGraph.from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2)])
        s = g.degree_stats()
        assert s.n_vertices == 4
        assert s.n_edges == 4
        assert s.min == 0
        assert s.max == 3
        assert s.avg == pytest.approx(1.0)

    def test_degree_vector_and_scalar(self):
        g = CSRGraph.from_edges(3, [(0, 1), (0, 2)])
        assert g.degree(0) == 2
        assert g.degree().tolist() == [2, 0, 0]

    def test_iter_edges(self):
        g = CSRGraph.from_edges(3, [(2, 0), (0, 1)])
        assert sorted(g.iter_edges()) == [(0, 1), (2, 0)]
