"""Integration tests: persistent-thread BFS on the simulated GPU.

Every run is verified against the CPU reference oracle, for every queue
variant, on graphs covering each structural corner (chains, stars, trees,
grids, power-law, disconnected, zero-degree sources).
"""

import numpy as np
import pytest

from repro import simt
from repro.bfs import bfs_queue_capacity, run_persistent_bfs
from repro.core import QUEUE_VARIANTS, QueueFull
from repro.graphs import (
    CSRGraph,
    complete_binary_tree,
    path_graph,
    roadmap_graph,
    rodinia_graph,
    social_graph,
    star_graph,
    synthetic_saturating,
)

ALL_VARIANTS = sorted(QUEUE_VARIANTS)


def graph_zoo():
    return [
        path_graph(40),
        star_graph(100),
        complete_binary_tree(6),
        synthetic_saturating(600, plateau_width=64),
        roadmap_graph(12, 12, seed=1),
        social_graph(300, avg_degree=6, seed=2),
        rodinia_graph(256, seed=3),
    ]


class TestCorrectness:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_all_graph_shapes_verified(self, variant, testgpu):
        for g in graph_zoo():
            run = run_persistent_bfs(g, 0, variant, testgpu, 6, verify=True)
            assert run.implementation == variant

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_disconnected_graph(self, variant, testgpu):
        g = CSRGraph.from_edges(6, [(0, 1), (1, 2), (4, 5)], name="disc")
        run = run_persistent_bfs(g, 0, variant, testgpu, 4, verify=True)
        assert run.costs.tolist() == [0, 1, 2, -1, -1, -1]

    def test_isolated_source(self, testgpu):
        g = CSRGraph.from_edges(3, [(1, 2)], name="iso")
        run = run_persistent_bfs(g, 0, "RF/AN", testgpu, 2, verify=True)
        assert run.costs.tolist() == [0, -1, -1]

    def test_nonzero_source(self, testgpu):
        g = path_graph(10)
        run = run_persistent_bfs(g, 4, "RF/AN", testgpu, 2)
        ref = np.array([-1] * 4 + list(range(6)))
        assert run.costs.tolist() == ref.tolist()

    def test_single_wavefront(self, testgpu):
        g = complete_binary_tree(5)
        run = run_persistent_bfs(g, 0, "RF/AN", testgpu, 1, verify=True)
        assert run.n_workgroups == 1

    @pytest.mark.parametrize("subtasks", [1, 2, 4, 8])
    def test_subtask_granularity_does_not_change_result(self, subtasks, testgpu):
        g = social_graph(200, avg_degree=8, seed=5)
        run = run_persistent_bfs(
            g, 0, "RF/AN", testgpu, 4, subtasks_per_cycle=subtasks, verify=True
        )
        assert run.extra["subtasks_per_cycle"] == subtasks

    def test_deterministic(self, testgpu):
        g = roadmap_graph(10, 10, seed=7)
        runs = [
            run_persistent_bfs(g, 0, "AN", testgpu, 4) for _ in range(2)
        ]
        assert runs[0].cycles == runs[1].cycles
        assert np.array_equal(runs[0].costs, runs[1].costs)


class TestCapacity:
    def test_grow_on_full_recovers(self, testgpu):
        """An undersized queue aborts; the host doubles and retries (§4.4)."""
        g = star_graph(300)
        run = run_persistent_bfs(
            g, 0, "RF/AN", testgpu, 4, capacity=16, grow_on_full=True,
            verify=True,
        )
        assert run.extra["queue_capacity"] > 16

    def test_no_grow_raises_queue_full(self, testgpu):
        g = star_graph(300)
        with pytest.raises(QueueFull):
            run_persistent_bfs(
                g, 0, "RF/AN", testgpu, 4, capacity=16, grow_on_full=False
            )

    def test_default_capacity_formula(self, testgpu):
        g = path_graph(100)
        cap = bfs_queue_capacity(g, testgpu, 4)
        assert cap > g.n_vertices
        assert cap > 2 * 4 * testgpu.wavefront_size


class TestStatsShape:
    def test_rfan_run_is_retry_free(self, testgpu):
        g = synthetic_saturating(2000, plateau_width=128)
        run = run_persistent_bfs(g, 0, "RF/AN", testgpu, 8, verify=True)
        assert run.stats.cas_attempts == 0
        assert run.stats.custom.get("queue.empty_exceptions", 0) == 0

    def test_base_runs_show_retries_under_load(self, testgpu):
        g = synthetic_saturating(2000, plateau_width=128)
        run = run_persistent_bfs(g, 0, "BASE", testgpu, 8, verify=True)
        assert run.stats.cas_attempts > 0

    def test_verify_catches_corruption(self, testgpu):
        g = path_graph(10)
        run = run_persistent_bfs(g, 0, "RF/AN", testgpu, 2)
        run.costs[3] = 99
        with pytest.raises(AssertionError, match="vertex 3"):
            run.verify(g, 0)

    def test_seconds_consistent_with_cycles(self, testgpu):
        g = path_graph(20)
        run = run_persistent_bfs(g, 0, "RF/AN", testgpu, 2)
        assert run.seconds == pytest.approx(
            run.cycles / testgpu.clock_hz
        )
