"""Unit tests for the discrete-event SIMT engine."""

import numpy as np
import pytest

from repro import simt
from repro.simt import (
    Abort,
    AtomicKind,
    AtomicRMW,
    Compute,
    Engine,
    Fence,
    KernelAbort,
    LaunchConfigError,
    LocalOp,
    MemRead,
    MemWrite,
    SimulationTimeout,
    transactions_for,
)


class TestTransactionsFor:
    def test_scalar(self):
        assert transactions_for(5) == 1

    def test_empty(self):
        assert transactions_for(np.empty(0, dtype=np.int64)) == 0

    def test_contiguous_coalesces(self):
        idx = np.arange(simt.COALESCE_SEGMENT_WORDS)
        assert transactions_for(idx) == 1

    def test_scattered_pays_per_lane(self):
        idx = np.arange(8) * 1000
        assert transactions_for(idx) == 8

    def test_two_segments(self):
        seg = simt.COALESCE_SEGMENT_WORDS
        idx = np.array([0, 1, seg, seg + 1])
        assert transactions_for(idx) == 2


class TestLaunchValidation:
    def test_zero_wavefronts_rejected(self, engine):
        with pytest.raises(LaunchConfigError):
            engine.launch(lambda ctx: iter(()), 0)

    def test_oversubscription_rejected(self, engine):
        cap = engine.device.max_resident_wavefronts
        with pytest.raises(LaunchConfigError):
            engine.launch(lambda ctx: iter(()), cap + 1)

    def test_empty_kernel_finishes(self, engine):
        def kernel(ctx):
            return
            yield  # pragma: no cover

        res = engine.launch(kernel, 2)
        assert res.cycles == 0


class TestComputeTiming:
    def test_single_wavefront_compute_serializes(self, engine):
        def kernel(ctx):
            yield Compute(100)
            yield Compute(50)

        res = engine.launch(kernel, 1)
        assert res.cycles == 150
        assert res.stats.compute_cycles == 150
        assert res.stats.issued_ops == 2

    def test_compute_occupies_cu(self, engine):
        """Two wavefronts on one CU serialize their ALU work."""

        def kernel(ctx):
            yield Compute(100)

        dev = engine.device.with_(n_cus=1)
        eng = Engine(dev)
        res = eng.launch(kernel, 2)
        assert res.cycles == 200

    def test_compute_parallel_across_cus(self, testgpu):
        def kernel(ctx):
            yield Compute(100)

        eng = Engine(testgpu)  # 2 CUs
        res = eng.launch(kernel, 2)
        assert res.cycles == 100


class TestMemoryTiming:
    def test_latency_hiding(self, testgpu):
        """More resident wavefronts should NOT scale memory-bound time."""

        def kernel(ctx):
            for _ in range(10):
                yield MemRead("buf", 0)

        results = {}
        for n in (1, 4):
            eng = Engine(testgpu)
            eng.memory.alloc("buf", 1024)
            results[n] = eng.launch(kernel, n).cycles
        # within 10% of flat (issue slots are the only added cost)
        assert results[4] < results[1] * 1.1

    def test_read_samples_at_completion(self, engine):
        """A load started before a store completes must see the old value."""
        engine.memory.alloc("buf", 1024, fill=7)
        seen = []

        def kernel(ctx):
            rd = MemRead("buf", 0)
            yield rd
            seen.append(int(rd.result[0]))

        engine.launch(kernel, 1)
        assert seen == [7]

    def test_write_applies(self, engine):
        engine.memory.alloc("buf", 1024)

        def kernel(ctx):
            yield MemWrite("buf", np.array([2, 3]), np.array([10, 11]))

        engine.launch(kernel, 1)
        assert engine.memory["buf"][2] == 10
        assert engine.memory["buf"][3] == 11

    def test_write_is_non_blocking(self, engine):
        """Stores retire via the write buffer: ten back-to-back stores cost
        ten issue slots plus one latency (flush), not ten latencies."""
        engine.memory.alloc("big", 1024)

        def kernel(ctx):
            for i in range(10):
                yield MemWrite("big", i, 1)

        res = engine.launch(kernel, 1)
        dev = engine.device
        # ten issue slots + one final flush; blocking would be ~10 latencies
        assert res.cycles <= 10 * dev.issue_cycles + dev.mem_latency
        assert res.cycles >= dev.mem_latency  # final flush is charged

    def test_hot_buffer_uses_l2_latency(self, testgpu):
        def kernel(ctx):
            yield MemRead("ctrl", 0)

        eng = Engine(testgpu)
        eng.memory.alloc("ctrl", 2)  # hot: <= HOT_BUFFER_WORDS
        hot_cycles = eng.launch(kernel, 1).cycles

        def kernel2(ctx):
            yield MemRead("big", 0)

        eng2 = Engine(testgpu)
        eng2.memory.alloc("big", 100_000)
        cold_cycles = eng2.launch(kernel2, 1).cycles
        assert hot_cycles < cold_cycles


class TestAtomics:
    def test_afa_never_fails_and_returns_old(self, engine):
        engine.memory.alloc("c", 1)
        olds = []

        def kernel(ctx):
            n = ctx.device.wavefront_size
            op = AtomicRMW(
                "c", np.zeros(n, dtype=np.int64), AtomicKind.ADD, 1
            )
            yield op
            olds.append(op.old.copy())
            assert op.success.all()

        res = engine.launch(kernel, 4)
        total = 4 * engine.device.wavefront_size
        assert engine.memory["c"][0] == total
        # every request saw a unique old value: no lost updates
        all_olds = np.concatenate(olds)
        assert len(set(all_olds.tolist())) == total
        assert res.stats.cas_failures == 0

    def test_cas_contention_single_winner(self, engine):
        """All lanes CAS(0 -> lane+1): exactly one request in the whole
        launch can win; failures emerge from serialization."""
        engine.memory.alloc("t", 1)
        wins = []

        def kernel(ctx):
            n = ctx.device.wavefront_size
            op = AtomicRMW(
                "t",
                np.zeros(n, dtype=np.int64),
                AtomicKind.CAS,
                np.zeros(n, dtype=np.int64),
                ctx.lane + 1,
            )
            yield op
            wins.append(int(op.success.sum()))

        res = engine.launch(kernel, 4)
        assert sum(wins) == 1
        n_total = 4 * engine.device.wavefront_size
        assert res.stats.cas_failures == n_total - 1
        assert res.stats.cas_attempts == n_total

    def test_atomic_min_distinct_addresses(self, engine):
        engine.memory.alloc("cost", 64, fill=100)

        def kernel(ctx):
            idx = np.arange(8, dtype=np.int64)
            op = AtomicRMW("cost", idx, AtomicKind.MIN, idx * 10)
            yield op
            assert op.old.tolist() == [100] * 8

        engine.launch(kernel, 1)
        assert engine.memory["cost"][:8].tolist() == [0, 10, 20, 30, 40, 50, 60, 70]
        assert engine.memory["cost"][8] == 100

    def test_atomic_max_and_exch(self, engine):
        engine.memory.alloc("v", 2, fill=5)

        def kernel(ctx):
            op1 = AtomicRMW("v", 0, AtomicKind.MAX, 9)
            yield op1
            op2 = AtomicRMW("v", 1, AtomicKind.EXCH, 42)
            yield op2
            assert int(op1.old[0]) == 5
            assert int(op2.old[0]) == 5

        engine.launch(kernel, 1)
        assert engine.memory["v"].tolist() == [9, 42]

    def test_same_address_batch_serializes_timing(self, testgpu):
        """A 8-lane same-address atomic burst takes ~8x the service time of
        a proxy (single-request) atomic."""

        def perlane(ctx):
            n = ctx.device.wavefront_size
            yield AtomicRMW("c", np.zeros(n, dtype=np.int64), AtomicKind.ADD, 1)

        def proxy(ctx):
            yield AtomicRMW("c", 0, AtomicKind.ADD, ctx.device.wavefront_size)

        times = {}
        for name, k in (("perlane", perlane), ("proxy", proxy)):
            eng = Engine(testgpu)
            eng.memory.alloc("c", 1)
            times[name] = eng.launch(k, 1).cycles
        extra = times["perlane"] - times["proxy"]
        expected = (testgpu.wavefront_size - 1) * testgpu.atomic_service
        assert extra == expected

    def test_duplicate_addresses_in_batch_are_exact(self, engine):
        """Mixed duplicate addresses use the exact general path."""
        engine.memory.alloc("c", 4)

        def kernel(ctx):
            idx = np.array([0, 1, 0, 1, 2], dtype=np.int64)
            op = AtomicRMW("c", idx, AtomicKind.ADD, 1)
            yield op
            # lane order: olds at address 0 are 0 then 1, etc.
            assert op.old.tolist() == [0, 0, 1, 1, 0]

        engine.launch(kernel, 1)
        assert engine.memory["c"][:3].tolist() == [2, 2, 1]

    def test_same_address_cas_chain(self, engine):
        """Ladder expected values let multiple CASes win in one burst."""
        engine.memory.alloc("c", 1)

        def kernel(ctx):
            expected = np.array([0, 1, 2, 5], dtype=np.int64)
            op = AtomicRMW(
                "c",
                np.zeros(4, dtype=np.int64),
                AtomicKind.CAS,
                expected,
                expected + 1,
            )
            yield op
            assert op.success.tolist() == [True, True, True, False]

        engine.launch(kernel, 1)
        assert engine.memory["c"][0] == 3


class TestControlFlow:
    def test_fence_and_localop(self, engine):
        def kernel(ctx):
            yield LocalOp(4)
            yield Fence()

        res = engine.launch(kernel, 1)
        assert res.stats.lds_ops == 1
        assert res.stats.issued_ops == 2

    def test_abort_op_raises(self, engine):
        def kernel(ctx):
            yield Abort("queue full")

        with pytest.raises(KernelAbort, match="queue full"):
            engine.launch(kernel, 2)

    def test_kernel_exception_propagates(self, engine):
        def kernel(ctx):
            raise KernelAbort("boom")
            yield  # pragma: no cover

        with pytest.raises(KernelAbort, match="boom"):
            engine.launch(kernel, 1)

    def test_non_op_yield_rejected(self, engine):
        def kernel(ctx):
            yield "not an op"

        with pytest.raises(TypeError):
            engine.launch(kernel, 1)

    def test_watchdog_timeout(self, engine):
        engine.memory.alloc("flag", 1)

        def spin(ctx):
            while True:
                rd = MemRead("flag", 0)
                yield rd
                if int(rd.result[0]):
                    break

        with pytest.raises(SimulationTimeout):
            engine.launch(spin, 1, max_cycles=10_000)

    def test_deterministic(self, testgpu):
        def kernel(ctx):
            n = ctx.device.wavefront_size
            op = AtomicRMW("c", np.zeros(n, dtype=np.int64), AtomicKind.ADD, 1)
            yield op
            yield MemWrite("out", ctx.global_thread_base + ctx.lane, op.old)

        snaps = []
        for _ in range(2):
            eng = Engine(testgpu)
            eng.memory.alloc("c", 1)
            eng.memory.alloc("out", 1024)
            res = eng.launch(kernel, 6)
            snaps.append((res.cycles, eng.memory["out"].tolist()))
        assert snaps[0] == snaps[1]

    def test_params_passed_to_context(self, engine):
        seen = {}

        def kernel(ctx):
            seen["x"] = ctx.params["x"]
            seen["wf"] = ctx.wf_id
            seen["n"] = ctx.n_wavefronts
            yield Compute(1)

        engine.launch(kernel, 3, params={"x": 42})
        assert seen["x"] == 42
        assert seen["n"] == 3
