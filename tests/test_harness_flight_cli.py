"""The ``--flight`` harness surface: watch, postmortem, live telemetry."""

from repro.harness.cli import main
from repro.harness.postmortem import postmortem_main
from repro.harness.watch import watch_main
from repro.obs.flight import build_postmortem, write_postmortem
from repro.obs.runlog import read_runlog
from repro.simt import QueueFullError


class TestFlightFlag:
    def test_flight_run_emits_snapshots_and_stays_identical(
        self, tmp_path, capsys
    ):
        # fig1 actually simulates launches (tab1/tab2 are pure dataset
        # statistics, so they would never touch the flight recorder).
        log_plain = tmp_path / "plain.jsonl"
        log_flight = tmp_path / "flight.jsonl"
        assert main(
            ["fig1", "--quick", "--no-ledger",
             "--run-log", str(log_plain)]
        ) == 0
        plain_out = capsys.readouterr().out
        assert main(
            ["fig1", "--quick", "--no-ledger", "--flight",
             "--run-log", str(log_flight),
             "--postmortem-dir", str(tmp_path / "pm")]
        ) == 0
        flight_out = capsys.readouterr().out

        # the recorder is passive: stdout reports are byte-identical
        # (modulo the wall-clock "regenerated in Xs" footer line)
        def report_lines(text):
            return [
                ln for ln in text.splitlines()
                if "regenerated in" not in ln
            ]

        assert report_lines(flight_out) == report_lines(plain_out)

        events = read_runlog(str(log_flight))
        kinds = [ev["event"] for ev in events]
        assert "snapshot" in kinds
        snap = next(ev for ev in events if ev["event"] == "snapshot")
        assert snap["cycle"] > 0
        assert snap["queues"]
        assert "deliveries" in snap
        # a healthy run writes no postmortem bundles
        assert not list((tmp_path / "pm").glob("*.json")) \
            if (tmp_path / "pm").exists() else True

    def test_flight_with_profile_is_ignored_with_message(
        self, tmp_path, capsys
    ):
        assert main(
            ["tab1", "--quick", "--no-ledger", "--flight", "--profile"]
        ) == 0
        err = capsys.readouterr().err
        assert "--flight is ignored with --profile" in err


class TestWatchCli:
    def test_once_renders_a_frame(self, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        assert main(
            ["fig1", "--quick", "--no-ledger", "--flight",
             "--run-log", str(log)]
        ) == 0
        capsys.readouterr()
        assert watch_main([str(log), "--once"]) == 0
        out = capsys.readouterr().out
        assert "DONE" in out
        assert "groups" in out
        assert "queue fill:" in out
        assert "delivered" in out

    def test_once_missing_file_exits_one(self, tmp_path, capsys):
        assert watch_main([str(tmp_path / "nope.jsonl"), "--once"]) == 1
        assert "no runlog" in capsys.readouterr().err

    def test_loop_stops_on_run_finished(self, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        assert main(
            ["tab1", "--quick", "--no-ledger", "--run-log", str(log)]
        ) == 0
        capsys.readouterr()
        # the log already records run_finished: the loop exits after
        # its first frame without sleeping forever.
        assert watch_main([str(log), "--no-clear",
                           "--interval", "0.01"]) == 0


class TestPostmortemCli:
    def _bundle_dir(self, tmp_path):
        err = QueueFullError(
            "queue full: queue 'wq' fill 64/64",
            queue="wq", capacity=64, fill=64,
        )
        bundle = build_postmortem(error=err, config={"experiments": ["x"]})
        write_postmortem(bundle, str(tmp_path))
        return tmp_path

    def test_show_renders_newest_bundle(self, tmp_path, capsys):
        d = self._bundle_dir(tmp_path)
        assert postmortem_main(["show", "--dir", str(d)]) == 0
        out = capsys.readouterr().out
        assert "QueueFullError" in out
        assert "fill 64/64" in out

    def test_show_empty_dir_exits_one(self, tmp_path, capsys):
        assert postmortem_main(["show", "--dir", str(tmp_path)]) == 1
        assert "no bundles" in capsys.readouterr().err

    def test_report_lists_bundles(self, tmp_path, capsys):
        d = self._bundle_dir(tmp_path)
        assert postmortem_main(["report", str(d)]) == 0
        out = capsys.readouterr().out
        assert "QueueFullError" in out
        assert "queue=wq" in out
        assert "fill=64/64" in out

    def test_show_unreadable_bundle_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "postmortem-bad.json"
        bad.write_text("{not json")
        assert postmortem_main(["show", str(bad)]) == 1
        assert "postmortem:" in capsys.readouterr().err
