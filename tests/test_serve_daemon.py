"""In-process daemon tests: HTTP API, lifecycle, robustness (fast).

These drive a real :class:`ServeDaemon` (real sockets, real worker
threads, real job processes) but with ``canary`` specs only, so the
whole file stays in the fast shard.  The slow end-to-end harness job
(byte-identity vs a direct CLI run) lives in ``test_serve_e2e.py``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.serve import JobTimeout, ServeClient, ServeDaemon, ServeError
from repro.serve.store import JobStore


@pytest.fixture
def daemon(tmp_path):
    d = ServeDaemon(
        data_dir=tmp_path / "serve", port=0, workers=2,
        poll_interval=0.05, quiet=True,
    )
    d.pool.backoff_base = 0.05  # fast retries for the test clock
    d.start()
    yield d
    d.stop()


@pytest.fixture
def client(daemon):
    return ServeClient(daemon.url)


def wait_running(client, job_id, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = client.get(job_id)
        if job["state"] != "queued":
            return job
        time.sleep(0.02)
    raise AssertionError(f"{job_id} never left queued")


# ----------------------------------------------------------------------
# happy path + API surface
# ----------------------------------------------------------------------
def test_health_and_metrics(client):
    health = client.health()
    assert health["ok"] is True
    assert health["workers"] == 2
    metrics = client.metrics()
    assert metrics["queue_depth"] == 0
    assert "counts" in metrics


def test_submit_run_fetch_result(client):
    job = client.submit({"kind": "canary", "seconds": 0.05})
    assert job["state"] == "queued"
    job = client.wait(job["id"], timeout=15)
    assert job["state"] == "done"
    assert job["result"]["ok"] is True
    assert job["result"]["slept_seconds"] == 0.05
    files = client.artifacts(job["id"])["files"]
    assert any(f["name"] == "result.json" for f in files)
    raw = client.fetch_artifact(job["id"], "result.json")
    assert json.loads(raw)["ok"] is True


def test_list_and_status(client):
    a = client.submit({"kind": "canary", "seconds": 0.02})
    client.wait(a["id"], timeout=15)
    jobs = client.list_jobs()
    assert a["id"] in [j["id"] for j in jobs]
    assert client.get(a["id"])["state"] == "done"
    assert client.list_jobs(state="failed") == []


def test_submission_validation(client):
    with pytest.raises(ServeError) as exc:
        client.submit({"kind": "harness", "experiments": ["nope"]})
    assert exc.value.status == 400
    with pytest.raises(ServeError):
        client.submit({"kind": "bogus"})
    with pytest.raises(ServeError):
        client.submit({"kind": "canary", "bad_field": 1})
    with pytest.raises(ServeError):
        client.submit({"kind": "canary"}, max_retries=-1)
    with pytest.raises(ServeError):
        client.submit({"kind": "canary"}, timeout_s=0)


def test_unknown_job_404(client):
    with pytest.raises(ServeError) as exc:
        client.get("job-doesnotexist")
    assert exc.value.status == 404
    with pytest.raises(ServeError):
        client.cancel("job-doesnotexist")


def test_artifact_path_traversal_refused(client):
    job = client.submit({"kind": "canary", "seconds": 0})
    client.wait(job["id"], timeout=15)
    with pytest.raises(ServeError) as exc:
        client.fetch_artifact(job["id"], "../../jobs.sqlite")
    assert exc.value.status == 404


def test_idempotent_submission_over_http(client):
    a = client.submit({"kind": "canary", "seconds": 0.02}, idem_key="once")
    b = client.submit({"kind": "canary", "seconds": 0.02}, idem_key="once")
    assert b["id"] == a["id"]
    assert b["resubmitted"] is True


# ----------------------------------------------------------------------
# cancellation interrupts, timeout bounds, retry recovers
# ----------------------------------------------------------------------
def test_cancel_queued_never_runs(daemon, client):
    daemon.pool.stop()  # no workers: the job stays queued
    job = client.submit({"kind": "canary", "seconds": 10})
    out = client.cancel(job["id"])
    assert out["state"] == "cancelled"
    assert client.get(job["id"])["state"] == "cancelled"


def test_cancel_interrupts_running_job(client):
    job = client.submit({"kind": "canary", "seconds": 60})
    wait_running(client, job["id"])
    t0 = time.monotonic()
    client.cancel(job["id"])
    job = client.wait(job["id"], timeout=15)
    elapsed = time.monotonic() - t0
    assert job["state"] == "cancelled"
    # a 60s job died in a few poll intervals, not at its own pace
    assert elapsed < 30


def test_timeout_kills_and_reports(client):
    job = client.submit({"kind": "canary", "seconds": 60}, timeout_s=0.3)
    job = client.wait(job["id"], timeout=20)
    assert job["state"] == "failed"
    assert "timeout" in job["error"]


def test_retry_with_backoff_eventually_succeeds(client):
    job = client.submit(
        {"kind": "canary", "seconds": 0.02, "fail_attempts": 2},
        max_retries=3,
    )
    job = client.wait(job["id"], timeout=30)
    assert job["state"] == "done"
    assert job["attempts"] == 3
    assert job["retries"] == 2


def test_retry_budget_exhausted_fails(client):
    job = client.submit(
        {"kind": "canary", "seconds": 0.02, "fail_attempts": 99},
        max_retries=1,
    )
    job = client.wait(job["id"], timeout=30)
    assert job["state"] == "failed"
    assert job["attempts"] == 2
    assert "canary scripted to fail" in job["error"]
    # the failed attempt's payload survives on the record
    assert job["result"]["ok"] is False
    assert job["result"]["error_type"] == "CanaryFailure"


def test_priority_orders_execution(tmp_path):
    """With one worker busy, the high-priority job jumps the queue."""
    daemon = ServeDaemon(
        data_dir=tmp_path / "serve1", port=0, workers=1,
        poll_interval=0.05, quiet=True,
    )
    daemon.start()
    try:
        client = ServeClient(daemon.url)
        blocker = client.submit({"kind": "canary", "seconds": 0.6})
        low = client.submit({"kind": "canary", "seconds": 0.02}, priority=0)
        high = client.submit({"kind": "canary", "seconds": 0.02}, priority=9)
        for jid in (blocker["id"], low["id"], high["id"]):
            client.wait(jid, timeout=30)
        t_low = client.get(low["id"])["started_at"]
        t_high = client.get(high["id"])["started_at"]
        assert t_high < t_low
    finally:
        daemon.stop()


# ----------------------------------------------------------------------
# shutdown and crash recovery
# ----------------------------------------------------------------------
def test_graceful_shutdown_requeues_in_flight(tmp_path):
    data = tmp_path / "serve2"
    daemon = ServeDaemon(data_dir=data, port=0, workers=1,
                         poll_interval=0.05, quiet=True)
    daemon.start()
    client = ServeClient(daemon.url)
    job = client.submit({"kind": "canary", "seconds": 60})
    wait_running(client, job["id"])
    daemon.stop()
    store = JobStore(data / "jobs.sqlite")
    row = store.get(job["id"])
    assert row["state"] == "queued"
    assert row["retries"] == 0
    assert "shutdown" in row["error"]


def test_restart_completes_orphaned_job(tmp_path):
    """Crash (simulated), restart: the orphan requeues and finishes."""
    data = tmp_path / "serve3"
    store = JobStore(data / "jobs.sqlite")
    job = store.submit({"kind": "canary", "seconds": 0.05})
    store.claim("w-dead")  # a daemon that never came back
    assert store.get(job["id"])["state"] == "running"
    daemon = ServeDaemon(data_dir=data, port=0, workers=1,
                         poll_interval=0.05, quiet=True)
    daemon.start()
    try:
        client = ServeClient(daemon.url)
        out = client.wait(job["id"], timeout=20)
        assert out["state"] == "done"
        assert out["attempts"] == 2  # the dead claim plus the real one
    finally:
        daemon.stop()


def test_shutdown_endpoint_requests_drain(daemon, client):
    client.shutdown()
    assert daemon._shutdown_requested.wait(5.0)


# ----------------------------------------------------------------------
# job-level metrics
# ----------------------------------------------------------------------
def test_metrics_track_lifecycle(client):
    done = client.submit({"kind": "canary", "seconds": 0.02})
    client.wait(done["id"], timeout=15)
    flaky = client.submit(
        {"kind": "canary", "seconds": 0.02, "fail_attempts": 1},
        max_retries=1,
    )
    client.wait(flaky["id"], timeout=30)
    victim = client.submit({"kind": "canary", "seconds": 60})
    wait_running(client, victim["id"])
    client.cancel(victim["id"])
    client.wait(victim["id"], timeout=15)

    payload = client.metrics()
    metrics = payload["metrics"]
    assert payload["counts"]["done"] == 2
    assert payload["counts"]["cancelled"] == 1
    assert payload["total_retries"] == 1
    assert metrics["serve.retries"] == 1
    assert metrics["serve.cancelled"] == 1
    assert metrics["serve.claims"] >= 4
    assert metrics["serve.wait_seconds.count"] >= 4
    assert metrics["serve.exec_seconds.count"] >= 4
    assert metrics["serve.queue.depth"] == 0
    assert metrics["serve.jobs"] >= 0  # gauge family exists


def test_wait_times_out(client):
    job = client.submit({"kind": "canary", "seconds": 30})
    with pytest.raises(JobTimeout):
        client.wait(job["id"], timeout=0.3, poll=0.05)
    client.cancel(job["id"])
