"""Tests for the dataset registry: every stand-in must reproduce the
category signature the paper's evaluation depends on."""

import pytest

from repro.graphs import (
    ALL_DATASETS,
    CHAI_DATASETS,
    PAPER_DATASETS,
    RODINIA_DATASETS,
    dataset,
    eccentricity,
    level_profile,
    load_dataset,
    paper_dataset_names,
    reachable_count,
)

# a tiny scale used to keep these tests fast; category shape must survive
TINY = {
    "Synthetic": 1 / 2000,
    "gplus_combined": 1 / 40,
    "soc-LiveJournal1": 1 / 800,
    "USA-road-d.NY": 1 / 64,
    "USA-road-d.LKS": 1 / 512,
    "USA-road-d.USA": 1 / 4096,
    "NYR_input": 1 / 64,
    "USA-road-d.BAY": 1 / 64,
    "graph4096": 1.0,
    "graph65536": 1 / 8,
    "graph1MW_6": 1 / 64,
}


class TestRegistry:
    def test_paper_dataset_names_order(self):
        assert paper_dataset_names() == [
            "Synthetic",
            "gplus_combined",
            "soc-LiveJournal1",
            "USA-road-d.NY",
            "USA-road-d.LKS",
            "USA-road-d.USA",
        ]

    def test_all_registries_disjoint_union(self):
        assert set(ALL_DATASETS) == (
            set(PAPER_DATASETS) | set(CHAI_DATASETS) | set(RODINIA_DATASETS)
        )

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            dataset("no-such-graph")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            dataset("Synthetic").build(0)

    @pytest.mark.parametrize("name", sorted(ALL_DATASETS))
    def test_builds_and_named(self, name):
        g = load_dataset(name, scale=TINY[name])
        assert g.name == name
        assert g.n_vertices > 0
        assert g.n_edges > 0


class TestCategoryShapes:
    def test_synthetic_saturates(self):
        spec = dataset("Synthetic")
        g = spec.build(TINY["Synthetic"])
        prof = level_profile(g, spec.source)
        assert prof[0] == 1 and prof[1] == 4  # fanout-4 growth
        assert reachable_count(g, spec.source) == g.n_vertices

    @pytest.mark.parametrize("name", ["gplus_combined", "soc-LiveJournal1"])
    def test_social_shallow_heavy_tail(self, name):
        spec = dataset(name)
        g = spec.build(TINY[name])
        s = g.degree_stats()
        assert s.std > s.avg  # Table 1's signature
        assert eccentricity(g, spec.source) <= 8

    @pytest.mark.parametrize(
        "name",
        ["USA-road-d.NY", "USA-road-d.LKS", "USA-road-d.USA",
         "NYR_input", "USA-road-d.BAY"],
    )
    def test_roadmaps_deep_sparse(self, name):
        spec = dataset(name)
        g = spec.build(TINY[name])
        s = g.degree_stats()
        assert s.max <= 9  # Table 2 envelope
        assert 2.0 <= s.avg <= 3.2
        side = int(g.n_vertices ** 0.5)
        assert eccentricity(g, spec.source) >= side  # deep

    @pytest.mark.parametrize(
        "name", ["graph4096", "graph65536", "graph1MW_6"]
    )
    def test_rodinia_shallow(self, name):
        spec = dataset(name)
        g = spec.build(TINY[name])
        assert eccentricity(g, spec.source) <= 11  # §6.4.2

    def test_roadmap_size_ladder_preserved(self):
        """NY < LKS < USA at any common scale (the paper's size ladder)."""
        sizes = [
            dataset(n).build(1 / 1024).n_vertices
            for n in ("USA-road-d.NY", "USA-road-d.LKS", "USA-road-d.USA")
        ]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[2]
