"""Differential testing across the whole queue family.

A hypothesis-style seeded driver: a pinned PRNG generates workload /
launch-geometry / schedule configurations, and every configuration is
run through **all five** queue implementations — ``RF/AN``, ``AN``,
``BASE``, ``NAIVE``, and ``SHARDED(shards=1)``.  The workloads are
deterministic task graphs, so regardless of dequeue order every correct
queue must deliver exactly the same *multiset* of tokens; each run also
passes through the full invariant oracle (per-variant FIFO windows,
reservation accounting, conservation).

Disagreement handling mirrors ``python -m repro.verify``: the failing
scenario is greedily shrunk (oracle findings) or serialized as-is
(cross-variant disagreements) into a replayable counterexample artifact,
and the assertion message carries its path —
``python -m repro.verify replay <file>`` reproduces the run.

Everything is seeded; the suite is deterministic and fast enough for the
PR-gate test shard (no ``slow`` marker).
"""

import os
import random
import tempfile

import pytest

from repro.verify.scenario import Outcome, Scenario, run_scenario
from repro.verify.shrink import (
    SCHEMA,
    counterexample_dict,
    shrink,
    write_counterexample,
)

#: the queue family under differential test.  SHARDED is pinned to its
#: single-shard configuration here: the multi-shard compositions get
#: their own oracle (MultiQueueOracle) and exploration plan.
FAMILY = ("RF/AN", "AN", "BASE", "NAIVE", "SHARDED")

#: the adaptive-capacity variants ride the same configurations: given
#: ample capacity they must be behaviourally invisible — the identical
#: delivered multiset — while still exercising segment linking (GROW
#: always starts with only segment 0 host-mapped) and the spill gate.
ADAPTIVE = ("GROW", "SPILL")

SEED = 0xD1FF
N_CONFIGS = 12


def _configs(seed: int, n: int):
    """Seeded deterministic configuration generator."""
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        workload = rng.choice(("countdown", "fanout"))
        scale = (
            rng.choice((6, 12, 24))
            if workload == "countdown"
            else rng.choice((31, 63, 127))
        )
        n_wf = rng.choice((2, 4, 6))
        if rng.random() < 0.25:
            schedule = None  # engine-native order
        else:
            schedule = {
                "kind": "random",
                "seed": rng.randrange(10_000),
                "hold_prob": rng.choice((0.1, 0.15, 0.25)),
                "burst": rng.choice((24, 48, 96)),
            }
        out.append((workload, scale, n_wf, schedule))
    return out


def _scenario(variant, workload, scale, n_wf, schedule) -> Scenario:
    extra = {}
    if variant == "GROW":
        # multi-segment geometry so device-side linking actually runs
        # (pool_segments derives from capacity / seg_cap)
        extra = dict(seg_cap=16)
    return Scenario(
        variant=variant, workload=workload, scale=scale,
        n_wavefronts=n_wf, schedule=schedule, max_work_cycles=5_000,
        **extra,
    )


def _dump_oracle_finding(out: Outcome) -> str:
    """Shrink an oracle finding and write the replayable artifact."""
    sc, shrunk, runs = shrink(out, budget=30)
    d = tempfile.mkdtemp(prefix="queue-diff-")
    path = os.path.join(d, f"counterexample-{shrunk.invariant}.json")
    write_counterexample(path, counterexample_dict(out, sc, shrunk, runs))
    return path


def _dump_disagreement(sc: Scenario, detail: str) -> str:
    """Serialize a cross-variant disagreement as a replayable artifact.

    There is no single oracle invariant to shrink against — the run
    itself verified clean — so the scenario is written unshrunken under
    a synthetic invariant name.
    """
    d = tempfile.mkdtemp(prefix="queue-diff-")
    path = os.path.join(d, "counterexample-differential-disagreement.json")
    write_counterexample(path, {
        "schema": SCHEMA,
        "invariant": "differential-disagreement",
        "detail": detail,
        "scenario": sc.to_dict(),
        "original_scenario": sc.to_dict(),
        "original_detail": detail,
        "shrink_runs": 0,
        "replay": "python -m repro.verify replay <this-file>",
    })
    return path


@pytest.mark.parametrize(
    "workload,scale,n_wf,schedule",
    _configs(SEED, N_CONFIGS),
    ids=[f"cfg{i}" for i in range(N_CONFIGS)],
)
def test_queue_family_delivers_identical_multisets(
    workload, scale, n_wf, schedule
):
    reference = None
    ref_variant = None
    for variant in FAMILY + ADAPTIVE:
        sc = _scenario(variant, workload, scale, n_wf, schedule)
        out = run_scenario(sc)
        if not out.ok:
            path = _dump_oracle_finding(out)
            pytest.fail(
                f"{variant} failed its own invariants on {sc.label()}: "
                f"[{out.invariant}] {out.detail}\n  artifact: {path}"
            )
        assert out.delivered_counts, (
            f"{variant} delivered nothing on {sc.label()}"
        )
        if reference is None:
            reference, ref_variant = out.delivered_counts, variant
        elif out.delivered_counts != reference:
            only_ref = {
                t: c for t, c in reference.items()
                if out.delivered_counts.get(t) != c
            }
            only_here = {
                t: c for t, c in out.delivered_counts.items()
                if reference.get(t) != c
            }
            detail = (
                f"{variant} disagrees with {ref_variant} on "
                f"{sc.label()}: {ref_variant} only {only_ref}, "
                f"{variant} only {only_here}"
            )
            path = _dump_disagreement(sc, detail)
            pytest.fail(f"{detail}\n  artifact: {path}")


class TestAdaptiveOutliveBareCapacity:
    """The graceful-capacity contract: under a buffer every bare variant
    overflows, GROW and SPILL must deliver the *identical* multiset a
    roomy run would — and do it bit-identically across reruns.

    countdown/20 stores 60 tokens through 24 slots: monotonic bare
    variants hit queue-full, GROW recycles drained segments, SPILL's
    ring plus host backpressure absorbs the overflow.
    """

    # 2 wavefronts = 16 resident lanes on TESTGPU: SPILL's 24-slot ring
    # must exceed resident-lane demand (§4.2), so keep the launch narrow.
    WORKLOAD, SCALE, N_WF, CAP = "countdown", 20, 2, 24

    def _adaptive_scenario(self, variant) -> Scenario:
        extra = (
            dict(seg_cap=8, pool_segments=3)
            if variant == "GROW"
            else dict(spill_capacity=1024, high_water=10, low_water=6)
        )
        return Scenario(
            variant=variant, workload=self.WORKLOAD, scale=self.SCALE,
            n_wavefronts=self.N_WF, capacity=self.CAP,
            max_work_cycles=5_000, **extra,
        )

    @pytest.mark.parametrize("variant", FAMILY)
    def test_every_bare_variant_aborts(self, variant):
        sc = Scenario(
            variant=variant, workload=self.WORKLOAD, scale=self.SCALE,
            n_wavefronts=self.N_WF, capacity=self.CAP,
            max_work_cycles=5_000, expect_full=True,
        )
        out = run_scenario(sc)
        assert out.ok, (
            f"{variant} should abort queue-full at capacity "
            f"{self.CAP}: [{out.invariant}] {out.detail}"
        )

    def test_adaptive_variants_deliver_the_roomy_multiset(self):
        # the reference is a bare run with room to spare: adaptive
        # queues under pressure must deliver exactly this multiset.
        roomy = run_scenario(Scenario(
            variant="RF/AN", workload=self.WORKLOAD, scale=self.SCALE,
            n_wavefronts=self.N_WF, max_work_cycles=5_000,
        ))
        assert roomy.ok and roomy.delivered_counts
        for variant in ADAPTIVE:
            out = run_scenario(self._adaptive_scenario(variant))
            assert out.ok, (
                f"{variant} failed under pressure: "
                f"[{out.invariant}] {out.detail}"
            )
            assert out.delivered_counts == roomy.delivered_counts, (
                f"{variant} delivered a different multiset than the "
                f"roomy bare reference"
            )

    @pytest.mark.parametrize("variant", ADAPTIVE)
    def test_bit_identical_across_reruns(self, variant):
        sc = self._adaptive_scenario(variant)
        first, second = run_scenario(sc), run_scenario(sc)
        assert first.ok and second.ok
        assert first.delivered_counts == second.delivered_counts
        assert first.cycles == second.cycles


def test_config_generator_is_pinned():
    # the whole point is reproducibility: the seeded generator must
    # produce the same plan forever (update this pin only deliberately,
    # in the same change that re-seeds the sweep).
    first = _configs(SEED, N_CONFIGS)
    again = _configs(SEED, N_CONFIGS)
    assert first == again
    workloads = [c[0] for c in first]
    assert "countdown" in workloads and "fanout" in workloads
    natives = [c for c in first if c[3] is None]
    assert natives, "plan must include at least one native-order config"


def test_disagreement_artifact_is_replayable():
    # the dump path must produce a file `python -m repro.verify replay`
    # accepts — guard the schema contract the driver relies on.
    from repro.verify.shrink import load_counterexample

    sc = _scenario("RF/AN", "countdown", 6, 2, None)
    path = _dump_disagreement(sc, "synthetic check")
    loaded, invariant = load_counterexample(path)
    assert loaded == sc
    assert invariant == "differential-disagreement"
