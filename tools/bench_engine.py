#!/usr/bin/env python3
"""Engine hot-path wall-clock benchmark — emits BENCH_engine.json.

The simulator's *results* are deterministic, so the interesting number
here is host wall-clock throughput of the discrete-event engine itself.
Two fixed workloads:

* ``soup`` — a mixed-op kernel exercising every issue path of the engine
  (compute, LDS, fence, gather, scatter, hot atomic) with precomputed
  index vectors, so event-loop overhead dominates and kernel-side NumPy
  churn does not mask it.  Reported as issued ops per second.
* ``bfs`` — one fixed persistent-BFS launch (RF/AN, Fiji, 56 workgroups
  on the NY roadmap stand-in at 1/8 harness scale): the end-to-end cost
  a harness experiment actually pays per launch.

The sharded composition gets two datapoints: ``bfs_sharded`` (same
road graph — steals never trigger, because the frontier never outruns
one shard's watchers, so it isolates the composition's bookkeeping
overhead) and ``bfs_sharded_imbalanced`` (the Synthetic plateau burst:
one wavefront floods its home shard, thieves drain it; the run fails
outright if no steal lands, so the stealing path stays exercised).

``--harness`` additionally times the full ``--quick`` harness through
:func:`repro.harness.experiments.run_many` — sequentially
(``harness_quick``) and, when ``--jobs``/cpu count allows more than one
worker, process-parallel (``harness_quick_parallel``), so the speedup
of ``--jobs N`` is itself a tracked datapoint.

Unless ``--no-ledger`` is passed, every invocation also records its
report in the run ledger (``results/ledger`` or ``$REPRO_LEDGER``; see
``python -m repro.harness runs`` and ``tools/bench_diff.py``).

Run from the repo root::

    PYTHONPATH=src python tools/bench_engine.py --out BENCH_engine.json

Pass ``--baseline other.json`` (produced by this tool on another
revision) to record speedup factors; the tool refuses to compare runs
whose simulated cycle counts differ, because a perf change that alters
simulation results is a correctness bug, not a speedup.

``--guard`` (requires ``--baseline``) turns the comparison into an
overhead gate: the run fails if any benchmark is slower than
``baseline * (1 + --guard-tolerance)``.  CI uses this to pin the
zero-cost-when-disabled contract of the observability probes — the
probes-off hot path must stay within noise of the recorded baseline.
The same gate also budgets the always-on flight recorder: the
``flight`` datapoint re-runs the ``bfs`` launch with the recorder and
liveness watchdog attached, and ``--guard`` fails when its measured
``overhead_frac`` exceeds ``--flight-budget``.

``--vector-guard`` (no baseline needed) checks measured throughput
against the absolute floors recorded in the regression-sentinel rule
table (:data:`repro.obs.regress.DEFAULT_RULES`): the CI
``bench-vector-guard`` step uses it to fail any change that loses the
vectorized execution path, which relative comparisons can miss.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.simt import (
    FIJI,
    AtomicKind,
    AtomicRMW,
    Compute,
    Engine,
    Fence,
    GlobalMemory,
    LocalOp,
    MemRead,
    MemWrite,
)
from repro.simt.engine import transactions_for

SOUP_ROUNDS = 400
SOUP_WAVEFRONTS = 56
SOUP_DATA_WORDS = 4096
BFS_DATASET = "USA-road-d.NY"
BFS_SCALE = 0.125
BFS_WORKGROUPS = 56
BFS_SHARDS = 4
BFS_STEAL_QUANTUM = 32
GROW_SEG_CAP = 512
IMB_DATASET = "Synthetic"
IMB_SCALE = 0.125


def soup_kernel(ctx):
    """Mixed op soup: every issue path, engine-bound by construction.

    Uses the same hot-loop idioms as the queue kernels (frozen address
    vector, precomputed transaction count, reused prechecked read op,
    hoisted cost-only ops) so the bench measures the engine, not op
    allocation; the simulated op stream is identical either way.
    """
    idx = (ctx.global_thread_base + ctx.lane) % SOUP_DATA_WORDS
    idx.setflags(write=False)
    tr = transactions_for(idx)
    comp = Compute(2)
    loc = LocalOp(4)
    fence = Fence()
    for i in range(SOUP_ROUNDS):
        yield comp
        # a fresh read each round: the values change every round, so a
        # parked op would never elide and would only add bookkeeping.
        yield MemRead("data", idx, trans=tr, prechecked=True)
        yield loc
        # MemWrite allocated per round: its values must stay live until
        # the buffered store commits, which can be several ops later.
        yield MemWrite("data", idx, i, trans=tr, prechecked=True)
        if i % 8 == 0:
            yield AtomicRMW("ctrl", 0, AtomicKind.ADD, 1)
        if i % 16 == 0:
            yield fence


def bench_soup(repeats: int = 3) -> dict:
    """Best-of-N wall time for the soup kernel on a fresh engine."""
    best = None
    for _ in range(repeats):
        mem = GlobalMemory()
        mem.alloc("data", SOUP_DATA_WORDS, fill=0)
        mem.alloc("ctrl", 4, fill=0)
        eng = Engine(FIJI, mem)
        t0 = time.perf_counter()
        res = eng.launch(soup_kernel, SOUP_WAVEFRONTS)
        dt = time.perf_counter() - t0
        if best is None or dt < best[0]:
            best = (dt, res)
    dt, res = best
    return {
        "seconds": round(dt, 4),
        "issued_ops": int(res.stats.issued_ops),
        "cycles": int(res.cycles),
        "ops_per_sec": int(res.stats.issued_ops / dt),
    }


def bench_bfs(repeats: int = 3) -> dict:
    """Best-of-N wall time for one fixed persistent-BFS launch."""
    from repro.bfs import run_persistent_bfs
    from repro.graphs import dataset

    spec = dataset(BFS_DATASET)
    g = spec.build(spec.default_scale * BFS_SCALE)
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        run = run_persistent_bfs(
            g, spec.source, "RF/AN", FIJI, BFS_WORKGROUPS, verify=False
        )
        dt = time.perf_counter() - t0
        if best is None or dt < best[0]:
            best = (dt, run)
    dt, run = best
    return {
        "seconds": round(dt, 4),
        "issued_ops": int(run.stats.issued_ops),
        "cycles": int(run.cycles),
        "ops_per_sec": int(run.stats.issued_ops / dt),
    }


def bench_bfs_flight(repeats: int, bare_bfs: dict) -> dict:
    """The ``bfs`` launch with the flight recorder + watchdog attached.

    The flight recorder is the one probe meant to fly on *every* run
    (``--flight``), so its overhead is a first-class datapoint:
    ``overhead_frac`` is the fractional wall-clock cost over the bare
    ``bfs`` launch measured in the same process.  The run refuses to
    report if the recorded launch's simulated results differ from the
    bare launch — recording must be passive.
    """
    from repro.bfs import run_persistent_bfs
    from repro.graphs import dataset
    from repro.obs.flight import FlightSession

    spec = dataset(BFS_DATASET)
    g = spec.build(spec.default_scale * BFS_SCALE)
    best = None
    for _ in range(repeats):
        with FlightSession(watchdog=True):
            t0 = time.perf_counter()
            run = run_persistent_bfs(
                g, spec.source, "RF/AN", FIJI, BFS_WORKGROUPS, verify=False
            )
            dt = time.perf_counter() - t0
        if best is None or dt < best[0]:
            best = (dt, run)
    dt, run = best
    if (int(run.cycles) != bare_bfs["cycles"]
            or int(run.stats.issued_ops) != bare_bfs["issued_ops"]):
        raise SystemExit(
            "flight-recorded bfs changed simulated results "
            f"(cycles {bare_bfs['cycles']} -> {int(run.cycles)}, "
            f"issued_ops {bare_bfs['issued_ops']} -> "
            f"{int(run.stats.issued_ops)}); the flight recorder must be "
            "passive"
        )
    return {
        "seconds": round(dt, 4),
        "issued_ops": int(run.stats.issued_ops),
        "cycles": int(run.cycles),
        "ops_per_sec": int(run.stats.issued_ops / dt),
        "overhead_frac": round(dt / bare_bfs["seconds"] - 1.0, 4),
    }


def bench_bfs_grow(repeats: int, bare_bfs: dict) -> dict:
    """The ``bfs`` launch through ``GrowQueue`` at a non-overflowing size.

    Same graph and geometry as ``bfs``, but the queue is the
    segment-chained GROW variant with the buffer split into
    ``GROW_SEG_CAP``-slot pool segments — small enough that the BFS
    frontier crosses several segment boundaries, so the link CAS and
    drain accounting actually run (asserted: a config drift that
    silently stopped linking would otherwise report a number that no
    longer measures the grow path).  At a capacity the workload never
    exhausts, that protocol is GROW's only extra cost, so
    ``overhead_frac`` — measured in *simulated cycles* against the bare
    ``bfs`` launch, and therefore deterministic and noise-free — is the
    price of graceful capacity when you do not need it.  ``--guard``
    fails the run when it exceeds ``--grow-budget``.
    """
    from repro.bfs import run_persistent_bfs
    from repro.bfs.common import bfs_queue_capacity
    from repro.core import GrowQueue
    from repro.graphs import dataset

    spec = dataset(BFS_DATASET)
    g = spec.build(spec.default_scale * BFS_SCALE)
    cap = bfs_queue_capacity(g, FIJI, BFS_WORKGROUPS)

    def factory(_cap):
        return GrowQueue(_cap, seg_cap=GROW_SEG_CAP)

    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        run = run_persistent_bfs(
            g, spec.source, "GROW", FIJI, BFS_WORKGROUPS,
            verify=False, queue_factory=factory, capacity=cap,
        )
        dt = time.perf_counter() - t0
        if best is None or dt < best[0]:
            best = (dt, run)
    dt, run = best
    links = int(run.stats.custom.get("queue.grow.segment_links", 0))
    if links <= 0:
        raise SystemExit(
            "bfs_grow linked no segments — the config no longer "
            "exercises the segment-chaining path"
        )
    return {
        "seconds": round(dt, 4),
        "issued_ops": int(run.stats.issued_ops),
        "cycles": int(run.cycles),
        "ops_per_sec": int(run.stats.issued_ops / dt),
        "segment_links": links,
        "segment_releases": int(
            run.stats.custom.get("queue.grow.segment_releases", 0)
        ),
        "overhead_frac": round(
            run.cycles / bare_bfs["cycles"] - 1.0, 4
        ),
    }


def bench_bfs_sharded(repeats: int = 3) -> dict:
    """Best-of-N wall time for the same BFS launch on a sharded queue.

    Same graph and geometry as ``bfs``, but through ``ShardedQueue``
    (4 shards, stealing on) and the fused-accounting sharded persistent
    kernel — the engine cost of the multi-queue composition is its own
    tracked datapoint.
    """
    from repro.bfs import run_persistent_bfs
    from repro.bfs.common import bfs_queue_capacity
    from repro.core import ShardedQueue
    from repro.graphs import dataset

    spec = dataset(BFS_DATASET)
    g = spec.build(spec.default_scale * BFS_SCALE)
    cap = bfs_queue_capacity(g, FIJI, BFS_WORKGROUPS)
    per_shard = cap // BFS_SHARDS + max(64, 16 * BFS_STEAL_QUANTUM)

    def factory(_cap):
        return ShardedQueue(
            per_shard, n_shards=BFS_SHARDS, steal=True,
            steal_quantum=BFS_STEAL_QUANTUM, spin_threshold=1,
        )

    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        run = run_persistent_bfs(
            g, spec.source, "SHARDED", FIJI, BFS_WORKGROUPS,
            verify=False, queue_factory=factory, capacity=cap,
        )
        dt = time.perf_counter() - t0
        if best is None or dt < best[0]:
            best = (dt, run)
    dt, run = best
    return {
        "seconds": round(dt, 4),
        "issued_ops": int(run.stats.issued_ops),
        "cycles": int(run.cycles),
        "ops_per_sec": int(run.stats.issued_ops / dt),
        "steal_hits": int(run.stats.custom.get("queue.steal_hits", 0)),
    }


def bench_bfs_sharded_imbalanced(repeats: int = 3) -> dict:
    """Sharded BFS under an imbalanced frontier — steals must land.

    The road-graph ``bfs_sharded`` config never steals: its frontier
    grows slowly, so every published token is reserved by a watcher on
    the publishing wavefront's home shard before any surplus forms.
    Here the Synthetic plateau makes the source's expansion flood one
    shard with thousands of tokens at once — far more than that shard's
    resident lanes — so thieves on the other shards find surplus and
    the cross-shard transfer path is what this datapoint times.

    The run *asserts* ``steal_hits > 0``: a configuration drift that
    silently stopped stealing would otherwise keep reporting a number
    that no longer measures the steal path.
    """
    from repro.bfs import run_persistent_bfs
    from repro.bfs.common import bfs_queue_capacity
    from repro.core import ShardedQueue
    from repro.graphs import dataset

    spec = dataset(IMB_DATASET)
    g = spec.build(spec.default_scale * IMB_SCALE)
    cap = bfs_queue_capacity(g, FIJI, BFS_WORKGROUPS)
    per_shard = cap // BFS_SHARDS + max(64, 16 * BFS_STEAL_QUANTUM)

    def factory(_cap):
        return ShardedQueue(
            per_shard, n_shards=BFS_SHARDS, steal=True,
            steal_quantum=BFS_STEAL_QUANTUM, spin_threshold=1,
        )

    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        run = run_persistent_bfs(
            g, spec.source, "SHARDED", FIJI, BFS_WORKGROUPS,
            verify=False, queue_factory=factory, capacity=cap,
        )
        dt = time.perf_counter() - t0
        if best is None or dt < best[0]:
            best = (dt, run)
    dt, run = best
    steal_hits = int(run.stats.custom.get("queue.steal_hits", 0))
    if steal_hits <= 0:
        raise SystemExit(
            "bfs_sharded_imbalanced produced no steal hits — the "
            "imbalanced-frontier config no longer exercises the "
            "stealing path"
        )
    return {
        "seconds": round(dt, 4),
        "issued_ops": int(run.stats.issued_ops),
        "cycles": int(run.cycles),
        "ops_per_sec": int(run.stats.issued_ops / dt),
        "steal_hits": steal_hits,
        "steal_attempts": int(
            run.stats.custom.get("queue.steal_attempts", 0)
        ),
    }


def bench_harness(jobs: int) -> dict:
    """Wall time for the full --quick harness via run_many."""
    from repro.harness import HarnessConfig
    from repro.harness.experiments import EXPERIMENTS, run_many

    cfg = HarnessConfig(quick=True)
    t0 = time.perf_counter()
    run_many(cfg, list(EXPERIMENTS), jobs=jobs)
    return {"seconds": round(time.perf_counter() - t0, 1), "jobs": jobs}


def record_in_ledger(report: dict, wall: float, argv) -> None:
    """File this bench run in the run ledger (best-effort)."""
    from repro.obs.ledger import Ledger
    from repro.obs.regress import flatten_metrics

    entry = Ledger().record(
        kind="bench_engine",
        config={
            "soup_rounds": SOUP_ROUNDS,
            "soup_wavefronts": SOUP_WAVEFRONTS,
            "bfs_dataset": BFS_DATASET,
            "bfs_scale": BFS_SCALE,
            "bfs_workgroups": BFS_WORKGROUPS,
            "bfs_shards": BFS_SHARDS,
            "grow_seg_cap": GROW_SEG_CAP,
            "benchmarks": sorted(report["benchmarks"]),
        },
        metrics=flatten_metrics(report["benchmarks"]),
        wall_seconds=wall,
        argv=list(argv) if argv else None,
    )
    print(f"ledger: recorded run {entry['run_id']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_engine.json", metavar="FILE")
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="BENCH_engine.json from another revision; adds speedups",
    )
    parser.add_argument(
        "--harness", action="store_true",
        help="also time the full --quick harness (minutes)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes for --harness (default: cpu count)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="single repetition per workload (CI mode)",
    )
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="skip recording this bench run in the run ledger",
    )
    parser.add_argument(
        "--vector-guard", action="store_true",
        help=(
            "fail if any throughput falls below its absolute floor from "
            "the regression-sentinel rule table (repro.obs.regress); "
            "catches the vectorized hot path degenerating to the scalar "
            "reference loop, with or without a --baseline"
        ),
    )
    parser.add_argument(
        "--guard", action="store_true",
        help=(
            "fail (exit non-zero) if any benchmark runs slower than "
            "baseline * (1 + tolerance); requires --baseline"
        ),
    )
    parser.add_argument(
        "--guard-tolerance", type=float, default=0.35, metavar="FRAC",
        help=(
            "allowed slowdown fraction for --guard (default 0.35: "
            "generous, to absorb shared-CI wall-clock noise)"
        ),
    )
    parser.add_argument(
        "--grow-budget", type=float, default=0.10, metavar="FRAC",
        help=(
            "under --guard, fail if the GROW queue's simulated-cycle "
            "overhead_frac over the bare bfs launch exceeds FRAC "
            "(default 0.10: graceful capacity must cost <=10%% when "
            "the buffer never overflows; cycles-based, so noise-free)"
        ),
    )
    parser.add_argument(
        "--flight-budget", type=float, default=1.0, metavar="FRAC",
        help=(
            "under --guard, fail if the flight recorder's measured "
            "overhead_frac exceeds FRAC (default 1.0: the recorded "
            "launch may cost at most 2x the bare launch; generous for "
            "shared-CI noise — the local figure is far lower)"
        ),
    )
    args = parser.parse_args(argv)
    if args.guard and not args.baseline:
        parser.error("--guard requires --baseline")
    repeats = 1 if args.quick else 3
    t_start = time.perf_counter()

    report = {
        "generated_by": "tools/bench_engine.py",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": {},
    }
    print(f"soup kernel ({repeats} repeat(s))...")
    report["benchmarks"]["soup"] = bench_soup(repeats)
    print(f"  {report['benchmarks']['soup']}")
    print(f"fixed BFS launch ({repeats} repeat(s))...")
    report["benchmarks"]["bfs"] = bench_bfs(repeats)
    print(f"  {report['benchmarks']['bfs']}")
    print(f"flight-recorded BFS launch ({repeats} repeat(s))...")
    report["benchmarks"]["flight"] = bench_bfs_flight(
        repeats, report["benchmarks"]["bfs"]
    )
    print(f"  {report['benchmarks']['flight']}")
    print(f"grow-queue BFS launch ({repeats} repeat(s))...")
    report["benchmarks"]["bfs_grow"] = bench_bfs_grow(
        repeats, report["benchmarks"]["bfs"]
    )
    print(f"  {report['benchmarks']['bfs_grow']}")
    print(f"fixed sharded BFS launch ({repeats} repeat(s))...")
    report["benchmarks"]["bfs_sharded"] = bench_bfs_sharded(repeats)
    print(f"  {report['benchmarks']['bfs_sharded']}")
    print(f"imbalanced-frontier sharded BFS ({repeats} repeat(s))...")
    report["benchmarks"]["bfs_sharded_imbalanced"] = (
        bench_bfs_sharded_imbalanced(repeats)
    )
    print(f"  {report['benchmarks']['bfs_sharded_imbalanced']}")
    if args.harness:
        import os

        jobs = args.jobs or os.cpu_count() or 1
        # sequential first (the long-standing datapoint), then the
        # parallel speedup datapoint when more than one worker is usable.
        print("--quick harness with --jobs 1 (this takes minutes)...")
        report["benchmarks"]["harness_quick"] = bench_harness(1)
        print(f"  {report['benchmarks']['harness_quick']}")
        if jobs > 1:
            print(f"--quick harness with --jobs {jobs}...")
            report["benchmarks"]["harness_quick_parallel"] = bench_harness(jobs)
            print(f"  {report['benchmarks']['harness_quick_parallel']}")

    if args.vector_guard:
        from repro.obs.regress import DEFAULT_RULES, check_floors, flatten_metrics

        flat = flatten_metrics(report["benchmarks"])
        violations = check_floors(flat)
        floors = {
            r.pattern: r.floor
            for r in DEFAULT_RULES
            if r.floor is not None and r.pattern in flat
        }
        report["vector_guard"] = {
            "floors": floors,
            "passed": not violations,
            "violations": {
                name: {"value": v, "floor": f}
                for name, (v, f) in violations.items()
            },
        }
        if violations:
            Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
            detail = ", ".join(
                f"{name}={v} < floor {f}"
                for name, (v, f) in violations.items()
            )
            raise SystemExit(f"vector guard failed: {detail}")
        print(f"vector guard passed (floors: {floors})")

    if args.baseline:
        base = json.loads(Path(args.baseline).read_text())
        report["baseline"] = base["benchmarks"]
        speedup = {}
        for name, cur in report["benchmarks"].items():
            ref = base["benchmarks"].get(name)
            if not ref:
                continue
            for key in ("cycles", "issued_ops"):
                if key in ref and ref[key] != cur[key]:
                    raise SystemExit(
                        f"{name}: simulated {key} changed "
                        f"({ref[key]} -> {cur[key]}); refusing to report a "
                        "speedup over a run with different results"
                    )
            speedup[name] = round(ref["seconds"] / cur["seconds"], 2)
        report["speedup_vs_baseline"] = speedup
        print(f"speedup vs {args.baseline}: {speedup}")

        if args.guard:
            tol = args.guard_tolerance
            slow = {
                name: f"{cur['seconds']}s vs {base['benchmarks'][name]['seconds']}s"
                for name, cur in report["benchmarks"].items()
                if name in base["benchmarks"]
                and cur["seconds"]
                > base["benchmarks"][name]["seconds"] * (1.0 + tol)
            }
            report["guard"] = {
                "tolerance": tol,
                "passed": not slow,
                "regressions": slow,
            }
            if slow:
                Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
                raise SystemExit(
                    f"overhead guard failed (tolerance {tol:.0%}): {slow}"
                )
            print(f"overhead guard passed (tolerance {tol:.0%})")

            frac = report["benchmarks"]["flight"]["overhead_frac"]
            report["guard"]["flight_budget"] = args.flight_budget
            report["guard"]["flight_overhead_frac"] = frac
            if frac > args.flight_budget:
                report["guard"]["passed"] = False
                Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
                raise SystemExit(
                    f"flight-recorder overhead guard failed: "
                    f"overhead_frac {frac} > budget {args.flight_budget}"
                )
            print(
                f"flight-recorder overhead guard passed "
                f"(overhead_frac {frac} <= budget {args.flight_budget})"
            )

            gfrac = report["benchmarks"]["bfs_grow"]["overhead_frac"]
            report["guard"]["grow_budget"] = args.grow_budget
            report["guard"]["grow_overhead_frac"] = gfrac
            if gfrac > args.grow_budget:
                report["guard"]["passed"] = False
                Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
                raise SystemExit(
                    f"grow-queue overhead guard failed: simulated-cycle "
                    f"overhead_frac {gfrac} > budget {args.grow_budget}"
                )
            print(
                f"grow-queue overhead guard passed "
                f"(overhead_frac {gfrac} <= budget {args.grow_budget})"
            )

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not args.no_ledger:
        record_in_ledger(report, time.perf_counter() - t_start, argv)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
