#!/usr/bin/env python
"""Service smoke: drive a real daemon through its full contract.

This is the CI ``serve-smoke`` gate and the ``make serve-smoke``
target.  It starts ``python -m repro.serve`` as a subprocess and
checks, end to end:

``--stage basic``
    submit a tiny fig1 job → poll to completion → fetch the artifact
    and compare it **byte-for-byte** against the same config run
    directly through ``repro.harness`` machinery; exercise cancel on a
    second (long canary) job while it is *running*; assert the ledger
    entry names the job; shut the daemon down cleanly (exit 0, store
    left consistent).

``--stage crash``
    submit a long job, wait until it is running, ``kill -9`` the
    daemon, restart over the same data dir, and assert the orphaned
    job was requeued and runs to completion.

``--stage all`` (default) runs both.  Exit 0 on success; any failure
prints a diagnosis and exits 1, leaving the data dir (sqlite store +
runlog) in place for CI to upload as an artifact.
"""

from __future__ import annotations

import argparse
import filecmp
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.serve.client import ServeClient, ServeUnavailable  # noqa: E402

PORT = int(os.environ.get("SERVE_SMOKE_PORT", "8971"))
URL = f"http://127.0.0.1:{PORT}"


class SmokeFailure(AssertionError):
    pass


def check(cond: bool, message: str) -> None:
    print(f"  {'ok' if cond else 'FAIL'}: {message}")
    if not cond:
        raise SmokeFailure(message)


def start_daemon(data: Path, workers: int = 1) -> subprocess.Popen:
    # own session: kill -9 on the process group takes the daemon AND its
    # in-flight job child down together, like a machine dying would
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "start",
         "--port", str(PORT), "--data", str(data),
         "--workers", str(workers), "--poll-interval", "0.1"],
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        start_new_session=True,
    )
    try:
        ServeClient(URL).wait_ready(timeout=30)
    except ServeUnavailable:
        proc.kill()
        raise SmokeFailure("daemon never became healthy")
    print(f"  ok: daemon up (pid {proc.pid})")
    return proc


def wait_state(client, job_id, states, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = client.get(job_id)
        if job["state"] in states:
            return job
        time.sleep(0.1)
    raise SmokeFailure(
        f"{job_id} stuck in {client.get(job_id)['state']!r},"
        f" wanted {states}"
    )


def stage_basic(data: Path) -> None:
    print("[stage basic] submit → run → fetch → cancel → clean shutdown")
    reference = data / "reference"
    print("  building reference artifacts (direct harness run)...")
    from repro.harness import HarnessConfig
    from repro.harness.experiments import run_many

    for result in run_many(HarnessConfig(quick=True), ["fig1"]):
        result.save(reference)

    proc = start_daemon(data)
    client = ServeClient(URL)
    try:
        # submit → run → fetch, byte-identical to the direct run
        job = client.submit(
            {"kind": "harness", "experiments": ["fig1"], "quick": True},
            idem_key="smoke-fig1",
        )
        print(f"  submitted {job['id']}")
        job = client.wait(job["id"], timeout=600)
        check(job["state"] == "done",
              f"fig1 job completed (state={job['state']},"
              f" error={job.get('error')})")
        fetched = data / "fetched"
        paths = client.fetch_artifacts(job["id"], fetched)
        check(len(paths) >= 2, f"fetched {len(paths)} artifact file(s)")
        for name in ("fig1.txt", "fig1.json"):
            check(
                filecmp.cmp(reference / name,
                            fetched / "artifacts" / name, shallow=False),
                f"{name} byte-identical to the direct harness run",
            )
        entry_id = job["result"].get("ledger_run_id")
        check(bool(entry_id), f"ledger entry recorded ({entry_id})")

        # idempotent resubmission returns the same job
        again = client.submit(
            {"kind": "harness", "experiments": ["fig1"], "quick": True},
            idem_key="smoke-fig1",
        )
        check(again["id"] == job["id"] and again["resubmitted"],
              "idempotent resubmission dedupes")

        # cancel actually interrupts a running job
        victim = client.submit({"kind": "canary", "seconds": 300})
        wait_state(client, victim["id"], ("running",))
        t0 = time.monotonic()
        client.cancel(victim["id"])
        victim = wait_state(client, victim["id"], ("cancelled",), timeout=30)
        check(victim["state"] == "cancelled",
              f"running job cancelled in {time.monotonic() - t0:.1f}s")

        metrics = client.metrics()
        check(metrics["counts"]["done"] >= 1
              and metrics["counts"]["cancelled"] == 1,
              f"metrics consistent ({metrics['counts']})")

        # clean shutdown: drain endpoint, daemon exits 0
        client.shutdown()
        rc = proc.wait(timeout=60)
        check(rc == 0, f"daemon exited cleanly (rc={rc})")
    finally:
        if proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=30)


def stage_crash(data: Path) -> None:
    print("[stage crash] kill -9 mid-job → restart → orphan completes")
    proc = start_daemon(data)
    client = ServeClient(URL)
    try:
        job = client.submit({"kind": "canary", "seconds": 300})
        wait_state(client, job["id"], ("running",))
        print(f"  {job['id']} running; kill -9 {proc.pid} (whole group)")
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    proc = start_daemon(data)
    client = ServeClient(URL)
    try:
        row = wait_state(client, job["id"],
                         ("queued", "running", "done"), timeout=30)
        check(row["state"] in ("queued", "running", "done"),
              f"orphan requeued after restart (state={row['state']})")
        check(row["attempts"] >= 1, f"attempts preserved ({row['attempts']})")
        # don't wait out the 300s sleep: cancel proves the requeued job
        # is live under the new daemon and reaches a terminal state
        wait_state(client, job["id"], ("running",), timeout=30)
        client.cancel(job["id"])
        final = wait_state(client, job["id"], ("cancelled",), timeout=30)
        check(final["state"] == "cancelled",
              "recovered job ran and reached a terminal state")
        events = (data / "serve.jsonl").read_text()
        check("crash recovery" in events,
              "runlog records the crash recovery")
        client.shutdown()
        rc = proc.wait(timeout=60)
        check(rc == 0, f"recovered daemon exited cleanly (rc={rc})")
    finally:
        if proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=30)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--stage", choices=["basic", "crash", "all"],
                        default="all")
    parser.add_argument("--data", default="results/serve-smoke",
                        help="service data dir (kept on failure for CI)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the data dir even on success")
    args = parser.parse_args(argv)

    data = Path(args.data).resolve()
    if data.exists():
        shutil.rmtree(data)
    data.mkdir(parents=True)
    os.environ.setdefault("REPRO_LEDGER", str(data / "ledger"))

    try:
        if args.stage in ("basic", "all"):
            stage_basic(data)
        if args.stage in ("crash", "all"):
            stage_crash(data)
    except SmokeFailure as exc:
        print(f"\nserve-smoke FAILED: {exc}", file=sys.stderr)
        print(f"store + runlog left under {data} for inspection",
              file=sys.stderr)
        return 1
    print("\nserve-smoke passed")
    if not args.keep:
        shutil.rmtree(data, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
