#!/usr/bin/env python3
"""Regression sentinel CLI: diff two metric sets, fail on regressions.

Compares a *candidate* against a *baseline*, where each side is either

* a JSON file — a ``tools/bench_engine.py`` report (``benchmarks``
  payload), a run-ledger entry (``metrics`` payload), or any nested
  dict of numbers; or
* a ledger ref (``last``, ``last~1``, a run id or unique prefix) when
  the argument names no existing file — resolved against
  ``$REPRO_LEDGER`` / ``results/ledger``.

The rule table in :mod:`repro.obs.regress` decides what counts as a
regression: simulated quantities (cycles, issued ops, ``queue.*``
counters) must match **exactly** — the simulator is deterministic, so
any drift is a correctness finding — while wall-clock quantities only
fail beyond ``--tolerance`` (default 0.35, generous for noisy CI
runners).

Exit codes: 0 pass, 1 regression(s), 2 usage/load error.  CI runs::

    PYTHONPATH=src python tools/bench_diff.py BENCH_engine.json bench_now.json

as the regression gate after a fresh quick bench.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.ledger import Ledger, LedgerError  # noqa: E402
from repro.obs.regress import (  # noqa: E402
    DEFAULT_RULES,
    Rule,
    compare,
    extract_metrics,
)


def load_side(spec: str, ledger: Ledger) -> dict:
    """Resolve one CLI argument to a payload dict (file first, then ledger)."""
    path = Path(spec)
    if path.exists():
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"bench_diff: {spec}: not valid JSON ({exc})",
                  file=sys.stderr)
            raise SystemExit(2)
    try:
        return ledger.load(spec)
    except LedgerError as exc:
        print(
            f"bench_diff: {spec!r} is neither a file nor a ledger ref ({exc})",
            file=sys.stderr,
        )
        raise SystemExit(2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Compare two metric sets (bench JSONs or ledger refs); "
            "exit 1 if the candidate regressed."
        ),
    )
    parser.add_argument("baseline", help="baseline JSON file or ledger ref")
    parser.add_argument("candidate", help="candidate JSON file or ledger ref")
    parser.add_argument(
        "--tolerance", type=float, default=None, metavar="T",
        help="relative wall-clock tolerance (default 0.35)",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="show identical metrics too (default: only changed)",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="ledger root for ref arguments "
             "(default: $REPRO_LEDGER or results/ledger)",
    )
    args = parser.parse_args(argv)

    ledger = Ledger(args.ledger)
    payload_a = load_side(args.baseline, ledger)
    payload_b = load_side(args.candidate, ledger)

    rules = list(DEFAULT_RULES)
    if args.tolerance is not None:
        rules = [
            Rule(r.pattern, better=r.better, exact=r.exact, gate=r.gate,
                 tolerance=r.tolerance if r.exact else args.tolerance)
            for r in rules
        ]

    cmp = compare(
        extract_metrics(payload_a),
        extract_metrics(payload_b),
        rules=rules,
        label_a=payload_a.get("run_id") or args.baseline,
        label_b=payload_b.get("run_id") or args.candidate,
    )
    print(cmp.render(only_changed=not args.all))
    return 0 if cmp.passed else 1


if __name__ == "__main__":
    sys.exit(main())
