#!/usr/bin/env python3
"""Summarize a harness results directory against the paper's numbers.

Reads the ``*.json`` payloads written by ``python -m repro.harness ...
--out DIR`` and prints the compact paper-vs-measured comparison used to
update EXPERIMENTS.md.

Run:  python tools/summarize_results.py results/
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.harness.paper_data import PAPER_TABLE3, PAPER_TABLE5, PAPER_TABLE6
from repro.harness.report import render_table


def load(directory: Path, name: str):
    path = directory / f"{name}.json"
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"[{name}: {path} is not valid JSON ({exc}); skipped]",
              file=sys.stderr)
        return None


def summarize_tab3(d) -> str:
    rows = []
    for key, cell in d["cells"].items():
        dev, name = key.split("|")
        t = cell["seconds"]
        paper = cell.get("paper") or PAPER_TABLE3.get((dev, name), {})
        base_ratio = t["BASE"] / t["RF/AN"]
        an_ratio = t["AN"] / t["RF/AN"]
        p_base = (
            paper["BASE"] / paper["RF/AN"] if paper else float("nan")
        )
        p_an = paper["AN"] / paper["RF/AN"] if paper else float("nan")
        rows.append(
            [dev, name, round(base_ratio, 2), round(p_base, 2),
             round(an_ratio, 2), round(p_an, 2)]
        )
    out = render_table(
        ["GPU", "dataset", "BASE/RFAN", "paper", "AN/RFAN", "paper"],
        rows,
        title="Table 3 shape: slowdown of each baseline relative to RF/AN",
    )
    queues = summarize_tab3_queues(d)
    if queues:
        out += "\n\n" + queues
    return out


def summarize_tab3_queues(d) -> str:
    """Per-queue custom counters (empty string for pre-counter payloads)."""
    rows = []
    keys = set()
    cells = []
    for key, cell in d["cells"].items():
        stats = cell.get("stats") or {}
        for variant, s in stats.items():
            custom = s.get("custom")
            if custom is None:
                continue
            qc = {k: v for k, v in custom.items() if k.startswith("queue.")}
            if qc:
                keys.update(qc)
                cells.append((key, variant, qc))
    if not cells:
        return ""
    cols = sorted(keys)
    for key, variant, qc in cells:
        rows.append(
            [key, variant] + [qc.get(c, 0) for c in cols]
        )
    return render_table(
        ["cell", "variant"] + [c.removeprefix("queue.") for c in cols],
        rows,
        title="Table 3 queue counters (per variant)",
    )


def summarize_fig1(d) -> str:
    rows = list(zip(d["workgroups"], d["cas_failures"], d["cas_attempts"]))
    return render_table(
        ["nWG", "CAS failures", "CAS attempts"], rows,
        title="Figure 1: retry growth with thread count",
    )


def summarize_fig5(d) -> str:
    rows = []
    for key, cell in d.items():
        rows.append(
            [key, cell["workgroups"][0], round(cell["queue_atomic_ratio"][0], 1),
             cell["workgroups"][-1], round(cell["queue_atomic_ratio"][-1], 1)]
        )
    return render_table(
        ["series", "wg_lo", "ratio_lo", "wg_hi", "ratio_hi"], rows,
        title="Figure 5: queue-atomic retry ratio, ends of each sweep",
    )


def summarize_tab5(d) -> str:
    rows = [
        [name, round(cell["speedup"], 2), round(cell["paper"][2], 2)]
        for name, cell in d.items()
    ]
    return render_table(
        ["dataset", "RF/AN speedup", "paper"], rows,
        title="Table 5: speedup over CHAI",
    )


def summarize_tab6(d) -> str:
    rows = [
        [key, round(cell["speedup"], 2), round(cell["paper"][2], 2)]
        for key, cell in d.items()
    ]
    return render_table(
        ["dataset|device", "RF/AN speedup", "paper"], rows,
        title="Table 6: speedup over Rodinia",
    )


def summarize_fig4(d) -> str:
    rows = []
    for key, cell in d.items():
        wgs = cell["workgroups"]
        rows.append(
            [key, wgs[-1],
             round(cell["speedup"]["RF/AN"][-1], 1),
             round(cell["speedup"]["AN"][-1], 1),
             round(cell["speedup"]["BASE"][-1], 1)]
        )
    return render_table(
        ["plot", "top nWG", "RF/AN speedup", "AN", "BASE"], rows,
        title="Figure 4: speedup at the top of each sweep",
    )


SUMMARIZERS = {
    "tab3": summarize_tab3,
    "fig1": summarize_fig1,
    "fig4": summarize_fig4,
    "fig5": summarize_fig5,
    "tab5": summarize_tab5,
    "tab6": summarize_tab6,
}


def summarize_blame(directory: Path) -> str:
    """Top-3 stall classes from any blame artifacts in the directory.

    Accepts ``blame.json`` (the ``python -m repro.harness blame``
    artifact, also looked up under a ``blame/`` subdirectory) and any
    ``*.blame.json``.  Artifacts that are missing, unreadable, or from
    an older schema degrade to a stderr note, never an error.
    """
    paths = sorted(directory.glob("*.blame.json"))
    for extra in (directory / "blame.json",
                  directory / "blame" / "blame.json"):
        if extra.exists():
            paths.append(extra)
    rows = []
    for path in paths:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"[{path.name}: unreadable blame artifact ({exc}); "
                  f"skipped]", file=sys.stderr)
            continue
        blame = payload.get("blame", payload)
        cycles = blame.get("cycles") if isinstance(blame, dict) else None
        if not isinstance(cycles, dict) or not cycles:
            print(f"[{path.name}: no blame cycles recorded; skipped]",
                  file=sys.stderr)
            continue
        wf = blame.get("wf_cycles") or 0
        label = payload.get("workload") or path.stem
        stalls = [(c, v) for c, v in cycles.items()
                  if c != "compute" and isinstance(v, (int, float))]
        projections = blame.get("projections") or {}
        for cls, v in sorted(stalls, key=lambda kv: -kv[1])[:3]:
            end = blame.get("end_cycles") or 0
            zero = (projections.get(cls) or {}).get("zero") or 0
            rows.append([
                label, cls, round(v),
                f"{v / wf:.1%}" if wf else "-",
                f"{end / zero:.3f}x" if end and zero else "-",
            ])
    if not rows:
        return ""
    return render_table(
        ["experiment", "stall class", "cycles", "share", "what-if x0"],
        rows,
        title="blame: top-3 stall classes per artifact (docs/blame.md)",
    )


def main(argv) -> int:
    directory = Path(argv[1]) if len(argv) > 1 else Path("results")
    if not directory.is_dir():
        print(f"no such results directory: {directory}", file=sys.stderr)
        return 2
    for name, fn in SUMMARIZERS.items():
        data = load(directory, name)
        if data is None:
            print(f"[{name}: not present in {directory}]")
            continue
        try:
            text = fn(data)
        except (KeyError, TypeError, ValueError, IndexError, AttributeError) as exc:
            # results written by an older harness revision may predate
            # fields a summarizer expects; warn and keep going rather
            # than abandoning the rest of the directory.
            print(
                f"[{name}: unrecognized or old-format payload "
                f"({type(exc).__name__}: {exc}); skipped]",
                file=sys.stderr,
            )
            continue
        print(text)
        print()
    blame = summarize_blame(directory)
    if blame:
        print(blame)
        print()
    else:
        print(f"[blame: no artifacts in {directory}]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
