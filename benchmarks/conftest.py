"""Shared fixtures for the benchmark suite.

Every benchmark regenerates a paper artefact through the harness in
*quick* configuration (small stand-in datasets, reduced sweeps) so the
whole suite completes in minutes, and saves the rendered report under
``benchmarks/reports/`` for inspection.  Run the full-scale versions with
``python -m repro.harness <exp>`` (no ``--quick``).

Benchmarks use ``benchmark.pedantic(..., rounds=1)``: each experiment is
a deterministic simulation, so the interesting number is the one
simulated result (and its wall cost), not a timing distribution.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness import HarnessConfig

REPORTS = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def cfg() -> HarnessConfig:
    return HarnessConfig(quick=True)


@pytest.fixture(scope="session")
def reports_dir() -> Path:
    REPORTS.mkdir(exist_ok=True)
    return REPORTS


def save_report(result, reports_dir: Path) -> None:
    result.save(reports_dir)
