"""Figure 5 — retry ratio (BASE atomics over RF/AN atomics) by dataset.

Asserts the §6.3 reading: the ratio is highest for the saturating
synthetic dataset, lower for soc-LiveJournal1, lowest for the starved NY
roadmap, and grows with the number of workgroups on the saturating
dataset.
"""

from conftest import save_report

from repro.harness.experiments import run_fig5


def test_fig5_retry_ratio(benchmark, cfg, reports_dir):
    result = benchmark.pedantic(lambda: run_fig5(cfg), rounds=1, iterations=1)
    print()
    print(result.text)
    save_report(result, reports_dir)

    for dev in ("Fiji", "Spectre"):
        for name in ("Synthetic", "soc-LiveJournal1", "USA-road-d.NY"):
            ratios = result.data[f"{dev}|{name}"]["queue_atomic_ratio"]
            # BASE always needs more queue atomics than the proposed
            # design, at every thread count
            assert all(r > 1.0 for r in ratios), (dev, name, ratios)
        syn = result.data[f"{dev}|Synthetic"]["queue_atomic_ratio"]
        lj = result.data[f"{dev}|soc-LiveJournal1"]["queue_atomic_ratio"]
        road = result.data[f"{dev}|USA-road-d.NY"]["queue_atomic_ratio"]
        # where every dataset saturates the threads (the bottom of the
        # sweep), the ratio ordering follows available parallelism:
        # synthetic > soc-LiveJournal1 and synthetic > NY (§6.3)
        assert syn[0] > lj[0], (dev, syn, lj)
        assert syn[0] > road[0], (dev, syn, road)
        # the saturating dataset keeps a large ratio across the sweep
        assert min(syn) > 5.0, (dev, syn)

    # on the integrated GPU the synthetic plateau exceeds the thread
    # count at every sweep point, so the ratio stays high to the top
    # (Figure 5b's flat-to-rising green-vs-red gap)
    syn_s = result.data["Spectre|Synthetic"]["queue_atomic_ratio"]
    assert syn_s[-1] > 0.5 * syn_s[0], syn_s
