"""Figure 4 — execution time and speedup as workgroups are added.

The quick configuration sweeps one saturating dataset (the synthetic) and
one starved dataset (the NY roadmap) on both device geometries, and
asserts the paper's reading of the figure:

* with saturating work, RF/AN's speedup tracks the ideal line closely
  while BASE falls off as threads are added;
* with starved work (roadmaps), adding threads buys little for anyone —
  idle threads do not contribute acceleration (§6.1).
"""

from conftest import save_report

from repro.harness.experiments import run_fig4


def test_fig4_scalability(benchmark, cfg, reports_dir):
    result = benchmark.pedantic(
        lambda: run_fig4(cfg, datasets=["Synthetic", "USA-road-d.NY"]),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.text)
    save_report(result, reports_dir)

    for dev in ("Fiji", "Spectre"):
        syn = result.data[f"{dev}|Synthetic"]
        wgs = syn["workgroups"]
        top = wgs[-1]
        rfan_speedup = syn["speedup"]["RF/AN"][-1]
        base_speedup = syn["speedup"]["BASE"][-1]
        # RF/AN scales: at the top of the sweep it achieves a large
        # fraction of ideal; BASE trails it.
        assert rfan_speedup > 0.4 * top, (dev, rfan_speedup, top)
        assert rfan_speedup > base_speedup, dev
        # every variant improves on 1 WG (speedup > 1 at the top)
        for v in ("BASE", "AN", "RF/AN"):
            assert syn["speedup"][v][-1] > 1.0, (dev, v)

        road = result.data[f"{dev}|USA-road-d.NY"]
        # starved dataset: even RF/AN is far from ideal at the top
        assert road["speedup"]["RF/AN"][-1] < 0.5 * top, dev
        # and the variant gap is small (little atomic competition, §6.3)
        ratio = road["seconds"]["BASE"][-1] / road["seconds"]["RF/AN"][-1]
        assert ratio < 3.0, (dev, ratio)
