"""Extension — queue-scheduled top-down BFS vs direction-optimizing BFS.

The follow-up comparison the paper's §5.1 footnote invites: how does the
proposed persistent-thread top-down BFS fare against the "faster BFS"
family (direction-optimizing, per Enterprise/Beamer)?  Expected shape,
per the literature: hybrid wins on shallow wide social graphs, the
persistent queue wins on deep narrow roadmaps.
"""

from conftest import save_report

from repro.bfs import run_persistent_bfs
from repro.ext import run_hybrid_bfs
from repro.harness.report import render_table
from repro.harness.results import ExperimentResult
from repro.simt import SPECTRE


def test_ext_hybrid_vs_persistent(benchmark, cfg, reports_dir):
    datasets = ["gplus_combined", "USA-road-d.NY"]

    def run_all():
        rows = {}
        for name in datasets:
            g = cfg.build(name)
            src = cfg.source(name)
            hybrid = run_hybrid_bfs(g, src, SPECTRE, verify=cfg.verify)
            rfan = run_persistent_bfs(
                g, src, "RF/AN", SPECTRE, 16 if cfg.quick else 32,
                verify=cfg.verify,
            )
            rows[name] = (hybrid, rfan)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = [
        [name,
         hybrid.seconds * 1e3,
         rfan.seconds * 1e3,
         f"{hybrid.seconds / rfan.seconds:.2f}x",
         "+".join(sorted(set(hybrid.extra["modes"])))]
        for name, (hybrid, rfan) in rows.items()
    ]
    result = ExperimentResult(
        "ext_hybrid_bfs",
        "Extension — hybrid (direction-optimizing) vs RF/AN persistent BFS",
        render_table(
            ["dataset", "hybrid ms", "RF/AN ms", "hybrid/RF-AN", "modes"],
            table,
        ),
        {
            name: {
                "hybrid_ms": h.seconds * 1e3,
                "rfan_ms": r.seconds * 1e3,
                "modes": h.extra["modes"],
            }
            for name, (h, r) in rows.items()
        },
    )
    print()
    print(result.text)
    save_report(result, reports_dir)

    # the social graph's huge frontier flips the hybrid to bottom-up
    assert "bu" in rows["gplus_combined"][0].extra["modes"]
    # the roadmap never flips and loses to the persistent queue
    road_hybrid, road_rfan = rows["USA-road-d.NY"]
    assert road_rfan.cycles < road_hybrid.cycles
