"""Table 6 — comparison with the Rodinia-style level-synchronous BFS.

Asserts the paper's qualitative results (§6.4.2): the persistent
queue-driven BFS wins on every Rodinia dataset on both devices, and
Rodinia's *relative* overhead shrinks as the dataset grows (the paper's
smaller datasets "have relatively more overhead than the large dataset").
"""

from conftest import save_report

from repro.harness.experiments import run_tab6


def test_tab6_rodinia_comparison(benchmark, cfg, reports_dir):
    result = benchmark.pedantic(lambda: run_tab6(cfg), rounds=1, iterations=1)
    print()
    print(result.text)
    save_report(result, reports_dir)

    data = result.data
    assert len(data) == 6  # 3 datasets x 2 devices

    for key, cell in data.items():
        assert cell["speedup"] > 1.0, (key, cell)  # RF/AN wins everywhere

    # relative overhead shrinks with size: the largest dataset shows the
    # smallest speedup on each device (paper: 1.26x-3.41x for graph1MW_6
    # vs up to 36x for the small ones).
    for dev in ("Fiji", "Spectre"):
        big = data[f"graph1MW_6|{dev}"]["speedup"]
        small = data[f"graph4096|{dev}"]["speedup"]
        assert big <= small, (dev, big, small)
