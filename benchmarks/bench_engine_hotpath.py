"""Micro-benchmark — wall-clock throughput of the engine hot paths.

Every other benchmark in this suite reports *simulated* cycles; this one
measures the *host* cost of simulating: issued ops per second through
the event loop (the mixed-op soup kernel) and the wall time of one fixed
persistent-BFS launch.  The workload definitions live in
``tools/bench_engine.py`` so the CI tool and this benchmark measure the
same thing.

A determinism guard re-runs the soup kernel and asserts identical
simulated cycles and op counts: an engine change that speeds up the
event loop must not change what the event loop computes.
"""

import importlib.util
from pathlib import Path

from conftest import save_report

from repro.harness.report import render_table
from repro.harness.results import ExperimentResult

_REPO = Path(__file__).resolve().parents[1]
_spec = importlib.util.spec_from_file_location(
    "bench_engine", _REPO / "tools" / "bench_engine.py"
)
bench_engine = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_engine)


def test_engine_hotpath_throughput(benchmark, reports_dir):
    def once():
        return bench_engine.bench_soup(repeats=1), bench_engine.bench_bfs(
            repeats=1
        )

    soup, bfs = benchmark.pedantic(once, rounds=1)

    # determinism guard: same workload, same simulated outcome.
    again = bench_engine.bench_soup(repeats=1)
    assert again["cycles"] == soup["cycles"]
    assert again["issued_ops"] == soup["issued_ops"]

    rows = [
        ["soup", soup["seconds"], soup["issued_ops"], soup["cycles"],
         soup["ops_per_sec"]],
        ["bfs", bfs["seconds"], bfs["issued_ops"], bfs["cycles"],
         bfs["ops_per_sec"]],
    ]
    text = render_table(
        ["Workload", "wall s", "issued ops", "sim cycles", "ops/sec"],
        rows,
        title="Engine hot-path wall-clock throughput (host, not simulated)",
    )
    result = ExperimentResult(
        "bench_engine",
        "Engine hot-path wall-clock throughput",
        text,
        {"soup": soup, "bfs": bfs},
    )
    save_report(result, reports_dir)
