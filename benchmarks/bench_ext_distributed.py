"""Extension — single RF/AN queue vs distributed queues with stealing.

Measures the trade-off the related work (Tzeng et al. 2010) explored:
per-group queues reduce pressure on any single counter word but pay for
steal probing and load imbalance.  On the saturating synthetic workload
the single retry-free queue should stay ahead or competitive.
"""

from conftest import save_report

from repro.bfs import bfs_queue_capacity
from repro.bfs.common import alloc_graph_buffers, read_costs
from repro.bfs.persistent import BFSWorker
from repro.core import SchedulerControl, make_queue, persistent_kernel
from repro.ext import DistributedWorkQueues
from repro.graphs import bfs_levels, synthetic_saturating
from repro.harness.report import render_table
from repro.harness.results import ExperimentResult
from repro.simt import FIJI, Engine

import numpy as np


def _run(queue, g):
    dev, wg = FIJI, 56
    engine = Engine(dev)
    alloc_graph_buffers(engine.memory, g, 0)
    sched = SchedulerControl()
    queue.allocate(engine.memory)
    sched.allocate(engine.memory)
    queue.seed(engine.memory, [0])
    sched.seed(engine.memory, 1)
    kern = persistent_kernel(queue, BFSWorker(), sched)
    res = engine.launch(kern, wg)
    costs = read_costs(engine.memory, g.n_vertices)
    assert np.array_equal(costs, bfs_levels(g, 0))
    return res


def test_ext_distributed_vs_single(benchmark, cfg, reports_dir):
    g = synthetic_saturating(32768, plateau_width=8192)
    g.name = "synthetic-small"
    cap = bfs_queue_capacity(g, FIJI, 56)

    def run_all():
        out = {"RF/AN x1": _run(make_queue("RF/AN", cap), g)}
        for nq in (2, 4, 8):
            out[f"DIST x{nq}"] = _run(
                DistributedWorkQueues(cap, n_queues=nq), g
            )
        return out

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [label, r.cycles,
         int(r.stats.custom.get("queue.steal_attempts", 0)),
         int(r.stats.custom.get("queue.steal_hits", 0))]
        for label, r in runs.items()
    ]
    result = ExperimentResult(
        "ext_distributed",
        "Extension — single RF/AN vs distributed queues with stealing",
        render_table(["layout", "cycles", "steal attempts", "steal hits"], rows),
        {k: {"cycles": r.cycles} for k, r in runs.items()},
    )
    print()
    print(result.text)
    save_report(result, reports_dir)

    single = runs["RF/AN x1"].cycles
    # the single retry-free queue is competitive with every distributed
    # layout on saturating work (within 2x), supporting the paper's
    # single-queue design choice.
    for label, r in runs.items():
        assert single <= r.cycles * 2.0, (label, single, r.cycles)
