"""Ablation evidence — the naive same-expected CAS queue convoys.

DESIGN.md §7 documents why the shipping BASE uses speculative tickets
rather than the textbook per-lane CAS loop: under lock-step execution the
naive formulation feeds at most one lane per wavefront attempt, and its
failure traffic saturates the atomic unit.  This bench regenerates that
evidence on a small saturating workload.
"""

from conftest import save_report

from repro.bfs import bfs_queue_capacity
from repro.bfs.common import alloc_graph_buffers
from repro.bfs.persistent import BFSWorker
from repro.core import SchedulerControl, make_queue, persistent_kernel
from repro.ext import NaiveCasQueue
from repro.graphs import synthetic_saturating
from repro.harness.report import render_table
from repro.harness.results import ExperimentResult
from repro.simt import FIJI, Engine


def _run(queue_factory, g):
    dev, wg = FIJI, 28
    engine = Engine(dev)
    alloc_graph_buffers(engine.memory, g, 0)
    queue = queue_factory(bfs_queue_capacity(g, dev, wg))
    sched = SchedulerControl()
    queue.allocate(engine.memory)
    sched.allocate(engine.memory)
    queue.seed(engine.memory, [0])
    sched.seed(engine.memory, 1)
    kern = persistent_kernel(queue, BFSWorker(), sched)
    return engine.launch(kern, wg)


def test_ablation_naive_cas_convoys(benchmark, cfg, reports_dir):
    g = synthetic_saturating(8192, plateau_width=2048)
    g.name = "synthetic-small"

    def run_both():
        return {
            "NAIVE": _run(NaiveCasQueue, g),
            "BASE": _run(lambda cap: make_queue("BASE", cap), g),
            "RF/AN": _run(lambda cap: make_queue("RF/AN", cap), g),
        }

    runs = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        [label, r.cycles, r.stats.cas_attempts, r.stats.cas_failures]
        for label, r in runs.items()
    ]
    result = ExperimentResult(
        "ablation_naive_cas",
        "Ablation — naive same-expected CAS vs ticket-speculated BASE",
        render_table(["queue", "cycles", "cas attempts", "cas failures"], rows),
        {k: {"cycles": r.cycles, "cas_attempts": r.stats.cas_attempts,
             "cas_failures": r.stats.cas_failures}
         for k, r in runs.items()},
    )
    print()
    print(result.text)
    save_report(result, reports_dir)

    naive, base, rfan = runs["NAIVE"], runs["BASE"], runs["RF/AN"]
    # the naive formulation is dramatically worse than the shipped BASE,
    # which in turn is worse than RF/AN — the ordering DESIGN.md §7 cites.
    assert naive.cycles > 3 * base.cycles
    assert base.cycles > rfan.cycles
    assert naive.stats.cas_failures > base.stats.cas_failures
