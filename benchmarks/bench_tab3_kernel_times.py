"""Table 3 — kernel execution times of BASE / AN / RF-AN.

Regenerates the paper's main result table on the simulator and asserts
its qualitative content: the proposed retry-free/arbitrary-n queue is the
fastest variant in every cell, and its margin is largest on the
thread-saturating synthetic dataset.
"""

from conftest import save_report

from repro.harness.experiments import run_tab3


def test_tab3_kernel_times(benchmark, cfg, reports_dir):
    result = benchmark.pedantic(
        lambda: run_tab3(cfg), rounds=1, iterations=1
    )
    print()
    print(result.text)
    save_report(result, reports_dir)

    cells = result.data["cells"]
    assert len(cells) == 12  # 6 datasets x 2 devices

    # RF/AN wins every cell against BASE (Table 3: "the proposed queue is
    # the fastest in all cases").  Against AN the quick configuration's
    # contention is low (56 WGs, tiny graphs) and the two aggregated
    # variants land within ~15% of parity — the decisive AN gap needs the
    # paper's 224 workgroups (see `python -m repro.harness tab3`).
    # Starved cells (tiny quick-scale roadmaps/social at 56 WGs) carry
    # the reproduction's documented deviation (EXPERIMENTS.md, Table 3
    # note): RF/AN's single-owner slot hand-off prices a latency the
    # paper's hardware masked, so either CAS baseline can lead by up to
    # ~2x where threads starve — worst on the deepest quick-scale
    # roadmap.  Wherever threads are fed, RF/AN wins outright —
    # asserted strictly on the saturating synthetic below.
    for key, cell in cells.items():
        t = cell["seconds"]
        assert t["RF/AN"] <= t["BASE"] * 2.0, key
        assert t["RF/AN"] <= t["AN"] * 2.0, key

    # where threads are saturated, RF/AN decisively beats BASE and sits
    # at parity-or-better with AN even at the quick geometry's modest
    # contention (56 workgroups); the decisive 2.7x RF/AN-over-AN gap
    # needs the paper's 224 workgroups — run `python -m repro.harness
    # tab3` for it.
    for dev in ("Fiji", "Spectre"):
        t = cells[f"{dev}|Synthetic"]["seconds"]
        assert t["RF/AN"] < t["BASE"], dev
        assert t["RF/AN"] <= t["AN"] * 1.05, dev

    # the thread-saturating synthetic shows a clear RF/AN-over-BASE
    # margin on the big GPU (the paper's 1128% headline cell).
    margins = {
        key: cell["seconds"]["BASE"] / cell["seconds"]["RF/AN"]
        for key, cell in cells.items()
        if key.startswith("Fiji")
    }
    assert margins["Fiji|Synthetic"] >= 1.5, margins
    assert margins["Fiji|Synthetic"] >= max(
        m for k, m in margins.items() if k != "Fiji|Synthetic"
    ) * 0.5, margins
