"""Figure 1 — CAS failures grow with the number of active threads.

Runs the BASE-queue BFS on the saturating synthetic dataset over a
workgroup sweep and asserts the paper's reading: retries caused by CAS
failure increase as actively running threads increase.
"""

from conftest import save_report

from repro.harness.experiments import run_fig1


def test_fig1_cas_retries(benchmark, cfg, reports_dir):
    result = benchmark.pedantic(
        lambda: run_fig1(cfg), rounds=1, iterations=1
    )
    print()
    print(result.text)
    save_report(result, reports_dir)

    wgs = result.data["workgroups"]
    failures = result.data["cas_failures"]
    assert len(wgs) >= 3

    # monotone growth in the large: the top of the sweep fails far more
    # than the bottom, and the curve never collapses back to near zero.
    assert failures[-1] > 10 * max(failures[0], 1)
    assert failures[-1] > failures[len(failures) // 2] * 0.5

    # failures are real but not the majority of attempts (the speculative
    # ticket formulation mostly succeeds — see DESIGN.md §7).
    attempts = result.data["cas_attempts"]
    assert 0 < failures[-1] < attempts[-1]
