"""Micro-benchmark — raw queue operation cost per variant.

Isolates the queue from any driver application: wavefronts alternately
publish and drain fixed batches, so the measured cycles are pure
enqueue/dequeue machinery.  Demonstrates the arbitrary-n claim directly:
RF/AN's cost per batch is flat in the batch size, while BASE's grows
linearly (one CAS-reserved slot per token).
"""

import numpy as np
from conftest import save_report

from repro.core import WavefrontQueueState, make_queue
from repro.ext import DistributedWorkQueues
from repro.harness.report import render_table
from repro.harness.results import ExperimentResult
from repro.simt import Compute, Engine, TESTGPU


def _pingpong_kernel(queue, batch, rounds):
    """Each wavefront repeatedly publishes `batch` tokens/lane, then
    drains until it has consumed a full batch again."""

    def kernel(ctx):
        wf = ctx.device.wavefront_size
        st = WavefrontQueueState(wf)
        counts = np.full(wf, batch, dtype=np.int64)
        toks = np.arange(wf * batch, dtype=np.int64).reshape(wf, batch)
        for _ in range(rounds):
            yield from queue.publish(ctx, st, counts, toks)
            consumed = 0
            while consumed < wf * batch:
                yield from queue.acquire(ctx, st)
                lanes = np.flatnonzero(st.has_token)
                consumed += lanes.size
                st.complete(lanes)
                yield Compute(1)

    return kernel


def _measure(make, batch, rounds=8):
    eng = Engine(TESTGPU)
    q = make()
    q.allocate(eng.memory)
    res = eng.launch(_pingpong_kernel(q, batch, rounds), 1)
    return res.cycles / (rounds * batch * TESTGPU.wavefront_size)


def test_queue_cost_per_token(benchmark, cfg, reports_dir):
    batches = [1, 2, 4]
    variants = {
        "BASE": lambda: make_queue("BASE", 65536),
        "AN": lambda: make_queue("AN", 65536),
        "RF/AN": lambda: make_queue("RF/AN", 65536),
        "DIST x2": lambda: DistributedWorkQueues(65536, n_queues=2),
    }

    def sweep():
        table = {}
        for name, make in variants.items():
            table[name] = [_measure(make, b) for b in batches]
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [name] + [round(v, 1) for v in vals] for name, vals in table.items()
    ]
    result = ExperimentResult(
        "queue_microbench",
        "Micro-benchmark — queue cycles per token vs batch size",
        render_table(
            ["variant"] + [f"batch={b}" for b in batches], rows,
            title="cycles per token (single wavefront, uncontended)",
        ),
        {"batches": batches, "cycles_per_token": table},
    )
    print()
    print(result.text)
    save_report(result, reports_dir)

    # arbitrary-n: RF/AN's per-token cost falls as the batch grows
    rfan = table["RF/AN"]
    assert rfan[-1] < rfan[0], rfan
    # at batch 4, RF/AN's per-token cost clearly beats per-token BASE
    assert table["RF/AN"][-1] < table["BASE"][-1], table
