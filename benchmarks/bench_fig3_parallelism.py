"""Figure 3 — dynamic data parallelism per BFS level.

Asserts each dataset category's parallelism profile: the synthetic
saturates and stays saturated; social graphs spike wide and shallow;
roadmaps stay narrow and deep.
"""

from conftest import save_report

from repro.harness.experiments import run_fig3


def test_fig3_parallelism_profiles(benchmark, cfg, reports_dir):
    result = benchmark.pedantic(lambda: run_fig3(cfg), rounds=1, iterations=1)
    print()
    print(result.text)
    save_report(result, reports_dir)

    d = result.data
    # synthetic: fanout-4 growth then a plateau of constant width
    prof = d["Synthetic"]["profile"]
    assert prof[0] == 1 and prof[1] == 4 and prof[2] == 16
    plateau = prof[8:-1] if len(prof) > 9 else prof[3:-1]
    assert len(set(plateau)) <= 2  # constant (allow one partial step)

    # social: shallow with a dominant wide level
    for name in ("gplus_combined", "soc-LiveJournal1"):
        assert d[name]["levels"] <= 8
        assert d[name]["max_width"] > 0.3 * d[name]["total"]

    # roadmaps: deep and narrow
    for name in ("USA-road-d.NY", "USA-road-d.LKS", "USA-road-d.USA"):
        assert d[name]["levels"] > 50
        assert d[name]["max_width"] < 0.05 * d[name]["total"]

    # relative depth ladder: NY < LKS < USA
    assert (
        d["USA-road-d.NY"]["levels"]
        < d["USA-road-d.LKS"]["levels"]
        < d["USA-road-d.USA"]["levels"]
    )
