"""Tables 1 & 2 — dataset statistics of the generated stand-ins.

Asserts that every stand-in reproduces the statistical signature the
paper's evaluation depends on (heavy-tailed social degrees; sparse
bounded roadmap degrees).
"""

from conftest import save_report

from repro.harness.experiments import run_tab1, run_tab2


def test_tab1_social_stats(benchmark, cfg, reports_dir):
    result = benchmark.pedantic(lambda: run_tab1(cfg), rounds=1, iterations=1)
    print()
    print(result.text)
    save_report(result, reports_dir)

    for name, cell in result.data.items():
        v, e, dmin, dmax, davg, dstd = cell["measured"]
        assert dstd > davg, name          # heavy tail (Table 1 signature)
        assert dmax > 8 * davg, name      # hub vertices


def test_tab2_roadmap_stats(benchmark, cfg, reports_dir):
    result = benchmark.pedantic(lambda: run_tab2(cfg), rounds=1, iterations=1)
    print()
    print(result.text)
    save_report(result, reports_dir)

    for name, cell in result.data.items():
        v, e, dmin, dmax, davg, dstd = cell["measured"]
        assert dmin >= 1, name
        assert dmax <= 9, name            # Table 2 envelope
        assert 2.0 <= davg <= 3.2, name
        # the paper's size ladder survives scaling
    sizes = [result.data[n]["measured"][0] for n in
             ("USA-road-d.NY", "USA-road-d.LKS", "USA-road-d.USA")]
    assert sizes == sorted(sizes)
