"""Table 5 — comparison with the CHAI-style collaborative BFS.

Asserts the paper's qualitative result: on CHAI's small road-map datasets
the proposed queue outperforms the CAS-frontier, level-relaunched CHAI
scheme by a multiple (the paper measures 2.57x and 4.21x on Spectre).
"""

from conftest import save_report

from repro.harness.experiments import run_tab5


def test_tab5_chai_comparison(benchmark, cfg, reports_dir):
    result = benchmark.pedantic(lambda: run_tab5(cfg), rounds=1, iterations=1)
    print()
    print(result.text)
    save_report(result, reports_dir)

    for name, cell in result.data.items():
        # RF/AN wins by a clear multiple on both datasets
        assert cell["speedup"] > 1.5, (name, cell)
        # and not by an absurd one — the substitution preserves order of
        # magnitude (paper: 2.57x / 4.21x)
        assert cell["speedup"] < 50, (name, cell)
