"""Ablation — work-cycle granularity (paper footnote 3).

The paper refactors variable-fanout vertices into work cycles of a fixed
number of uniform sub-tasks and reports that "work cycles of 4 sub-tasks
works well".  This bench sweeps the granularity on a divergence-heavy
social graph and checks that a small fixed granularity beats whole-vertex
processing (a very large granularity) under lock-step execution.
"""

import pytest
from conftest import save_report

from repro.bfs import run_persistent_bfs
from repro.harness.report import render_series
from repro.harness.results import ExperimentResult
from repro.simt import FIJI


GRANULARITIES = [1, 2, 4, 8, 16, 64]


def test_ablation_workcycle_granularity(benchmark, cfg, reports_dir):
    g = cfg.build("gplus_combined")  # skewed fanout -> divergence
    src = cfg.source("gplus_combined")

    def sweep():
        times = []
        for sub in GRANULARITIES:
            run = run_persistent_bfs(
                g, src, "RF/AN", FIJI, 56,
                subtasks_per_cycle=sub, verify=cfg.verify,
            )
            times.append(run.seconds)
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    result = ExperimentResult(
        "ablation_workcycle",
        "Ablation — sub-tasks per work cycle (RF/AN, gplus, Fiji geometry)",
        render_series(
            {"seconds": times}, x=GRANULARITIES,
            title="execution time vs sub-tasks per work cycle",
        ),
        {"granularity": GRANULARITIES, "seconds": times},
    )
    print()
    print(result.text)
    save_report(result, reports_dir)

    by = dict(zip(GRANULARITIES, times))
    # the paper's choice (4) is competitive: within 2x of the sweep's best
    assert by[4] <= min(times) * 2.0, by
    # extreme granularity 1 pays per-cycle scheduling overhead: it should
    # not beat 4 by much, if at all
    assert by[4] <= by[1] * 1.1, by
