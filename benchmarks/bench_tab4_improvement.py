"""Table 4 — percentage improvement of AN and RF/AN over BASE.

Derived from the same runs as Table 3; asserts the paper's qualitative
reading: the arbitrary-n property alone (AN) helps most where threads are
saturated, and adding retry-free (RF/AN) always improves on BASE.
"""

from conftest import save_report

from repro.harness.experiments import run_tab4


def test_tab4_improvement(benchmark, cfg, reports_dir):
    result = benchmark.pedantic(
        lambda: run_tab4(cfg), rounds=1, iterations=1
    )
    print()
    print(result.text)
    save_report(result, reports_dir)

    cells = result.data["cells"]
    assert len(cells) == 12

    # RF/AN over BASE: clear wins wherever threads are fed; starved
    # cells carry the documented hand-off-latency deviation
    # (EXPERIMENTS.md, Table 3 note), bounded here at -30%.
    for key, cell in cells.items():
        assert cell["RF/AN"] >= 70.0, (key, cell)

    # the saturating synthetic on the big GPU shows the largest RF/AN
    # improvement, as in the paper's 1128.12% cell.
    syn = cells["Fiji|Synthetic"]["RF/AN"]
    assert syn >= 150.0
    # and it exceeds the social/roadmap cells on the same device.
    for key, cell in cells.items():
        if key.startswith("Fiji") and key != "Fiji|Synthetic":
            assert syn >= cell["RF/AN"] * 0.5, (key, cell)
