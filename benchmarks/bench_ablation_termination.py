"""Ablation — termination-counter aggregation (DESIGN.md §7).

The paper leaves the scheduler's global termination test unspecified; our
design counts in-flight tasks with fetch-adds, aggregated through the
proxy lane for arbitrary-n variants.  This bench forces RF/AN to use
*per-lane* counter updates instead and measures the cost of giving up
aggregation on the hot counter word.
"""

from conftest import save_report

from repro.core import SchedulerControl, make_queue, persistent_kernel
from repro.bfs import bfs_queue_capacity
from repro.bfs.common import alloc_graph_buffers, read_costs
from repro.bfs.persistent import BFSWorker
from repro.harness.report import render_table
from repro.harness.results import ExperimentResult
from repro.simt import FIJI, Engine


def _run(g, src, aggregate, cfg):
    dev = FIJI
    wg = 56
    engine = Engine(dev)
    alloc_graph_buffers(engine.memory, g, src)
    queue = make_queue("RF/AN", bfs_queue_capacity(g, dev, wg))
    sched = SchedulerControl()
    queue.allocate(engine.memory)
    sched.allocate(engine.memory)
    queue.seed(engine.memory, [src])
    sched.seed(engine.memory, 1)
    kern = persistent_kernel(
        queue, BFSWorker(), sched, aggregate_termination=aggregate
    )
    res = engine.launch(kern, wg)
    return res


def test_ablation_termination_aggregation(benchmark, cfg, reports_dir):
    g = cfg.build("Synthetic")
    src = cfg.source("Synthetic")

    def run_both():
        return {
            "aggregated": _run(g, src, True, cfg),
            "per-lane": _run(g, src, False, cfg),
        }

    runs = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        [mode, r.cycles, r.stats.total_atomic_requests]
        for mode, r in runs.items()
    ]
    result = ExperimentResult(
        "ablation_termination",
        "Ablation — proxy-aggregated vs per-lane termination counting",
        render_table(["mode", "cycles", "atomic requests"], rows),
        {m: {"cycles": r.cycles,
             "atomics": r.stats.total_atomic_requests}
         for m, r in runs.items()},
    )
    print()
    print(result.text)
    save_report(result, reports_dir)

    agg, lane = runs["aggregated"], runs["per-lane"]
    # per-lane counting floods the counter word with atomics...
    assert lane.stats.total_atomic_requests > agg.stats.total_atomic_requests
    # ...and costs real time on the saturating workload.
    assert lane.cycles > agg.cycles
