"""Exception types raised by the SIMT simulator.

The simulator mirrors the failure modes a real GPU runtime exposes to the
host: kernel aborts (e.g. the paper's queue-full abort), launch-configuration
errors, and watchdog timeouts.  Keeping them in one module lets callers write
``except simt.SimError`` to catch any simulator-originated failure.
"""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulator errors."""


class KernelAbort(SimError):
    """A kernel requested an abort (the GPU analogue of ``abort()``).

    The paper's enqueue path aborts the kernel on a queue-full exception
    (Listing 3, line 25).  Kernels raise a subclass of this inside their
    coroutine; the engine unwinds every resident wavefront and re-raises to
    the host.
    """


class LaunchConfigError(SimError):
    """The requested launch does not fit the device.

    Persistent-thread kernels must be *resident*: every workgroup must be
    able to stay on a compute unit for the whole kernel, otherwise waiting
    workgroups would deadlock behind persistent ones that never exit.  This
    is a real constraint of the persistent-thread model (Gupta et al. 2012),
    not a simulator artefact.
    """


class SimulationTimeout(SimError):
    """The watchdog cycle limit was exceeded.

    Guards against livelock in experimental kernels (e.g. a termination
    protocol bug would otherwise spin forever).
    """


class MemoryFault(SimError):
    """Out-of-bounds or unknown-buffer access by a kernel."""
