"""Exception types raised by the SIMT simulator.

The simulator mirrors the failure modes a real GPU runtime exposes to the
host: kernel aborts (e.g. the paper's queue-full abort), launch-configuration
errors, and watchdog timeouts.  Keeping them in one module lets callers write
``except simt.SimError`` to catch any simulator-originated failure.
"""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulator errors."""


class KernelAbort(SimError):
    """A kernel requested an abort (the GPU analogue of ``abort()``).

    The paper's enqueue path aborts the kernel on a queue-full exception
    (Listing 3, line 25).  Kernels raise a subclass of this inside their
    coroutine; the engine unwinds every resident wavefront and re-raises to
    the host.
    """


class QueueFullError(KernelAbort):
    """A queue publish found no free slot (Listing 3, line 25).

    Raised instead of a bare :class:`KernelAbort` when the aborting queue
    supplied structured context via ``Abort(reason, info=...)``: the
    owning queue's buffer prefix, its capacity, the fill level observed
    at the moment of failure, and (for sharded queues) the shard id.
    The host-side growth loop in :func:`repro.bfs.persistent
    .run_persistent_bfs` and the post-mortem writer in
    :mod:`repro.obs.flight` both read these fields.
    """

    def __init__(
        self,
        reason: str,
        *,
        queue: str = "",
        capacity: int = 0,
        fill: int = 0,
        shard: "int | None" = None,
    ):
        super().__init__(reason)
        self.queue = queue
        self.capacity = capacity
        self.fill = fill
        self.shard = shard

    def info(self) -> dict:
        """JSON-able view of the structured fields (for post-mortems)."""
        return {
            "queue": self.queue,
            "capacity": self.capacity,
            "fill": self.fill,
            "shard": self.shard,
        }


class WedgeError(SimError):
    """The liveness watchdog declared the launch wedged.

    Raised by :class:`repro.obs.watchdog.LivenessWatchdog` (via the
    engine's poll hook) after repeated no-progress windows: wavefronts
    are still live but nothing has been delivered, stored, computed, or
    retired for several windows — the persistent-kernel analogue of a
    deadlock.  Carries the watchdog's stall classification and the
    flight-recorder snapshot taken at the final escalation.
    """

    def __init__(
        self,
        reason: str,
        *,
        classification: str = "other",
        snapshot: "dict | None" = None,
    ):
        super().__init__(reason)
        self.classification = classification
        self.snapshot = snapshot


class LaunchConfigError(SimError):
    """The requested launch does not fit the device.

    Persistent-thread kernels must be *resident*: every workgroup must be
    able to stay on a compute unit for the whole kernel, otherwise waiting
    workgroups would deadlock behind persistent ones that never exit.  This
    is a real constraint of the persistent-thread model (Gupta et al. 2012),
    not a simulator artefact.
    """


class SimulationTimeout(SimError):
    """The watchdog cycle limit was exceeded.

    Guards against livelock in experimental kernels (e.g. a termination
    protocol bug would otherwise spin forever).
    """


class MemoryFault(SimError):
    """Out-of-bounds or unknown-buffer access by a kernel."""
