"""Simulated global device memory.

Memory is a set of named, statically allocated int64 buffers — mirroring
the paper's constraint (§3.1) that *all* application data, including the
scheduler queue, must be allocated before kernel launch.  There is no
dynamic allocation path on purpose.

Buffers are NumPy arrays; the engine performs gathers/scatters/atomics on
them at architecturally correct times.  Host code may read and initialize
buffers directly between kernel launches (that is what a real host does
with ``clEnqueueWriteBuffer``).
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from .errors import MemoryFault

#: buffers at most this many words are treated as *hot*: they hold queue
#: control words and scheduler counters that every wavefront touches every
#: work cycle, so they live in the L2 cache.  Hot buffers get
#: ``device.l2_latency`` on loads/stores and exact cross-batch atomic-unit
#: occupancy tracking.
HOT_BUFFER_WORDS = 64


class GlobalMemory:
    """Named int64 buffer store with bounds checking.

    Buffers can be marked *hot* (L2-resident): small control words are
    hot automatically (size <= :data:`HOT_BUFFER_WORDS`); larger buffers
    whose **active window** is constantly re-referenced by every
    wavefront — the task queue's slot array and valid flags — are marked
    explicitly by their owners via :meth:`mark_hot`.  Hot buffers get
    ``device.l2_latency`` on loads/stores instead of full memory latency.

    Example
    -------
    >>> mem = GlobalMemory()
    >>> _ = mem.alloc("queue", 8, fill=-1)
    >>> mem["queue"][0]
    np.int64(-1)
    """

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}
        self._hot: set[str] = set()

    def alloc(self, name: str, size: int, fill: int = 0) -> np.ndarray:
        """Allocate a buffer of ``size`` int64 words filled with ``fill``.

        Raises :class:`MemoryFault` on duplicate names — accidental
        re-allocation is almost always a harness bug.
        """
        if name in self._buffers:
            raise MemoryFault(f"buffer {name!r} already allocated")
        if size < 0:
            raise MemoryFault(f"buffer {name!r}: negative size {size}")
        buf = np.full(int(size), fill, dtype=np.int64)
        self._buffers[name] = buf
        return buf

    def alloc_from(self, name: str, data: np.ndarray) -> np.ndarray:
        """Allocate a buffer initialized from host data (copied, as int64)."""
        if name in self._buffers:
            raise MemoryFault(f"buffer {name!r} already allocated")
        buf = np.ascontiguousarray(data, dtype=np.int64).copy()
        self._buffers[name] = buf
        return buf

    def free(self, name: str) -> None:
        """Release a buffer (host-side teardown between launches)."""
        if name not in self._buffers:
            raise MemoryFault(f"buffer {name!r} not allocated")
        del self._buffers[name]
        self._hot.discard(name)

    def mark_hot(self, name: str) -> None:
        """Declare a buffer L2-resident regardless of its size."""
        if name not in self._buffers:
            raise MemoryFault(f"buffer {name!r} not allocated")
        self._hot.add(name)

    def is_hot(self, name: str) -> bool:
        """Whether accesses to this buffer hit the L2."""
        buf = self[name]
        return buf.size <= HOT_BUFFER_WORDS or name in self._hot

    def raw_arrays(self) -> Dict[str, np.ndarray]:
        """The live name -> array mapping, for engine hot paths.

        Callers may read and write array *contents* in place but must not
        add or remove entries; allocation goes through :meth:`alloc`.
        """
        return self._buffers

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._buffers[name]
        except KeyError:
            raise MemoryFault(f"unknown buffer {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def __iter__(self) -> Iterator[str]:
        return iter(self._buffers)

    @property
    def total_words(self) -> int:
        """Total allocated words — the footprint a real host would need."""
        return sum(b.size for b in self._buffers.values())

    def check_bounds(self, name: str, index) -> np.ndarray:
        """Validate lane indices against a buffer; return them as an array.

        Raises :class:`MemoryFault` with a precise message on any
        out-of-bounds lane, because a silent wrap would mask kernel bugs
        the tests are designed to catch.
        """
        buf = self[name]
        idx = np.asarray(index, dtype=np.int64)
        if idx.ndim == 0:
            idx = idx.reshape(1)
        if idx.size == 0:
            return idx
        if int(idx.min()) < 0 or int(idx.max()) >= buf.size:
            bad = (idx < 0) | (idx >= buf.size)
            first = int(idx[bad][0])
            raise MemoryFault(
                f"buffer {name!r}: index {first} out of bounds "
                f"(size {buf.size})"
            )
        return idx
