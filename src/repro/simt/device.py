"""Device specifications for the SIMT simulator.

A :class:`DeviceSpec` bundles the architectural parameters the cost model
needs.  Two presets mirror the paper's test hardware (§5.4):

* :data:`FIJI` — AMD Radeon R9 Fury ("Fiji"), a high-end discrete GPU with
  56 compute units.  The paper launches 224 workgroups of 64 threads on it
  (4 workgroups per CU, 14,336 persistent threads).
* :data:`SPECTRE` — AMD Radeon R7 APU ("Spectre"), a low-end integrated GPU
  with 8 compute units sharing memory with the CPU (32 workgroups, 2,048
  persistent threads).

The cycle costs are rough GCN-generation figures; the experiments only rely
on their *relationships* (memory latency is large but hideable, atomic
service at a contended address is serialized, instruction issue occupancy is
not hideable), which is exactly the paper's argument in §3.2-§3.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of a simulated GPU.

    Attributes
    ----------
    name:
        Human-readable device name.
    n_cus:
        Number of compute units (OpenCL CUs / CUDA SMs).
    wavefront_size:
        Lanes per wavefront (64 on AMD GCN; 32 on NVIDIA warps).
    max_wavefronts_per_cu:
        Resident wavefront slots per CU.  The paper launches 4 workgroups
        of one wavefront each per CU "to facilitate zero-cost thread
        switching"; we default to a slightly larger residency so workgroup
        sweeps stay resident.
    clock_hz:
        Shader clock used to convert simulated cycles to seconds.
    issue_cycles:
        CU issue-pipe occupancy per wavefront instruction.  A 64-lane
        wavefront executes over a 16-wide SIMD in 4 cycles; this occupancy
        is the *non-hideable* cost every retry pays.
    mem_latency:
        Round-trip global-memory latency in cycles.  Hideable: the CU
        switches to another resident wavefront while a load is in flight.
    l2_latency:
        Round-trip latency to the L2 cache, where GCN executes global
        atomics and where small, constantly re-read control words (queue
        Front/Rear, scheduler counters) stay resident.  Atomic ops and
        accesses to hot control buffers are charged this latency; a CAS
        retry loop therefore costs one L2 round trip per attempt, not a
        full DRAM access.
    mem_pipe_cycles:
        Extra cycles per additional (non-coalesced) memory transaction
        beyond the first.
    atomic_service:
        Serialized service time per atomic request at a given address.
        Requests to the *same* address queue behind each other — the
        contended hot spot of Morrison & Afek (2013) cited in §3.2.
    lds_op_cycles:
        Cost of a wavefront-local (LDS) aggregation op, e.g. the
        ``atomic_inc(&lQueueSlotsNeeded)`` in Listing 1.  Lock-step local
        atomics across a wavefront are implemented by hardware as a
        prefix-sum; they never fail and never leave the CU.
    kernel_launch_cycles:
        Host-side kernel launch/teardown overhead expressed in device
        cycles.  Irrelevant for persistent kernels (one launch) but the
        dominant cost of Rodinia-style one-kernel-per-level BFS (§6.4.2).
    """

    name: str
    n_cus: int
    wavefront_size: int = 64
    max_wavefronts_per_cu: int = 8
    clock_hz: float = 1.0e9
    issue_cycles: int = 4
    mem_latency: int = 400
    l2_latency: int = 160
    mem_pipe_cycles: int = 4
    atomic_service: int = 8
    lds_op_cycles: int = 4
    kernel_launch_cycles: int = 30_000

    def __post_init__(self) -> None:
        if self.n_cus <= 0:
            raise ValueError(f"n_cus must be positive, got {self.n_cus}")
        if self.wavefront_size <= 0:
            raise ValueError(
                f"wavefront_size must be positive, got {self.wavefront_size}"
            )
        if self.max_wavefronts_per_cu <= 0:
            raise ValueError(
                "max_wavefronts_per_cu must be positive, got "
                f"{self.max_wavefronts_per_cu}"
            )
        for attr in (
            "issue_cycles",
            "mem_latency",
            "l2_latency",
            "mem_pipe_cycles",
            "atomic_service",
            "lds_op_cycles",
            "kernel_launch_cycles",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")
        if self.clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {self.clock_hz}")

    @property
    def max_resident_wavefronts(self) -> int:
        """Total wavefronts that can be resident device-wide."""
        return self.n_cus * self.max_wavefronts_per_cu

    @property
    def max_threads(self) -> int:
        """Total resident threads device-wide."""
        return self.max_resident_wavefronts * self.wavefront_size

    def seconds(self, cycles: int | float) -> float:
        """Convert a cycle count to seconds at this device's clock."""
        return float(cycles) / self.clock_hz

    def with_(self, **overrides: object) -> "DeviceSpec":
        """Return a copy with some parameters replaced (for ablations)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


#: AMD Radeon R9 Fury ("Fiji"): 56 CUs, discrete memory. Paper §5.4.
FIJI = DeviceSpec(name="Fiji", n_cus=56, clock_hz=1.05e9)

#: AMD Radeon R7 APU ("Spectre"): 8 CUs, shared CPU-GPU memory. Paper §5.4.
#: Shared DDR3 memory has higher latency than Fiji's HBM.
SPECTRE = DeviceSpec(
    name="Spectre", n_cus=8, clock_hz=0.72e9, mem_latency=520, l2_latency=200
)

#: A small device for fast unit tests: 2 CUs, short latencies.
TESTGPU = DeviceSpec(
    name="TestGPU",
    n_cus=2,
    wavefront_size=8,
    max_wavefronts_per_cu=4,
    clock_hz=1.0e9,
    mem_latency=40,
    l2_latency=16,
    atomic_service=4,
    kernel_launch_cycles=1_000,
)


def paper_workgroups(device: DeviceSpec) -> int:
    """The paper's workgroup count for a device: 4 workgroups per CU (§5.4)."""
    return 4 * device.n_cus
