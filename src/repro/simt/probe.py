"""The opt-in observability hook interface of the simulator.

A :class:`Probe` receives cycle-stamped callbacks from every layer of a
simulated launch:

* the **engine** reports instruction issue (with the cycle the issue pipe
  frees), wavefront wake-ups after memory/atomic stalls, and wavefront
  exits;
* the **atomic system** reports each serviced request batch: target
  buffer, kind, batch size, the serialization window at the address
  unit(s), and how many CAS requests in the batch failed;
* the **queue variants** report control-word samples (Front/Rear), proxy
  aggregation (lanes served per global atomic), slot watch/grant pairs
  (the dna-wait of §4.2), and time-stamped retry/empty exceptions;
* the **persistent scheduler** reports per-wavefront token occupancy
  after every acquire.

Every method is a no-op here, so subclasses override only what they
need.  The rich recording implementation lives in
:mod:`repro.obs.timeline`; the always-on bounded variant (last-K ring
of events, per-queue fill, per-CU state — the source of post-mortem
bundles and the liveness watchdog's progress signature) is
:class:`repro.obs.flight.FlightRecorder`.  This module holds only the
interface so the simulator core never depends on the observability
package.

Zero-cost contract
------------------
Probing is strictly opt-in (``Engine.launch(..., probe=None)`` is the
default) and instrumentation sites are gated on a single ``probe is not
None`` test, so a probe-less launch runs the exact hot paths of an
uninstrumented build.  A probe must be *passive*: it may read, never
mutate, simulation state — the engine guarantees that attaching any
conforming probe leaves every simulated cycle, statistic, and memory
word bit-identical (pinned by ``tests/test_simt_determinism.py``).

The :attr:`now` attribute is the probe's simulated clock: the engine
stores the current cycle into it immediately before resuming a kernel
generator, so kernel-side layers (queues, schedulers, tracers) can
time-stamp their own events without threading the clock through every
call.
"""

from __future__ import annotations

from typing import Optional


class Probe:
    """No-op base class for simulation observability hooks."""

    #: simulated cycle at the last generator resume (engine-maintained).
    now: int = 0
    #: wavefront id of the last generator resume (engine-maintained, -1
    #: before the first issue).  Kernel-side layers run *inside* a
    #: wavefront's generator, so hooks they fire (queue events, phase
    #: marks) can attribute themselves to ``cur_wf`` without threading
    #: the id through every call.
    cur_wf: int = -1

    # ------------------------------------------------------------------
    # engine callbacks
    # ------------------------------------------------------------------
    def launch_begin(self, device, n_wavefronts: int) -> None:
        """A kernel launch is starting on ``device``."""

    def launch_end(self, cycles: int, stats) -> None:
        """The launch finished after ``cycles`` simulated cycles."""

    def on_issue(
        self,
        cycle: int,
        cu: int,
        wf: int,
        kind: int,
        end: int,
        trans: int,
    ) -> None:
        """Wavefront ``wf`` issued an op on CU ``cu`` at ``cycle``.

        ``kind`` is an op-kind id (map it through
        :data:`repro.simt.engine.OP_KIND_NAMES`), ``end`` the cycle the
        CU issue pipe frees, ``trans`` the memory-transaction count of
        the op after coalescing (0 for non-memory ops).
        """

    def on_wake(self, cycle: int, wf: int) -> None:
        """Wavefront ``wf`` finished a memory/atomic stall at ``cycle``."""

    def on_exit(self, cycle: int, wf: int) -> None:
        """Wavefront ``wf`` exited the kernel at ``cycle``."""

    # ------------------------------------------------------------------
    # atomic-system callbacks
    # ------------------------------------------------------------------
    def on_atomic(
        self,
        cycle: int,
        buf: str,
        kind: str,
        n: int,
        end: int,
        failures: int,
        addr: int,
    ) -> None:
        """A batch of ``n`` atomic requests on ``buf`` was serviced.

        The batch arrived at ``cycle`` and its last request completed at
        ``end`` (the serialization window at the address unit).
        ``failures`` counts CAS requests in the batch whose expected
        value was stale; ``addr`` is the target word when the whole
        batch hits one address, else ``-1``.
        """

    def on_atomic_queued(
        self, buf: str, addr: int, arrival: int, start: int
    ) -> None:
        """A request on hot word ``addr`` of ``buf`` queued behind an
        earlier batch: it arrived at ``arrival`` but its address unit
        only freed at ``start`` (cross-batch serialization, the hot-spot
        wait that §3.2 argues cannot be hidden).  Only emitted for hot
        buffers, where cross-batch unit occupancy is tracked at all."""

    # ------------------------------------------------------------------
    # queue-layer callbacks
    # ------------------------------------------------------------------
    def queue_register(self, prefix: str, capacity: int, variant: str) -> None:
        """Declare a queue (idempotent; called before its first event)."""

    def queue_counter(
        self, prefix: str, name: str, cycle: int, value: int
    ) -> None:
        """Sampled control-word value, e.g. ``front`` or ``rear``."""

    def queue_instant(
        self, prefix: str, name: str, cycle: int, count: int
    ) -> None:
        """A time-stamped queue event burst (``empty``, ``cas_retry``)."""

    def queue_proxy(self, prefix: str, direction: str, lanes: int) -> None:
        """One proxy-aggregated global atomic served ``lanes`` lanes
        (``direction`` is ``"acquire"`` or ``"publish"``)."""

    def queue_watch(self, prefix: str, slots, cycle: int) -> None:
        """Lanes parked on raw ``slots`` (array) at ``cycle``."""

    def queue_grant(self, prefix: str, slots, cycle: int) -> None:
        """Raw ``slots`` delivered their tokens at ``cycle`` (closes the
        matching :meth:`queue_watch`; the difference is the dna-wait)."""

    # ------------------------------------------------------------------
    # queue introspection callbacks (verification oracle)
    # ------------------------------------------------------------------
    # These three expose the queue's *logical* operation history — every
    # successful control-word reservation and every token that moves
    # through a slot — so an invariant oracle (repro.verify) can replay
    # the history against a sequential specification.  They fire inside
    # the queues' existing ``if probe is not None`` gates, so unprobed
    # launches pay nothing and probed launches stay bit-identical.

    def queue_reserve(
        self, prefix: str, direction: str, base: int, count: int
    ) -> None:
        """A reservation on a control word succeeded: ``count`` raw slots
        starting at ``base`` were claimed (``direction`` is ``"acquire"``
        for Front / dequeue-side, ``"publish"`` for Rear / enqueue-side).
        Emitted once per *successful* advance for every variant — after
        the AFA for RF/AN, after the winning CAS for AN, and per winning
        CAS burst for BASE/NAIVE."""

    def queue_store(self, prefix: str, slots, values) -> None:
        """Token ``values`` were written into raw ``slots`` (enqueue-side
        data movement; aligned arrays)."""

    def queue_deliver(self, prefix: str, slots, tokens) -> None:
        """Raw ``slots`` handed ``tokens`` to dequeuing lanes (aligned
        arrays; the value-carrying companion of :meth:`queue_grant`)."""

    def queue_segment_link(
        self, prefix: str, logical_seg: int, phys_seg: int, cycle: int
    ) -> None:
        """A GROW queue linked pool segment ``phys_seg`` in as logical
        segment ``logical_seg`` (the winning segment-map CAS; see
        :mod:`repro.core.queue_adaptive`).  Write-once per logical
        segment — losers adopt the winner's mapping and never emit."""

    def queue_segment_release(
        self, prefix: str, logical_seg: int, phys_seg: int
    ) -> None:
        """A GROW queue recycled pool segment ``phys_seg``: every slot of
        logical segment ``logical_seg`` has been delivered and restored,
        so the pool segment returned to the free list."""

    def queue_spill(self, prefix: str, tokens) -> None:
        """A SPILL queue dead-dropped ``tokens`` (array) into its
        overflow ring instead of taking a Rear reservation (ring fill
        above the high-water mark)."""

    def queue_reinject(self, prefix: str, slots, tokens) -> None:
        """A SPILL queue's drain pump re-published spilled ``tokens``
        into fresh Rear reservations at raw ``slots`` (aligned arrays).
        Fired immediately before the matching :meth:`queue_store`, so an
        oracle can tell a re-publication from a first publication."""

    def queue_steal(
        self, src_prefix: str, dst_prefix: str, src_slots, dst_base: int,
        tokens,
    ) -> None:
        """A work-stealing transfer moved ``tokens`` from raw
        ``src_slots`` of the ``src_prefix`` queue into ``len(tokens)``
        slots starting at raw ``dst_base`` of the ``dst_prefix`` queue
        (sharded scheduling, :mod:`repro.core.queue_sharded`).  Emitted
        by the thief after its destination-side reservation and before
        the matching ``queue_deliver`` on the source, so a multi-queue
        oracle can tell a cross-shard transfer from a lane delivery."""

    # ------------------------------------------------------------------
    # scheduler callbacks
    # ------------------------------------------------------------------
    def sched_tokens(
        self, cycle: int, wf: int, n_token: int, wavefront_size: int
    ) -> None:
        """Wavefront ``wf`` holds ``n_token`` task tokens after acquire."""

    def sched_done(self, cycle: int, wf: int) -> None:
        """Wavefront ``wf`` is raising the global done flag at ``cycle``
        (its decrement drove the in-flight counter to zero).  Fired at
        the DONE store's issue, before any other wavefront can observe
        the flag — the anchor of every termination-barrier wait."""

    # ------------------------------------------------------------------
    # stall-attribution callbacks (repro.obs.blame)
    # ------------------------------------------------------------------
    def wf_phase(self, wf: int, phase: str, detail: str = "") -> None:
        """Wavefront ``wf`` entered scheduler/queue ``phase`` at
        :attr:`now`.  Phases name what the ops issued next are *for*
        (``"termination"``, ``"work"``, ``"reserve"``, ``"dna_spin"``,
        ``"full_wait"``, ``"steal"``); ``detail`` optionally carries the
        queue prefix so blame can aggregate per queue/shard.  Purely a
        classification mark: phase marks never affect simulation."""
