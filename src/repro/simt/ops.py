"""The instruction vocabulary kernels yield to the engine.

A simulated kernel is a Python generator.  Each ``yield`` hands the engine
one wavefront-level operation; the engine charges its cost, performs its
side effects at the architecturally correct time, fills in its result
fields, and resumes the generator.  Lane-level data lives in NumPy arrays
inside the kernel; an operation carries *vectors* of per-lane indices and
operands so a single yield models one lock-step wavefront instruction.

Op classes deliberately use ``__slots__``: benchmarks create millions of
them and attribute-dict overhead would dominate.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np


class AtomicKind(enum.Enum):
    """Read-modify-write flavours supported by the simulated memory system.

    ``ADD`` is the paper's AFA (atomic fetch-add): it *never fails*, which
    is the foundation of the retry-free property.  ``CAS`` can fail when the
    target changed between the kernel's read and the compare — failure
    emerges from simulated interleaving, it is never scripted.
    """

    ADD = "add"
    MIN = "min"
    MAX = "max"
    EXCH = "exch"
    CAS = "cas"


class Op:
    """Base class for everything a kernel may yield."""

    __slots__ = ()


class Compute(Op):
    """ALU work occupying the CU for ``cycles`` cycles.

    Compute occupancy is charged to the issuing CU and cannot be hidden by
    wavefront switching (the SIMD is busy).
    """

    __slots__ = ("cycles",)

    def __init__(self, cycles: int):
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        self.cycles = int(cycles)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Compute({self.cycles})"


class LocalOp(Op):
    """A wavefront-local (LDS) operation, e.g. lane aggregation.

    The paper's Listings 1 and 3 use local ``atomic_inc``/``atomic_add`` on
    ``lQueueSlotsNeeded`` so every lane learns its relative slot index.  In
    lock-step execution this is a prefix sum over the active mask; it never
    leaves the CU and never fails.  The data side is computed directly in
    the kernel with NumPy; this op only charges the cost.
    """

    __slots__ = ("cycles",)

    def __init__(self, cycles: int):
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        self.cycles = int(cycles)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LocalOp({self.cycles})"


class MemRead(Op):
    """Per-lane gather from a global buffer.

    ``index`` is a scalar or an int array of lane addresses (inactive lanes
    simply do not appear).  The engine samples memory at the architectural
    completion time and stores the values in :attr:`result`.

    Coalescing: lanes reading a contiguous, aligned range produce one
    transaction; scattered lanes produce more (see
    :func:`repro.simt.engine.transactions_for`).

    Hot-loop contract: a ``prechecked`` read may be re-yielded any number
    of times (the queue layers park one poll op per watch set), but its
    ``index`` must not be mutated in place between yields — the engine's
    read-elision fast path relies on the address set being stable.
    """

    __slots__ = ("buf", "index", "result", "trans", "prechecked", "span",
                 "epoch", "fresh")

    def __init__(self, buf: str, index, trans: Optional[int] = None,
                 prechecked: bool = False):
        self.buf = buf
        self.index = index
        self.result: Optional[np.ndarray] = None
        #: precomputed transaction count (hot-loop callers cache this).
        self.trans = trans
        #: index already validated as an in-bounds int64 array.
        self.prechecked = prechecked
        #: engine-private ``(min, max)`` of the index, computed once at
        #: issue so the completion-time bounds check needn't rescan.
        self.span: Optional[tuple] = None
        #: engine-private buffer-write epoch at the last sampling.
        self.epoch: Optional[int] = None
        #: whether :attr:`result` was re-sampled at the latest completion
        #: (False: the buffer is unchanged since the previous yield of
        #: this op, so the values are identical — kernels may reuse any
        #: cached derivation of the previous result).
        self.fresh: bool = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MemRead({self.buf!r}, n={np.size(self.index)})"


class MemWrite(Op):
    """Per-lane scatter to a global buffer, applied at completion time."""

    __slots__ = ("buf", "index", "values", "trans", "prechecked", "span")

    def __init__(self, buf: str, index, values, trans: Optional[int] = None,
                 prechecked: bool = False):
        self.buf = buf
        self.index = index
        self.values = values
        self.trans = trans
        self.prechecked = prechecked
        self.span: Optional[tuple] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MemWrite({self.buf!r}, n={np.size(self.index)})"


class AtomicRMW(Op):
    """One wavefront instruction's worth of global atomic requests.

    Each element of ``index`` is an independent request.  Requests to the
    same address are serialized at that address's atomic unit in lane
    order (after any requests already queued there by other wavefronts),
    each taking ``device.atomic_service`` cycles — this is the contended
    hot spot of §3.2.  Requests to distinct addresses proceed in parallel.

    For ``CAS``, ``operand`` holds the *expected* values and ``operand2``
    the *new* values; :attr:`success` receives a per-request bool mask.
    For everything else ``operand`` is the right-hand side and
    ``operand2`` is unused.  :attr:`old` always receives the pre-op values
    (AFA semantics: "returns the old value of the target").

    A proxy-thread atomic (the paper's §4.1) is simply an ``AtomicRMW``
    with a single scalar request — the whole point of arbitrary-n is that
    the wavefront then needs only this one request.
    """

    __slots__ = ("buf", "index", "kind", "operand", "operand2", "old", "success")

    def __init__(self, buf: str, index, kind: AtomicKind, operand, operand2=None):
        self.buf = buf
        self.index = index
        self.kind = kind
        self.operand = operand
        self.operand2 = operand2
        self.old: Optional[np.ndarray] = None
        self.success: Optional[np.ndarray] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AtomicRMW({self.buf!r}, kind={self.kind.value}, "
            f"n={np.size(self.index)})"
        )


class Fence(Op):
    """A memory fence: completes when all the wavefront's prior memory
    effects are visible.  In this simulator effects are applied in global
    event order already, so a fence only charges issue occupancy; it exists
    so kernels read like their OpenCL counterparts."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Fence()"


class Abort(Op):
    """Abort the kernel (queue-full exception, Listing 3 line 25).

    ``info`` optionally carries structured context about the failure —
    the queue variants pass ``{"queue": prefix, "capacity": c, "fill":
    f, "shard": s}`` so the engine can raise a typed
    :class:`~repro.simt.errors.QueueFullError` instead of a bare
    :class:`~repro.simt.errors.KernelAbort`.
    """

    __slots__ = ("reason", "info")

    def __init__(self, reason: str, info: "dict | None" = None):
        self.reason = reason
        self.info = info

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Abort({self.reason!r})"
