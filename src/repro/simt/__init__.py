"""SIMT GPU simulator substrate.

This package stands in for the paper's OpenCL GPUs (AMD Fiji and Spectre).
It provides:

* :class:`~repro.simt.device.DeviceSpec` and the :data:`FIJI` /
  :data:`SPECTRE` / :data:`TESTGPU` presets;
* :class:`~repro.simt.memory.GlobalMemory` — statically allocated buffers;
* the op vocabulary in :mod:`repro.simt.ops` that kernels (Python
  generators) yield;
* :class:`~repro.simt.engine.Engine` — the discrete-event executor with
  lock-step wavefronts, zero-cost wavefront switching, and per-address
  atomic serialization where CAS can fail and fetch-add cannot;
* lane-mask helpers in :mod:`repro.simt.lanes`;
* :class:`~repro.simt.stats.SimStats` counters feeding Figures 1 and 5;
* the opt-in :class:`~repro.simt.probe.Probe` observability interface —
  cycle-accurate hooks consumed by :mod:`repro.obs` (timelines, queue and
  contention metrics, Perfetto export).
"""

from .analysis import Utilization, analyze, utilization_report
from .device import FIJI, SPECTRE, TESTGPU, DeviceSpec, paper_workgroups
from .probe import Probe
from .trace import TraceEvent, Tracer
from .engine import (
    COALESCE_SEGMENT_WORDS,
    OP_KIND_NAMES,
    Engine,
    Kernel,
    KernelContext,
    LaunchResult,
    transactions_for,
)
from .errors import (
    KernelAbort,
    LaunchConfigError,
    MemoryFault,
    QueueFullError,
    SimError,
    SimulationTimeout,
    WedgeError,
)
from .lanes import ballot, first_active, lane_ids, rank_within, segmented_rank
from .memory import GlobalMemory
from .ops import (
    Abort,
    AtomicKind,
    AtomicRMW,
    Compute,
    Fence,
    LocalOp,
    MemRead,
    MemWrite,
    Op,
)
from .stats import SimStats

__all__ = [
    "OP_KIND_NAMES",
    "Probe",
    "TraceEvent",
    "Tracer",
    "Utilization",
    "analyze",
    "utilization_report",
    "FIJI",
    "SPECTRE",
    "TESTGPU",
    "DeviceSpec",
    "paper_workgroups",
    "COALESCE_SEGMENT_WORDS",
    "Engine",
    "Kernel",
    "KernelContext",
    "LaunchResult",
    "transactions_for",
    "KernelAbort",
    "LaunchConfigError",
    "MemoryFault",
    "QueueFullError",
    "SimError",
    "SimulationTimeout",
    "WedgeError",
    "ballot",
    "first_active",
    "lane_ids",
    "rank_within",
    "segmented_rank",
    "GlobalMemory",
    "Abort",
    "AtomicKind",
    "AtomicRMW",
    "Compute",
    "Fence",
    "LocalOp",
    "MemRead",
    "MemWrite",
    "Op",
    "SimStats",
]
