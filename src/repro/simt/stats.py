"""Execution statistics collected by the simulator.

Two layers write here:

* the engine itself (issue slots, memory traffic, atomic requests, CAS
  failures, simulated cycles);
* higher layers (queues, schedulers, drivers) via :attr:`SimStats.custom`,
  e.g. queue-empty exceptions, work cycles, tasks executed.

Figure 1 (CAS retries vs. threads) and Figure 5 (retry ratio) are computed
directly from these counters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from .ops import AtomicKind


@dataclass
class SimStats:
    """Mutable counters for one simulation run."""

    #: wavefront instructions issued (every yielded op).
    issued_ops: int = 0
    #: cycles of CU occupancy charged to Compute ops.
    compute_cycles: int = 0
    #: MemRead ops issued.
    mem_reads: int = 0
    #: MemWrite ops issued.
    mem_writes: int = 0
    #: memory transactions after coalescing.
    mem_transactions: int = 0
    #: LDS/wavefront-local ops issued.
    lds_ops: int = 0
    #: cycles any CU issue pipe was occupied (summed over CUs).
    cu_busy_cycles: int = 0
    #: cycles of serialized atomic-unit service (summed over addresses).
    atomic_service_cycles: int = 0
    #: global atomic *requests* (one per lane element), by kind.
    atomic_requests: Dict[str, int] = field(default_factory=dict)
    #: CAS requests that failed (expected != current at service time).
    cas_failures: int = 0
    #: simulated cycle at which the run finished.
    sim_cycles: int = 0
    #: free-form counters for queue/scheduler/driver layers.
    custom: Counter = field(default_factory=Counter)

    def count_atomic(self, kind: AtomicKind, n: int) -> None:
        """Record ``n`` atomic requests of ``kind``."""
        key = kind.value
        self.atomic_requests[key] = self.atomic_requests.get(key, 0) + n

    @property
    def total_atomic_requests(self) -> int:
        """All global atomic requests issued by the kernel.

        This is the numerator/denominator of the paper's *retry ratio*
        (§6.3): total atomic operations used by a kernel over the number
        required by the proposed design.
        """
        return sum(self.atomic_requests.values())

    @property
    def cas_attempts(self) -> int:
        """Total CAS requests (successes + failures)."""
        return self.atomic_requests.get(AtomicKind.CAS.value, 0)

    @property
    def cas_successes(self) -> int:
        return self.cas_attempts - self.cas_failures

    def seconds(self, clock_hz: float) -> float:
        """Simulated wall time at a given clock."""
        return self.sim_cycles / clock_hz

    def merge(self, other: "SimStats") -> None:
        """Accumulate another run's counters into this one.

        Used by multi-launch drivers (Rodinia-style BFS launches one kernel
        per level and reports the sum).  ``sim_cycles`` *adds* because the
        launches are sequential in time.
        """
        self.issued_ops += other.issued_ops
        self.compute_cycles += other.compute_cycles
        self.mem_reads += other.mem_reads
        self.mem_writes += other.mem_writes
        self.mem_transactions += other.mem_transactions
        self.lds_ops += other.lds_ops
        self.cu_busy_cycles += other.cu_busy_cycles
        self.atomic_service_cycles += other.atomic_service_cycles
        for key, val in other.atomic_requests.items():
            self.atomic_requests[key] = self.atomic_requests.get(key, 0) + val
        self.cas_failures += other.cas_failures
        self.sim_cycles += other.sim_cycles
        self.custom.update(other.custom)

    def metric_items(self):
        """Flat ``(name, value)`` pairs for metrics-registry ingestion.

        Engine counters are namespaced ``sim.*`` (atomic request counts
        as ``sim.atomic_requests.<kind>``); the free-form ``custom``
        counters that the queue variants and the persistent scheduler
        bump keep their already-dotted names (``queue.*``,
        ``scheduler.*``).  This is the single publishing surface between
        the simulator's per-launch counters and
        :meth:`repro.obs.registry.MetricsRegistry.ingest_simstats` —
        layers add counters here (or to ``custom``) and every run-level
        consumer sees them without bespoke plumbing.
        """
        yield "sim.issued_ops", self.issued_ops
        yield "sim.compute_cycles", self.compute_cycles
        yield "sim.mem_reads", self.mem_reads
        yield "sim.mem_writes", self.mem_writes
        yield "sim.mem_transactions", self.mem_transactions
        yield "sim.lds_ops", self.lds_ops
        yield "sim.cu_busy_cycles", self.cu_busy_cycles
        yield "sim.atomic_service_cycles", self.atomic_service_cycles
        for kind, n in sorted(self.atomic_requests.items()):
            yield f"sim.atomic_requests.{kind}", n
        yield "sim.cas_failures", self.cas_failures
        yield "sim.cycles", self.sim_cycles
        for key, val in sorted(self.custom.items()):
            yield key, val

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view for reports and JSON dumps."""
        return {
            "issued_ops": self.issued_ops,
            "compute_cycles": self.compute_cycles,
            "mem_reads": self.mem_reads,
            "mem_writes": self.mem_writes,
            "mem_transactions": self.mem_transactions,
            "lds_ops": self.lds_ops,
            "cu_busy_cycles": self.cu_busy_cycles,
            "atomic_service_cycles": self.atomic_service_cycles,
            "atomic_requests": dict(self.atomic_requests),
            "total_atomic_requests": self.total_atomic_requests,
            "cas_attempts": self.cas_attempts,
            "cas_successes": self.cas_successes,
            "cas_failures": self.cas_failures,
            "sim_cycles": self.sim_cycles,
            "custom": dict(self.custom),
        }
