"""Post-run utilization analysis of a simulated launch.

Turns a :class:`~repro.simt.engine.LaunchResult` into the quantities a
performance engineer asks of a profiler: issue-pipe utilization, atomic-
unit pressure, memory traffic mix, and the retry-overhead share.  Used by
the ablation benches and handy for interactive exploration of why one
queue variant loses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .engine import LaunchResult


@dataclass(frozen=True)
class Utilization:
    """Derived utilization metrics for one launch."""

    #: fraction of CU issue-pipe cycles occupied, averaged over CUs.
    issue_utilization: float
    #: serialized atomic service cycles as a fraction of the run — values
    #: near (or above) 1.0 mean a single contended word was the clock.
    atomic_pressure: float
    #: ALU cycles as a fraction of total CU capacity.
    compute_fraction: float
    #: memory transactions per issued op (traffic intensity).
    transactions_per_op: float
    #: CAS failures per issued op (retry overhead share).
    cas_failure_rate: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "issue_utilization": self.issue_utilization,
            "atomic_pressure": self.atomic_pressure,
            "compute_fraction": self.compute_fraction,
            "transactions_per_op": self.transactions_per_op,
            "cas_failure_rate": self.cas_failure_rate,
        }


def analyze(result: LaunchResult) -> Utilization:
    """Compute utilization metrics from a launch's statistics."""
    stats = result.stats
    dev = result.device
    cycles = max(result.cycles, 1)
    capacity = cycles * dev.n_cus
    ops = max(stats.issued_ops, 1)
    return Utilization(
        issue_utilization=stats.cu_busy_cycles / capacity,
        atomic_pressure=stats.atomic_service_cycles / cycles,
        compute_fraction=stats.compute_cycles / capacity,
        transactions_per_op=stats.mem_transactions / ops,
        cas_failure_rate=stats.cas_failures / ops,
    )


def utilization_report(results: Dict[str, LaunchResult]) -> str:
    """Side-by-side utilization table for several labelled launches."""
    from repro.harness.report import render_table

    rows = []
    for label, res in results.items():
        u = analyze(res)
        rows.append(
            [
                label,
                res.cycles,
                f"{u.issue_utilization:.3f}",
                f"{u.atomic_pressure:.3f}",
                f"{u.compute_fraction:.3f}",
                f"{u.transactions_per_op:.2f}",
                f"{u.cas_failure_rate:.4f}",
            ]
        )
    return render_table(
        [
            "run",
            "cycles",
            "issue util",
            "atomic pressure",
            "compute frac",
            "trans/op",
            "CAS fail/op",
        ],
        rows,
    )
