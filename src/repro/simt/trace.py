"""Optional execution tracing for simulated launches.

A :class:`Tracer` wraps a kernel and records one event per yielded op —
wavefront id, op kind, a compact detail string, and (after the launch)
nothing else; timing lives in the engine, so the trace records *issue
order*, which is what one actually reads when debugging a scheduler
("which wavefront grabbed the token?", "who hit queue-full first?").

Usage::

    tracer = Tracer(max_events=10_000)
    engine.launch(tracer.wrap(kernel), n_wavefronts)
    print(tracer.render(limit=50))
    deq = tracer.filter(kind="AtomicRMW", detail_contains="wq.ctrl")

Tracing is strictly opt-in: the engine's hot path is untouched, and the
wrapper adds one tuple append per op to the traced launch only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

import numpy as np

from .engine import Kernel, KernelContext
from .ops import AtomicRMW, Compute, LocalOp, MemRead, MemWrite, Op


@dataclass(frozen=True)
class TraceEvent:
    """One issued wavefront instruction."""

    #: monotonically increasing issue index across the launch.
    seq: int
    #: issuing wavefront.
    wf_id: int
    #: op class name ("MemRead", "AtomicRMW", ...).
    kind: str
    #: compact human-readable payload summary.
    detail: str


def _describe(op: Op) -> str:
    if isinstance(op, (MemRead, MemWrite)):
        return f"{op.buf}[n={np.size(op.index)}]"
    if isinstance(op, AtomicRMW):
        return f"{op.buf}:{op.kind.value}[n={np.size(op.index)}]"
    if isinstance(op, (Compute, LocalOp)):
        return f"{op.cycles}cy"
    return ""


class Tracer:
    """Records the op stream of a traced launch."""

    def __init__(self, max_events: int = 1_000_000):
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.truncated = False

    def wrap(self, kernel: Kernel) -> Kernel:
        """Return a kernel that records every op the wrapped one yields."""

        def traced(ctx: KernelContext) -> Generator[Op, Op, None]:
            gen = kernel(ctx)
            result = None
            while True:
                try:
                    op = gen.send(result)
                except StopIteration:
                    return
                if len(self.events) < self.max_events:
                    self.events.append(
                        TraceEvent(
                            seq=len(self.events),
                            wf_id=ctx.wf_id,
                            kind=type(op).__name__,
                            detail=_describe(op),
                        )
                    )
                else:
                    self.truncated = True
                result = yield op

        return traced

    # ------------------------------------------------------------------
    def filter(
        self,
        wf_id: Optional[int] = None,
        kind: Optional[str] = None,
        detail_contains: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Events matching every given criterion."""
        out = self.events
        if wf_id is not None:
            out = [e for e in out if e.wf_id == wf_id]
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if detail_contains is not None:
            out = [e for e in out if detail_contains in e.detail]
        return list(out)

    def counts_by_kind(self) -> dict:
        """Issued-op histogram (cross-check against SimStats)."""
        out: dict = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def render(self, limit: int = 100, wf_id: Optional[int] = None) -> str:
        """The first ``limit`` (matching) events as an aligned listing."""
        events = self.filter(wf_id=wf_id)[:limit]
        lines = [f"{'seq':>6s} {'wf':>4s} {'op':12s} detail"]
        for e in events:
            lines.append(f"{e.seq:6d} {e.wf_id:4d} {e.kind:12s} {e.detail}")
        if self.truncated:
            lines.append(f"... truncated at {self.max_events} events")
        return "\n".join(lines)
