"""Optional execution tracing for simulated launches.

A :class:`Tracer` wraps a kernel and records one event per yielded op —
wavefront id, op kind, a compact detail string, the active-lane count,
and (when the launch carries a probe) the simulated cycle at which the
op was issued.  The trace therefore records *issue order* — which is
what one actually reads when debugging a scheduler ("which wavefront
grabbed the token?", "who hit queue-full first?") — and, probed,
*issue time* as well.

Usage::

    tracer = Tracer(max_events=10_000)
    engine.launch(tracer.wrap(kernel), n_wavefronts, probe=tracer)
    print(tracer.render(limit=50))
    deq = tracer.filter(kind="AtomicRMW", detail_contains="wq.ctrl")

``Tracer`` extends :class:`~repro.simt.probe.Probe` purely so it can be
passed as the launch's probe: the engine then keeps ``tracer.now`` at
the current simulated cycle, which the wrapper stamps onto each event.
Omitting ``probe=tracer`` (or attaching a different probe — the wrapper
reads ``ctx.probe.now`` whoever owns it) keeps tracing working; events
then record ``cycle=-1``.

Tracing is strictly opt-in: the engine's hot path is untouched, and the
wrapper adds one tuple append per op to the traced launch only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

import numpy as np

from .engine import Kernel, KernelContext
from .ops import AtomicRMW, Compute, LocalOp, MemRead, MemWrite, Op
from .probe import Probe


@dataclass(frozen=True)
class TraceEvent:
    """One issued wavefront instruction."""

    #: monotonically increasing issue index across the launch.
    seq: int
    #: issuing wavefront.
    wf_id: int
    #: op class name ("MemRead", "AtomicRMW", ...).
    kind: str
    #: compact human-readable payload summary.
    detail: str
    #: simulated issue cycle (-1 when the launch carried no probe).
    cycle: int = -1
    #: lanes participating in the op (wavefront size for uniform ops).
    lanes: int = 0


def _describe(op: Op) -> str:
    if isinstance(op, (MemRead, MemWrite)):
        return f"{op.buf}[n={np.size(op.index)}]"
    if isinstance(op, AtomicRMW):
        return f"{op.buf}:{op.kind.value}[n={np.size(op.index)}]"
    if isinstance(op, (Compute, LocalOp)):
        return f"{op.cycles}cy"
    return ""


def _lane_count(op: Op, wavefront_size: int) -> int:
    if isinstance(op, (MemRead, MemWrite, AtomicRMW)):
        return int(np.size(op.index))
    return wavefront_size


class Tracer(Probe):
    """Records the op stream of a traced launch."""

    def __init__(self, max_events: int = 1_000_000):
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.truncated = False

    def wrap(self, kernel: Kernel) -> Kernel:
        """Return a kernel that records every op the wrapped one yields."""

        def traced(ctx: KernelContext) -> Generator[Op, Op, None]:
            gen = kernel(ctx)
            probe = ctx.probe  # engine keeps probe.now at the sim clock
            wf_size = ctx.device.wavefront_size
            result = None
            while True:
                try:
                    op = gen.send(result)
                except StopIteration:
                    return
                if len(self.events) < self.max_events:
                    self.events.append(
                        TraceEvent(
                            seq=len(self.events),
                            wf_id=ctx.wf_id,
                            kind=type(op).__name__,
                            detail=_describe(op),
                            cycle=probe.now if probe is not None else -1,
                            lanes=_lane_count(op, wf_size),
                        )
                    )
                else:
                    self.truncated = True
                result = yield op

        return traced

    # ------------------------------------------------------------------
    def filter(
        self,
        wf_id: Optional[int] = None,
        kind: Optional[str] = None,
        detail_contains: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Events matching every given criterion."""
        out = self.events
        if wf_id is not None:
            out = [e for e in out if e.wf_id == wf_id]
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if detail_contains is not None:
            out = [e for e in out if detail_contains in e.detail]
        return list(out)

    def counts_by_kind(self) -> dict:
        """Issued-op histogram (cross-check against SimStats)."""
        out: dict = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def render(self, limit: int = 100, wf_id: Optional[int] = None) -> str:
        """The first ``limit`` (matching) events as an aligned listing.

        The op column sizes itself to the longest kind name (fixed-width
        formatting used to shear the detail column off long op names),
        the cycle column only appears when the launch carried a probe,
        and truncation/elision notes say how many events were dropped.
        """
        matching = self.filter(wf_id=wf_id)
        events = matching[:limit]
        timed = any(e.cycle >= 0 for e in events)
        kw = max([len("op")] + [len(e.kind) for e in events])
        header = f"{'seq':>6s} {'wf':>4s} "
        if timed:
            header += f"{'cycle':>10s} "
        header += f"{'op':{kw}s} {'lanes':>5s} detail"
        lines = [header]
        for e in events:
            row = f"{e.seq:6d} {e.wf_id:4d} "
            if timed:
                row += f"{e.cycle:10d} "
            row += f"{e.kind:{kw}s} {e.lanes:5d} {e.detail}"
            lines.append(row)
        if len(matching) > limit:
            lines.append(f"... {len(matching) - limit} more events not shown")
        if self.truncated:
            lines.append(
                f"... recording truncated at max_events={self.max_events}"
            )
        return "\n".join(lines)
