"""Discrete-event SIMT execution engine.

The engine runs *kernels* — Python generator functions — across simulated
compute units with the scheduling physics that the paper's argument rests
on:

* **In-order issue, non-hideable occupancy.**  Each yielded op occupies its
  CU's issue pipe; while the pipe is busy no other resident wavefront can
  issue.  Retry-loop instructions therefore cost real throughput even when
  their memory latency is hidden.
* **Zero-cost wavefront switching.**  A wavefront stalled on memory sleeps;
  the CU immediately issues from another ready resident wavefront.  This is
  the mechanism by which AFA latency "can be effectively hidden" (§3.2).
* **Serialized atomics per address.**  See :mod:`repro.simt.atomics`.

A kernel generator receives a :class:`KernelContext` and yields
:class:`~repro.simt.ops.Op` objects.  Results (loaded values, atomic old
values, CAS success masks) are filled into the op before the generator is
resumed, so kernels read like straight-line OpenCL with ``yield`` marking
each wavefront instruction.

Determinism: the event queue breaks time ties by insertion order, and no
randomness exists anywhere in the engine, so every simulation is exactly
reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, Iterable, List, Optional

import numpy as np

from .atomics import AtomicSystem
from .device import DeviceSpec
from .errors import KernelAbort, LaunchConfigError, SimulationTimeout
from .memory import HOT_BUFFER_WORDS, GlobalMemory
from .ops import Abort, AtomicRMW, Compute, Fence, LocalOp, MemRead, MemWrite, Op
from .stats import SimStats

#: segment size (in 8-byte words) used by the coalescing model: lanes whose
#: addresses fall in one aligned segment share one memory transaction.
COALESCE_SEGMENT_WORDS = 16


def transactions_for(index) -> int:
    """Number of memory transactions a gather/scatter needs after coalescing.

    Approximated as the segment *span* of the accessed addresses, capped
    at one transaction per lane: exact for the two access shapes kernels
    actually produce (contiguous runs coalesce to the span; widely
    scattered lanes pay one transaction each) without an O(n log n)
    distinct-count per memory op.
    """
    idx = np.asarray(index, dtype=np.int64)
    if idx.ndim == 0:
        return 1
    n = idx.size
    if n == 0:
        return 0
    if n == 1:
        return 1
    lo = int(idx.min()) // COALESCE_SEGMENT_WORDS
    hi = int(idx.max()) // COALESCE_SEGMENT_WORDS
    return min(hi - lo + 1, n)


@dataclass
class KernelContext:
    """Per-wavefront view handed to a kernel generator.

    Attributes
    ----------
    wf_id:
        Global wavefront (== workgroup, as in the paper's launch geometry)
        index in ``[0, n_wavefronts)``.
    n_wavefronts:
        Total wavefronts launched.
    device:
        The device spec (for wavefront size and cost constants).
    params:
        Launch parameters: buffer names, problem constants, tuning knobs.
    lane:
        ``[0..wavefront_size)`` lane index vector (convenience).
    """

    wf_id: int
    n_wavefronts: int
    device: DeviceSpec
    params: Dict[str, object]
    lane: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: the launch's statistics; queue/scheduler layers bump stats.custom.
    stats: Optional[SimStats] = None

    def __post_init__(self) -> None:
        if self.lane.size == 0:
            self.lane = np.arange(self.device.wavefront_size, dtype=np.int64)

    @property
    def global_thread_base(self) -> int:
        """Global id of this wavefront's lane 0."""
        return self.wf_id * self.device.wavefront_size


Kernel = Callable[[KernelContext], Generator[Op, Op, None]]


class _Wavefront:
    """Engine-internal record for one resident wavefront."""

    __slots__ = ("wid", "cu", "gen", "pending")

    def __init__(self, wid: int, cu: "_CU", gen: Generator[Op, Op, None]):
        self.wid = wid
        self.cu = cu
        self.gen = gen
        self.pending: Optional[Op] = None


class _CU:
    """Engine-internal compute unit: an issue pipe plus a ready queue."""

    __slots__ = ("cid", "busy_until", "ready")

    def __init__(self, cid: int):
        self.cid = cid
        self.busy_until = 0
        self.ready: List[_Wavefront] = []


# event kinds
_EV_WF_READY = 0
_EV_CU_FREE = 1
_EV_ATOMIC = 2
_EV_APPLY_WRITE = 3


@dataclass
class LaunchResult:
    """Outcome of one kernel launch."""

    #: simulated cycles from launch to last wavefront exit.
    cycles: int
    #: statistics gathered during the launch.
    stats: SimStats
    #: the device the kernel ran on.
    device: DeviceSpec

    @property
    def seconds(self) -> float:
        return self.device.seconds(self.cycles)


class Engine:
    """Owns a device, its global memory, and the event loop.

    One engine may run several kernel launches back to back against the
    same memory (like a real host command queue); statistics can be read
    per launch or accumulated by the caller.
    """

    def __init__(self, device: DeviceSpec, memory: Optional[GlobalMemory] = None):
        self.device = device
        self.memory = memory if memory is not None else GlobalMemory()

    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: Kernel,
        n_wavefronts: int,
        params: Optional[Dict[str, object]] = None,
        max_cycles: int = 20_000_000_000,
        charge_launch_overhead: bool = False,
    ) -> LaunchResult:
        """Run ``kernel`` on ``n_wavefronts`` wavefronts until all exit.

        Wavefronts are distributed round-robin over CUs, as hardware
        workgroup dispatch does for a uniform kernel.  Raises
        :class:`LaunchConfigError` if the launch exceeds device residency —
        a persistent-thread kernel that oversubscribes residency would
        deadlock on real hardware too.

        ``charge_launch_overhead`` adds ``device.kernel_launch_cycles`` to
        the reported cycle count; per-level drivers (Rodinia-style BFS) set
        it to model their dominant cost.
        """
        if n_wavefronts <= 0:
            raise LaunchConfigError(
                f"n_wavefronts must be positive, got {n_wavefronts}"
            )
        if n_wavefronts > self.device.max_resident_wavefronts:
            raise LaunchConfigError(
                f"{n_wavefronts} wavefronts exceed device residency "
                f"({self.device.max_resident_wavefronts}); persistent "
                "kernels must fit or they deadlock"
            )
        params = dict(params or {})
        stats = SimStats()
        atomics = AtomicSystem(self.device, self.memory, stats)

        cus = [_CU(i) for i in range(self.device.n_cus)]
        live = 0
        heap: List[tuple] = []
        seq = 0

        def push(time: int, kind: int, payload) -> None:
            nonlocal seq
            heapq.heappush(heap, (time, seq, kind, payload))
            seq += 1

        for wid in range(n_wavefronts):
            cu = cus[wid % len(cus)]
            ctx = KernelContext(
                wf_id=wid,
                n_wavefronts=n_wavefronts,
                device=self.device,
                params=params,
                stats=stats,
            )
            gen = kernel(ctx)
            wf = _Wavefront(wid, cu, gen)
            live += 1
            cu.ready.append(wf)

        # atomics execute at the L2 (GCN), as do loads/stores of small hot
        # control buffers; bulk data pays full memory latency.
        lat_to = self.device.l2_latency // 2
        lat_back = self.device.l2_latency - lat_to
        issue = self.device.issue_cycles

        def mem_op_latency(buf_name: str) -> int:
            if self.memory.is_hot(buf_name):
                return self.device.l2_latency
            return self.device.mem_latency
        now = 0
        abort_exc: Optional[KernelAbort] = None

        def complete_effects(wf: _Wavefront, when: int) -> None:
            """Sample memory for a load at its architectural completion."""
            op = wf.pending
            if isinstance(op, MemRead):
                if op.prechecked:
                    idx = op.index
                else:
                    idx = self.memory.check_bounds(op.buf, op.index)
                op.result = self.memory[op.buf][idx].copy()

        def apply_write(op: MemWrite) -> None:
            if op.prechecked:
                idx = op.index
            else:
                idx = self.memory.check_bounds(op.buf, op.index)
            vals = np.broadcast_to(
                np.asarray(op.values, dtype=np.int64), idx.shape
            )
            self.memory[op.buf][idx] = vals

        def issue_from(cu: _CU) -> None:
            """If the CU is free and has a ready wavefront, issue one op."""
            nonlocal live, abort_exc
            if abort_exc is not None:
                return
            if now < cu.busy_until or not cu.ready:
                return
            wf = cu.ready.pop(0)
            try:
                op = wf.gen.send(wf.pending)
            except StopIteration:
                live -= 1
                # the exiting instruction still occupied the pipe briefly;
                # charge nothing extra and let the next wavefront issue.
                issue_from(cu)
                return
            except KernelAbort as exc:
                abort_exc = exc
                return
            wf.pending = op
            stats.issued_ops += 1

            if isinstance(op, Compute):
                occ = max(op.cycles, 1)
                stats.compute_cycles += op.cycles
                stats.cu_busy_cycles += occ
                cu.busy_until = now + occ
                push(cu.busy_until, _EV_CU_FREE, cu)
                push(now + occ, _EV_WF_READY, wf)
            elif isinstance(op, LocalOp):
                occ = max(op.cycles, 1)
                stats.lds_ops += 1
                stats.cu_busy_cycles += occ
                cu.busy_until = now + occ
                push(cu.busy_until, _EV_CU_FREE, cu)
                push(now + occ, _EV_WF_READY, wf)
            elif isinstance(op, MemRead):
                trans = op.trans if op.trans is not None else transactions_for(op.index)
                stats.mem_reads += 1
                stats.mem_transactions += trans
                stats.cu_busy_cycles += issue
                cu.busy_until = now + issue
                push(cu.busy_until, _EV_CU_FREE, cu)
                extra = max(trans - 1, 0) * self.device.mem_pipe_cycles
                push(now + issue + mem_op_latency(op.buf) + extra,
                     _EV_WF_READY, wf)
            elif isinstance(op, MemWrite):
                # stores are write-buffered: the wavefront proceeds after
                # issue; the effect lands at architectural completion time.
                trans = op.trans if op.trans is not None else transactions_for(op.index)
                stats.mem_writes += 1
                stats.mem_transactions += trans
                stats.cu_busy_cycles += issue
                cu.busy_until = now + issue
                push(cu.busy_until, _EV_CU_FREE, cu)
                extra = max(trans - 1, 0) * self.device.mem_pipe_cycles
                push(now + issue + mem_op_latency(op.buf) + extra,
                     _EV_APPLY_WRITE, op)
                push(now + issue, _EV_WF_READY, wf)
            elif isinstance(op, AtomicRMW):
                stats.cu_busy_cycles += issue
                cu.busy_until = now + issue
                push(cu.busy_until, _EV_CU_FREE, cu)
                push(now + issue + lat_to, _EV_ATOMIC, wf)
            elif isinstance(op, Fence):
                stats.cu_busy_cycles += issue
                cu.busy_until = now + issue
                push(cu.busy_until, _EV_CU_FREE, cu)
                push(now + issue, _EV_WF_READY, wf)
            elif isinstance(op, Abort):
                abort_exc = KernelAbort(op.reason)
            else:
                raise TypeError(f"kernel yielded a non-Op: {op!r}")

        # prime: let every CU start issuing at t=0
        for cu in cus:
            issue_from(cu)

        while heap and live > 0 and abort_exc is None:
            now, _, kind, payload = heapq.heappop(heap)
            if now > max_cycles:
                raise SimulationTimeout(
                    f"simulation exceeded {max_cycles} cycles "
                    f"({live} wavefronts still live)"
                )
            if kind == _EV_WF_READY:
                wf = payload
                complete_effects(wf, now)
                wf.cu.ready.append(wf)
                issue_from(wf.cu)
            elif kind == _EV_CU_FREE:
                issue_from(payload)
            elif kind == _EV_ATOMIC:
                wf = payload
                op = wf.pending
                assert isinstance(op, AtomicRMW)
                last_end = atomics.service(op, now)
                push(last_end + lat_back, _EV_WF_READY, wf)
            elif kind == _EV_APPLY_WRITE:
                apply_write(payload)

        if abort_exc is not None:
            raise abort_exc

        total = now
        # drain the write buffer: stores issued by the last wavefronts are
        # architecturally committed at kernel end (a real GPU flushes them
        # before signalling completion).
        while heap:
            t, _, kind, payload = heapq.heappop(heap)
            if kind == _EV_APPLY_WRITE:
                apply_write(payload)
                total = max(total, t)
        if charge_launch_overhead:
            total += self.device.kernel_launch_cycles
        stats.sim_cycles = total
        return LaunchResult(cycles=total, stats=stats, device=self.device)
