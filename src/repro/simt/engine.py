"""Discrete-event SIMT execution engine.

The engine runs *kernels* — Python generator functions — across simulated
compute units with the scheduling physics that the paper's argument rests
on:

* **In-order issue, non-hideable occupancy.**  Each yielded op occupies its
  CU's issue pipe; while the pipe is busy no other resident wavefront can
  issue.  Retry-loop instructions therefore cost real throughput even when
  their memory latency is hidden.
* **Zero-cost wavefront switching.**  A wavefront stalled on memory sleeps;
  the CU immediately issues from another ready resident wavefront.  This is
  the mechanism by which AFA latency "can be effectively hidden" (§3.2).
* **Serialized atomics per address.**  See :mod:`repro.simt.atomics`.

A kernel generator receives a :class:`KernelContext` and yields
:class:`~repro.simt.ops.Op` objects.  Results (loaded values, atomic old
values, CAS success masks) are filled into the op before the generator is
resumed, so kernels read like straight-line OpenCL with ``yield`` marking
each wavefront instruction.

Determinism: the event queue breaks time ties by insertion order, and no
randomness exists anywhere in the engine, so every simulation is exactly
reproducible.

Wall-clock fast paths
---------------------
The event loop is the wall-clock bottleneck of the whole reproduction, so
it trades a little obviousness for speed while keeping every simulated
cycle bit-identical (see docs/simulator_model.md, "Performance model vs.
wall-clock performance", and docs/performance.md for the vectorized
execution model):

* ops whose issue-pipe release and wavefront wake-up land on the *same*
  cycle (``Compute``, ``LocalOp``, ``Fence``, buffered ``MemWrite``) push
  one combined event instead of two — the original pair carried
  consecutive sequence numbers at one timestamp, so nothing could ever
  interleave between them;
* a CU that issues while its ready queue is empty does not push a
  ``CU_FREE`` wake-up at all; it *reserves* the event's sequence number
  and the wake-up is pushed lazily only if some wavefront actually
  arrives during the busy window.  The reserved sequence number keeps the
  event exactly where it would have sorted, so tie-breaking is unchanged;
* per-buffer memory latency and the buffer arrays themselves are cached
  per launch (buffers cannot be allocated, freed, or re-marked hot while
  a kernel is in flight), and engine counters accumulate in locals that
  are flushed into :class:`SimStats` when the launch ends;
* memory-op *data movement* is array-wide by default (``EXEC_MODE ==
  "vector"``): gathers, scatters and atomic batches commit with one
  NumPy operation per wavefront instruction, and re-yielded prechecked
  reads of an unchanged buffer are *elided* — the engine tracks a
  per-buffer write epoch and skips re-sampling (setting ``op.fresh``
  to False) when nothing was stored to the buffer since the op's last
  completion.  ``EXEC_MODE == "scalar"`` forces the straight-line
  per-lane reference path instead (loop over lanes for every gather,
  scatter and atomic); it exists so the bit-identity suite can pin the
  vectorized path against an implementation too simple to be wrong;
* the event most recently scheduled by an issue can park in a one-entry
  ``nxt`` slot instead of the heap; the slot and the heap top are
  totally ordered by the same ``(time, seq)`` tuple compare the heap
  uses, so pop order is unchanged while the common issue->wake cycle
  skips one heap push+pop.
"""

from __future__ import annotations

import heapq
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import count
from time import perf_counter
from typing import Callable, Dict, Generator, List, Optional

import numpy as np

from .atomics import AtomicSystem
from .device import DeviceSpec
from .errors import (
    KernelAbort,
    LaunchConfigError,
    QueueFullError,
    SimulationTimeout,
)
from .memory import GlobalMemory
from .ops import Abort, AtomicRMW, Compute, Fence, LocalOp, MemRead, MemWrite, Op
from .stats import SimStats

#: segment size (in 8-byte words) used by the coalescing model: lanes whose
#: addresses fall in one aligned segment share one memory transaction.
COALESCE_SEGMENT_WORDS = 16

_I64 = np.dtype(np.int64)


def transactions_for(index) -> int:
    """Number of memory transactions a gather/scatter needs after coalescing.

    Approximated as the segment *span* of the accessed addresses, capped
    at one transaction per lane: exact for the two access shapes kernels
    actually produce (contiguous runs coalesce to the span; widely
    scattered lanes pay one transaction each) without an O(n log n)
    distinct-count per memory op.

    Hot-loop callers should precompute this once and pass it to the op's
    ``trans`` argument (the queue layers do); the fast paths below keep
    the remaining calls cheap for plain ints and ready-made int64 arrays
    such as ``ctx.lane``-shaped contiguous gathers.
    """
    if type(index) is int:
        return 1
    if type(index) is np.ndarray and index.dtype == np.int64:
        idx = index
    else:
        idx = np.asarray(index, dtype=np.int64)
    if idx.ndim == 0:
        return 1
    n = idx.size
    if n == 0:
        return 0
    if n == 1:
        return 1
    # the span depends only on the address extremes, so two reductions
    # suffice for every access shape (contiguous runs included).
    lo = int(idx.min()) // COALESCE_SEGMENT_WORDS
    hi = int(idx.max()) // COALESCE_SEGMENT_WORDS
    return min(hi - lo + 1, n)


#: shared, immutable per-wavefront-size lane vectors: a Fiji-scale launch
#: creates one KernelContext per wavefront, and allocating a fresh
#: ``np.arange`` for each (14k allocations) showed up in profiles.
_LANE_CACHE: Dict[int, np.ndarray] = {}


def _lane_vector(wavefront_size: int) -> np.ndarray:
    lane = _LANE_CACHE.get(wavefront_size)
    if lane is None:
        lane = np.arange(wavefront_size, dtype=np.int64)
        lane.setflags(write=False)
        _LANE_CACHE[wavefront_size] = lane
    return lane


@dataclass
class KernelContext:
    """Per-wavefront view handed to a kernel generator.

    Attributes
    ----------
    wf_id:
        Global wavefront (== workgroup, as in the paper's launch geometry)
        index in ``[0, n_wavefronts)``.
    n_wavefronts:
        Total wavefronts launched.
    device:
        The device spec (for wavefront size and cost constants).
    params:
        Launch parameters: buffer names, problem constants, tuning knobs.
    lane:
        ``[0..wavefront_size)`` lane index vector (convenience).  Shared
        between wavefronts and marked read-only; arithmetic on it
        (``ctx.lane + 1``) allocates fresh arrays as before.
    """

    wf_id: int
    n_wavefronts: int
    device: DeviceSpec
    params: Dict[str, object]
    lane: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: the launch's statistics; queue/scheduler layers bump stats.custom.
    stats: Optional[SimStats] = None
    #: the launch's observability probe (None when unprobed); kernel-side
    #: layers read ``probe.now`` for the current simulated cycle.
    probe: Optional[object] = None

    def __post_init__(self) -> None:
        if self.lane.size == 0:
            self.lane = _lane_vector(self.device.wavefront_size)

    @property
    def global_thread_base(self) -> int:
        """Global id of this wavefront's lane 0."""
        return self.wf_id * self.device.wavefront_size


Kernel = Callable[[KernelContext], Generator[Op, Op, None]]


class _Wavefront:
    """Engine-internal record for one resident wavefront."""

    __slots__ = ("wid", "cu", "gen", "pending", "pkind")

    def __init__(self, wid: int, cu: "_CU", gen: Generator[Op, Op, None]):
        self.wid = wid
        self.cu = cu
        self.gen = gen
        self.pending: Optional[Op] = None
        #: dispatch id of `pending`, cached at issue so completion
        #: handlers skip the class lookup.
        self.pkind = 0


class _CU:
    """Engine-internal compute unit: an issue pipe plus a ready queue."""

    __slots__ = ("cid", "busy_until", "ready", "wake")

    def __init__(self, cid: int):
        self.cid = cid
        self.busy_until = 0
        self.ready = deque()
        #: reserved-but-unpushed CU_FREE sequence number (-1: none).
        self.wake = -1


# event kinds
_EV_WF_READY = 0
_EV_CU_FREE = 1
_EV_ATOMIC = 2
_EV_APPLY_WRITE = 3
#: combined CU_FREE + WF_READY at one timestamp (see module docstring).
_EV_FREE_READY = 4

# exact-type dispatch ids for issue_from; unknown classes (Op subclasses
# defined outside this package) are resolved once via isinstance and cached.
_K_COMPUTE = 1
_K_LOCAL = 2
_K_READ = 3
_K_WRITE = 4
_K_ATOMIC = 5
_K_FENCE = 6
_K_ABORT = 7

_OP_KIND: Dict[type, int] = {
    Compute: _K_COMPUTE,
    LocalOp: _K_LOCAL,
    MemRead: _K_READ,
    MemWrite: _K_WRITE,
    AtomicRMW: _K_ATOMIC,
    Fence: _K_FENCE,
    Abort: _K_ABORT,
}

#: op-kind id -> class name, for probes decoding ``Probe.on_issue``.
OP_KIND_NAMES: Dict[int, str] = {
    _K_COMPUTE: "Compute",
    _K_LOCAL: "LocalOp",
    _K_READ: "MemRead",
    _K_WRITE: "MemWrite",
    _K_ATOMIC: "AtomicRMW",
    _K_FENCE: "Fence",
    _K_ABORT: "Abort",
}

#: execution-path selector for the *data* side of memory ops.  "vector"
#: (the default) commits gathers/scatters/atomic batches array-wide and
#: elides re-sampling of unchanged buffers; "scalar" forces the per-lane
#: reference path everywhere.  Both modes simulate bit-identically
#: (cycles, stats, probe traffic) — pinned by tests/test_exec_modes.py.
#: Override per engine with ``Engine(..., exec_mode=...)`` or process-wide
#: by assigning this global (or via :func:`exec_mode`).
EXEC_MODE = "vector"

#: cumulative execution-path counters across launches (reset with
#: :func:`reset_exec_counts`): how many memory-op completions took the
#: vectorized path, were elided as unchanged, or fell back to the scalar
#: reference loop.  Deliberately *not* part of SimStats: path choice is a
#: host-side implementation detail and must never leak into simulation
#: results or report bytes.
EXEC_COUNTS: Dict[str, int] = {
    "reads_vector": 0,
    "reads_elided": 0,
    "reads_scalar": 0,
    "writes_vector": 0,
    "writes_scalar": 0,
}

#: wall-clock seconds per op class (plus "issue" for CU wake-ups), only
#: accumulated while :data:`EXEC_TIMING` is on.  The time of each event
#: *and the kernel continuation it resumes* is attributed to the class
#: of the op that completed — an approximation, but one that makes hot-
#: path regressions attributable per op class (``repro.harness profile``).
EXEC_TIMES: Dict[str, float] = {}

#: enables the :data:`EXEC_TIMES` breakdown (two ``perf_counter`` calls
#: per event); off by default so the hot path stays untimed.
EXEC_TIMING = False


def reset_exec_counts() -> None:
    """Zero :data:`EXEC_COUNTS` and :data:`EXEC_TIMES` (profile tooling)."""
    for k in EXEC_COUNTS:
        EXEC_COUNTS[k] = 0
    EXEC_TIMES.clear()


@contextmanager
def exec_mode(mode: str):
    """Temporarily force the process-wide execution mode (tests)."""
    global EXEC_MODE
    if mode not in ("vector", "scalar"):
        raise ValueError(f"exec mode must be 'vector' or 'scalar', got {mode!r}")
    prev = EXEC_MODE
    EXEC_MODE = mode
    try:
        yield
    finally:
        EXEC_MODE = prev


#: globally unique buffer-write stamps for the read-elision fast path.
#: Uniqueness across launches and buffers means a stale stamp cached on
#: a reused op object can never collide with a live epoch.
_next_epoch = count(1).__next__


#: opt-in observability hook: when set, every launch that was not given
#: an explicit ``probe`` asks this zero-arg factory for one (it may
#: return None to leave that launch unprobed).  Installed/removed by
#: :class:`repro.obs.session.ProfileSession`; the indirection keeps the
#: engine free of any dependency on the observability package.
PROBE_FACTORY: Optional[Callable[[], Optional[object]]] = None

#: opt-in run-level metrics hook: when set, every finished launch is
#: reported as ``METRICS_SINK(device, n_wavefronts, stats)`` *after* its
#: statistics are final, so a sink can never perturb the simulation.
#: Installed/removed by :class:`repro.obs.registry.MetricsSession`; like
#: :data:`PROBE_FACTORY`, the indirection keeps the engine free of any
#: dependency on the observability package.
METRICS_SINK: Optional[Callable[[DeviceSpec, int, SimStats], None]] = None

#: opt-in schedule-exploration hook: when set, every launch that was not
#: given an explicit ``controller`` asks this zero-arg factory for one
#: (it may return None to leave that launch uncontrolled).  A schedule
#: controller perturbs *which* ready wavefront a CU issues from — see
#: :class:`repro.verify.schedule.ScheduleController` — letting a
#: verification driver explore interleavings the deterministic engine
#: would never produce on its own.  Unlike probes, a controller is
#: *active*: a controlled launch may simulate different cycles/stats
#: than an uncontrolled one (that is its purpose).  With no controller,
#: the issue path is the unmodified deterministic popleft, bit-identical
#: to builds that predate the hook (pinned by the determinism tests).
CONTROLLER_FACTORY: Optional[Callable[[], Optional[object]]] = None

#: opt-in liveness hook: when set, every launch that was not given an
#: explicit ``watchdog`` asks this zero-arg factory for one (it may
#: return None to leave that launch unwatched).  A watchdog exposes
#: ``launch_begin(device, n_wavefronts) -> next_check_cycle`` and
#: ``poll(now, live) -> next_check_cycle``; the engine calls ``poll``
#: the first time simulated time reaches the returned cycle.  Polls are
#: read-only with respect to simulated state — a watchdog that never
#: escalates leaves the launch bit-identical to an unwatched one
#: (pinned by the determinism tests) — but an escalating watchdog may
#: raise (e.g. :class:`repro.simt.errors.WedgeError`) to abort a wedged
#: launch.  Installed/removed by :class:`repro.obs.flight.FlightSession`.
WATCHDOG_FACTORY: Optional[Callable[[], Optional[object]]] = None


def _resolve_op_kind(cls: type, op: Op) -> int:
    """Classify an op subclass the slow way and memoize the answer."""
    for base, kind in (
        (Compute, _K_COMPUTE),
        (LocalOp, _K_LOCAL),
        (MemRead, _K_READ),
        (MemWrite, _K_WRITE),
        (AtomicRMW, _K_ATOMIC),
        (Fence, _K_FENCE),
        (Abort, _K_ABORT),
    ):
        if isinstance(op, base):
            _OP_KIND[cls] = kind
            return kind
    raise TypeError(f"kernel yielded a non-Op: {op!r}")


@dataclass
class LaunchResult:
    """Outcome of one kernel launch."""

    #: simulated cycles from launch to last wavefront exit.
    cycles: int
    #: statistics gathered during the launch.
    stats: SimStats
    #: the device the kernel ran on.
    device: DeviceSpec

    @property
    def seconds(self) -> float:
        return self.device.seconds(self.cycles)


class Engine:
    """Owns a device, its global memory, and the event loop.

    One engine may run several kernel launches back to back against the
    same memory (like a real host command queue); statistics can be read
    per launch or accumulated by the caller.  Atomic-unit occupancy is
    scoped per launch: a fresh :class:`AtomicSystem` is built for each,
    so a second launch never inherits stale per-address timing from the
    first (its clock restarts at zero).
    """

    def __init__(
        self,
        device: DeviceSpec,
        memory: Optional[GlobalMemory] = None,
        exec_mode: Optional[str] = None,
    ):
        self.device = device
        self.memory = memory if memory is not None else GlobalMemory()
        if exec_mode not in (None, "vector", "scalar"):
            raise ValueError(
                f"exec_mode must be 'vector' or 'scalar', got {exec_mode!r}"
            )
        #: per-engine override of :data:`EXEC_MODE` (None: follow global).
        self.exec_mode = exec_mode

    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: Kernel,
        n_wavefronts: int,
        params: Optional[Dict[str, object]] = None,
        max_cycles: int = 20_000_000_000,
        charge_launch_overhead: bool = False,
        probe: Optional[object] = None,
        controller: Optional[object] = None,
        watchdog: Optional[object] = None,
    ) -> LaunchResult:
        """Run ``kernel`` on ``n_wavefronts`` wavefronts until all exit.

        Wavefronts are distributed round-robin over CUs, as hardware
        workgroup dispatch does for a uniform kernel.  Raises
        :class:`LaunchConfigError` if the launch exceeds device residency —
        a persistent-thread kernel that oversubscribes residency would
        deadlock on real hardware too.

        ``charge_launch_overhead`` adds ``device.kernel_launch_cycles`` to
        the reported cycle count; per-level drivers (Rodinia-style BFS) set
        it to model their dominant cost.

        ``probe`` attaches an observability hook
        (:class:`repro.simt.probe.Probe`) for this launch only.  Probes
        are passive: a probed launch simulates bit-identically to an
        unprobed one.  When no explicit probe is given and
        :data:`PROBE_FACTORY` is installed, the factory supplies one.

        ``controller`` attaches a schedule-exploration hook for this
        launch only (see :data:`CONTROLLER_FACTORY`).  Whenever a CU is
        about to issue, the controller's ``pick(now, cid, ready)`` picks
        the index of the ready wavefront to issue from, or returns a
        negative value to *hold* the CU for one cycle (the engine
        re-polls it at ``now + 1``; the ``max_cycles`` watchdog bounds a
        controller that holds forever).  Controllers perturb issue order
        only — memory semantics, atomic serialization, and cost charging
        are untouched, so every controlled execution is one the
        simulated hardware could legally produce.

        ``watchdog`` attaches a liveness monitor for this launch only
        (see :data:`WATCHDOG_FACTORY`): the engine polls it at the
        simulated cycles it requests; a poll that detects a wedge may
        raise to abort the launch.
        """
        if n_wavefronts <= 0:
            raise LaunchConfigError(
                f"n_wavefronts must be positive, got {n_wavefronts}"
            )
        if n_wavefronts > self.device.max_resident_wavefronts:
            raise LaunchConfigError(
                f"{n_wavefronts} wavefronts exceed device residency "
                f"({self.device.max_resident_wavefronts}); persistent "
                "kernels must fit or they deadlock"
            )
        params = dict(params or {})
        stats = SimStats()
        device = self.device
        memory = self.memory
        if probe is None and PROBE_FACTORY is not None:
            probe = PROBE_FACTORY()
        probing = probe is not None
        if probing:
            probe.now = 0
            probe.launch_begin(device, n_wavefronts)
        if controller is None and CONTROLLER_FACTORY is not None:
            controller = CONTROLLER_FACTORY()
        controlled = controller is not None
        if controlled:
            controller.launch_begin(device, n_wavefronts)
        if watchdog is None and WATCHDOG_FACTORY is not None:
            watchdog = WATCHDOG_FACTORY()
        watching = watchdog is not None
        # first simulated cycle at which the watchdog wants a poll; the
        # per-event check below is a single comparison when unwatched.
        wd_next = watchdog.launch_begin(device, n_wavefronts) if watching else 0
        scalar_mode = (self.exec_mode or EXEC_MODE) == "scalar"
        # per-launch atomic-unit occupancy: never shared across launches
        # (each launch restarts the simulated clock at zero).
        atomics = AtomicSystem(
            device, memory, stats, probe=probe, force_general=scalar_mode
        )
        atomics.reset_timing()

        cus = [_CU(i) for i in range(device.n_cus)]
        live = 0
        heap: List[tuple] = []
        next_seq = count().__next__
        heappush = heapq.heappush
        heappop = heapq.heappop

        all_wfs = []
        for wid in range(n_wavefronts):
            cu = cus[wid % len(cus)]
            ctx = KernelContext(
                wf_id=wid,
                n_wavefronts=n_wavefronts,
                device=device,
                params=params,
                stats=stats,
                probe=probe,
            )
            gen = kernel(ctx)
            wf = _Wavefront(wid, cu, gen)
            all_wfs.append(wf)
            live += 1
            cu.ready.append(wf)

        # atomics execute at the L2 (GCN), as do loads/stores of small hot
        # control buffers; bulk data pays full memory latency.
        lat_to = device.l2_latency // 2
        lat_back = device.l2_latency - lat_to
        issue = device.issue_cycles
        l2_latency = device.l2_latency
        mem_latency = device.mem_latency
        pipe = device.mem_pipe_cycles
        is_hot = memory.is_hot
        check_bounds = memory.check_bounds
        bufs = memory.raw_arrays()
        op_kind_get = _OP_KIND.get
        #: per-launch buffer-name -> load/store latency (buffer sets and
        #: hot markings are host-side and cannot change mid-launch).
        lat_cache: Dict[str, int] = {}
        #: per-launch buffer-name -> write epoch, bumped on every store
        #: and atomic batch; powers the read-elision fast path.
        epochs: Dict[str, int] = {}
        epochs_get = epochs.get
        next_epoch = _next_epoch
        #: per-launch buffer-name -> bounded log of recent write/atomic
        #: index spans ``(epoch, min, max)``.  A parked read whose epoch
        #: lags the buffer's can still be elided when every logged bump
        #: since its last sample misses its own span — writes to a shared
        #: buffer then only invalidate the watch sets they actually touch.
        #: Every epoch bump of a *watched* buffer MUST append here or the
        #: coverage proof in the poll path breaks; pruned (or pre-log)
        #: windows conservatively force a re-sample.
        wlog: Dict[str, list] = {}
        wlog_get = wlog.get
        #: buffers with at least one re-yielded prechecked read.  Only
        #: these pay the span-log bookkeeping on writes/atomics; marking
        #: appends a no-span barrier entry so coverage proofs can anchor
        #: at the marking epoch.
        watched: set = set()
        #: per-launch span/transaction cache for *frozen* (non-writeable)
        #: index arrays: kernels that reuse one address vector across many
        #: ops (the soup bench, queue watch sets) pay the two reductions
        #: once.  Keyed by id() with an identity check; safe because a
        #: frozen array cannot change contents while the entry holds a
        #: reference keeping its id alive.
        span_cache: Dict[int, tuple] = {}
        span_cache_get = span_cache.get

        now = 0
        #: one-entry fast slot for the most recently scheduled event (see
        #: module docstring); totally ordered against the heap top by the
        #: same (time, seq) tuple compare, so pop order never changes.
        nxt: Optional[tuple] = None
        abort_exc: Optional[KernelAbort] = None
        # engine counters, flushed into `stats` in the finally block
        n_issued = n_compute = n_reads = n_writes = 0
        n_trans = n_lds = n_busy = 0
        # execution-path counters, flushed into EXEC_COUNTS
        x_rvec = x_reld = x_rsc = x_wvec = x_wsc = 0

        def span_trans(op, raw) -> int:
            """Transaction count for a mem op, caching the index extremes
            on the op so the bounds check at completion/apply time does
            not rescan the index array."""
            if type(raw) is np.ndarray and raw.ndim == 1 and raw.dtype == _I64:
                n_idx = raw.size
                if n_idx > 1:
                    if not raw.flags.writeable:
                        ent = span_cache_get(id(raw))
                        if ent is not None and ent[0] is raw:
                            op.span = ent[1]
                            return ent[2]
                    mn = int(raw.min())
                    mx = int(raw.max())
                    span = (mn, mx)
                    op.span = span
                    t = (
                        mx // COALESCE_SEGMENT_WORDS
                        - mn // COALESCE_SEGMENT_WORDS
                        + 1
                    )
                    if t >= n_idx:
                        t = n_idx
                    if not raw.flags.writeable:
                        span_cache[id(raw)] = (raw, span, t)
                    return t
                if n_idx == 1:
                    v = int(raw[0])
                    op.span = (v, v)
                    return 1
                return 0
            return transactions_for(raw)

        def checked_index(op) -> np.ndarray:
            """Bounds-validated index, using the span cached at issue."""
            span = op.span
            if span is None:
                return check_bounds(op.buf, op.index)
            mn, mx = span
            if mn < 0 or mx >= bufs[op.buf].size:
                # out of bounds: delegate for the exact first-offender
                # message (this path always raises).
                check_bounds(op.buf, op.index)
            return op.index

        def apply_write(op: MemWrite) -> None:
            nonlocal x_wvec, x_wsc
            buf = op.buf
            if op.prechecked:
                idx = op.index
            else:
                idx = checked_index(op)
            if scalar_mode:
                x_wsc += 1
                b = bufs[buf]
                if type(idx) is np.ndarray and idx.ndim:
                    il = idx.tolist()
                    va = np.asarray(op.values, dtype=np.int64)
                    if va.ndim == 0:
                        v = int(va)
                        for i in il:
                            b[i] = v
                    else:
                        vl = va.tolist()
                        if len(vl) != len(il):
                            raise ValueError(
                                f"MemWrite({buf!r}): {len(vl)} values for "
                                f"{len(il)} lanes"
                            )
                        for i, v in zip(il, vl):
                            b[i] = v
                else:
                    b[idx] = op.values
            else:
                x_wvec += 1
                # fancy-index assignment broadcasts scalars and vectors
                # alike (and rejects shape mismatches), no explicit
                # broadcast needed.
                bufs[buf][idx] = op.values
            e = epochs[buf] = next_epoch()
            if buf in watched:
                sp = op.span
                if sp is None:
                    if type(idx) is np.ndarray and idx.ndim:
                        # sets op.span via the frozen-array span cache
                        # when possible (one pair of reductions per
                        # address vector, not per store).
                        span_trans(op, idx)
                        sp = op.span
                        if sp is None:
                            sp = (
                                (int(idx.min()), int(idx.max()))
                                if idx.size
                                else (0, -1)
                            )
                    else:
                        i = int(idx)
                        sp = (i, i)
                log = wlog_get(buf)
                if log is None:
                    wlog[buf] = log = []
                log.append((e, sp[0], sp[1]))
                if len(log) > 48:
                    del log[:24]

        def issue_from(cu: _CU, direct=None) -> None:
            """While the CU is free and has ready wavefronts, issue one op.

            ``direct`` (the just-completed wavefront, passed only when the
            CU is free, its ready set empty, and no controller is
            attached) is issued without the deque round trip — the single
            hottest call pattern of a saturated launch.
            """
            nonlocal live, abort_exc, nxt
            nonlocal n_issued, n_compute, n_reads, n_writes, n_trans, n_lds, n_busy
            if abort_exc is not None:
                return
            if now < cu.busy_until:
                return
            ready = cu.ready
            while True:
                if direct is not None:
                    wf = direct
                    direct = None
                elif not ready:
                    return
                elif controlled:
                    k = controller.pick(now, cu.cid, ready)
                    if k < 0:
                        # hold: leave the ready set intact and re-poll
                        # this CU one cycle later.  A controller that
                        # holds forever runs into the max_cycles
                        # watchdog instead of hanging the process.
                        heappush(heap, (now + 1, next_seq(), _EV_CU_FREE, cu))
                        return
                    if k:
                        wf = ready[k]
                        del ready[k]
                    else:
                        wf = ready.popleft()
                else:
                    wf = ready.popleft()
                if probing:
                    # expose the simulated clock and resuming wavefront
                    # to kernel-side layers (queues, schedulers, tracers)
                    # for event stamping and attribution.
                    probe.now = now
                    probe.cur_wf = wf.wid
                try:
                    op = wf.gen.send(wf.pending)
                except StopIteration:
                    live -= 1
                    if probing:
                        probe.on_exit(now, wf.wid)
                    # the exiting instruction still occupied the pipe
                    # briefly; charge nothing extra and keep issuing (a CU
                    # draining many exiting wavefronts must not recurse).
                    continue
                except KernelAbort as exc:
                    abort_exc = exc
                    return
                wf.pending = op
                n_issued += 1
                cls = op.__class__
                kind = op_kind_get(cls)
                if kind is None:
                    kind = _resolve_op_kind(cls, op)
                wf.pkind = kind

                if kind == _K_READ:
                    trans = op.trans
                    if trans is None:
                        trans = span_trans(op, op.index)
                    n_reads += 1
                    n_trans += trans
                    n_busy += issue
                    b = now + issue
                    cu.busy_until = b
                    if probing:
                        probe.on_issue(now, cu.cid, wf.wid, _K_READ, b, trans)
                    if ready:
                        heappush(heap, (b, next_seq(), _EV_CU_FREE, cu))
                        cu.wake = -1
                    else:
                        cu.wake = next_seq()
                    buf = op.buf
                    lat = lat_cache.get(buf)
                    if lat is None:
                        lat = l2_latency if is_hot(buf) else mem_latency
                        lat_cache[buf] = lat
                    t = b + lat
                    if trans > 1:
                        t += (trans - 1) * pipe
                    ev = (t, next_seq(), _EV_WF_READY, wf)
                    if nxt is None:
                        nxt = ev
                    else:
                        heappush(heap, ev)
                    return
                if kind == _K_ATOMIC:
                    n_busy += issue
                    b = now + issue
                    cu.busy_until = b
                    if probing:
                        probe.on_issue(now, cu.cid, wf.wid, _K_ATOMIC, b, 0)
                    if ready:
                        heappush(heap, (b, next_seq(), _EV_CU_FREE, cu))
                        cu.wake = -1
                    else:
                        cu.wake = next_seq()
                    ev = (b + lat_to, next_seq(), _EV_ATOMIC, wf)
                    if nxt is None:
                        nxt = ev
                    else:
                        heappush(heap, ev)
                    return
                if kind == _K_COMPUTE:
                    cyc = op.cycles
                    occ = cyc if cyc > 0 else 1
                    n_compute += cyc
                    n_busy += occ
                    b = now + occ
                    cu.busy_until = b
                    cu.wake = -1
                    if probing:
                        probe.on_issue(now, cu.cid, wf.wid, _K_COMPUTE, b, 0)
                    ev = (b, next_seq(), _EV_FREE_READY, wf)
                    if nxt is None:
                        nxt = ev
                    else:
                        heappush(heap, ev)
                    return
                if kind == _K_WRITE:
                    trans = op.trans
                    if trans is None:
                        trans = span_trans(op, op.index)
                    n_writes += 1
                    n_trans += trans
                    n_busy += issue
                    b = now + issue
                    cu.busy_until = b
                    if probing:
                        probe.on_issue(now, cu.cid, wf.wid, _K_WRITE, b, trans)
                    buf = op.buf
                    lat = lat_cache.get(buf)
                    if lat is None:
                        lat = l2_latency if is_hot(buf) else mem_latency
                        lat_cache[buf] = lat
                    if trans > 1:
                        lat += (trans - 1) * pipe
                    # stores are write-buffered: the wavefront proceeds
                    # after issue; the effect lands at completion time.
                    # (APPLY_WRITE events always go to the heap so the
                    # end-of-launch drain finds them.)
                    if lat > 0:
                        cu.wake = -1
                        ev = (b, next_seq(), _EV_FREE_READY, wf)
                        if nxt is None:
                            nxt = ev
                        else:
                            heappush(heap, ev)
                        heappush(heap, (b + lat, next_seq(), _EV_APPLY_WRITE, op))
                    else:
                        # zero-latency store: preserve the seed's exact
                        # free / apply / ready ordering at one timestamp.
                        heappush(heap, (b, next_seq(), _EV_CU_FREE, cu))
                        cu.wake = -1
                        heappush(heap, (b, next_seq(), _EV_APPLY_WRITE, op))
                        heappush(heap, (b, next_seq(), _EV_WF_READY, wf))
                    return
                if kind == _K_LOCAL:
                    cyc = op.cycles
                    occ = cyc if cyc > 0 else 1
                    n_lds += 1
                    n_busy += occ
                    b = now + occ
                    cu.busy_until = b
                    cu.wake = -1
                    if probing:
                        probe.on_issue(now, cu.cid, wf.wid, _K_LOCAL, b, 0)
                    ev = (b, next_seq(), _EV_FREE_READY, wf)
                    if nxt is None:
                        nxt = ev
                    else:
                        heappush(heap, ev)
                    return
                if kind == _K_FENCE:
                    n_busy += issue
                    b = now + issue
                    cu.busy_until = b
                    cu.wake = -1
                    if probing:
                        probe.on_issue(now, cu.cid, wf.wid, _K_FENCE, b, 0)
                    ev = (b, next_seq(), _EV_FREE_READY, wf)
                    if nxt is None:
                        nxt = ev
                    else:
                        heappush(heap, ev)
                    return
                # _K_ABORT: queue layers pass structured context via
                # Abort.info, surfaced as a typed QueueFullError.
                if op.info is not None:
                    abort_exc = QueueFullError(op.reason, **op.info)
                else:
                    abort_exc = KernelAbort(op.reason)
                return

        total = 0
        timing = EXEC_TIMING
        t_prev = perf_counter() if timing else 0.0
        key_prev = "issue"
        try:
            # prime: let every CU start issuing at t=0
            for cu in cus:
                issue_from(cu)

            while live > 0 and abort_exc is None:
                if nxt is not None:
                    if heap and heap[0] < nxt:
                        ev = heappop(heap)
                    else:
                        ev = nxt
                        nxt = None
                elif heap:
                    ev = heappop(heap)
                else:
                    break
                now, _, kind, payload = ev
                if timing:
                    t_now = perf_counter()
                    EXEC_TIMES[key_prev] = (
                        EXEC_TIMES.get(key_prev, 0.0) + t_now - t_prev
                    )
                    t_prev = t_now
                    if kind == _EV_CU_FREE:
                        key_prev = "issue"
                    elif kind == _EV_APPLY_WRITE:
                        key_prev = "MemWrite"
                    else:
                        key_prev = OP_KIND_NAMES.get(payload.pkind, "issue")
                if watching and now >= wd_next:
                    # read-only liveness poll at the watchdog's own
                    # cadence; may raise WedgeError on escalation.
                    wd_next = watchdog.poll(now, live)
                if now > max_cycles:
                    raise SimulationTimeout(
                        f"simulation exceeded {max_cycles} cycles "
                        f"({live} wavefronts still live)"
                    )
                if kind == _EV_WF_READY:
                    wf = payload
                    if probing:
                        probe.on_wake(now, wf.wid)
                    # the op kind was cached on the wavefront at issue
                    if wf.pkind == _K_READ:
                        op = wf.pending
                        buf = op.buf
                        if scalar_mode:
                            # reference path: one lane at a time.
                            x_rsc += 1
                            if op.prechecked:
                                idx = op.index
                            else:
                                idx = checked_index(op)
                            b = bufs[buf]
                            if type(idx) is np.ndarray and idx.ndim:
                                op.result = np.array(
                                    [b[i] for i in idx.tolist()],
                                    dtype=np.int64,
                                )
                            else:
                                op.result = b[idx]
                            op.fresh = True
                        elif op.prechecked:
                            # elision: a prechecked read re-yielded while
                            # its buffer's write epoch is unchanged still
                            # holds the exact values a fresh sample would
                            # produce — skip the gather and tell the
                            # kernel via op.fresh.
                            e = epochs_get(buf)
                            if e is None:
                                epochs[buf] = e = next_epoch()
                            oe = op.epoch
                            if oe is not None and buf not in watched:
                                # first re-yielded poll on this buffer:
                                # start span-logging its writes, with a
                                # no-span barrier so later proofs can
                                # anchor at the current epoch.
                                watched.add(buf)
                                log = wlog_get(buf)
                                if log is None:
                                    wlog[buf] = log = []
                                log.append((e, 0, -1))
                            if oe == e:
                                op.fresh = False
                                x_reld += 1
                            else:
                                # the buffer changed — but did *this op's
                                # slots* change?  Scan the bump log back
                                # to the op's last sample; a complete,
                                # non-overlapping window proves the values
                                # are unchanged.
                                clean = False
                                if oe is not None:
                                    sp = op.span
                                    if sp is None:
                                        idx = op.index
                                        if (
                                            type(idx) is np.ndarray
                                            and idx.ndim
                                        ):
                                            span_trans(op, idx)
                                            sp = op.span
                                            if sp is None:
                                                # empty gather: overlaps
                                                # nothing, result is
                                                # always the empty array.
                                                sp = (
                                                    (
                                                        int(idx.min()),
                                                        int(idx.max()),
                                                    )
                                                    if idx.size
                                                    else (0, -1)
                                                )
                                                op.span = sp
                                        else:
                                            i = int(idx)
                                            sp = (i, i)
                                            op.span = sp
                                    mn, mx = sp
                                    log = wlog_get(buf)
                                    if log:
                                        for we, wmn, wmx in reversed(log):
                                            if we <= oe:
                                                clean = True
                                                break
                                            if wmn <= mx and mn <= wmx:
                                                break
                                if clean:
                                    op.epoch = e
                                    op.fresh = False
                                    x_reld += 1
                                else:
                                    # sample memory at architectural
                                    # completion (fancy indexing with an
                                    # int64 array always copies).
                                    op.result = bufs[buf][op.index]
                                    op.epoch = e
                                    op.fresh = True
                                    x_rvec += 1
                        else:
                            x_rvec += 1
                            idx = checked_index(op)
                            op.result = bufs[buf][idx]
                            op.fresh = True
                    cu = wf.cu
                    if now < cu.busy_until:
                        cu.ready.append(wf)
                        w = cu.wake
                        if w >= 0:
                            heappush(
                                heap, (cu.busy_until, w, _EV_CU_FREE, cu)
                            )
                            cu.wake = -1
                    elif controlled or cu.ready:
                        cu.ready.append(wf)
                        issue_from(cu)
                    else:
                        issue_from(cu, wf)
                elif kind == _EV_CU_FREE:
                    cu = payload
                    if cu.ready and now >= cu.busy_until:
                        issue_from(cu)
                elif kind == _EV_FREE_READY:
                    wf = payload
                    cu = wf.cu
                    # CU_FREE half: wake a waiting wavefront first, as the
                    # seed's separate (earlier-sequence) event did.
                    if cu.ready and now >= cu.busy_until:
                        issue_from(cu)
                    if now < cu.busy_until:
                        cu.ready.append(wf)
                        w = cu.wake
                        if w >= 0:
                            heappush(
                                heap, (cu.busy_until, w, _EV_CU_FREE, cu)
                            )
                            cu.wake = -1
                    elif controlled or cu.ready:
                        cu.ready.append(wf)
                        issue_from(cu)
                    else:
                        issue_from(cu, wf)
                elif kind == _EV_ATOMIC:
                    wf = payload
                    op = wf.pending
                    assert isinstance(op, AtomicRMW)
                    if probing:
                        # the atomic system's probe hooks fire during
                        # service, outside any generator resume — point
                        # cur_wf at the owning wavefront for attribution.
                        probe.cur_wf = wf.wid
                    last_end = atomics.service(op, now)
                    buf = op.buf
                    e = epochs[buf] = next_epoch()
                    if buf in watched:
                        a = op.index
                        if type(a) is np.ndarray and a.ndim:
                            sp0, sp1 = int(a.min()), int(a.max())
                        else:
                            sp0 = sp1 = int(a)
                        log = wlog_get(buf)
                        if log is None:
                            wlog[buf] = log = []
                        log.append((e, sp0, sp1))
                        if len(log) > 48:
                            del log[:24]
                    ev = (last_end + lat_back, next_seq(), _EV_WF_READY, wf)
                    if nxt is None:
                        nxt = ev
                    else:
                        heappush(heap, ev)
                else:  # _EV_APPLY_WRITE
                    apply_write(payload)

            if abort_exc is not None:
                raise abort_exc

            total = now
            # drain the write buffer: stores issued by the last wavefronts
            # are architecturally committed at kernel end (a real GPU
            # flushes them before signalling completion).
            while heap:
                t, _, kind, payload = heappop(heap)
                if kind == _EV_APPLY_WRITE:
                    apply_write(payload)
                    total = max(total, t)
        finally:
            # close still-suspended kernel generators (abort/timeout paths)
            # so their own ``finally`` blocks flush deferred counters;
            # exhausted generators make this a no-op.
            for wf in all_wfs:
                wf.gen.close()
            stats.issued_ops += n_issued
            stats.compute_cycles += n_compute
            stats.mem_reads += n_reads
            stats.mem_writes += n_writes
            stats.mem_transactions += n_trans
            stats.lds_ops += n_lds
            stats.cu_busy_cycles += n_busy
            EXEC_COUNTS["reads_vector"] += x_rvec
            EXEC_COUNTS["reads_elided"] += x_reld
            EXEC_COUNTS["reads_scalar"] += x_rsc
            EXEC_COUNTS["writes_vector"] += x_wvec
            EXEC_COUNTS["writes_scalar"] += x_wsc

        if charge_launch_overhead:
            total += device.kernel_launch_cycles
        stats.sim_cycles = total
        if probing:
            probe.launch_end(total, stats)
        if METRICS_SINK is not None:
            METRICS_SINK(device, n_wavefronts, stats)
        return LaunchResult(cycles=total, stats=stats, device=device)
