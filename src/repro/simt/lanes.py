"""Lane-mask helpers for lock-step wavefront kernels.

Kernels keep per-lane state in NumPy arrays of length ``wavefront_size``
and an *active mask* selecting the lanes participating in the current
(simulated) instruction — exactly how SIMT divergence works in hardware
(§3.3): lanes off the current path idle through it.

The helpers here implement the wavefront-local cooperation patterns the
paper's listings rely on, most importantly the lane aggregation behind the
arbitrary-n property: in Listing 1, every hungry lane executes a local
``atomic_inc(&lQueueSlotsNeeded)`` in lock-step, which hands lane *k* the
count of hungry lanes before it — i.e. an exclusive prefix sum over the
hungry mask — and leaves the total in the local counter for the proxy
thread.  :func:`rank_within` computes both in one shot.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def lane_ids(wavefront_size: int) -> np.ndarray:
    """Lane index vector ``[0, 1, ..., wavefront_size-1]``."""
    return np.arange(wavefront_size, dtype=np.int64)


def rank_within(mask: np.ndarray) -> Tuple[np.ndarray, int]:
    """Exclusive prefix sum over a lane mask, plus the popcount.

    Returns ``(ranks, total)`` where ``ranks[i]`` is the number of set
    lanes strictly before lane ``i`` (meaningful only where ``mask`` is
    set) and ``total`` is the number of set lanes.  This is the data
    result of the lock-step local ``atomic_inc`` in Listing 1 lines 6-9 /
    Listing 3 lines 8-11.
    """
    mask = np.asarray(mask, dtype=bool)
    inclusive = np.cumsum(mask, dtype=np.int64)
    ranks = inclusive - mask.astype(np.int64)
    total = int(inclusive[-1]) if mask.size else 0
    return ranks, total


def segmented_rank(mask: np.ndarray, counts: np.ndarray) -> Tuple[np.ndarray, int]:
    """Prefix sum of per-lane *counts* over set lanes, plus the total.

    The enqueue path (Listing 3) aggregates a per-lane ``nNewlyDiscoveredWork``
    rather than a 0/1 flag: lane *k* receives the sum of counts of set lanes
    before it, so its tokens occupy ``[base + ranks[k], base + ranks[k] +
    counts[k])`` in the queue.
    """
    mask = np.asarray(mask, dtype=bool)
    counts = np.where(mask, np.asarray(counts, dtype=np.int64), 0)
    inclusive = np.cumsum(counts, dtype=np.int64)
    ranks = inclusive - counts
    total = int(inclusive[-1]) if counts.size else 0
    return ranks, total


def first_active(mask: np.ndarray) -> int:
    """Index of the first set lane, or -1 if none.

    The paper "arbitrarily chose the first thread in each wavefront" as the
    proxy (§4.1); some ablations instead use the first *active* lane.
    """
    mask = np.asarray(mask, dtype=bool)
    hits = np.flatnonzero(mask)
    return int(hits[0]) if hits.size else -1


def ballot(mask: np.ndarray) -> int:
    """The mask as an integer bit-set (like OpenCL sub-group ballot)."""
    mask = np.asarray(mask, dtype=bool)
    bits = 0
    for i in np.flatnonzero(mask):
        bits |= 1 << int(i)
    return bits
