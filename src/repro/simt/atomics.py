"""Per-address atomic units with serialized service.

Every global atomic request targets one address.  Requests to the same
address are serviced one at a time, each taking ``device.atomic_service``
cycles, in arrival order; requests to distinct addresses proceed in
parallel.  This models the contended-hot-spot behaviour (Morrison & Afek
2013) that §3.2 of the paper builds its argument on:

* **AFA** (``AtomicKind.ADD`` et al.) always succeeds; contention shows up
  purely as *latency*, which the GPU can hide by switching wavefronts.
* **CAS** compares against the value *current at service time*.  When many
  wavefronts race on the same word, only the first arrival sees its
  expected value; the rest fail and — crucially — their retry loops issue
  additional instructions whose occupancy cannot be hidden.

Operation side effects are applied when the request batch arrives at the
memory system, in global event order, so interleavings (and therefore CAS
failures) emerge from simulated timing rather than being scripted.

Implementation notes
--------------------
Cross-batch unit-occupancy tracking (``_free_at``) is kept for *hot*
buffers only — small control words like queue Front/Rear and scheduler
counters, where back-to-back batches genuinely queue behind each other.
For large data buffers (BFS cost arrays) the same address is essentially
never hit by two temporally adjacent batches, so those batches are
serviced with intra-batch serialization only.  This keeps the hot-spot
physics exact where it matters and the simulator fast where it doesn't.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .device import DeviceSpec
from .errors import MemoryFault
from .memory import HOT_BUFFER_WORDS, GlobalMemory
from .ops import AtomicKind, AtomicRMW
from .stats import SimStats


def _scalar_operand(value) -> int:
    """Extract a single int operand without allocating arrays for the
    plain-int case (proxy atomics pass Python ints)."""
    if type(value) is int:
        return value
    return int(np.asarray(value).reshape(-1)[0])


#: cumulative service-shape counters (scalar / same-address closed form /
#: distinct vectorized / general per-lane walk), for the profile CLI's
#: vector-vs-scalar breakdown.  Not part of SimStats: the shape chosen is
#: a host-side implementation detail with no simulation-visible effect.
PATH_COUNTS: Dict[str, int] = {
    "atomics_scalar": 0,
    "atomics_same_address": 0,
    "atomics_distinct": 0,
    "atomics_general": 0,
}


def reset_path_counts() -> None:
    """Zero :data:`PATH_COUNTS` (profile tooling)."""
    for k in PATH_COUNTS:
        PATH_COUNTS[k] = 0


class AtomicSystem:
    """Applies :class:`AtomicRMW` batches and computes their timing."""

    def __init__(
        self,
        device: DeviceSpec,
        memory: GlobalMemory,
        stats: SimStats,
        probe=None,
        force_general: bool = False,
    ):
        self._device = device
        self._memory = memory
        self._stats = stats
        #: scalar reference mode: route every batch through the exact
        #: per-lane walk of :meth:`_service_general`.  The specialized
        #: shapes are closed forms of that walk, so values, timing and
        #: stats are identical either way — pinned by the exec-mode
        #: bit-identity suite.
        self._force_general = bool(force_general)
        #: opt-in observability hook (see repro.simt.probe); passive.
        self._probe = probe
        if probe is None:
            # unprobed launches skip the recording wrapper entirely: the
            # instance attribute shadows the class method, so `service`
            # costs exactly what it did before probes existed.
            self.service = self._service
        #: (buffer name, index) -> cycle at which that address's unit frees.
        self._free_at: Dict[Tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    def service(self, op: AtomicRMW, arrival: int) -> int:
        """Apply every request in ``op`` and return the last completion cycle.

        ``arrival`` is the cycle the batch reaches the memory system.
        Requests are processed in lane order; per address, each request
        starts at ``max(arrival, unit_free_at)`` and holds the unit for
        ``atomic_service`` cycles.
        """
        probe = self._probe
        fail0 = self._stats.cas_failures
        end = self._service(op, arrival)
        n = int(np.size(op.old))
        raw = op.index
        if type(raw) is int or isinstance(raw, (int, np.integer)):
            addr = int(raw)
        else:
            flat = np.asarray(raw).reshape(-1)
            first = int(flat[0]) if flat.size else -1
            addr = first if flat.size and bool((flat == first).all()) else -1
        probe.on_atomic(
            arrival,
            op.buf,
            op.kind.value,
            n,
            end,
            self._stats.cas_failures - fail0,
            addr,
        )
        return end

    def _service(self, op: AtomicRMW, arrival: int) -> int:
        """Dispatch one batch to the matching service shape."""
        buf = self._memory[op.buf]
        raw = op.index
        if type(raw) is int or isinstance(raw, (int, np.integer)):
            # proxy-thread atomic (§4.1): a single scalar request is the
            # arbitrary-n design's common case — skip array materialization.
            a = int(raw)
            if a < 0 or a >= buf.size:
                raise MemoryFault(
                    f"buffer {op.buf!r}: index {a} out of bounds "
                    f"(size {buf.size})"
                )
            self._stats.count_atomic(op.kind, 1)
            svc = self._device.atomic_service
            self._stats.atomic_service_cycles += svc
            hot = buf.size <= HOT_BUFFER_WORDS
            if self._force_general:
                PATH_COUNTS["atomics_general"] += 1
                return self._service_general(
                    op, buf, np.array([a], dtype=np.int64), arrival, svc, hot
                )
            PATH_COUNTS["atomics_scalar"] += 1
            return self._service_scalar(op, buf, a, arrival, svc, hot)
        idx = self._memory.check_bounds(op.buf, raw)
        n = idx.size
        self._stats.count_atomic(op.kind, n)
        svc = self._device.atomic_service
        self._stats.atomic_service_cycles += n * svc
        hot = buf.size <= HOT_BUFFER_WORDS

        if self._force_general:
            PATH_COUNTS["atomics_general"] += 1
            return self._service_general(op, buf, idx, arrival, svc, hot)

        if n == 1:
            PATH_COUNTS["atomics_scalar"] += 1
            return self._service_scalar(op, buf, int(idx[0]), arrival, svc, hot)

        first = int(idx[0])
        if idx[-1] == first and bool((idx == first).all()):
            PATH_COUNTS["atomics_same_address"] += 1
            return self._service_same_address(
                op, buf, first, n, arrival, svc, hot
            )

        srt = np.sort(idx)
        if bool((np.diff(srt) != 0).all()):
            PATH_COUNTS["atomics_distinct"] += 1
            return self._service_distinct(op, buf, idx, arrival, svc, hot)

        PATH_COUNTS["atomics_general"] += 1
        return self._service_general(op, buf, idx, arrival, svc, hot)

    # ------------------------------------------------------------------
    def _unit_window(
        self, name: str, a: int, arrival: int, busy: int, hot: bool
    ) -> int:
        """Reserve the address unit for ``busy`` cycles; return finish."""
        if hot:
            key = (name, a)
            start = max(arrival, self._free_at.get(key, 0))
            end = start + busy
            self._free_at[key] = end
            if start > arrival and self._probe is not None:
                # the request queued behind an earlier batch at this hot
                # word — the cross-batch serialization blame records.
                self._probe.on_atomic_queued(name, a, arrival, start)
            return end
        return arrival + busy

    def _service_scalar(
        self,
        op: AtomicRMW,
        buf: np.ndarray,
        a: int,
        arrival: int,
        svc: int,
        hot: bool,
    ) -> int:
        end = self._unit_window(op.buf, a, arrival, svc, hot)
        cur = int(buf[a])
        kind = op.kind
        if kind is AtomicKind.CAS:
            expected = _scalar_operand(op.operand)
            new = _scalar_operand(op.operand2)
            ok = cur == expected
            if ok:
                buf[a] = new
            else:
                self._stats.cas_failures += 1
            op.old = np.array([cur], dtype=np.int64)
            op.success = np.array([ok])
            return end
        operand = _scalar_operand(op.operand)
        if kind is AtomicKind.ADD:
            buf[a] = cur + operand
        elif kind is AtomicKind.MIN:
            if operand < cur:
                buf[a] = operand
        elif kind is AtomicKind.MAX:
            if operand > cur:
                buf[a] = operand
        elif kind is AtomicKind.EXCH:
            buf[a] = operand
        else:  # pragma: no cover - enum is closed
            raise AssertionError(f"unhandled atomic kind {kind}")
        op.old = np.array([cur], dtype=np.int64)
        op.success = np.ones(1, dtype=bool)
        return end

    def _service_same_address(
        self,
        op: AtomicRMW,
        buf: np.ndarray,
        a: int,
        n: int,
        arrival: int,
        svc: int,
        hot: bool,
    ) -> int:
        """All requests hit one word: full serialization, closed forms."""
        end = self._unit_window(op.buf, a, arrival, n * svc, hot)
        cur = int(buf[a])
        kind = op.kind
        old = np.empty(n, dtype=np.int64)
        if kind is AtomicKind.CAS:
            expected = np.broadcast_to(
                np.asarray(op.operand, dtype=np.int64), (n,)
            )
            new = np.broadcast_to(np.asarray(op.operand2, dtype=np.int64), (n,))
            success = np.zeros(n, dtype=bool)
            val = cur
            # lane-order walk; n <= wavefront size so this stays cheap,
            # and it is exact for arbitrary expected/new vectors.
            for j in range(n):
                old[j] = val
                if val == expected[j]:
                    val = int(new[j])
                    success[j] = True
            buf[a] = val
            self._stats.cas_failures += int(n - success.sum())
            op.old = old
            op.success = success
            return end
        operand = np.broadcast_to(np.asarray(op.operand, dtype=np.int64), (n,))
        if kind is AtomicKind.ADD:
            run = np.cumsum(operand)
            old[0] = cur
            old[1:] = cur + run[:-1]
            buf[a] = cur + int(run[-1])
        elif kind is AtomicKind.MIN:
            run = np.minimum.accumulate(operand)
            old[0] = cur
            old[1:] = np.minimum(cur, run[:-1])
            buf[a] = min(cur, int(run[-1]))
        elif kind is AtomicKind.MAX:
            run = np.maximum.accumulate(operand)
            old[0] = cur
            old[1:] = np.maximum(cur, run[:-1])
            buf[a] = max(cur, int(run[-1]))
        elif kind is AtomicKind.EXCH:
            old[0] = cur
            old[1:] = operand[:-1]
            buf[a] = int(operand[-1])
        else:  # pragma: no cover - enum is closed
            raise AssertionError(f"unhandled atomic kind {kind}")
        op.old = old
        op.success = np.ones(n, dtype=bool)
        return end

    def _service_distinct(
        self,
        op: AtomicRMW,
        buf: np.ndarray,
        idx: np.ndarray,
        arrival: int,
        svc: int,
        hot: bool,
    ) -> int:
        """All addresses distinct: fully parallel units, vectorized apply."""
        n = idx.size
        if hot:
            # tiny control buffers can still have cross-batch queueing.
            end = arrival
            for a in idx:
                end = max(end, self._unit_window(op.buf, int(a), arrival, svc, True))
        else:
            end = arrival + svc
        kind = op.kind
        old = buf[idx].copy()
        if kind is AtomicKind.CAS:
            expected = np.broadcast_to(
                np.asarray(op.operand, dtype=np.int64), (n,)
            )
            new = np.broadcast_to(np.asarray(op.operand2, dtype=np.int64), (n,))
            success = old == expected
            buf[idx[success]] = new[success]
            self._stats.cas_failures += int(n - success.sum())
            op.old = old
            op.success = success
            return end
        operand = np.broadcast_to(np.asarray(op.operand, dtype=np.int64), (n,))
        if kind is AtomicKind.ADD:
            buf[idx] = old + operand
        elif kind is AtomicKind.MIN:
            buf[idx] = np.minimum(old, operand)
        elif kind is AtomicKind.MAX:
            buf[idx] = np.maximum(old, operand)
        elif kind is AtomicKind.EXCH:
            buf[idx] = operand
        else:  # pragma: no cover - enum is closed
            raise AssertionError(f"unhandled atomic kind {kind}")
        op.old = old
        op.success = np.ones(n, dtype=bool)
        return end

    def _service_general(
        self,
        op: AtomicRMW,
        buf: np.ndarray,
        idx: np.ndarray,
        arrival: int,
        svc: int,
        hot: bool,
    ) -> int:
        """Mixed duplicates: exact lane-order walk (rare, n <= lanes)."""
        n = idx.size
        kind = op.kind
        old = np.empty(n, dtype=np.int64)
        # intra-batch per-address serialization (plus cross-batch if hot)
        local_free: Dict[int, int] = {}
        last_end = arrival

        def window(a: int) -> None:
            nonlocal last_end
            if hot:
                end = self._unit_window(op.buf, a, arrival, svc, True)
            else:
                start = max(arrival, local_free.get(a, 0))
                end = start + svc
                local_free[a] = end
            last_end = max(last_end, end)

        if kind is AtomicKind.CAS:
            expected = np.broadcast_to(
                np.asarray(op.operand, dtype=np.int64), (n,)
            )
            new = np.broadcast_to(np.asarray(op.operand2, dtype=np.int64), (n,))
            success = np.zeros(n, dtype=bool)
            for j in range(n):
                a = int(idx[j])
                window(a)
                cur = buf[a]
                old[j] = cur
                if cur == expected[j]:
                    buf[a] = new[j]
                    success[j] = True
            self._stats.cas_failures += int(n - success.sum())
            op.old = old
            op.success = success
            return last_end
        operand = np.broadcast_to(np.asarray(op.operand, dtype=np.int64), (n,))
        for j in range(n):
            a = int(idx[j])
            window(a)
            cur = buf[a]
            old[j] = cur
            if kind is AtomicKind.ADD:
                buf[a] = cur + operand[j]
            elif kind is AtomicKind.MIN:
                if operand[j] < cur:
                    buf[a] = operand[j]
            elif kind is AtomicKind.MAX:
                if operand[j] > cur:
                    buf[a] = operand[j]
            elif kind is AtomicKind.EXCH:
                buf[a] = operand[j]
            else:  # pragma: no cover - enum is closed
                raise AssertionError(f"unhandled atomic kind {kind}")
        op.old = old
        op.success = np.ones(n, dtype=bool)
        return last_end

    def reset_timing(self) -> None:
        """Forget unit occupancy (between independent kernel launches)."""
        self._free_at.clear()
