"""CPU reference BFS — re-exported from the graph substrate.

Kept as its own module so driver code and tests can depend on
``repro.bfs.reference`` without knowing where the oracle lives.
"""

from __future__ import annotations

import numpy as np

from repro.graphs import CSRGraph, bfs_levels
from repro.graphs.traversal import UNREACHED, eccentricity, level_profile

__all__ = ["bfs_levels", "verify_costs", "UNREACHED", "eccentricity", "level_profile"]


def verify_costs(graph: CSRGraph, source: int, costs: np.ndarray) -> None:
    """Assert ``costs`` equal the true BFS depths (-1 for unreachable)."""
    ref = bfs_levels(graph, source)
    bad = np.flatnonzero(np.asarray(costs, dtype=np.int64) != ref)
    if bad.size:
        v = int(bad[0])
        raise AssertionError(
            f"vertex {v}: cost {int(costs[v])} != reference {int(ref[v])} "
            f"({bad.size} mismatches)"
        )
