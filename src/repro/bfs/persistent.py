"""Persistent-thread top-down BFS — the paper's driver application (§5.1).

The kernel is Algorithm 1 instantiated with a :class:`BFSWorker`:

* a task token is a vertex index;
* a work cycle processes up to ``subtasks_per_cycle`` (default 4, paper
  footnote 3) out-edges of the lane's current vertex — the refactoring of
  variable-fanout vertices into uniform-complexity sub-tasks that §3.3
  prescribes for divergence control;
* each relaxed edge performs one ``atomic_min`` on the child's cost;
  a strict improvement means the child just became ready and its token is
  handed to the queue variant under test.

Because relaxation is label-correcting (a vertex is re-enqueued whenever
its cost strictly improves), the final costs equal true BFS depths for
*any* dequeue order — verified against the CPU reference in every test.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Callable, Generator, Optional

import numpy as np

from repro.core import (
    DeviceQueue,
    QueueFull,
    SchedulerControl,
    WavefrontQueueState,
    WorkCycleResult,
    make_queue,
    persistent_kernel,
    sharded_persistent_kernel,
)
from repro.graphs import CSRGraph
from repro.simt import (
    AtomicKind,
    AtomicRMW,
    DeviceSpec,
    Engine,
    KernelAbort,
    KernelContext,
    MemRead,
    Op,
)

from .common import (
    BUF_COSTS,
    BUF_OFFSETS,
    BUF_TARGETS,
    BFSRun,
    alloc_graph_buffers,
    bfs_queue_capacity,
    read_costs,
)


class BFSWorker:
    """Top-down BFS plugged into the persistent scheduler."""

    def make_state(self, ctx: KernelContext) -> SimpleNamespace:
        wf = ctx.device.wavefront_size
        return SimpleNamespace(
            # lane has run the enumeration prolog for its current token
            primed=np.zeros(wf, dtype=bool),
            cur_edge=np.zeros(wf, dtype=np.int64),
            edge_end=np.zeros(wf, dtype=np.int64),
            my_cost=np.zeros(wf, dtype=np.int64),
        )

    def work_cycle(
        self,
        ctx: KernelContext,
        ws: SimpleNamespace,
        st: WavefrontQueueState,
    ) -> Generator[Op, Op, WorkCycleResult]:
        wf = ctx.device.wavefront_size
        subtasks = int(ctx.params["subtasks_per_cycle"])

        # --- enumeration prolog for freshly granted lanes (Listing 2,
        # lines 6-22): fetch the node's edge range and current cost.
        fresh = st.has_token & ~ws.primed
        if fresh.any():
            v = st.token[fresh]
            rd = MemRead(BUF_OFFSETS, np.concatenate([v, v + 1]))
            yield rd
            k = int(fresh.sum())
            ws.cur_edge[fresh] = rd.result[:k]
            ws.edge_end[fresh] = rd.result[k:]
            cr = MemRead(BUF_COSTS, v)
            yield cr
            ws.my_cost[fresh] = cr.result
            ws.primed[fresh] = True

        # --- up to `subtasks` uniform sub-tasks: one child per iteration
        new_counts = np.zeros(wf, dtype=np.int64)
        new_tokens = np.zeros((wf, max(subtasks, 1)), dtype=np.int64)
        for _ in range(subtasks):
            active = st.has_token & ws.primed & (ws.cur_edge < ws.edge_end)
            if not active.any():
                break
            tgt_rd = MemRead(BUF_TARGETS, ws.cur_edge[active])
            yield tgt_rd
            children = tgt_rd.result
            relax = AtomicRMW(
                BUF_COSTS, children, AtomicKind.MIN, ws.my_cost[active] + 1
            )
            yield relax
            improved = relax.old > ws.my_cost[active] + 1
            if improved.any():
                lanes = np.flatnonzero(active)[improved]
                new_tokens[lanes, new_counts[lanes]] = children[improved]
                new_counts[lanes] += 1
            ws.cur_edge[active] += 1

        completed = st.has_token & ws.primed & (ws.cur_edge >= ws.edge_end)
        ws.primed[completed] = False
        return WorkCycleResult(
            completed=completed, new_counts=new_counts, new_tokens=new_tokens
        )


def run_persistent_bfs(
    graph: CSRGraph,
    source: int,
    variant: str,
    device: DeviceSpec,
    n_workgroups: int,
    *,
    capacity: Optional[int] = None,
    subtasks_per_cycle: int = 4,
    circular: bool = False,
    grow_on_full: bool = True,
    max_cycles: int = 20_000_000_000,
    verify: bool = False,
    probe: Optional[object] = None,
    watchdog: Optional[object] = None,
    queue_factory: Optional[Callable[[int], DeviceQueue]] = None,
) -> BFSRun:
    """Simulate a persistent-thread BFS with the given queue variant.

    ``grow_on_full`` implements the paper's §4.4 recovery: a queue-full
    abort is reported to the host, which "can retry the kernel with a
    larger queue" — we double capacity (up to eight times) before giving
    up.

    ``queue_factory`` overrides queue construction: called with the
    capacity, it must return a :class:`~repro.core.DeviceQueue` (e.g. a
    :class:`~repro.core.ShardedQueue`; the sharded persistent kernel is
    selected automatically).  ``variant`` then only labels the run.
    """
    attempts = 0
    cap = capacity or bfs_queue_capacity(graph, device, n_workgroups)
    while True:
        attempts += 1
        try:
            return _run_once(
                graph,
                source,
                variant,
                device,
                n_workgroups,
                cap,
                subtasks_per_cycle,
                circular,
                max_cycles,
                verify,
                probe,
                watchdog,
                queue_factory,
            )
        except KernelAbort as exc:
            if not grow_on_full or attempts > 8:
                raise QueueFull(str(exc)) from exc
            cap *= 2


def _run_once(
    graph: CSRGraph,
    source: int,
    variant: str,
    device: DeviceSpec,
    n_workgroups: int,
    capacity: int,
    subtasks_per_cycle: int,
    circular: bool,
    max_cycles: int,
    verify: bool,
    probe: Optional[object] = None,
    watchdog: Optional[object] = None,
    queue_factory: Optional[Callable[[int], DeviceQueue]] = None,
) -> BFSRun:
    engine = Engine(device)
    alloc_graph_buffers(engine.memory, graph, source)
    if queue_factory is not None:
        queue = queue_factory(capacity)
    else:
        queue = make_queue(variant, capacity, circular=circular)
    sched = SchedulerControl()
    queue.allocate(engine.memory)
    sched.allocate(engine.memory)
    queue.seed(engine.memory, [source])
    sched.seed(engine.memory, 1)

    make_kernel = (
        sharded_persistent_kernel
        if getattr(queue, "n_shards", 1) > 1
        else persistent_kernel
    )
    kernel = make_kernel(
        queue, BFSWorker(), sched, subtasks_per_cycle=subtasks_per_cycle
    )
    result = engine.launch(
        kernel, n_workgroups, max_cycles=max_cycles, probe=probe,
        watchdog=watchdog,
    )

    run = BFSRun(
        implementation=variant,
        dataset=graph.name or "unnamed",
        device=device.name,
        n_workgroups=n_workgroups,
        cycles=result.cycles,
        seconds=result.seconds,
        costs=read_costs(engine.memory, graph.n_vertices),
        stats=result.stats,
        extra={
            "queue_capacity": capacity,
            "subtasks_per_cycle": subtasks_per_cycle,
        },
    )
    if verify:
        run.verify(graph, source)
    return run
