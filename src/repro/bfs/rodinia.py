"""Rodinia-style level-synchronous BFS baseline (§6.4.2).

Faithful to the Rodinia benchmark's scheme, which the paper characterizes
as: "a top-down algorithm with coarse grain buffers.  It exits after each
level and allocates 1 thread per node.  Only nodes with no dependencies
process at each level.  If the number of levels is significant, this
approach can have significant overhead."

Concretely, per BFS level the host launches two kernels:

* **kernel 1** — one (virtual) thread per *vertex*; threads whose vertex
  is in the frontier mask enumerate all its children, write improved
  costs, and set the child's bit in an `updating` mask.  Threads whose
  vertex is not in the frontier still pay the mask read — the coarse-
  grain buffer overhead.
* **kernel 2** — one thread per vertex again: fold `updating` into the
  frontier/visited masks and raise a global `continue` flag if anything
  changed.

Vertices are processed in grid-stride loops so the launch fits device
residency (hardware workgroup re-dispatch has the same cost structure).
Each level pays ``2 * kernel_launch_cycles`` of host overhead, which is
exactly what buries Rodinia on deep or small graphs (Table 6).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.graphs import CSRGraph
from repro.simt import (
    DeviceSpec,
    Engine,
    KernelContext,
    MemRead,
    MemWrite,
    Op,
    SimStats,
)

from .common import BUF_COSTS, BUF_OFFSETS, BUF_TARGETS, BFSRun, alloc_graph_buffers, read_costs

BUF_MASK = "rodinia.mask"          # frontier mask, one word per vertex
BUF_UPDATING = "rodinia.updating"  # next-frontier mask
BUF_VISITED = "rodinia.visited"
BUF_FLAG = "rodinia.continue"


def _kernel1(ctx: KernelContext) -> Generator[Op, Op, None]:
    """Frontier expansion: one virtual thread per vertex (grid-stride)."""
    n = int(ctx.params["n_vertices"])
    wf = ctx.device.wavefront_size
    stride = ctx.n_wavefronts * wf
    base = ctx.global_thread_base

    for chunk in range(base, n, stride):
        vids = chunk + ctx.lane
        lanes = vids < n
        vids = vids[lanes]
        if vids.size == 0:
            continue
        mrd = MemRead(BUF_MASK, vids)
        yield mrd
        active = mrd.result == 1
        if not active.any():
            continue
        v = vids[active]
        yield MemWrite(BUF_MASK, v, 0)
        ord_ = MemRead(BUF_OFFSETS, np.concatenate([v, v + 1]))
        yield ord_
        starts = ord_.result[: v.size]
        ends = ord_.result[v.size :]
        crd = MemRead(BUF_COSTS, v)
        yield crd
        cost = crd.result
        cur = starts.copy()
        # full-vertex enumeration in lock-step: iterations = max degree in
        # the wavefront (Rodinia does not refactor into uniform sub-tasks,
        # so high-degree lanes stall their whole wavefront).
        while True:
            act = cur < ends
            if not act.any():
                break
            trd = MemRead(BUF_TARGETS, cur[act])
            yield trd
            children = trd.result
            vrd = MemRead(BUF_VISITED, children)
            yield vrd
            fresh = vrd.result == 0
            if fresh.any():
                kids = children[fresh]
                yield MemWrite(BUF_COSTS, kids, cost[act][fresh] + 1)
                yield MemWrite(BUF_UPDATING, kids, 1)
            cur[act] += 1


def _kernel2(ctx: KernelContext) -> Generator[Op, Op, None]:
    """Mask fold: promote `updating` to the next frontier."""
    n = int(ctx.params["n_vertices"])
    wf = ctx.device.wavefront_size
    stride = ctx.n_wavefronts * wf
    base = ctx.global_thread_base

    for chunk in range(base, n, stride):
        vids = chunk + ctx.lane
        lanes = vids < n
        vids = vids[lanes]
        if vids.size == 0:
            continue
        urd = MemRead(BUF_UPDATING, vids)
        yield urd
        hot = urd.result == 1
        if not hot.any():
            continue
        v = vids[hot]
        yield MemWrite(BUF_MASK, v, 1)
        yield MemWrite(BUF_VISITED, v, 1)
        yield MemWrite(BUF_UPDATING, v, 0)
        yield MemWrite(BUF_FLAG, 0, 1)


def run_rodinia_bfs(
    graph: CSRGraph,
    source: int,
    device: DeviceSpec,
    n_workgroups: int | None = None,
    *,
    max_cycles: int = 20_000_000_000,
    verify: bool = False,
) -> BFSRun:
    """Simulate Rodinia's level-synchronous BFS end to end.

    ``n_workgroups`` defaults to full device residency (Rodinia launches
    one thread per vertex; the grid-stride loop folds that onto resident
    wavefronts with the same memory traffic).
    """
    if n_workgroups is None:
        n_workgroups = device.max_resident_wavefronts
    engine = Engine(device)
    alloc_graph_buffers(engine.memory, graph, source)
    n = graph.n_vertices
    mask = engine.memory.alloc(BUF_MASK, n, fill=0)
    engine.memory.alloc(BUF_UPDATING, n, fill=0)
    visited = engine.memory.alloc(BUF_VISITED, n, fill=0)
    flag = engine.memory.alloc(BUF_FLAG, 1, fill=0)
    mask[source] = 1
    visited[source] = 1

    stats = SimStats()
    total_cycles = 0
    levels = 0
    params = {"n_vertices": n}
    while True:
        flag[0] = 0
        r1 = engine.launch(
            _kernel1,
            n_workgroups,
            params=params,
            max_cycles=max_cycles,
            charge_launch_overhead=True,
        )
        r2 = engine.launch(
            _kernel2,
            n_workgroups,
            params=params,
            max_cycles=max_cycles,
            charge_launch_overhead=True,
        )
        stats.merge(r1.stats)
        stats.merge(r2.stats)
        total_cycles += r1.cycles + r2.cycles
        levels += 1
        if int(flag[0]) == 0:
            break

    stats.sim_cycles = total_cycles
    run = BFSRun(
        implementation="Rodinia",
        dataset=graph.name or "unnamed",
        device=device.name,
        n_workgroups=n_workgroups,
        cycles=total_cycles,
        seconds=device.seconds(total_cycles),
        costs=read_costs(engine.memory, n),
        stats=stats,
        extra={"levels": levels, "kernel_launches": 2 * levels},
    )
    if verify:
        run.verify(graph, source)
    return run
