"""CHAI-style collaborative persistent BFS baseline (§6.4.1, Table 5).

The CHAI benchmark suite's BFS uses persistent workgroups that drain a
level's input frontier array and build the next level's output frontier
through **CAS-based shared counters** — the "CAS-based queue
implementations such as those found in CHAI BFS" that §6.5 credits with
the 2.57x gap.  The real benchmark splits each frontier between CPU and
GPU threads over shared memory; the discrete Fiji cannot run it at all
(no cross-cluster atomics), so the paper evaluates it on the integrated
Spectre only.

Substitution (DESIGN.md §2): we reproduce the *scheme* — persistent
wavefronts, double-buffered frontiers, per-lane CAS claims on the output
tail, a kernel relaunch per level — on the simulated GPU alone.  The CPU
collaboration mainly re-partitions work; the retry and relaunch costs the
paper measures are structural and preserved here.

Per level, each lane:

1. claims input entries by grid-stride index (static partition, as CHAI
   does for its GPU sub-frontier);
2. enumerates **all** children of its vertex (no sub-task refactoring);
3. claims a slot in the output frontier for every newly visited child
   with an individual CAS retry loop on the shared tail counter.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.graphs import CSRGraph
from repro.simt import (
    AtomicKind,
    AtomicRMW,
    DeviceSpec,
    Engine,
    KernelContext,
    MemRead,
    MemWrite,
    Op,
    SimStats,
)

from .common import (
    BUF_COSTS,
    BUF_OFFSETS,
    BUF_TARGETS,
    BFSRun,
    alloc_graph_buffers,
    read_costs,
)

BUF_FRONT_A = "chai.frontier_a"
BUF_FRONT_B = "chai.frontier_b"
BUF_TAIL = "chai.tail"  # [0] = output frontier tail counter
K_CHAI_CAS_ROUNDS = "chai.cas_retry_rounds"


def _level_kernel(ctx: KernelContext) -> Generator[Op, Op, None]:
    """Process one frontier level (persistent wavefronts, strided input)."""
    in_buf: str = ctx.params["in_buf"]  # type: ignore[assignment]
    out_buf: str = ctx.params["out_buf"]  # type: ignore[assignment]
    in_size = int(ctx.params["in_size"])
    out_cap = int(ctx.params["out_cap"])
    stats = ctx.stats
    wf = ctx.device.wavefront_size
    stride = ctx.n_wavefronts * wf
    base = ctx.global_thread_base

    for chunk in range(base, in_size, stride):
        idx = chunk + ctx.lane
        lanes = idx < in_size
        idx = idx[lanes]
        if idx.size == 0:
            continue
        vrd = MemRead(in_buf, idx)
        yield vrd
        v = vrd.result
        ord_ = MemRead(BUF_OFFSETS, np.concatenate([v, v + 1]))
        yield ord_
        starts = ord_.result[: v.size]
        ends = ord_.result[v.size :]
        crd = MemRead(BUF_COSTS, v)
        yield crd
        cost = crd.result
        cur = starts.copy()
        while True:
            act = cur < ends
            if not act.any():
                break
            trd = MemRead(BUF_TARGETS, cur[act])
            yield trd
            children = trd.result
            relax = AtomicRMW(
                BUF_COSTS, children, AtomicKind.MIN, cost[act] + 1
            )
            yield relax
            fresh = relax.old > cost[act] + 1
            if fresh.any():
                kids = children[fresh]
                # CAS retry loop on the shared output tail: every lane
                # with a discovery races the same counter word.
                pending = kids
                while pending.size:
                    tl = MemRead(BUF_TAIL, 0)
                    yield tl
                    tail = int(tl.result[0])
                    if tail + 1 > out_cap:
                        raise RuntimeError("CHAI output frontier overflow")
                    op = AtomicRMW(
                        BUF_TAIL,
                        np.zeros(pending.size, dtype=np.int64),
                        AtomicKind.CAS,
                        tail,
                        tail + 1,
                    )
                    yield op
                    won = np.flatnonzero(op.success)
                    if won.size:
                        lane = int(won[0])
                        yield MemWrite(out_buf, tail, pending[lane])
                        pending = np.delete(pending, lane)
                    if pending.size:
                        stats.custom[K_CHAI_CAS_ROUNDS] += 1
            cur[act] += 1


def run_chai_bfs(
    graph: CSRGraph,
    source: int,
    device: DeviceSpec,
    n_workgroups: int | None = None,
    *,
    max_cycles: int = 20_000_000_000,
    verify: bool = False,
) -> BFSRun:
    """Simulate the CHAI-style collaborative BFS end to end."""
    if n_workgroups is None:
        n_workgroups = device.max_resident_wavefronts
    engine = Engine(device)
    alloc_graph_buffers(engine.memory, graph, source)
    n = graph.n_vertices
    cap = n + 64
    fa = engine.memory.alloc(BUF_FRONT_A, cap, fill=0)
    engine.memory.alloc(BUF_FRONT_B, cap, fill=0)
    tail = engine.memory.alloc(BUF_TAIL, 1, fill=0)
    fa[0] = source

    stats = SimStats()
    total_cycles = 0
    levels = 0
    in_buf, out_buf = BUF_FRONT_A, BUF_FRONT_B
    in_size = 1
    while in_size:
        tail[0] = 0
        res = engine.launch(
            _level_kernel,
            n_workgroups,
            params={
                "in_buf": in_buf,
                "out_buf": out_buf,
                "in_size": in_size,
                "out_cap": cap,
            },
            max_cycles=max_cycles,
            charge_launch_overhead=True,
        )
        stats.merge(res.stats)
        total_cycles += res.cycles
        levels += 1
        in_size = int(tail[0])
        in_buf, out_buf = out_buf, in_buf

    stats.sim_cycles = total_cycles
    run = BFSRun(
        implementation="CHAI",
        dataset=graph.name or "unnamed",
        device=device.name,
        n_workgroups=n_workgroups,
        cycles=total_cycles,
        seconds=device.seconds(total_cycles),
        costs=read_costs(engine.memory, n),
        stats=stats,
        extra={"levels": levels, "kernel_launches": levels},
    )
    if verify:
        run.verify(graph, source)
    return run
