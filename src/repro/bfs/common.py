"""Shared pieces of all BFS drivers: device buffers, verification, results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.graphs import CSRGraph, bfs_levels
from repro.simt import DeviceSpec, GlobalMemory, SimStats

#: cost of an undiscovered vertex on the device (a finite "infinity" so
#: atomic_min arithmetic stays in int64 range).
INF_COST = np.int64(1) << 40

# canonical buffer names shared by every BFS kernel
BUF_OFFSETS = "bfs.offsets"
BUF_TARGETS = "bfs.targets"
BUF_COSTS = "bfs.costs"


def alloc_graph_buffers(
    memory: GlobalMemory, graph: CSRGraph, source: int
) -> None:
    """Copy a CSR graph into device memory and initialize BFS costs."""
    if not 0 <= source < graph.n_vertices:
        raise ValueError(
            f"source {source} out of range [0, {graph.n_vertices})"
        )
    memory.alloc_from(BUF_OFFSETS, graph.offsets)
    memory.alloc_from(BUF_TARGETS, graph.targets)
    costs = memory.alloc(BUF_COSTS, graph.n_vertices, fill=int(INF_COST))
    costs[source] = 0


def read_costs(memory: GlobalMemory, n_vertices: int) -> np.ndarray:
    """Device costs back to host, with INF mapped to -1 (unreached)."""
    costs = memory[BUF_COSTS][:n_vertices].copy()
    costs[costs >= INF_COST] = -1
    return costs


@dataclass
class BFSRun:
    """Outcome of one simulated BFS execution."""

    #: implementation label ("BASE", "AN", "RF/AN", "Rodinia", "CHAI").
    implementation: str
    #: graph name.
    dataset: str
    #: device name.
    device: str
    #: workgroups (== wavefronts) launched.
    n_workgroups: int
    #: simulated kernel cycles (sum over launches for level-sync drivers).
    cycles: int
    #: simulated kernel seconds at the device clock.
    seconds: float
    #: final per-vertex costs (-1 = unreachable).
    costs: np.ndarray
    #: accumulated statistics.
    stats: SimStats
    #: extra driver-specific facts (levels run, retries, ...).
    extra: Dict[str, object] = field(default_factory=dict)

    def verify(self, graph: CSRGraph, source: int) -> None:
        """Check the computed costs against the CPU reference BFS.

        Raises ``AssertionError`` with a diagnostic on the first mismatch;
        every driver test calls this, so a scheduling or queue bug cannot
        hide behind a pretty cycle count.
        """
        ref = bfs_levels(graph, source)
        got = self.costs
        if got.shape != ref.shape:
            raise AssertionError(
                f"cost vector shape {got.shape} != reference {ref.shape}"
            )
        bad = np.flatnonzero(got != ref)
        if bad.size:
            v = int(bad[0])
            raise AssertionError(
                f"{self.implementation} BFS on {self.dataset}: vertex {v} "
                f"cost {int(got[v])} != reference {int(ref[v])} "
                f"({bad.size} mismatches total)"
            )


def bfs_queue_capacity(
    graph: CSRGraph, device: DeviceSpec, n_workgroups: int, headroom: float = 2.5
) -> int:
    """Default task-queue capacity for a persistent BFS.

    Every vertex is enqueued at least once; asynchronous label correction
    can re-enqueue a vertex per strict cost improvement, and hungry
    threads in the RF/AN design park on slots *past* the rear.  The
    headroom factor covers both; queue-full aborts (and the optional
    host-side regrow) handle adversarial cases, exactly as the paper
    prescribes (§4.4).
    """
    threads = n_workgroups * device.wavefront_size
    return int(graph.n_vertices * headroom) + 2 * threads + 64
