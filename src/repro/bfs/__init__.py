"""BFS drivers: persistent-thread (queue-backed), Rodinia- and CHAI-style
baselines, and the CPU reference oracle."""

from .chai import run_chai_bfs
from .common import (
    BFSRun,
    BUF_COSTS,
    BUF_OFFSETS,
    BUF_TARGETS,
    INF_COST,
    alloc_graph_buffers,
    bfs_queue_capacity,
    read_costs,
)
from .persistent import BFSWorker, run_persistent_bfs
from .reference import bfs_levels, verify_costs
from .rodinia import run_rodinia_bfs

__all__ = [
    "BFSRun",
    "BFSWorker",
    "BUF_COSTS",
    "BUF_OFFSETS",
    "BUF_TARGETS",
    "INF_COST",
    "alloc_graph_buffers",
    "bfs_levels",
    "bfs_queue_capacity",
    "read_costs",
    "run_chai_bfs",
    "run_persistent_bfs",
    "run_rodinia_bfs",
    "verify_costs",
]
