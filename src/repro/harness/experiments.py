"""Regeneration of every table and figure in the paper's evaluation.

Each ``run_*`` function simulates the corresponding experiment and
returns an :class:`~repro.harness.results.ExperimentResult` whose text is
the same rows/series the paper reports, with the paper's published
numbers alongside for comparison.  Absolute values are simulated cycles,
not the authors' silicon; the *shapes* (who wins, by roughly what factor,
where crossovers fall) are the reproduction target — see EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bfs import run_chai_bfs, run_persistent_bfs, run_rodinia_bfs
from repro.graphs import (
    CHAI_DATASETS,
    RODINIA_DATASETS,
    dataset,
    level_profile,
    paper_dataset_names,
    saturation_levels,
)
from repro.simt import FIJI, SPECTRE, SimulationTimeout, paper_workgroups

from .config import VARIANTS, HarnessConfig
from .paper_data import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6,
)
from .report import ascii_chart, render_series, render_table
from .results import ExperimentResult


# ----------------------------------------------------------------------
# Per-group run memoization
# ----------------------------------------------------------------------
class _GroupCache:
    """Memo of dataset builds and BFS simulations within one group.

    Simulations are deterministic functions of their configuration, so a
    repeated ``(graph, source, variant, device, workgroups, subtasks)``
    cell can reuse the earlier :class:`BFSRun` instead of re-simulating:
    the quick-mode fig4 sweep is a strict superset of tab3's cells and of
    fig1/fig5's series, which is most of the harness's wall-clock.

    The cache is scoped to one scheduling group and torn down after it,
    so sequential and process-parallel runs (where each group may land in
    a different worker) hit the cache identically — reports *and* merged
    metrics stay byte-identical across ``--jobs`` values.
    """

    __slots__ = ("graphs", "runs")

    def __init__(self) -> None:
        self.graphs: Dict[tuple, object] = {}
        self.runs: Dict[tuple, object] = {}


#: active cache for the scheduling group being run (one per process).
_cache: Optional[_GroupCache] = None


def _graph(cfg: HarnessConfig, name: str, extra_factor: float = 1.0):
    """``cfg.build`` with per-group sharing of the built dataset."""
    if _cache is None:
        return cfg.build(name, extra_factor=extra_factor)
    key = (name, float(extra_factor))
    g = _cache.graphs.get(key)
    if g is None:
        g = _cache.graphs[key] = cfg.build(name, extra_factor=extra_factor)
    return g


def _bfs(cfg: HarnessConfig, name: str, extra_factor: float, g, src: int,
         variant: str, dev, wg: int, subtasks_per_cycle: int = 4):
    """``run_persistent_bfs`` memoized on the full run configuration.

    Only default-queue runs route through here (``queue_factory`` cells
    are never shared); ``verify``/``max_cycles`` come from ``cfg``, which
    is fixed for the group, so they need no key slot.
    """
    if _cache is None:
        return run_persistent_bfs(
            g, src, variant, dev, wg, verify=cfg.verify,
            subtasks_per_cycle=subtasks_per_cycle, max_cycles=cfg.max_cycles,
        )
    key = (name, float(extra_factor), src, variant, dev.name, wg,
           subtasks_per_cycle)
    run = _cache.runs.get(key)
    if run is None:
        run = _cache.runs[key] = run_persistent_bfs(
            g, src, variant, dev, wg, verify=cfg.verify,
            subtasks_per_cycle=subtasks_per_cycle, max_cycles=cfg.max_cycles,
        )
    return run


# ----------------------------------------------------------------------
# Tables 1 & 2: dataset statistics
# ----------------------------------------------------------------------
def run_tab1(cfg: HarnessConfig) -> ExperimentResult:
    """Table 1: social dataset degree statistics (scaled stand-ins)."""
    return _dataset_stats_table(
        cfg, "tab1", "Table 1 — SNAP social media dataset statistics",
        ["gplus_combined", "soc-LiveJournal1"], PAPER_TABLE1,
    )


def run_tab2(cfg: HarnessConfig) -> ExperimentResult:
    """Table 2: roadmap dataset degree statistics (scaled stand-ins)."""
    return _dataset_stats_table(
        cfg, "tab2", "Table 2 — DIMACS roadmap dataset statistics",
        ["USA-road-d.NY", "USA-road-d.LKS", "USA-road-d.USA"], PAPER_TABLE2,
    )


def _dataset_stats_table(cfg, exp_id, title, names, paper) -> ExperimentResult:
    rows = []
    data = {}
    for name in names:
        g = _graph(cfg, name)
        s = g.degree_stats()
        pv = paper[name]
        rows.append(
            [name, s.n_vertices, s.n_edges, s.min, s.max,
             round(s.avg, 1), round(s.std, 2),
             pv[0], pv[1], pv[4], pv[5]]
        )
        data[name] = {
            "measured": s.row(),
            "paper": pv,
        }
    text = render_table(
        ["Dataset", "V", "E", "degMin", "degMax", "degAvg", "degStd",
         "paperV", "paperE", "paperAvg", "paperStd"],
        rows,
        title=f"{title} (stand-ins at harness scale vs paper full size)",
    )
    return ExperimentResult(exp_id, title, text, data)


# ----------------------------------------------------------------------
# Figure 3: dynamic parallelism profiles
# ----------------------------------------------------------------------
def run_fig3(cfg: HarnessConfig) -> ExperimentResult:
    """Figure 3: vertices available for thread assignment per BFS level."""
    title = "Figure 3 — dynamic data parallelism per BFS level"
    blocks: List[str] = []
    data = {}
    fiji_threads = paper_workgroups(FIJI) * FIJI.wavefront_size
    spectre_threads = paper_workgroups(SPECTRE) * SPECTRE.wavefront_size
    for name in paper_dataset_names():
        g = _graph(cfg, name)
        prof = level_profile(g, cfg.source(name))
        sat_f = saturation_levels(prof, fiji_threads)
        sat_s = saturation_levels(prof, spectre_threads)
        data[name] = {
            "levels": int(prof.size),
            "max_width": int(prof.max()) if prof.size else 0,
            "total": int(prof.sum()),
            "profile": prof.tolist(),
            "levels_saturating_fiji": len(sat_f),
            "levels_saturating_spectre": len(sat_s),
        }
        chart = ascii_chart(
            {"width": prof.tolist()},
            x=list(range(prof.size)),
            logy=True,
            title=(
                f"{name}: {prof.size} levels, max width {int(prof.max())}, "
                f"levels saturating Fiji(14336)/Spectre(2048): "
                f"{len(sat_f)}/{len(sat_s)}"
            ),
        )
        blocks.append(chart)
    return ExperimentResult("fig3", title, "\n\n".join(blocks), data)


# ----------------------------------------------------------------------
# Table 3 & 4: kernel times and improvements
# ----------------------------------------------------------------------
def run_tab3(cfg: HarnessConfig,
             datasets: Optional[List[str]] = None) -> ExperimentResult:
    """Table 3: execution time of each queue variant, dataset, and GPU."""
    title = "Table 3 — kernel execution times (simulated seconds)"
    names = datasets or paper_dataset_names()
    rows = []
    data: Dict[str, Dict] = {"cells": {}}
    for dev, wg in cfg.device_configs():
        for name in names:
            g = _graph(cfg, name)
            src = cfg.source(name)
            times = {}
            stats = {}
            for variant in VARIANTS:
                run = _bfs(cfg, name, 1.0, g, src, variant, dev, wg)
                times[variant] = run.seconds
                stats[variant] = {
                    "cycles": run.cycles,
                    "cas_failures": run.stats.cas_failures,
                    "cas_attempts": run.stats.cas_attempts,
                    "atomics": run.stats.total_atomic_requests,
                    "empty_exceptions": int(
                        run.stats.custom.get("queue.empty_exceptions", 0)
                    ),
                    "custom": {
                        k: int(v) for k, v in sorted(run.stats.custom.items())
                    },
                }
            paper = PAPER_TABLE3.get((dev.name, name), {})
            rows.append(
                [dev.name, wg, name,
                 times["BASE"], times["AN"], times["RF/AN"],
                 paper.get("BASE", ""), paper.get("AN", ""),
                 paper.get("RF/AN", "")]
            )
            data["cells"][f"{dev.name}|{name}"] = {
                "seconds": times, "stats": stats, "paper": paper,
            }
    text = render_table(
        ["GPU", "nWG", "Dataset", "BASE", "AN", "RF/AN",
         "paperBASE", "paperAN", "paperRF/AN"],
        rows, title=title,
    )
    return ExperimentResult("tab3", title, text, data)


def run_tab4(cfg: HarnessConfig,
             tab3: Optional[ExperimentResult] = None) -> ExperimentResult:
    """Table 4: improvement of AN and RF/AN over BASE (percent)."""
    title = "Table 4 — performance improvement over BASE (%)"
    if tab3 is None:
        tab3 = run_tab3(cfg)
    rows = []
    data = {"cells": {}}
    for key, cell in tab3.data["cells"].items():
        devname, name = key.split("|")
        t = cell["seconds"]
        an = 100.0 * t["BASE"] / t["AN"]
        rfan = 100.0 * t["BASE"] / t["RF/AN"]
        paper = PAPER_TABLE4.get((devname, name), {})
        rows.append(
            [devname, name, round(an, 2), round(rfan, 2),
             paper.get("AN", ""), paper.get("RF/AN", "")]
        )
        data["cells"][key] = {
            "AN": an, "RF/AN": rfan, "paper": paper,
        }
    text = render_table(
        ["GPU", "Dataset", "AN%", "RF/AN%", "paperAN%", "paperRF/AN%"],
        rows, title=title,
    )
    return ExperimentResult("tab4", title, text, data)


# ----------------------------------------------------------------------
# Figure 4: scalability sweeps
# ----------------------------------------------------------------------
def run_fig4(cfg: HarnessConfig,
             datasets: Optional[List[str]] = None,
             scale_factor: Optional[float] = None) -> ExperimentResult:
    """Figure 4: execution time and speedup vs workgroup count.

    Datasets run at ``scale_factor`` times their harness scale (the sweep
    multiplies every cell by |WG points| x |variants|); speedups are
    relative to each variant's own 1-WG time, as in the paper.  Quick
    mode sweeps the three-dataset subset fig1/fig5 consume (one
    synthetic, one social, one roadmap — every qualitative regime);
    tab3 still covers all datasets at the paper geometry, and its cells
    land in the shared run cache either way.
    """
    title = "Figure 4 — execution time and speedup vs workgroups"
    if scale_factor is None:
        scale_factor = 1.0 if cfg.quick else 0.25
    if datasets:
        names = datasets
    elif cfg.quick:
        names = ["Synthetic", "soc-LiveJournal1", "USA-road-d.NY"]
    else:
        names = paper_dataset_names()
    blocks: List[str] = []
    data: Dict[str, Dict] = {}
    for dev, _ in cfg.device_configs():
        wgs = cfg.wg_sweep(dev)
        for name in names:
            # the synthetic dataset's plateau must stay wider than the
            # sweep's top thread count or the saturation experiment
            # degenerates; it keeps its full harness scale.
            factor = 1.0 if name == "Synthetic" else scale_factor
            g = _graph(cfg, name, factor)
            src = cfg.source(name)
            times: Dict[str, List[float]] = {v: [] for v in VARIANTS}
            for variant in VARIANTS:
                for wg in wgs:
                    run = _bfs(cfg, name, factor, g, src, variant, dev, wg)
                    times[variant].append(run.seconds)
            speedups = {
                v: [times[v][0] / t for t in times[v]] for v in VARIANTS
            }
            speedups["ideal"] = [float(w) for w in wgs]
            key = f"{dev.name}|{name}"
            data[key] = {
                "workgroups": wgs,
                "seconds": times,
                "speedup": {k: v for k, v in speedups.items()},
            }
            blocks.append(
                render_series(
                    {f"time[{v}]": times[v] for v in VARIANTS},
                    x=wgs,
                    title=f"{dev.name} / {name} — execution time (s) vs nWG",
                )
            )
            blocks.append(
                ascii_chart(
                    speedups, x=wgs, logy=True,
                    title=f"{dev.name} / {name} — speedup vs 1 WG (log)",
                )
            )
    return ExperimentResult("fig4", title, "\n\n".join(blocks), data)


# ----------------------------------------------------------------------
# Figure 1 & Figure 5: retry behaviour
# ----------------------------------------------------------------------
def run_fig1(cfg: HarnessConfig,
             scale_factor: Optional[float] = None) -> ExperimentResult:
    """Figure 1: CAS failures grow with active threads (BASE queue)."""
    title = "Figure 1 — CAS retries vs thread count (BASE, synthetic)"
    if scale_factor is None:
        scale_factor = 1.0 if cfg.quick else 0.25
    dev = FIJI
    wgs = cfg.wg_sweep(dev)
    g = _graph(cfg, "Synthetic", scale_factor)
    failures = []
    attempts = []
    for wg in wgs:
        run = _bfs(cfg, "Synthetic", scale_factor, g, 0, "BASE", dev, wg)
        failures.append(run.stats.cas_failures)
        attempts.append(run.stats.cas_attempts)
    text = "\n\n".join(
        [
            render_series(
                {"cas_failures": failures, "cas_attempts": attempts},
                x=wgs, title=title,
            ),
            ascii_chart(
                {"failures": failures}, x=wgs, logy=True,
                title="CAS failures (log) vs workgroups",
            ),
        ]
    )
    return ExperimentResult(
        "fig1", title, text,
        {"workgroups": wgs, "cas_failures": failures, "cas_attempts": attempts},
    )


def run_fig5(cfg: HarnessConfig,
             scale_factor: Optional[float] = None) -> ExperimentResult:
    """Figure 5: retry ratio (BASE atomics over RF/AN atomics) vs WGs.

    Reported two ways: over *all* global atomics (including the per-edge
    cost relaxations identical in both kernels) and over scheduler/queue
    atomics only (fetch-adds + CAS, excluding relax ``atomic_min``) —
    the latter isolates queue traffic, which is what the paper's ratio
    tracks.
    """
    title = "Figure 5 — retry ratio (BASE over RF/AN) vs workgroups"
    # quick mode already shrinks datasets 8x; shrinking further would
    # starve the synthetic at the top of the sweep and invert the trend
    # the figure is about.
    if scale_factor is None:
        scale_factor = 1.0 if cfg.quick else 0.25
    names = ["Synthetic", "soc-LiveJournal1", "USA-road-d.NY"]
    blocks = []
    data: Dict[str, Dict] = {}
    for dev, _ in cfg.device_configs():
        wgs = cfg.wg_sweep(dev)
        per_ds_ratio: Dict[str, List[float]] = {}
        per_ds_qratio: Dict[str, List[float]] = {}
        for name in names:
            g = _graph(cfg, name, scale_factor)
            src = cfg.source(name)
            ratios, qratios = [], []
            for wg in wgs:
                counts = {}
                for variant in ("BASE", "RF/AN"):
                    run = _bfs(cfg, name, scale_factor, g, src, variant,
                               dev, wg)
                    total = run.stats.total_atomic_requests
                    relax = run.stats.atomic_requests.get("min", 0)
                    counts[variant] = (total, total - relax)
                ratios.append(counts["BASE"][0] / max(counts["RF/AN"][0], 1))
                qratios.append(counts["BASE"][1] / max(counts["RF/AN"][1], 1))
            per_ds_ratio[name] = ratios
            per_ds_qratio[name] = qratios
            data[f"{dev.name}|{name}"] = {
                "workgroups": wgs,
                "atomic_ratio": ratios,
                "queue_atomic_ratio": qratios,
            }
        blocks.append(
            render_series(
                {f"all[{n}]": per_ds_ratio[n] for n in names}
                | {f"queue[{n}]": per_ds_qratio[n] for n in names},
                x=wgs,
                title=f"{dev.name} — atomic-operation ratio BASE/RF-AN",
            )
        )
        blocks.append(
            ascii_chart(
                per_ds_qratio, x=wgs, logy=False,
                title=f"{dev.name} — queue-atomic retry ratio",
            )
        )
    return ExperimentResult("fig5", title, "\n\n".join(blocks), data)


# ----------------------------------------------------------------------
# Tables 5 & 6: baseline comparisons
# ----------------------------------------------------------------------
def run_tab5(cfg: HarnessConfig) -> ExperimentResult:
    """Table 5: CHAI BFS vs RF/AN on CHAI's road datasets (integrated GPU).

    The paper runs this on Spectre only — the discrete Fiji cannot execute
    CHAI's heterogeneous kernel (no cross-cluster atomics).
    """
    title = "Table 5 — comparison with CHAI BFS (ms, Spectre)"
    dev = SPECTRE
    wg = 16 if cfg.quick else paper_workgroups(dev)
    rows = []
    data = {}
    for name in CHAI_DATASETS:
        g = _graph(cfg, name)
        src = cfg.source(name)
        chai = run_chai_bfs(g, src, dev, verify=cfg.verify,
                            max_cycles=cfg.max_cycles)
        rfan = _bfs(cfg, name, 1.0, g, src, "RF/AN", dev, wg)
        speedup = chai.seconds / rfan.seconds
        paper = PAPER_TABLE5[name]
        rows.append(
            [name, chai.seconds * 1e3, rfan.seconds * 1e3,
             f"{speedup:.3f}x", paper[0], paper[1], f"{paper[2]:.3f}x"]
        )
        data[name] = {
            "chai_ms": chai.seconds * 1e3,
            "rfan_ms": rfan.seconds * 1e3,
            "speedup": speedup,
            "paper": paper,
        }
    text = render_table(
        ["Dataset", "CHAI", "RF/AN", "Speedup",
         "paperCHAI", "paperRF/AN", "paperSpeedup"],
        rows, title=title,
    )
    return ExperimentResult("tab5", title, text, data)


def run_tab6(cfg: HarnessConfig) -> ExperimentResult:
    """Table 6: Rodinia BFS vs RF/AN on Rodinia's datasets, both GPUs."""
    title = "Table 6 — comparison with Rodinia BFS (ms)"
    rows = []
    data = {}
    for name in RODINIA_DATASETS:
        g = _graph(cfg, name)
        src = cfg.source(name)
        for dev, wg in cfg.device_configs():
            rodinia = run_rodinia_bfs(g, src, dev, verify=cfg.verify,
                                      max_cycles=cfg.max_cycles)
            rfan = _bfs(cfg, name, 1.0, g, src, "RF/AN", dev, wg)
            speedup = rodinia.seconds / rfan.seconds
            paper = PAPER_TABLE6[(name, dev.name)]
            rows.append(
                [name, dev.name, rodinia.seconds * 1e3, rfan.seconds * 1e3,
                 f"{speedup:.2f}x", paper[0], paper[1], f"{paper[2]:.2f}x"]
            )
            data[f"{name}|{dev.name}"] = {
                "rodinia_ms": rodinia.seconds * 1e3,
                "rfan_ms": rfan.seconds * 1e3,
                "speedup": speedup,
                "paper": paper,
            }
    text = render_table(
        ["Dataset", "Device", "Rodinia", "RF/AN", "Speedup",
         "paperRodinia", "paperRF/AN", "paperSpeedup"],
        rows, title=title,
    )
    return ExperimentResult("tab6", title, text, data)


# ----------------------------------------------------------------------
# Sharding ablation (beyond the paper): multi-queue + work stealing
# ----------------------------------------------------------------------
def run_sharding(cfg: HarnessConfig) -> ExperimentResult:
    """Sharding ablation: shards x steal vs the single RF/AN queue.

    Runs the persistent BFS with :class:`~repro.core.ShardedQueue` over
    ``shards in {1, 2, 4, n_cus} x steal {off, on}`` against the
    single-queue RF/AN baseline, on the saturating Synthetic plateau and
    the power-law soc-LiveJournal1 stand-in.  The regime is deliberately
    queue-bound: Fiji at 8 wavefronts/CU (twice the paper's occupancy)
    with ``subtasks_per_cycle=1``, so scheduler/queue hot words — not
    memory latency — pace the run.  Synthetic's plateau always exceeds
    the resident lane count (else the run is frontier-limited and the
    ablation measures nothing); quick mode halves the plateau to the
    narrowest still-saturating width, keeps Synthetic only, and drops
    the intermediate shards=2 point.

    The ``shards=1`` row is the equivalence pin: it must be
    *bit-identical* to the RF/AN baseline (same cycles, same stats).
    Stranded configurations (no stealing at high shard counts leaves
    most of the machine idle forever) are capped at a small multiple of
    the baseline's cycles and reported as censored rather than
    simulated to the end.
    """
    title = "Sharding ablation — sharded RF/AN + work stealing vs one queue"
    dev = FIJI
    wg = 2 * paper_workgroups(dev)  # 8 wavefronts/CU: queue-bound
    sub = 1
    quantum, spin = 32, 1
    if cfg.quick:
        # quick mode keeps the ablation's two ends — the shards=1
        # equivalence pin and the one-shard-per-CU extreme (where the
        # steal on/off contrast is widest) — on the saturating Synthetic
        # only, and censors stranded cells earlier; the full grid and
        # the power-law dataset are full-mode territory.
        names = ("Synthetic",)
        shard_counts = [1, dev.n_cus]
        cap_mult = 2
    else:
        names = ("Synthetic", "soc-LiveJournal1")
        shard_counts = [1, 2, 4, dev.n_cus]
        cap_mult = 3
    rows = []
    data: Dict[str, Dict] = {
        "device": dev.name, "workgroups": wg, "subtasks_per_cycle": sub,
        "steal_quantum": quantum, "spin_threshold": spin,
        "cells": {}, "baseline": {},
    }

    def sharded_factory(n_shards: int, steal: bool):
        def make(capacity: int):
            from repro.core import ShardedQueue

            per = (
                capacity if n_shards == 1
                else capacity // n_shards + max(64, 16 * quantum)
            )
            return ShardedQueue(
                per, n_shards=n_shards, steal=steal,
                steal_quantum=quantum, spin_threshold=spin,
            )
        return make

    for name in names:
        if name == "Synthetic":
            # the plateau must stay wider than the 28,672 resident lanes
            # (448 WGs x 64): full mode runs the full 65,536-wide
            # plateau; quick mode halves it (0.125 quick x 4.0 = 32,768
            # wide) — still saturating, at half the simulation cost.
            extra = 4.0 if cfg.quick else 1.0
        else:
            extra = 0.5 if cfg.quick else 0.25  # as fig4 scales sweeps
        g = _graph(cfg, name, extra)
        src = cfg.source(name)
        base = _bfs(cfg, name, extra, g, src, "RF/AN", dev, wg,
                    subtasks_per_cycle=sub)
        data["baseline"][name] = {
            "cycles": base.cycles,
            "snapshot": {k: int(v) for k, v in
                         sorted(base.stats.snapshot().items())
                         if isinstance(v, (int, float))},
        }
        rows.append([name, "RF/AN", 1, "-", base.cycles, "1.000x",
                     0, 0, "-", "-"])
        cap_cycles = min(cfg.max_cycles, cap_mult * base.cycles)
        for n_shards in shard_counts:
            for steal in ((False,) if n_shards == 1 else (False, True)):
                try:
                    run = run_persistent_bfs(
                        g, src, "SHARDED", dev, wg, verify=cfg.verify,
                        subtasks_per_cycle=sub, max_cycles=cap_cycles,
                        queue_factory=sharded_factory(n_shards, steal),
                    )
                except SimulationTimeout:
                    rows.append([name, "SHARDED", n_shards,
                                 "on" if steal else "off",
                                 f">{cap_cycles}",
                                 f"<{base.cycles / cap_cycles:.2f}x",
                                 "-", "-", "-", "stranded"])
                    data["cells"][f"{name}|sh{n_shards}|steal{int(steal)}"] = {
                        "cycles": None, "censored_at": cap_cycles,
                    }
                    continue
                c = run.stats.custom
                hits = int(c.get("queue.steal_hits", 0))
                stolen = int(c.get("queue.stolen_tokens", 0))
                shard_tasks = [
                    int(c.get(f"scheduler.shard{i}.tasks_completed", 0))
                    for i in range(n_shards)
                ]
                total_tasks = sum(shard_tasks)
                imbalance = (
                    round(max(shard_tasks) * n_shards / total_tasks, 2)
                    if n_shards > 1 and total_tasks else 1.0
                )
                bit_identical = ""
                if n_shards == 1:
                    same = (
                        run.cycles == base.cycles
                        and run.stats.snapshot() == base.stats.snapshot()
                    )
                    bit_identical = "yes" if same else "NO (DRIFT)"
                speedup = base.cycles / run.cycles
                rows.append([
                    name, "SHARDED", n_shards, "on" if steal else "off",
                    run.cycles, f"{speedup:.3f}x", hits, stolen,
                    imbalance if n_shards > 1 else "-",
                    bit_identical or "-",
                ])
                data["cells"][f"{name}|sh{n_shards}|steal{int(steal)}"] = {
                    "cycles": run.cycles,
                    "speedup": speedup,
                    "steal_hits": hits,
                    "stolen_tokens": stolen,
                    "shard_tasks": shard_tasks,
                    "imbalance": imbalance,
                    "bit_identical_to_rfan": (
                        bit_identical == "yes" if n_shards == 1 else None
                    ),
                }
    text = render_table(
        ["Dataset", "Queue", "Shards", "Steal", "Cycles", "Speedup",
         "Steals", "Stolen", "Imbal", "Pin"],
        rows,
        title=f"{title} ({dev.name}, {wg} WGs, "
        f"subtasks/cycle={sub}, quantum={quantum})",
    )
    return ExperimentResult("sharding", title, text, data)


#: experiment id -> runner, in paper order.
EXPERIMENTS = {
    "fig1": run_fig1,
    "tab1": run_tab1,
    "tab2": run_tab2,
    "fig3": run_fig3,
    "tab3": run_tab3,
    "tab4": run_tab4,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "tab5": run_tab5,
    "tab6": run_tab6,
    # beyond the paper: sharded multi-queue + work-stealing ablation
    "sharding": run_sharding,
}


# ----------------------------------------------------------------------
# Multi-experiment driver (sequential or process-parallel)
# ----------------------------------------------------------------------
#: experiments whose simulations overlap: the fig4 sweep covers every
#: tab3 cell and every fig1/fig5 point at quick scale, and tab4 derives
#: from tab3's runs.  Listed in producer-before-consumer order — fig4
#: populates the group's run cache, the others mostly hit it.
SHARED_SWEEP = ("fig4", "fig1", "fig5", "tab3", "tab4")


def plan_groups(ids: List[str]) -> List[List[str]]:
    """Partition experiment ids into scheduling groups, preserving order.

    Each group is one dispatch chunk: it runs in a single worker under a
    shared :class:`_GroupCache`.  Experiments whose simulation cells
    overlap (``SHARED_SWEEP``) are chunked together — split across
    workers they would each re-simulate the shared cells, which is most
    of the harness's wall-clock (and ``tab4`` would re-run all of
    ``tab3``).  Everything else stays a singleton group so a parallel
    run keeps enough independent chunks to fan out.
    """
    shared = [e for e in SHARED_SWEEP if e in ids]
    if len(shared) < 2:
        shared = []
    groups: List[List[str]] = []
    placed = False
    for exp_id in ids:
        if exp_id in shared:
            if not placed:
                placed = True
                groups.append(shared)
            continue
        groups.append([exp_id])
    return groups


def _run_group(cfg: HarnessConfig, group: List[str]) -> List[ExperimentResult]:
    """Run one scheduling group in-process (top-level: must pickle).

    The whole group shares one :class:`_GroupCache`, torn down at the
    end: the cache must never outlive its group or sequential and
    parallel runs would hit it differently and their merged metrics
    would diverge.
    """
    global _cache
    out: List[ExperimentResult] = []
    shared_tab3: Optional[ExperimentResult] = None
    _cache = _GroupCache()
    try:
        for exp_id in group:
            t0 = time.perf_counter()
            if exp_id == "tab3":
                result = run_tab3(cfg)
                shared_tab3 = result
            elif exp_id == "tab4":
                result = run_tab4(cfg, tab3=shared_tab3)
            else:
                result = EXPERIMENTS[exp_id](cfg)
            result.elapsed = time.perf_counter() - t0
            out.append(result)
    finally:
        _cache = None
    return out


def _run_group_collect(
    cfg: HarnessConfig,
    group: List[str],
    collect_metrics: bool,
    telemetry: Optional[Dict] = None,
) -> Tuple[List[ExperimentResult], Optional[Dict]]:
    """Run one group, optionally under a metrics session (must pickle).

    Returns ``(results, registry_snapshot_or_None)`` — worker processes
    cannot share the parent's registry, so they ship a snapshot back and
    the parent merges (counters add, so merge order does not matter).

    ``telemetry`` (the harness ``--flight`` plumbing) opens a
    :class:`repro.obs.flight.FlightSession` around the group: every
    launch gets a flight recorder plus liveness watchdog, launch-end
    snapshots stream into the runlog at ``telemetry["path"]`` (when
    set), and a failure dumps a post-mortem bundle under
    ``telemetry["postmortem_dir"]``.  All of it is passive on the
    simulation, so results and reports stay byte-identical.
    """
    if telemetry is None:
        if not collect_metrics:
            return _run_group(cfg, group), None
        from repro.obs.registry import MetricsSession

        with MetricsSession() as session:
            out = _run_group(cfg, group)
        return out, session.registry.snapshot()

    from contextlib import ExitStack

    from repro.obs.flight import FlightSession
    from repro.obs.live import TelemetryEmitter
    from repro.obs.registry import MetricsSession

    emitter = None
    if telemetry.get("path"):
        emitter = TelemetryEmitter(
            telemetry["path"],
            job="+".join(group),
            interval=telemetry.get("interval", 2.0),
        )
    with ExitStack() as stack:
        session = (
            stack.enter_context(MetricsSession()) if collect_metrics else None
        )
        flight = FlightSession(
            watchdog=telemetry.get("watchdog", True),
            postmortem_dir=telemetry.get("postmortem_dir"),
            config=telemetry.get("config"),
            metrics=session.registry if session is not None else None,
            on_launch_end=emitter.launch_finished if emitter else None,
            on_watchdog=emitter.watchdog_event if emitter else None,
        )
        stack.enter_context(flight)
        if emitter is not None:
            stack.callback(emitter.close)
        out = _run_group(cfg, group)
    snap = session.registry.snapshot() if session is not None else None
    return out, snap


def run_many(
    cfg: HarnessConfig,
    ids: List[str],
    jobs: int = 1,
    observer=None,
    registry=None,
    telemetry: Optional[Dict] = None,
) -> List[ExperimentResult]:
    """Run several experiments, optionally across worker processes.

    ``jobs <= 1`` runs everything in-process.  With more jobs, scheduling
    groups (chunks of experiments whose simulations overlap — see
    :func:`plan_groups`) fan out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`, heaviest chunk
    first.  Only the small ``cfg`` is pickled to workers: datasets are
    built lazily inside each worker and shared across the chunk through
    the per-group run cache, exactly as a sequential run shares them —
    so reports and merged metrics are byte-identical to ``jobs=1``.  If
    worker processes cannot be started on this platform, the run falls
    back to in-process execution.  Results always come back in
    requested-id order.

    ``observer`` (a :class:`repro.obs.runlog.RunObserver`) receives
    run/job lifecycle events — the run log and ``--live`` streaming
    attach here; job wall times are parent-measured, so observers never
    touch simulation state and reports stay byte-identical.
    ``registry`` (a :class:`repro.obs.registry.MetricsRegistry`) has
    every launch's :class:`SimStats` merged into it, across worker
    processes.  Both default to ``None``: the original zero-overhead
    driver path.

    ``telemetry`` (a plain picklable dict, see
    :func:`_run_group_collect`) attaches a flight recorder + liveness
    watchdog inside each worker and streams ``snapshot`` events into
    the shared runlog — the ``--flight`` path.
    """
    groups = plan_groups(ids)
    if observer is not None:
        observer.run_started(ids, groups, jobs)
    t0 = time.perf_counter()
    ok = False
    try:
        if jobs <= 1 or len(groups) <= 1:
            results = _run_groups_sequential(
                cfg, groups, observer, registry, telemetry
            )
        else:
            results = _run_groups_parallel(
                cfg, groups, jobs, observer, registry, telemetry
            )
        ok = True
    finally:
        if observer is not None:
            observer.run_finished(time.perf_counter() - t0, ok)
    by_id = {r.exp_id: r for r in results}
    return [by_id[exp_id] for exp_id in ids]


def _run_groups_sequential(
    cfg: HarnessConfig,
    groups: List[List[str]],
    observer=None,
    registry=None,
    telemetry: Optional[Dict] = None,
) -> List[ExperimentResult]:
    results: List[ExperimentResult] = []
    total = len(groups)
    for i, group in enumerate(groups):
        name = "+".join(group)
        if observer is not None:
            observer.job_started(name, i, total)
        t0 = time.perf_counter()
        try:
            out, snap = _run_group_collect(
                cfg, group, registry is not None, telemetry
            )
        except Exception as exc:
            if observer is not None:
                observer.job_finished(
                    name, i, total, time.perf_counter() - t0, error=repr(exc)
                )
            raise
        if observer is not None:
            observer.job_finished(name, i, total, time.perf_counter() - t0)
        if registry is not None and snap is not None:
            registry.merge(snap)
        results.extend(out)
    return results


#: rough relative wall-clock of each experiment (quick mode), used only
#: to order chunk submission in parallel runs.  Wrong values cost wall
#: time, never correctness.
_COST_HINT = {
    "sharding": 60, "fig4": 40, "tab3": 12, "fig5": 8, "fig1": 2,
    "tab4": 1, "tab5": 2, "tab6": 2, "fig3": 1, "tab1": 1, "tab2": 1,
}


def _run_groups_parallel(
    cfg: HarnessConfig,
    groups: List[List[str]],
    jobs: int,
    observer=None,
    registry=None,
    telemetry: Optional[Dict] = None,
) -> List[ExperimentResult]:
    from concurrent.futures import ProcessPoolExecutor, as_completed
    from concurrent.futures.process import BrokenProcessPool

    collect = registry is not None
    total = len(groups)
    # longest-chunk-first dispatch: the sharding ablation and the shared
    # sweep chunk dominate the run, so starting them before the cheap
    # table lookups keeps the last worker from dragging a long tail.
    # The order is a static, deterministic heuristic — simulated results
    # are order-independent, and run_many reorders by experiment id.
    order = sorted(
        range(len(groups)),
        key=lambda i: (-sum(_COST_HINT.get(e, 1) for e in groups[i]), i),
    )
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(groups))) as ex:
            index = {}
            submitted = {}
            for i in order:
                group = groups[i]
                name = "+".join(group)
                fut = ex.submit(
                    _run_group_collect, cfg, group, collect, telemetry
                )
                index[fut] = (i, name)
                submitted[i] = time.perf_counter()
                if observer is not None:
                    observer.job_started(name, i, total)
            results: List[ExperimentResult] = []
            # completion order: observers stream progress as jobs land;
            # run_many reorders by experiment id afterwards.
            for fut in as_completed(index):
                i, name = index[fut]
                elapsed = time.perf_counter() - submitted[i]
                try:
                    out, snap = fut.result()
                except (OSError, BrokenProcessPool):
                    raise
                except Exception as exc:
                    if observer is not None:
                        observer.job_finished(
                            name, i, total, elapsed, error=repr(exc)
                        )
                    raise
                if observer is not None:
                    observer.job_finished(name, i, total, elapsed)
                if registry is not None and snap is not None:
                    registry.merge(snap)
                results.extend(out)
            return results
    except (OSError, BrokenProcessPool):
        # the pool itself failed (fork unavailable, resource limits);
        # experiment errors propagate above instead of being retried.
        return _run_groups_sequential(
            cfg, groups, observer, registry, telemetry
        )


def _run_exp_profiled(
    cfg: HarnessConfig, exp_id: str, collect_metrics: bool
) -> Tuple[List[ExperimentResult], Optional[Dict], List[Dict]]:
    """Run one experiment under an in-process ProfileSession (must pickle).

    The probe factory is a module global, so in a parallel run the
    session has to open *inside* the worker; the reduced per-launch
    metrics travel back with the results instead of the raw probes.
    Returns ``(results, registry_snapshot_or_None, launch_metrics)``.
    """
    from repro.obs.session import ProfileSession

    with ProfileSession(keep_timelines=False) as session:
        out, snap = _run_group_collect(cfg, [exp_id], collect_metrics)
    return out, snap, [e["metrics"] for e in session.launches]


def run_many_profiled(
    cfg: HarnessConfig,
    ids: List[str],
    jobs: int = 1,
    observer=None,
    registry=None,
) -> Tuple[List[ExperimentResult], Dict[str, List[Dict]]]:
    """:func:`run_many` with a TimelineProbe on every launch.

    Profiling dissolves scheduling groups into per-experiment jobs so
    each experiment's launches are attributable to it — which forgoes
    the shared-sweep run cache (a profiled run re-simulates shared
    cells; the sequential ``--profile`` path always worked this way).
    Probes are passive, so reports stay byte-identical to an unprofiled
    run.  Returns ``(results, {exp_id: [launch_metrics, ...]})``.
    """
    groups = [[exp_id] for exp_id in ids]
    total = len(groups)
    collect = registry is not None
    if observer is not None:
        observer.run_started(ids, groups, jobs)
    t0 = time.perf_counter()
    ok = False
    results: List[ExperimentResult] = []
    profiles: Dict[str, List[Dict]] = {}
    try:
        if jobs <= 1 or total <= 1:
            _profiled_sequential(
                cfg, ids, collect, observer, registry, results, profiles
            )
        else:
            _profiled_parallel(
                cfg, ids, jobs, collect, observer, registry, results, profiles
            )
        ok = True
    finally:
        if observer is not None:
            observer.run_finished(time.perf_counter() - t0, ok)
    by_id = {r.exp_id: r for r in results}
    return [by_id[exp_id] for exp_id in ids], profiles


def _profiled_sequential(
    cfg, ids, collect, observer, registry, results, profiles
) -> None:
    total = len(ids)
    for i, exp_id in enumerate(ids):
        if observer is not None:
            observer.job_started(exp_id, i, total)
        t0 = time.perf_counter()
        try:
            out, snap, launches = _run_exp_profiled(cfg, exp_id, collect)
        except Exception as exc:
            if observer is not None:
                observer.job_finished(
                    exp_id, i, total, time.perf_counter() - t0,
                    error=repr(exc),
                )
            raise
        if observer is not None:
            observer.job_finished(exp_id, i, total, time.perf_counter() - t0)
        if registry is not None and snap is not None:
            registry.merge(snap)
        profiles[exp_id] = launches
        results.extend(out)


def _profiled_parallel(
    cfg, ids, jobs, collect, observer, registry, results, profiles
) -> None:
    from concurrent.futures import ProcessPoolExecutor, as_completed
    from concurrent.futures.process import BrokenProcessPool

    total = len(ids)
    order = sorted(
        range(total), key=lambda i: (-_COST_HINT.get(ids[i], 1), i)
    )
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, total)) as ex:
            index = {}
            submitted = {}
            for i in order:
                exp_id = ids[i]
                fut = ex.submit(_run_exp_profiled, cfg, exp_id, collect)
                index[fut] = (i, exp_id)
                submitted[i] = time.perf_counter()
                if observer is not None:
                    observer.job_started(exp_id, i, total)
            for fut in as_completed(index):
                i, exp_id = index[fut]
                elapsed = time.perf_counter() - submitted[i]
                try:
                    out, snap, launches = fut.result()
                except (OSError, BrokenProcessPool):
                    raise
                except Exception as exc:
                    if observer is not None:
                        observer.job_finished(
                            exp_id, i, total, elapsed, error=repr(exc)
                        )
                    raise
                if observer is not None:
                    observer.job_finished(exp_id, i, total, elapsed)
                if registry is not None and snap is not None:
                    registry.merge(snap)
                profiles[exp_id] = launches
                results.extend(out)
    except (OSError, BrokenProcessPool):
        # pool startup failed: fall back to in-process profiled runs.
        results.clear()
        profiles.clear()
        _profiled_sequential(
            cfg, ids, collect, observer, registry, results, profiles
        )
