"""Job specs: the serializable unit of work the scheduler service runs.

``python -m repro.serve`` accepts the same configurations the harness
CLI does, but over a wire: a **job spec** is a plain JSON dict that
round-trips through :class:`JobSpec` and executes through
:func:`run_job_spec` — the programmatic twin of ``python -m
repro.harness <exp> --quick --out DIR``.  Determinism does the heavy
lifting: a spec run by the service and the same spec run by the CLI
produce byte-identical ``<exp>.txt``/``<exp>.json`` artifacts and
ledger entries with equal ``config_hash``, so ``runs diff`` compares
service-run and CLI-run results exactly.

Two spec kinds exist:

``harness``
    The real thing: ``experiments`` (harness ids), ``quick``,
    ``scale_factor``, ``verify``, ``jobs`` (in-job worker fan-out) and
    ``flight`` (attach the flight recorder + watchdog; failures leave
    post-mortem bundles next to the job's artifacts).

``canary``
    An ops no-op that sleeps ``seconds`` and optionally fails its
    first ``fail_attempts`` attempts.  It exercises the service's
    queueing, cancellation, timeout, and retry/backoff machinery
    without simulating anything — health checks and the test suite
    use it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: spec kinds the service accepts.
KINDS = ("harness", "canary")


class SpecError(ValueError):
    """A job spec that cannot be executed (rejected at submission)."""


@dataclass
class JobSpec:
    """One serializable unit of service work."""

    kind: str = "harness"
    #: harness experiment ids (``harness`` kind).
    experiments: List[str] = field(default_factory=list)
    quick: bool = True
    scale_factor: float = 1.0
    verify: bool = True
    #: worker processes *inside* the job (``run_many`` fan-out).
    jobs: int = 1
    #: attach flight recorder + watchdog; failures dump post-mortems.
    flight: bool = False
    #: ``canary`` kind: wall seconds to sleep.
    seconds: float = 0.0
    #: ``canary`` kind: raise on attempts 1..fail_attempts.
    fail_attempts: int = 0

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`SpecError` on anything the runner would choke on."""
        if self.kind not in KINDS:
            raise SpecError(f"unknown spec kind {self.kind!r} (one of {KINDS})")
        if self.kind == "harness":
            if not self.experiments:
                raise SpecError("harness spec needs at least one experiment id")
            from .experiments import EXPERIMENTS

            unknown = [e for e in self.experiments if e not in EXPERIMENTS]
            if unknown:
                raise SpecError(
                    f"unknown experiment(s) {unknown}; "
                    f"known: {', '.join(EXPERIMENTS)}"
                )
            if self.jobs < 1:
                raise SpecError(f"jobs must be >= 1, got {self.jobs}")
            if self.scale_factor <= 0:
                raise SpecError(
                    f"scale_factor must be > 0, got {self.scale_factor}"
                )
        else:  # canary
            if self.seconds < 0:
                raise SpecError(f"seconds must be >= 0, got {self.seconds}")
            if self.fail_attempts < 0:
                raise SpecError(
                    f"fail_attempts must be >= 0, got {self.fail_attempts}"
                )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        if self.kind == "harness":
            return {
                "kind": self.kind,
                "experiments": list(self.experiments),
                "quick": self.quick,
                "scale_factor": self.scale_factor,
                "verify": self.verify,
                "jobs": self.jobs,
                "flight": self.flight,
            }
        return {
            "kind": self.kind,
            "seconds": self.seconds,
            "fail_attempts": self.fail_attempts,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        """Build and validate a spec from an untrusted dict."""
        if not isinstance(data, dict):
            raise SpecError(f"spec must be a JSON object, got {type(data).__name__}")
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"unknown spec field(s): {', '.join(unknown)}")
        try:
            spec = cls(**data)
        except TypeError as exc:
            raise SpecError(str(exc)) from None
        # normalize types arriving from JSON (e.g. ints for floats)
        spec.scale_factor = float(spec.scale_factor)
        spec.seconds = float(spec.seconds)
        spec.jobs = int(spec.jobs)
        spec.fail_attempts = int(spec.fail_attempts)
        spec.validate()
        return spec

    # ------------------------------------------------------------------
    def config(self) -> Dict[str, Any]:
        """The ledger config dict — identical to the harness CLI's.

        ``jobs``/``flight`` stay out for the same reason the CLI keeps
        ``--jobs``/``--profile`` out: they must not change simulated
        results, so service and CLI runs of one spec share a
        ``config_hash`` and ``runs diff`` compares them exactly.
        """
        return {
            "experiments": list(self.experiments),
            "quick": self.quick,
            "scale_factor": self.scale_factor,
            "verify": self.verify,
        }


def run_job_spec(
    spec: JobSpec,
    out_dir: str,
    job_id: Optional[str] = None,
    postmortem_dir: Optional[str] = None,
    run_log: Optional[str] = None,
    record_ledger: bool = True,
) -> Dict[str, Any]:
    """Execute a ``harness`` spec; the service worker's entry point.

    Runs the spec's experiments through the exact pipeline the CLI
    uses (:func:`repro.harness.experiments.run_many` + per-result
    ``save``), writes ``<exp>.txt``/``<exp>.json`` under ``out_dir``,
    records a ledger manifest tagged with ``job_id``, and returns a
    JSON-able summary ``{artifacts, metrics, ledger_run_id, wall_seconds}``.
    """
    import time

    from repro.obs.registry import MetricsRegistry

    from .config import HarnessConfig
    from .experiments import run_many

    spec.validate()
    if spec.kind != "harness":
        raise SpecError(f"run_job_spec only executes harness specs, got {spec.kind!r}")

    cfg = HarnessConfig(
        quick=spec.quick, scale_factor=spec.scale_factor, verify=spec.verify,
    )
    telemetry = None
    if spec.flight:
        telemetry = {
            "path": run_log,
            "postmortem_dir": postmortem_dir,
            "watchdog": True,
            "config": spec.config(),
        }
    registry = MetricsRegistry() if record_ledger else None

    t0 = time.time()
    results = run_many(
        cfg, list(spec.experiments), jobs=spec.jobs,
        registry=registry, telemetry=telemetry,
    )
    wall = time.time() - t0

    artifacts: List[str] = []
    for result in results:
        result.save(out_dir)
        artifacts.extend([f"{result.exp_id}.txt", f"{result.exp_id}.json"])

    summary: Dict[str, Any] = {
        "artifacts": artifacts,
        "wall_seconds": round(wall, 3),
        "experiments": list(spec.experiments),
    }
    if registry is not None:
        from repro.obs.ledger import Ledger

        metrics = registry.scalars()
        metrics["experiments"] = len(results)
        for result in results:
            metrics[f"{result.exp_id}.seconds"] = round(result.elapsed, 3)
        entry = Ledger().record(
            kind="serve",
            config=spec.config(),
            metrics=metrics,
            wall_seconds=wall,
            job_id=job_id,
            notes=f"jobs={spec.jobs} flight={spec.flight}",
        )
        summary["ledger_run_id"] = entry["run_id"]
        summary["config_hash"] = entry["config_hash"]
        headline = {
            k: v for k, v in metrics.items()
            if k.endswith(("cycles", "seconds")) or k == "experiments"
        }
        summary["metrics"] = dict(sorted(headline.items())[:24])
    return summary


def submitting_job_id() -> Optional[str]:
    """The service job id this process runs under, if any.

    The daemon's worker exports ``REPRO_JOB_ID`` to the job's child
    process, so even a spec that shells back into ``python -m
    repro.harness`` records the owning job in its ledger entries.
    """
    return os.environ.get("REPRO_JOB_ID") or None
