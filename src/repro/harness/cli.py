"""Command-line entry point: ``python -m repro.harness <experiment>``.

Examples
--------
List experiments::

    python -m repro.harness --list

Regenerate one artefact quickly::

    python -m repro.harness tab6 --quick

Regenerate everything at harness scale, saving text+JSON reports::

    python -m repro.harness all --out results/

Watch a long parallel run and keep a structured event log::

    python -m repro.harness all --jobs 4 --live --run-log results/run.jsonl

Query the run ledger (every invocation records a manifest under
``results/ledger/`` unless ``--no-ledger``)::

    python -m repro.harness runs list
    python -m repro.harness runs diff last~1 last
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from .config import HarnessConfig
from .experiments import EXPERIMENTS, run_many


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "profile":
        # profiled single runs have their own flag set; see profile.py.
        from .profile import profile_main

        return profile_main(argv[1:])
    if argv and argv[0] == "blame":
        # stall attribution + what-if projection; see blame.py.
        from .blame import blame_main

        return blame_main(argv[1:])
    if argv and argv[0] == "capacity":
        # fill-histogram replay + buffer-size advisor; see capacity.py.
        from .capacity import capacity_main

        return capacity_main(argv[1:])
    if argv and argv[0] == "runs":
        # ledger queries never touch the simulator; see runs.py.
        from .runs import runs_main

        return runs_main(argv[1:])
    if argv and argv[0] == "watch":
        # live dashboard over a runlog JSONL; see watch.py.
        from .watch import watch_main

        return watch_main(argv[1:])
    if argv and argv[0] == "postmortem":
        # render post-mortem bundles from failed runs; see postmortem.py.
        from .postmortem import postmortem_main

        return postmortem_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Regenerate the tables and figures of 'A Specialized "
            "Concurrent Queue for Scheduling Irregular Workloads on GPUs' "
            "(ICPP 2019) on the SIMT simulator."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=(
            "experiment id (fig1, tab1..tab6, fig3..fig5, sharding) "
            "or 'all'; "
            "or a subcommand: 'profile' (single profiled runs) / "
            "'blame' (stall attribution + what-if) / "
            "'capacity' (queue buffer-size advisor) / "
            "'runs' (query the run ledger) / "
            "'watch' (live dashboard over a runlog) / "
            "'postmortem' (render failure bundles) — "
            "see '<subcommand> --help'"
        ),
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--quick", action="store_true",
        help="small datasets and sweeps (minutes instead of an hour+)",
    )
    parser.add_argument(
        "--scale-factor", type=float, default=1.0,
        help="multiply every dataset's harness scale (default 1.0)",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip CPU-oracle verification of each BFS",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="also save <exp>.txt and <exp>.json under DIR",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help=(
            "fan scheduling groups (experiments with overlapping sweeps "
            "travel together to share a run cache; see docs/performance.md) "
            "out over N worker processes (default 1: run in-process); "
            "reports are byte-identical either way"
        ),
    )
    parser.add_argument(
        "--profile", action="store_true",
        help=(
            "attach observability probes to every launch; reports are "
            "unchanged — probes are passive — and aggregate profile "
            "metrics land in DIR/<exp>.profile.json when --out is given. "
            "Composes with --jobs N (sessions open inside each worker), "
            "but dissolves shared-sweep caching: experiments run one per "
            "job so launches stay attributable"
        ),
    )
    parser.add_argument(
        "--flight", action="store_true",
        help=(
            "attach the flight recorder + liveness watchdog to every "
            "launch (passive: reports stay byte-identical); with "
            "--run-log, stream periodic snapshot telemetry for "
            "'repro-harness watch'; on failure, dump a postmortem.json "
            "bundle under --postmortem-dir"
        ),
    )
    parser.add_argument(
        "--postmortem-dir", default=os.path.join("results", "postmortem"),
        metavar="DIR",
        help=(
            "where --flight writes postmortem bundles on failure "
            "(default results/postmortem)"
        ),
    )
    parser.add_argument(
        "--live", action="store_true",
        help=(
            "stream per-job progress (done/failed counts, ETA, running "
            "groups) to stderr; stdout reports stay byte-identical"
        ),
    )
    parser.add_argument(
        "--run-log", default=None, metavar="FILE",
        help="append schema-versioned JSONL run events to FILE",
    )
    parser.add_argument(
        "--no-ledger", action="store_true",
        help=(
            "skip recording this run's manifest in the run ledger "
            "(default ledger: $REPRO_LEDGER or results/ledger)"
        ),
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for exp_id, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:6s} {doc}")
        return 0

    cfg = HarnessConfig(
        quick=args.quick,
        scale_factor=args.scale_factor,
        verify=not args.no_verify,
    )

    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; use --list", file=sys.stderr)
        return 2

    # -- observability plumbing (all passive: reports stay byte-identical)
    from repro.obs.registry import MetricsRegistry
    from repro.obs.runlog import LiveReporter, MultiObserver, RunLog

    observers = []
    runlog = None
    if args.run_log:
        runlog = RunLog(args.run_log)
        observers.append(runlog)
    if args.live:
        observers.append(LiveReporter())
    observer = MultiObserver(*observers) if observers else None
    registry = None if args.no_ledger else MetricsRegistry()

    telemetry = None
    if args.flight and args.profile:
        # both would install PROBE_FACTORY; the profile session wins.
        print(
            "[--flight is ignored with --profile: the profile session "
            "owns the probe hook]",
            file=sys.stderr,
        )
    elif args.flight:
        telemetry = {
            "path": args.run_log,
            "postmortem_dir": args.postmortem_dir,
            "watchdog": True,
            "config": {
                "experiments": ids,
                "quick": cfg.quick,
                "scale_factor": cfg.scale_factor,
                "verify": cfg.verify,
            },
        }

    jobs = args.jobs
    if args.profile and jobs > 1 and len(ids) > 1:
        # profiled parallel runs open a session inside each worker and
        # lose the shared-sweep cache; say so rather than silently
        # re-simulating shared cells (results stay byte-identical).
        print(
            f"[--profile with --jobs {jobs}: sessions open per worker; "
            f"shared-sweep caching is disabled so overlapping "
            f"experiments re-simulate shared cells]",
            file=sys.stderr,
        )

    t0 = time.time()
    try:
        if args.profile:
            from .experiments import run_many_profiled

            results, profiles = run_many_profiled(
                cfg, ids, jobs=jobs, observer=observer, registry=registry,
            )
        else:
            profiles = {}
            results = run_many(
                cfg, ids, jobs=jobs, observer=observer, registry=registry,
                telemetry=telemetry,
            )
    except Exception as exc:
        if telemetry is not None and telemetry.get("postmortem_dir"):
            # worker-side FlightSessions wrote the bundle(s); point at
            # them so a failed run is diagnosable without re-running.
            print(
                f"[postmortem: bundles (if any) under "
                f"{telemetry['postmortem_dir']} — "
                f"'python -m repro.harness postmortem show']",
                file=sys.stderr,
            )
        if runlog is not None:
            runlog.abort(repr(exc))
            runlog.close()
        raise
    wall = time.time() - t0

    if runlog is not None and registry is not None:
        runlog.metrics(registry.snapshot())
    for result in results:
        print(result.text)
        print(f"\n[{result.exp_id} regenerated in {result.elapsed:.1f}s]\n")
        if args.out:
            path = result.save(args.out)
            print(f"[saved {path}]")
            launches = profiles.get(result.exp_id)
            if launches is not None:
                ppath = os.path.join(args.out, f"{result.exp_id}.profile.json")
                with open(ppath, "w") as fh:
                    json.dump({"launches": launches}, fh, indent=1)
                print(f"[saved {ppath} ({len(launches)} profiled launches)]")
    if len(results) > 1:
        print(f"[{len(results)} experiments in {wall:.1f}s "
              f"with --jobs {jobs}]")

    if registry is not None:
        from repro.obs.ledger import Ledger

        metrics = registry.scalars()
        metrics["experiments"] = len(results)
        for result in results:
            metrics[f"{result.exp_id}.seconds"] = round(result.elapsed, 3)
        # jobs/profile stay out of the hashed config: they must not change
        # simulated results, so sequential and parallel runs of the same
        # experiments share a config_hash and `runs diff` compares exactly.
        from .jobspec import submitting_job_id

        entry = Ledger().record(
            kind="harness",
            config={
                "experiments": ids,
                "quick": cfg.quick,
                "scale_factor": cfg.scale_factor,
                "verify": cfg.verify,
            },
            metrics=metrics,
            wall_seconds=wall,
            argv=list(argv),
            # a CLI invocation shelled from a service worker inherits
            # REPRO_JOB_ID, so its ledger entry still names the job
            job_id=submitting_job_id(),
            notes=f"jobs={jobs} profile={bool(args.profile)}",
        )
        # stderr, so stdout reports stay byte-identical across runs
        print(f"[ledger: recorded run {entry['run_id']}]", file=sys.stderr)
    if runlog is not None:
        runlog.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
