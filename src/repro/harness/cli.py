"""Command-line entry point: ``python -m repro.harness <experiment>``.

Examples
--------
List experiments::

    python -m repro.harness --list

Regenerate one artefact quickly::

    python -m repro.harness tab6 --quick

Regenerate everything at harness scale, saving text+JSON reports::

    python -m repro.harness all --out results/
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .config import HarnessConfig
from .experiments import EXPERIMENTS, run_many


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Regenerate the tables and figures of 'A Specialized "
            "Concurrent Queue for Scheduling Irregular Workloads on GPUs' "
            "(ICPP 2019) on the SIMT simulator."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (fig1, tab1..tab6, fig3..fig5) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--quick", action="store_true",
        help="small datasets and sweeps (minutes instead of an hour+)",
    )
    parser.add_argument(
        "--scale-factor", type=float, default=1.0,
        help="multiply every dataset's harness scale (default 1.0)",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip CPU-oracle verification of each BFS",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="also save <exp>.txt and <exp>.json under DIR",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help=(
            "fan independent experiments out over N worker processes "
            "(default 1: run in-process); reports are byte-identical "
            "either way"
        ),
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for exp_id, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:6s} {doc}")
        return 0

    cfg = HarnessConfig(
        quick=args.quick,
        scale_factor=args.scale_factor,
        verify=not args.no_verify,
    )

    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; use --list", file=sys.stderr)
        return 2

    t0 = time.time()
    results = run_many(cfg, ids, jobs=args.jobs)
    for result in results:
        print(result.text)
        print(f"\n[{result.exp_id} regenerated in {result.elapsed:.1f}s]\n")
        if args.out:
            path = result.save(args.out)
            print(f"[saved {path}]")
    if len(results) > 1:
        print(f"[{len(results)} experiments in {time.time() - t0:.1f}s "
              f"with --jobs {args.jobs}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
