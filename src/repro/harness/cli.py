"""Command-line entry point: ``python -m repro.harness <experiment>``.

Examples
--------
List experiments::

    python -m repro.harness --list

Regenerate one artefact quickly::

    python -m repro.harness tab6 --quick

Regenerate everything at harness scale, saving text+JSON reports::

    python -m repro.harness all --out results/
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .config import HarnessConfig
from .experiments import EXPERIMENTS, run_tab3, run_tab4


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Regenerate the tables and figures of 'A Specialized "
            "Concurrent Queue for Scheduling Irregular Workloads on GPUs' "
            "(ICPP 2019) on the SIMT simulator."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (fig1, tab1..tab6, fig3..fig5) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--quick", action="store_true",
        help="small datasets and sweeps (minutes instead of an hour+)",
    )
    parser.add_argument(
        "--scale-factor", type=float, default=1.0,
        help="multiply every dataset's harness scale (default 1.0)",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip CPU-oracle verification of each BFS",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="also save <exp>.txt and <exp>.json under DIR",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for exp_id, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:6s} {doc}")
        return 0

    cfg = HarnessConfig(
        quick=args.quick,
        scale_factor=args.scale_factor,
        verify=not args.no_verify,
    )

    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; use --list", file=sys.stderr)
        return 2

    shared_tab3 = None
    for exp_id in ids:
        t0 = time.time()
        if exp_id == "tab3":
            result = run_tab3(cfg)
            shared_tab3 = result
        elif exp_id == "tab4":
            # reuse tab3's runs when it already executed this invocation
            result = run_tab4(cfg, tab3=shared_tab3)
        else:
            result = EXPERIMENTS[exp_id](cfg)
        print(result.text)
        print(f"\n[{exp_id} regenerated in {time.time() - t0:.1f}s]\n")
        if args.out:
            path = result.save(args.out)
            print(f"[saved {path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
