"""Command-line entry point: ``python -m repro.harness <experiment>``.

Examples
--------
List experiments::

    python -m repro.harness --list

Regenerate one artefact quickly::

    python -m repro.harness tab6 --quick

Regenerate everything at harness scale, saving text+JSON reports::

    python -m repro.harness all --out results/
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .config import HarnessConfig
from .experiments import EXPERIMENTS, run_many


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "profile":
        # profiled single runs have their own flag set; see profile.py.
        from .profile import profile_main

        return profile_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Regenerate the tables and figures of 'A Specialized "
            "Concurrent Queue for Scheduling Irregular Workloads on GPUs' "
            "(ICPP 2019) on the SIMT simulator."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=(
            "experiment id (fig1, tab1..tab6, fig3..fig5) or 'all'; "
            "or the 'profile' subcommand (see 'profile --help')"
        ),
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--quick", action="store_true",
        help="small datasets and sweeps (minutes instead of an hour+)",
    )
    parser.add_argument(
        "--scale-factor", type=float, default=1.0,
        help="multiply every dataset's harness scale (default 1.0)",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip CPU-oracle verification of each BFS",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="also save <exp>.txt and <exp>.json under DIR",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help=(
            "fan independent experiments out over N worker processes "
            "(default 1: run in-process); reports are byte-identical "
            "either way"
        ),
    )
    parser.add_argument(
        "--profile", action="store_true",
        help=(
            "attach observability probes to every launch (forces "
            "--jobs 1); reports are unchanged — probes are passive — "
            "and aggregate profile metrics land in DIR/<exp>.profile.json "
            "when --out is given"
        ),
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for exp_id, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:6s} {doc}")
        return 0

    cfg = HarnessConfig(
        quick=args.quick,
        scale_factor=args.scale_factor,
        verify=not args.no_verify,
    )

    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; use --list", file=sys.stderr)
        return 2

    t0 = time.time()
    if args.profile:
        # the probe factory is a module global in this interpreter, so
        # worker processes would run unprofiled — keep it in-process.
        from repro.obs import ProfileSession

        jobs = 1
        profiles = {}
        for exp_id in ids:
            with ProfileSession(keep_timelines=False) as session:
                results_one = run_many(cfg, [exp_id], jobs=1)
            profiles[exp_id] = [e["metrics"] for e in session.launches]
            results = results + results_one if exp_id != ids[0] else results_one
    else:
        jobs = args.jobs
        profiles = {}
        results = run_many(cfg, ids, jobs=jobs)
    for result in results:
        print(result.text)
        print(f"\n[{result.exp_id} regenerated in {result.elapsed:.1f}s]\n")
        if args.out:
            path = result.save(args.out)
            print(f"[saved {path}]")
            launches = profiles.get(result.exp_id)
            if launches is not None:
                import json
                import os

                ppath = os.path.join(args.out, f"{result.exp_id}.profile.json")
                with open(ppath, "w") as fh:
                    json.dump({"launches": launches}, fh, indent=1)
                print(f"[saved {ppath} ({len(launches)} profiled launches)]")
    if len(results) > 1:
        print(f"[{len(results)} experiments in {time.time() - t0:.1f}s "
              f"with --jobs {jobs}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
