"""``python -m repro.harness blame <workload>`` — stall attribution.

Runs one workload under a :class:`~repro.obs.blame.BlameSession` and
answers *where the cycles went and what removing each wait would buy*:

* an ASCII blame table — per stall class: observed cycles, share of all
  wavefront lifetime, cycles on the simulated-cycle critical path, and
  the causal "what-if" projection (whole-run speedup if that class were
  halved or eliminated, à la causal profiling);
* ``blame.json`` under ``--out`` (default ``results/blame``) — the full
  :class:`~repro.obs.blame.BlameSummary` artifact, consumed by
  ``tools/summarize_results.py`` and the CI blame-smoke step;
* ``trace.json`` — Perfetto timeline of the (last) launch with flow
  arrows from each unblocking store / done-flag to the wavefront it
  released; open at https://ui.perfetto.dev;
* headline ``blame.cycles.*`` / ``blame.frac.*`` metrics published to a
  :class:`~repro.obs.registry.MetricsRegistry` and recorded in the run
  ledger, so the regression sentinel gates on attribution drift.

Recording is passive: the blamed run's simulated results are
bit-identical to a bare one (pinned by ``tests/test_simt_determinism.py``).
Taxonomy, critical-path semantics, and what-if caveats: ``docs/blame.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from .profile import DEVICES, WORKLOADS, _default_workgroups, _run_workload
from .report import render_table


def _fmt_speedup(x: float) -> str:
    return f"{x:.3f}x"


def render_blame(summary, label: str, device_name: str) -> str:
    """ASCII blame table + headline lines for one merged summary."""
    from repro.obs.blame import ALL_CLASSES, COMPUTE, OTHER, STALL_CLASSES

    lines: List[str] = []
    lines.append(
        f"blame {label}: device={device_name} "
        f"makespan={summary.end_cycles:.0f} cycles "
        f"wavefronts={summary.n_wavefronts} launches={summary.launches}"
    )

    rows = []
    for cls in ALL_CLASSES:
        cyc = summary.cycles.get(cls, 0.0)
        if cyc <= 0 and cls not in (COMPUTE,):
            continue
        proj = summary.projections.get(cls, {})
        rows.append(
            [
                cls,
                f"{cyc:.0f}",
                f"{summary.fraction(cls):.1%}",
                f"{summary.critical.get(cls, 0.0):.0f}",
                _fmt_speedup(summary.speedup(cls, "half")) if proj else "-",
                _fmt_speedup(summary.speedup(cls, "zero")) if proj else "-",
            ]
        )
    lines.append("")
    lines.append(
        render_table(
            ["class", "cycles", "share", "critical", "what-if x0.5",
             "what-if x0"],
            rows,
            title="stall attribution (share of total wavefront lifetime; "
            "what-if = projected whole-run speedup)",
        )
    )

    # coverage: the tiling is exact, so stall classes account for all
    # non-compute lifetime except the explicit residual bucket.
    compute = summary.cycles.get(COMPUTE, 0.0)
    noncompute = summary.wf_cycles - compute
    stalls = sum(summary.cycles.get(c, 0.0) for c in STALL_CLASSES)
    if noncompute > 0:
        lines.append(
            f"stall coverage: {stalls / noncompute:.2%} of "
            f"{noncompute:.0f} non-compute cycles "
            f"(residual '{OTHER}': {summary.cycles.get(OTHER, 0.0):.0f})"
        )

    # per-queue detail for classes that carry one
    det_rows = []
    for cls in STALL_CLASSES:
        for detail, cyc in sorted(
            summary.by_detail.get(cls, {}).items(), key=lambda kv: -kv[1]
        ):
            if detail and cyc > 0:
                det_rows.append([cls, detail, f"{cyc:.0f}"])
    if det_rows:
        lines.append("")
        lines.append(
            render_table(
                ["class", "queue", "cycles"],
                det_rows,
                title="per-queue detail",
            )
        )

    # headline: what would help most
    best = None
    for cls in STALL_CLASSES:
        if cls in summary.projections:
            s = summary.speedup(cls, "half")
            if best is None or s > best[1]:
                best = (cls, s)
    if best is not None:
        lines.append(
            f"headline: halving '{best[0]}' projects a "
            f"{_fmt_speedup(best[1])} whole-run speedup"
        )
    return "\n".join(lines)


def blame_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness blame",
        description=(
            "Attribute one workload run's cycles to stall classes, "
            "extract the critical path, and project causal what-if "
            "speedups (see docs/blame.md)."
        ),
    )
    parser.add_argument("workload", choices=WORKLOADS)
    parser.add_argument(
        "--device", choices=sorted(DEVICES), default="fiji",
        help="simulated device (default fiji)",
    )
    parser.add_argument(
        "--variant", default="RF/AN",
        help="queue variant: BASE, AN, RF/AN, NAIVE (default RF/AN)",
    )
    parser.add_argument(
        "--dataset", default="USA-road-d.NY",
        help="graph dataset for bfs/sssp (default USA-road-d.NY)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.125,
        help="dataset scale relative to paper size (default 0.125)",
    )
    parser.add_argument("--source", type=int, default=0, help="source vertex")
    parser.add_argument(
        "--workgroups", type=int, default=None,
        help="launched workgroups (default: 56 fiji / 16 spectre / 4 testgpu)",
    )
    parser.add_argument(
        "--nqueens-n", type=int, default=6, help="board size for nqueens"
    )
    parser.add_argument(
        "--max-events", type=int, default=2_000_000,
        help="per-launch event cap before the recording truncates",
    )
    parser.add_argument(
        "--no-whatif", action="store_true",
        help="skip the what-if replay projections (faster)",
    )
    parser.add_argument(
        "--no-trace", action="store_true",
        help="skip the Perfetto trace export",
    )
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="skip recording this run in the run ledger",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny run (scale 0.02, few workgroups) for smoke tests",
    )
    parser.add_argument("--no-verify", action="store_true")
    parser.add_argument(
        "--out", default="results/blame", metavar="DIR",
        help="output directory (default results/blame)",
    )
    args = parser.parse_args(argv)

    from repro.obs import write_trace
    from repro.obs.blame import BlameSession, publish_blame
    from repro.obs.registry import MetricsRegistry

    device = DEVICES[args.device]
    if args.quick:
        args.scale = min(args.scale, 0.02)
        if args.workgroups is None:
            args.workgroups = 2 if device.name.lower() == "testgpu" else 4
        args.nqueens_n = min(args.nqueens_n, 5)
    if args.workgroups is None:
        args.workgroups = _default_workgroups(device)

    t0 = time.time()
    session = BlameSession(
        max_events=args.max_events,
        whatif=not args.no_whatif,
        keep_probes=not args.no_trace,
    )
    with session:
        cycles, stats, label = _run_workload(args, device)
    elapsed = time.time() - t0

    if not session.launches:
        print("no launches were recorded", file=sys.stderr)
        return 1

    summary = session.merged()
    os.makedirs(args.out, exist_ok=True)
    blame_path = os.path.join(args.out, "blame.json")
    with open(blame_path, "w") as fh:
        json.dump(
            {
                "workload": label,
                "device": device.name,
                "variant": args.variant,
                "sim_cycles": int(cycles),
                "wall_seconds": round(elapsed, 3),
                "blame": summary.to_json(),
                "launches": [s.to_json() for s in session.launches],
            },
            fh,
            indent=1,
        )

    trace_path = None
    if not args.no_trace and session.probes:
        # trace of the last (usually only) launch — retries replace it.
        trace_path = os.path.join(args.out, "trace.json")
        write_trace(session.probes[-1], trace_path)

    print(render_blame(summary, label, device.name))
    print()
    print(f"[wrote {blame_path}]")
    if trace_path:
        print(f"[wrote {trace_path} — open at https://ui.perfetto.dev]")

    registry = MetricsRegistry()
    publish_blame(summary, registry)
    if not args.no_ledger:
        from repro.obs.ledger import Ledger

        metrics = registry.scalars()
        metrics["sim.cycles"] = int(cycles)
        entry = Ledger().record(
            kind="blame",
            config={
                "workload": args.workload,
                "device": args.device,
                "variant": args.variant,
                "dataset": args.dataset,
                "scale": args.scale,
                "workgroups": args.workgroups,
                "nqueens_n": args.nqueens_n,
                "verify": not args.no_verify,
            },
            metrics=metrics,
            wall_seconds=elapsed,
            argv=list(argv) if argv is not None else [],
            notes=f"blame {label}",
        )
        print(f"[ledger: recorded run {entry['run_id']}]", file=sys.stderr)
    return 0
