"""Harness configuration: devices, workgroup counts, dataset scales.

The harness reproduces each table/figure at the paper's launch geometry
(Fiji: 224 workgroups, Spectre: 32) on generated stand-in datasets at the
registry's default scales.  ``quick=True`` shrinks datasets and sweeps so
the whole suite runs in minutes — it is what the pytest benchmarks use —
while preserving every qualitative shape the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graphs import CSRGraph, dataset
from repro.simt import FIJI, SPECTRE, DeviceSpec, paper_workgroups

#: queue variants in the paper's column order.
VARIANTS = ("BASE", "AN", "RF/AN")


@dataclass
class HarnessConfig:
    """Knobs shared by all experiments."""

    #: shrink everything for CI / pytest-benchmark runs.
    quick: bool = False
    #: multiply every dataset's default scale (1.0 = registry default;
    #: pass the reciprocal of the registry scale to approximate paper
    #: size, given a lot of patience).
    scale_factor: float = 1.0
    #: verify every BFS result against the CPU oracle (cheap vs the sim).
    verify: bool = True
    #: cap simulated cycles per run (guards runaway configs).
    max_cycles: int = 20_000_000_000

    def device_configs(self) -> List[Tuple[DeviceSpec, int]]:
        """(device, workgroups) pairs in paper order."""
        if self.quick:
            return [(FIJI, 56), (SPECTRE, 16)]
        return [(FIJI, paper_workgroups(FIJI)), (SPECTRE, paper_workgroups(SPECTRE))]

    def wg_sweep(self, device: DeviceSpec) -> List[int]:
        """Workgroup counts for the scalability sweeps (Figures 1, 4, 5)."""
        top = paper_workgroups(device)
        if self.quick:
            top = min(top, 56 if device.n_cus > 8 else 16)
            pts = [1, 16]
        else:
            pts = [1, 2, 4, 8, 16, 32, 64, 128, 224]
        return [p for p in pts if p < top] + [top]

    def build(self, name: str, extra_factor: float = 1.0) -> CSRGraph:
        """Build a dataset at its harness scale."""
        spec = dataset(name)
        quick_factor = 0.125 if self.quick else 1.0
        return spec.build(
            spec.default_scale * self.scale_factor * extra_factor * quick_factor
        )

    def source(self, name: str) -> int:
        return dataset(name).source
