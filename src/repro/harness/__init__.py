"""Experiment harness: regenerates every table and figure of the paper.

Use from Python::

    from repro.harness import HarnessConfig, EXPERIMENTS
    result = EXPERIMENTS["tab6"](HarnessConfig(quick=True))
    print(result.text)

or from the shell::

    python -m repro.harness --list
    python -m repro.harness tab3 --quick
"""

from .config import VARIANTS, HarnessConfig
from .experiments import (
    EXPERIMENTS,
    run_fig1,
    run_fig3,
    run_fig4,
    run_fig5,
    run_tab1,
    run_tab2,
    run_tab3,
    run_tab4,
    run_tab5,
    run_tab6,
)
from .results import ExperimentResult

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "HarnessConfig",
    "VARIANTS",
    "run_fig1",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_tab1",
    "run_tab2",
    "run_tab3",
    "run_tab4",
    "run_tab5",
    "run_tab6",
]
