"""Structured experiment results: text report + JSON-serializable data."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    #: paper artefact id, e.g. "tab3" or "fig4".
    exp_id: str
    #: human title.
    title: str
    #: the rendered text report (tables + ASCII series).
    text: str
    #: machine-readable payload (used by tab4, tests, EXPERIMENTS.md).
    data: Dict[str, Any] = field(default_factory=dict)
    #: wall-clock seconds spent regenerating this artefact.  Informational
    #: only — deliberately excluded from the saved .txt/.json so reports
    #: stay byte-identical across machines and worker counts.
    elapsed: float = 0.0

    def save(self, directory: str | Path) -> Path:
        """Write <exp_id>.txt and <exp_id>.json under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"{self.exp_id}.txt").write_text(self.text + "\n")
        path = directory / f"{self.exp_id}.json"
        path.write_text(json.dumps(self.data, indent=2, default=_coerce))
        return path

    def show(self) -> None:  # pragma: no cover - CLI convenience
        print(self.text)


def _coerce(obj: Any):
    try:
        import numpy as np

        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
    except ImportError:  # pragma: no cover
        pass
    raise TypeError(f"not JSON serializable: {type(obj)}")
