"""``python -m repro.harness capacity <workload>`` — capacity advisor.

Replays one workload under a passive
:class:`~repro.obs.session.ProfileSession`, collects every queue's
depth-at-publish fill histogram (``fill_hist`` in
:func:`repro.obs.metrics.compute_metrics`), and recommends a buffer size
plus an overflow mode per queue:

* ``abort`` — a bare fixed-capacity variant is safe: the recommended
  capacity covers peak *demand* (highest raw index, the binding limit
  for monotonic buffers) times the safety factor, within budget;
* ``spill`` — circular reuse keeps steady-state *occupancy* far below
  demand, so a modest ring plus host-side backpressure
  (:class:`repro.core.SpillQueue`) fits the budget; the projected
  per-publish spill probability at the recommended ring is reported;
* ``grow`` — demand exceeds the slot budget and occupancy tracks demand
  (circular reuse would not help), so chain segments on demand
  (:class:`repro.core.GrowQueue`) with a pool sized to observed
  occupancy and ``max_segments`` sized to demand.

The §4.2 resident-lane constraint threads through every ring
projection: each lane can hold a reserved-but-unpublished slot mid-AFA,
so a circular ring's usable slack is ``capacity - resident_lanes`` and
overflow probabilities are computed against that, not raw capacity.

Output: an ASCII advisor table plus ``capacity.json`` under ``--out``
(default ``results/capacity``) — the CI capacity-smoke artifact.
``--from-metrics FILE`` skips the replay and advises from a saved
``metrics.json`` (as written by ``repro-harness profile``), so the
advisor is usable on archived runs without re-simulating.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from .profile import DEVICES, WORKLOADS, _default_workgroups, _run_workload
from .report import render_table

SCHEMA = "repro.harness.capacity/v1"

#: below this occupancy/demand ratio a circular ring pays off: most
#: slots are drained and reused before the peak, so SPILL beats GROW.
REUSE_SPILL_THRESHOLD = 0.5


def _pow2_ceil(n: int) -> int:
    n = max(int(n), 1)
    return 1 << (n - 1).bit_length()


def _hist_samples(hist: Optional[dict]) -> np.ndarray:
    """Reconstruct approximate depth samples from a fill histogram.

    Bucket midpoints weighted by counts — coarse, but the advisor only
    needs tail fractions and quantiles, and this keeps it able to run
    from the JSON artifact alone (no raw sample arrays persisted).
    """
    if not hist or not hist.get("counts"):
        return np.zeros(0, dtype=np.float64)
    edges = np.asarray(hist["edges"], dtype=np.float64)
    counts = np.asarray(hist["counts"], dtype=np.int64)
    mids = (edges[:-1] + edges[1:]) / 2.0
    return np.repeat(mids, counts)


def _tail_probability(samples: np.ndarray, threshold: float) -> float:
    """Fraction of fill samples at or beyond *threshold* slots."""
    if samples.size == 0:
        return 0.0
    return float(np.count_nonzero(samples >= threshold)) / float(samples.size)


def aggregate_queues(launches: List[dict]) -> Dict[str, dict]:
    """Merge per-launch queue metrics into one record per prefix."""
    agg: Dict[str, dict] = {}
    for m in launches:
        lanes = int(m.get("n_wavefronts", 0)) * int(
            m.get("wavefront_size", 0) or 0
        )
        for prefix, q in (m.get("queues") or {}).items():
            a = agg.setdefault(
                prefix,
                {
                    "variant": q.get("variant", "?"),
                    "capacity": 0,
                    "highwater": 0,
                    "demand": 0,
                    "lanes": 0,
                    "launches": 0,
                    "samples": [],
                    "grow": None,
                    "spill": None,
                },
            )
            a["capacity"] = max(a["capacity"], int(q.get("capacity", 0)))
            a["highwater"] = max(a["highwater"], int(q.get("highwater", 0)))
            a["demand"] = max(a["demand"], int(q.get("max_raw_index", 0)))
            a["lanes"] = max(a["lanes"], lanes)
            a["launches"] += 1
            a["samples"].append(_hist_samples(q.get("fill_hist")))
            for key in ("grow", "spill"):
                if q.get(key):
                    a[key] = q[key]
    for a in agg.values():
        a["samples"] = (
            np.concatenate(a["samples"]) if a["samples"]
            else np.zeros(0, dtype=np.float64)
        )
    return agg


def advise_queue(
    prefix: str, agg: dict, budget: int, safety: float
) -> dict:
    """One queue's recommendation from its aggregated fill telemetry."""
    occ = int(agg["highwater"])
    demand = int(agg["demand"])
    lanes = int(agg["lanes"])
    samples: np.ndarray = agg["samples"]
    margin = lanes  # §4.2: every lane may hold an unpublished reservation

    safe_abort = _pow2_ceil(math.ceil(max(demand, 1) * safety))
    safe_ring = _pow2_ceil(math.ceil(max(occ, 1) * safety) + margin)
    reuse = (occ / demand) if demand else 1.0

    # projected overflow probability ladder: per-publish probability the
    # ring's usable slack (capacity - resident lanes) is already full.
    ladder = sorted(
        {
            c
            for c in (
                safe_ring // 2, safe_ring, safe_ring * 2,
                safe_abort, _pow2_ceil(budget),
            )
            if c >= max(margin + 1, 2)
        }
    )
    overflow = {
        str(c): round(_tail_probability(samples, c - margin), 6)
        for c in ladder
    }

    if safe_abort <= budget:
        mode = "abort"
        params = {"capacity": safe_abort}
        p_over = 0.0  # demand fits: a monotonic buffer cannot overflow
        rationale = (
            f"peak demand {demand} x safety {safety:g} fits the "
            f"{budget}-slot budget; a bare variant at {safe_abort} "
            f"slots cannot overflow"
        )
    elif reuse < REUSE_SPILL_THRESHOLD and safe_ring <= budget:
        mode = "spill"
        usable = safe_ring - margin
        high = max(2, usable * 3 // 5)
        low = max(1, high * 2 // 3)
        params = {
            "capacity": safe_ring,
            "spill_capacity": _pow2_ceil(max(64, demand - occ)),
            "high_water": high,
            "low_water": low,
        }
        p_over = _tail_probability(samples, safe_ring - margin)
        rationale = (
            f"occupancy {occ} is {reuse:.0%} of demand {demand}: "
            f"circular reuse works, so a {safe_ring}-slot ring with "
            f"host backpressure covers it "
            f"(projected spill probability {p_over:.2%}/publish)"
        )
    else:
        mode = "grow"
        seg_cap = _pow2_ceil(max(occ // 2, lanes, 8))
        pool = max(2, -(-math.ceil(occ * safety) // seg_cap) + 1)
        max_segments = max(pool + 1, -(-math.ceil(demand * safety) // seg_cap))
        params = {
            "capacity": seg_cap * pool,
            "seg_cap": seg_cap,
            "pool_segments": pool,
            "max_segments": max_segments,
        }
        p_over = 0.0  # bounded by max_segments, sized to observed demand
        why = (
            f"occupancy tracks demand ({reuse:.0%})"
            if reuse >= REUSE_SPILL_THRESHOLD
            else f"even a {safe_ring}-slot ring (occupancy + resident "
            f"lanes) exceeds it"
        )
        rationale = (
            f"demand {demand} x safety {safety:g} exceeds the "
            f"{budget}-slot budget and {why}: chain segments on demand "
            f"({pool} x {seg_cap} resident, up to {max_segments} logical)"
        )

    quant = {}
    if samples.size:
        quant = {
            "p50": float(np.percentile(samples, 50)),
            "p95": float(np.percentile(samples, 95)),
            "max": float(samples.max()),
        }
    return {
        "queue": prefix,
        "variant": agg["variant"],
        "observed": {
            "capacity": agg["capacity"],
            "highwater": occ,
            "demand": demand,
            "resident_lanes": lanes,
            "launches": agg["launches"],
            "fill_samples": int(samples.size),
            "fill_quantiles": quant,
            "grow": agg["grow"],
            "spill": agg["spill"],
        },
        "mode": mode,
        "recommended": params,
        "projected_overflow_probability": round(float(p_over), 6),
        "overflow_probability_by_capacity": overflow,
        "rationale": rationale,
    }


def render_advice(advice: List[dict], label: str, budget: int,
                  safety: float) -> str:
    lines: List[str] = []
    lines.append(
        f"capacity advisor {label}: budget={budget} slots "
        f"safety={safety:g}x"
    )
    rows = []
    for a in advice:
        obs = a["observed"]
        rows.append(
            [
                a["queue"],
                a["variant"],
                obs["highwater"],
                obs["demand"],
                obs["resident_lanes"],
                a["mode"],
                a["recommended"].get("capacity", "-"),
                f"{a['projected_overflow_probability']:.2%}",
            ]
        )
    lines.append("")
    lines.append(
        render_table(
            ["queue", "variant", "hiwater", "demand", "lanes", "mode",
             "rec.cap", "p(overflow)"],
            rows,
            title="per-queue recommendation (demand = peak raw index; "
            "ring slack excludes resident lanes, §4.2)",
        )
    )
    for a in advice:
        lines.append(f"{a['queue']}: {a['rationale']}")
        extra = {
            k: v for k, v in a["recommended"].items() if k != "capacity"
        }
        if extra:
            lines.append(
                "  params: "
                + " ".join(f"{k}={v}" for k, v in sorted(extra.items()))
            )
    return "\n".join(lines)


def capacity_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness capacity",
        description=(
            "Replay one workload, collect per-queue fill histograms, and "
            "recommend buffer sizes plus an overflow mode "
            "(abort / grow / spill) with projected overflow probability "
            "(see docs/capacity.md)."
        ),
    )
    parser.add_argument("workload", choices=WORKLOADS, nargs="?")
    parser.add_argument(
        "--from-metrics", default=None, metavar="FILE",
        help="advise from a saved profile metrics.json instead of replaying",
    )
    parser.add_argument(
        "--device", choices=sorted(DEVICES), default="fiji",
        help="simulated device (default fiji)",
    )
    parser.add_argument(
        "--variant", default="RF/AN",
        help="queue variant to replay under (default RF/AN)",
    )
    parser.add_argument(
        "--dataset", default="USA-road-d.NY",
        help="graph dataset for bfs/sssp (default USA-road-d.NY)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.125,
        help="dataset scale relative to paper size (default 0.125)",
    )
    parser.add_argument("--source", type=int, default=0, help="source vertex")
    parser.add_argument(
        "--workgroups", type=int, default=None,
        help="launched workgroups (default: 56 fiji / 16 spectre / 4 testgpu)",
    )
    parser.add_argument(
        "--nqueens-n", type=int, default=6, help="board size for nqueens"
    )
    parser.add_argument(
        "--budget", type=int, default=4096,
        help="device-buffer slot budget per queue (default 4096)",
    )
    parser.add_argument(
        "--safety", type=float, default=1.5,
        help="sizing safety factor over observed peaks (default 1.5)",
    )
    parser.add_argument(
        "--bins", type=int, default=60,
        help="time bins for the metric series (default 60)",
    )
    parser.add_argument(
        "--max-events", type=int, default=2_000_000,
        help="per-launch event cap before the timeline truncates",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny run (scale 0.02, few workgroups) for smoke tests",
    )
    parser.add_argument("--no-verify", action="store_true")
    parser.add_argument(
        "--out", default="results/capacity", metavar="DIR",
        help="output directory (default results/capacity)",
    )
    args = parser.parse_args(argv)

    if args.budget < 2:
        print("--budget must be at least 2 slots", file=sys.stderr)
        return 2
    if args.safety < 1.0:
        print("--safety below 1.0 would size under observed peaks",
              file=sys.stderr)
        return 2

    t0 = time.time()
    if args.from_metrics:
        try:
            with open(args.from_metrics, "r", encoding="utf-8") as fh:
                saved = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read metrics file {args.from_metrics}: {exc}",
                  file=sys.stderr)
            return 2
        launches = saved.get("launches") or []
        # a profile metrics.json carries a list of per-launch metric
        # dicts; anything else (e.g. a capacity.json, whose "launches"
        # is a count) is the wrong artifact for this flag.
        if not isinstance(launches, list) or not all(
            isinstance(m, dict) for m in launches
        ):
            print(
                f"{args.from_metrics} is not a profile metrics file: "
                "expected a 'launches' list of per-launch metric dicts "
                "(produced by `repro-harness profile`)",
                file=sys.stderr,
            )
            return 2
        label = saved.get("workload", args.from_metrics)
        config = {"from_metrics": args.from_metrics}
    else:
        if not args.workload:
            parser.error("a workload is required unless --from-metrics")
        from repro.obs import ProfileSession

        device = DEVICES[args.device]
        if args.quick:
            args.scale = min(args.scale, 0.02)
            if args.workgroups is None:
                args.workgroups = (
                    2 if device.name.lower() == "testgpu" else 4
                )
            args.nqueens_n = min(args.nqueens_n, 5)
        if args.workgroups is None:
            args.workgroups = _default_workgroups(device)

        session = ProfileSession(bins=args.bins, max_events=args.max_events)
        with session:
            _cycles, _stats, label = _run_workload(args, device)
        launches = [entry["metrics"] for entry in session.launches]
        config = {
            "workload": args.workload,
            "device": args.device,
            "variant": args.variant,
            "dataset": args.dataset,
            "scale": args.scale,
            "workgroups": args.workgroups,
            "nqueens_n": args.nqueens_n,
        }
    elapsed = time.time() - t0

    if not launches:
        print("no launches were recorded", file=sys.stderr)
        return 1

    agg = aggregate_queues(launches)
    if not agg:
        print("no queues were registered in the recorded launches",
              file=sys.stderr)
        return 1
    advice = [
        advise_queue(prefix, a, budget=args.budget, safety=args.safety)
        for prefix, a in sorted(agg.items())
    ]

    os.makedirs(args.out, exist_ok=True)
    out_path = os.path.join(args.out, "capacity.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "schema": SCHEMA,
                "workload": label,
                "config": config,
                "budget": args.budget,
                "safety": args.safety,
                "launches": len(launches),
                "wall_seconds": round(elapsed, 3),
                "queues": advice,
            },
            fh,
            indent=1,
        )
        fh.write("\n")

    print(render_advice(advice, label, args.budget, args.safety))
    print()
    print(f"[wrote {out_path}]")
    return 0
