"""``python -m repro.harness postmortem show|report`` — bundle viewer.

Post-mortem bundles (``postmortem-*.json``) are written by
:class:`repro.obs.flight.FlightSession` when a flight-recorded run dies
— a :class:`~repro.simt.errors.QueueFullError`, a watchdog
:class:`~repro.simt.errors.WedgeError`, or any uncaught exception.
``show`` renders one bundle in full (the newest by default); ``report``
prints a one-line summary per bundle in the directory.  Bundles are
schema-versioned and round-trip through
:func:`repro.obs.flight.load_postmortem`, so they double as replayable
failure artifacts: the embedded config (and its ledger-compatible
hash) identifies the exact run configuration to re-execute.
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
from typing import List, Optional

#: default bundle directory (the harness ``--flight`` default too).
DEFAULT_DIR = os.path.join("results", "postmortem")


def _bundles(directory: str) -> List[str]:
    return sorted(glob.glob(os.path.join(directory, "postmortem-*.json")))


def postmortem_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness postmortem",
        description="render post-mortem bundles from failed runs",
    )
    parser.add_argument("command", choices=["show", "report"])
    parser.add_argument(
        "path", nargs="?", default=None,
        help="bundle file (show) or directory (report); default: "
        f"newest bundle under {DEFAULT_DIR}",
    )
    parser.add_argument(
        "--dir", default=DEFAULT_DIR, metavar="DIR",
        help=f"bundle directory (default {DEFAULT_DIR})",
    )
    args = parser.parse_args(argv)

    from repro.obs.flight import load_postmortem, render_postmortem

    if args.command == "show":
        path = args.path
        if path is None:
            found = _bundles(args.dir)
            if not found:
                print(
                    f"postmortem: no bundles under {args.dir}",
                    file=sys.stderr,
                )
                return 1
            path = found[-1]
        try:
            bundle = load_postmortem(path)
        except (OSError, ValueError) as exc:
            print(f"postmortem: {exc}", file=sys.stderr)
            return 1
        print(render_postmortem(bundle))
        return 0

    # report: one line per bundle
    directory = args.path or args.dir
    found = _bundles(directory)
    if not found:
        print(f"postmortem: no bundles under {directory}", file=sys.stderr)
        return 1
    for path in found:
        try:
            bundle = load_postmortem(path)
        except (OSError, ValueError) as exc:
            print(f"{os.path.basename(path)}: unreadable ({exc})")
            continue
        err = bundle.get("error") or {}
        flight = bundle.get("flight") or {}
        bits = [
            os.path.basename(path),
            err.get("type", "no-error"),
        ]
        qf = err.get("queue_full")
        if qf:
            bits.append(
                f"queue={qf.get('queue')} "
                f"fill={qf.get('fill')}/{qf.get('capacity')}"
            )
        if err.get("classification"):
            bits.append(f"class={err['classification']}")
        if flight:
            bits.append(f"cycle={flight.get('cycle')}")
            bits.append(f"live={flight.get('live_wavefronts')}")
        print("  ".join(str(b) for b in bits))
    return 0
