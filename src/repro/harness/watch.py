"""``python -m repro.harness watch <run.jsonl>`` — live run dashboard.

Tails a runlog JSONL file (written by ``--run-log``, enriched with
``snapshot`` telemetry events when ``--flight`` is on) and redraws an
in-terminal dashboard: run status, group progress bar, per-queue fill
bars, steal/delivery totals, blame top-3 stall classes, and recent
watchdog/warning lines (:func:`repro.obs.live.render_dashboard`).

The file is re-read in full on each tick — runlogs are single-run and
small, and re-reading keeps the tailer robust against rotation and
concurrent ``--jobs N`` writers.  ``--once`` renders a single frame
and exits (the CI smoke mode); without it, watching stops when the log
records ``run_finished`` or ``abort``, or on Ctrl-C.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional


def watch_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness watch",
        description="tail a runlog JSONL into an in-terminal dashboard",
    )
    parser.add_argument("run", help="path to the runlog JSONL (--run-log)")
    parser.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="seconds between redraws (default 1.0)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="render one frame and exit (CI smoke mode)",
    )
    parser.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen",
    )
    args = parser.parse_args(argv)

    from repro.obs.live import render_dashboard
    from repro.obs.runlog import read_runlog

    def frame():
        events = read_runlog(args.run) if os.path.exists(args.run) else []
        return render_dashboard(events), events

    if args.once:
        if not os.path.exists(args.run):
            print(f"watch: no runlog at {args.run}", file=sys.stderr)
            return 1
        text, _ = frame()
        print(text)
        return 0

    try:
        while True:
            text, events = frame()
            if not args.no_clear:
                # ANSI clear + home; degrades to noise-free scrollback
                # when piped (watch --no-clear is the pipe-safe mode).
                sys.stdout.write("\x1b[2J\x1b[H")
            print(text, flush=True)
            terminal = {"run_finished", "abort"}
            if any(ev.get("event") in terminal for ev in events):
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
