"""``python -m repro.harness profile <workload>`` — profiled single runs.

Runs one workload under a :class:`~repro.obs.session.ProfileSession` and
writes, under ``--out`` (default ``results/profile``):

* ``trace.json``   — Chrome/Perfetto ``trace_event`` timeline of the
  (last) launch; open at https://ui.perfetto.dev;
* ``metrics.json`` — time-binned series + histogram summaries from
  :func:`repro.obs.metrics.compute_metrics` (one entry per launch);

and prints a terminal summary: per-queue contention table, ASCII
utilization/parallelism charts (reusing :mod:`repro.harness.report`),
and an engine execution-path breakdown — vector / elided / scalar-
fallback completion counts plus host wall-clock attributed per op class
(:data:`repro.simt.engine.EXEC_TIMES`) — so hot-path regressions are
attributable to the op class that slowed down.

Probing is passive, so the profiled run's result (costs, SimStats,
simulated cycles) is bit-identical to an unprofiled one — pinned by
``tests/test_simt_determinism.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.graphs import load_dataset
from repro.simt import FIJI, SPECTRE, TESTGPU, paper_workgroups

from .report import ascii_chart, render_table

DEVICES = {"fiji": FIJI, "spectre": SPECTRE, "testgpu": TESTGPU}
WORKLOADS = ("bfs", "sssp", "nqueens")


def _default_workgroups(device) -> int:
    if device.name.lower() == "testgpu":
        return 4
    return 56 if device.n_cus > 8 else 16


def _run_workload(args, device):
    """Run the selected workload once (probes attach via the session)."""
    if args.workload == "bfs":
        from repro.bfs.persistent import run_persistent_bfs

        graph = load_dataset(args.dataset, scale=args.scale)
        run = run_persistent_bfs(
            graph,
            args.source,
            args.variant,
            device,
            args.workgroups,
            verify=not args.no_verify,
        )
        return run.cycles, run.stats, f"bfs/{graph.name}"
    if args.workload == "sssp":
        from repro.workloads.sssp import random_weights, run_sssp

        graph = load_dataset(args.dataset, scale=args.scale)
        weights = random_weights(graph)
        res = run_sssp(
            graph,
            weights,
            args.source,
            args.variant,
            device,
            args.workgroups,
            verify=not args.no_verify,
        )
        return res.cycles, res.stats, f"sssp/{graph.name}"
    from repro.workloads.nqueens import run_nqueens

    res = run_nqueens(
        args.nqueens_n,
        args.variant,
        device,
        args.workgroups,
        verify=not args.no_verify,
    )
    return res.cycles, res.stats, f"nqueens/n={args.nqueens_n}"


def _exec_breakdown_text(counts: dict, times: dict, elapsed: float) -> str:
    """Render the engine execution-path breakdown (vector vs scalar).

    ``counts``/``times`` are snapshots of
    :data:`repro.simt.engine.EXEC_COUNTS` / ``EXEC_TIMES`` taken around
    the profiled run; times are host wall-clock, so this is the one
    profile section about *our* speed rather than the simulated GPU's.
    """
    lines: List[str] = []
    reads = counts.get("reads_vector", 0) + counts.get("reads_elided", 0)
    scalar = counts.get("reads_scalar", 0) + counts.get("writes_scalar", 0)
    lines.append(
        "engine execution paths: "
        f"reads vector={counts.get('reads_vector', 0)} "
        f"elided={counts.get('reads_elided', 0)} "
        f"scalar={counts.get('reads_scalar', 0)}  "
        f"writes vector={counts.get('writes_vector', 0)} "
        f"scalar={counts.get('writes_scalar', 0)}"
    )
    total_mem = reads + counts.get("writes_vector", 0) + scalar
    if total_mem:
        lines.append(
            f"scalar-fallback share: {scalar / total_mem:.1%} of "
            f"{total_mem} memory-op completions"
        )
    atomics = {
        k.replace("atomics_", ""): v
        for k, v in counts.items()
        if k.startswith("atomics_")
    }
    if any(atomics.values()):
        total_at = sum(atomics.values())
        lines.append(
            "atomic service shapes: "
            + "  ".join(f"{k}={v}" for k, v in atomics.items())
            + f"  (general per-lane walk: "
            f"{atomics.get('general', 0) / total_at:.1%})"
        )
    timed = sum(times.values())
    if times:
        rows = [
            [cls, f"{secs:.3f}", f"{100.0 * secs / timed:.1f}%"]
            for cls, secs in sorted(times.items(), key=lambda kv: -kv[1])
        ]
        rows.append(["(untimed)", f"{max(elapsed - timed, 0.0):.3f}", "-"])
        lines.append("")
        lines.append(
            render_table(
                ["op class", "host seconds", "share"],
                rows,
                title="host wall-clock per op class (event + resumed kernel)",
            )
        )
    return "\n".join(lines)


def _summary_text(metrics: dict, label: str, elapsed: float) -> str:
    """Terminal rendering of one launch's metrics."""
    lines: List[str] = []
    eng = metrics["engine"]
    lines.append(
        f"profiled {label}: device={metrics['device']} "
        f"cycles={metrics['cycles']} wavefronts={metrics['n_wavefronts']} "
        f"({elapsed:.1f}s wall)"
    )
    if metrics["truncated"]:
        lines.append("[warning: event cap hit; timeline truncated]")

    # op mix ------------------------------------------------------------
    mix = sorted(eng["op_mix"].items(), key=lambda kv: -kv[1])
    lines.append(
        "op mix: " + "  ".join(f"{k}={v}" for k, v in mix)
        if mix
        else "op mix: (no issues recorded)"
    )

    # utilization chart --------------------------------------------------
    bins = metrics["bins"]
    x = [i * metrics["bin_cycles"] for i in range(bins)]
    series = {"cu occupancy": eng["occupancy"]}
    if any(metrics["atomics"]["busy_frac"]):
        series["atomic busy"] = metrics["atomics"]["busy_frac"]
    lines.append("")
    lines.append(
        ascii_chart(
            series,
            x,
            title="utilization over simulated time (fraction, by bin)",
        )
    )

    par = metrics["scheduler"]["parallelism"]
    if any(par):
        lines.append("")
        lines.append(
            ascii_chart(
                {"task tokens": par},
                x,
                title=(
                    "wavefront parallelism (lanes holding task tokens, "
                    f"peak={metrics['scheduler']['peak_parallelism']})"
                ),
            )
        )

    # queue table --------------------------------------------------------
    if metrics["queues"]:
        rows = []
        for prefix, q in metrics["queues"].items():
            wait = q["dna_wait"] or {}
            prox = q["proxy"].get("acquire") or {}
            rows.append(
                [
                    prefix,
                    q["variant"],
                    q["capacity"],
                    q["max_raw_index"],
                    f"{q['fill_frac']:.3f}",
                    int(wait.get("count", 0)),
                    f"{wait.get('mean', 0.0):.0f}",
                    f"{wait.get('p95', 0.0):.0f}",
                    f"{prox.get('mean', 0.0):.2f}",
                    q["starved_watches"],
                ]
            )
        lines.append("")
        lines.append(
            render_table(
                [
                    "queue",
                    "variant",
                    "capacity",
                    "hiwater",
                    "fill",
                    "grants",
                    "wait.mean",
                    "wait.p95",
                    "lanes/afa",
                    "starved",
                ],
                rows,
                title="queue contention (waits in cycles from watch to grant)",
            )
        )
        for prefix, q in metrics["queues"].items():
            if q["instants"]:
                ev = "  ".join(f"{k}={v}" for k, v in q["instants"].items())
                lines.append(f"{prefix} events: {ev}")

    hot = metrics["atomics"]["hot_addrs"]
    if hot:
        lines.append(
            "hottest atomic addresses: "
            + "  ".join(f"#{a}x{n}" for a, n in hot[:5])
        )
    return "\n".join(lines)


def profile_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness profile",
        description=(
            "Profile one workload run: Perfetto trace + binned metrics + "
            "terminal utilization charts."
        ),
    )
    parser.add_argument("workload", choices=WORKLOADS)
    parser.add_argument(
        "--device", choices=sorted(DEVICES), default="fiji",
        help="simulated device (default fiji)",
    )
    parser.add_argument(
        "--variant", default="RF/AN",
        help="queue variant: BASE, AN, RF/AN, NAIVE (default RF/AN)",
    )
    parser.add_argument(
        "--dataset", default="USA-road-d.NY",
        help="graph dataset for bfs/sssp (default USA-road-d.NY)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.125,
        help="dataset scale relative to paper size (default 0.125)",
    )
    parser.add_argument("--source", type=int, default=0, help="source vertex")
    parser.add_argument(
        "--workgroups", type=int, default=None,
        help="launched workgroups (default: 56 fiji / 16 spectre / 4 testgpu)",
    )
    parser.add_argument(
        "--nqueens-n", type=int, default=6, help="board size for nqueens"
    )
    parser.add_argument(
        "--bins", type=int, default=60,
        help="time bins for the metric series (default 60)",
    )
    parser.add_argument(
        "--max-events", type=int, default=2_000_000,
        help="per-launch event cap before the timeline truncates",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny run (scale 0.02, few workgroups) for smoke tests",
    )
    parser.add_argument("--no-verify", action="store_true")
    parser.add_argument(
        "--out", default="results/profile", metavar="DIR",
        help="output directory (default results/profile)",
    )
    args = parser.parse_args(argv)

    from repro.obs import ProfileSession, write_trace

    device = DEVICES[args.device]
    if args.quick:
        args.scale = min(args.scale, 0.02)
        if args.workgroups is None:
            args.workgroups = 2 if device.name.lower() == "testgpu" else 4
        args.nqueens_n = min(args.nqueens_n, 5)
    if args.workgroups is None:
        args.workgroups = _default_workgroups(device)

    from repro.simt import atomics as simt_atomics
    from repro.simt import engine as simt_engine

    t0 = time.time()
    session = ProfileSession(bins=args.bins, max_events=args.max_events)
    # attribute host time per op class while profiled (the breakdown is
    # host-side bookkeeping only: simulated results stay bit-identical).
    simt_engine.reset_exec_counts()
    simt_atomics.reset_path_counts()
    simt_engine.EXEC_TIMING = True
    try:
        with session:
            cycles, stats, label = _run_workload(args, device)
    finally:
        simt_engine.EXEC_TIMING = False
    exec_counts = dict(simt_engine.EXEC_COUNTS)
    exec_counts.update(simt_atomics.PATH_COUNTS)
    exec_times = {k: round(v, 6) for k, v in simt_engine.EXEC_TIMES.items()}
    elapsed = time.time() - t0

    if not session.launches:
        print("no launches were recorded", file=sys.stderr)
        return 1

    os.makedirs(args.out, exist_ok=True)
    all_metrics = [entry["metrics"] for entry in session.launches]
    metrics_path = os.path.join(args.out, "metrics.json")
    with open(metrics_path, "w") as fh:
        json.dump(
            {
                "workload": label,
                "launches": all_metrics,
                "exec_paths": {"counts": exec_counts, "seconds": exec_times},
            },
            fh,
            indent=1,
        )
    # trace of the last (usually only) launch — retries replace it.
    trace_path = os.path.join(args.out, "trace.json")
    write_trace(session.launches[-1]["timeline"], trace_path)

    print(_summary_text(all_metrics[-1], label, elapsed))
    print()
    print(_exec_breakdown_text(exec_counts, exec_times, elapsed))
    print()
    print(f"[wrote {trace_path} — open at https://ui.perfetto.dev]")
    print(f"[wrote {metrics_path}]")
    return 0
