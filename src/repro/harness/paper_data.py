"""The paper's published numbers, transcribed for side-by-side reports.

Sources: Tables 1-6 of Troendle, Ta & Jang (ICPP 2019).  All execution
times are seconds unless noted.  EXPERIMENTS.md compares these against
the simulator's measurements.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Table 1 — SNAP social datasets: (vertices, edges, min, max, avg, std).
PAPER_TABLE1: Dict[str, Tuple[int, int, int, int, float, float]] = {
    "gplus_combined": (107_614, 30_494_866, 0, 49_041, 283.4, 1_245.18),
    "soc-LiveJournal1": (4_847_571, 68_993_773, 0, 20_293, 14.2, 36.08),
}

#: Table 2 — DIMACS roadmaps: (vertices, edges, min, max, avg, std).
#: (The paper prints LKS's vertex count as "2,758,12", a typo for the
#: DIMACS-published 2,758,119.)
PAPER_TABLE2: Dict[str, Tuple[int, int, int, int, float, float]] = {
    "USA-road-d.NY": (264_346, 733_846, 1, 8, 2.8, 0.98),
    "USA-road-d.LKS": (2_758_119, 6_885_658, 1, 8, 2.5, 0.95),
    "USA-road-d.USA": (23_947_347, 58_333_344, 1, 9, 2.4, 0.95),
}

#: Table 3 — kernel execution times in seconds:
#: (device, dataset) -> {variant: seconds}.  Fiji runs 224 WGs, Spectre 32.
PAPER_TABLE3: Dict[Tuple[str, str], Dict[str, float]] = {
    ("Fiji", "Synthetic"): {"BASE": 0.09760, "AN": 0.06777, "RF/AN": 0.00865},
    ("Fiji", "gplus_combined"): {"BASE": 0.15066, "AN": 0.15066, "RF/AN": 0.14229},
    ("Fiji", "soc-LiveJournal1"): {"BASE": 0.15778, "AN": 0.13217, "RF/AN": 0.07642},
    ("Fiji", "USA-road-d.NY"): {"BASE": 0.01056, "AN": 0.01038, "RF/AN": 0.00767},
    ("Fiji", "USA-road-d.LKS"): {"BASE": 0.07808, "AN": 0.07706, "RF/AN": 0.04172},
    ("Fiji", "USA-road-d.USA"): {"BASE": 0.28393, "AN": 0.27274, "RF/AN": 0.08829},
    ("Spectre", "Synthetic"): {"BASE": 0.12501, "AN": 0.09125, "RF/AN": 0.05957},
    ("Spectre", "gplus_combined"): {"BASE": 0.16799, "AN": 0.16736, "RF/AN": 0.16343},
    ("Spectre", "soc-LiveJournal1"): {"BASE": 0.32705, "AN": 0.32428, "RF/AN": 0.31613},
    ("Spectre", "USA-road-d.NY"): {"BASE": 0.01055, "AN": 0.01064, "RF/AN": 0.00808},
    ("Spectre", "USA-road-d.LKS"): {"BASE": 0.06764, "AN": 0.06789, "RF/AN": 0.04722},
    ("Spectre", "USA-road-d.USA"): {"BASE": 0.42379, "AN": 0.41971, "RF/AN": 0.40307},
}

#: Table 4 — improvement over BASE in percent (100% = parity):
#: (device, dataset) -> {variant: percent}.
PAPER_TABLE4: Dict[Tuple[str, str], Dict[str, float]] = {
    ("Fiji", "Synthetic"): {"AN": 144.03, "RF/AN": 1128.12},
    ("Fiji", "gplus_combined"): {"AN": 100.00, "RF/AN": 105.88},
    ("Fiji", "soc-LiveJournal1"): {"AN": 119.38, "RF/AN": 206.46},
    ("Fiji", "USA-road-d.NY"): {"AN": 101.70, "RF/AN": 137.57},
    ("Fiji", "USA-road-d.LKS"): {"AN": 101.33, "RF/AN": 187.14},
    ("Fiji", "USA-road-d.USA"): {"AN": 104.10, "RF/AN": 321.60},
    ("Spectre", "Synthetic"): {"AN": 137.00, "RF/AN": 209.86},
    ("Spectre", "gplus_combined"): {"AN": 100.37, "RF/AN": 102.79},
    ("Spectre", "soc-LiveJournal1"): {"AN": 100.85, "RF/AN": 103.45},
    ("Spectre", "USA-road-d.NY"): {"AN": 99.18, "RF/AN": 130.58},
    ("Spectre", "USA-road-d.LKS"): {"AN": 99.63, "RF/AN": 143.24},
    ("Spectre", "USA-road-d.USA"): {"AN": 100.97, "RF/AN": 105.14},
}

#: Table 5 — CHAI comparison in *milliseconds* on the integrated GPU:
#: dataset -> (CHAI ms, RF/AN ms, speedup).
PAPER_TABLE5: Dict[str, Tuple[float, float, float]] = {
    "NYR_input": (20.8015, 8.0811, 2.574),
    "USA-road-d.BAY": (20.8998, 4.9691, 4.206),
}

#: Table 6 — Rodinia comparison in *milliseconds*:
#: (dataset, device) -> (Rodinia ms, RF/AN ms, speedup).
PAPER_TABLE6: Dict[Tuple[str, str], Tuple[float, float, float]] = {
    ("graph4096", "Spectre"): (6.7436, 0.2227, 30.28),
    ("graph4096", "Fiji"): (5.9282, 0.2048, 28.95),
    ("graph65536", "Spectre"): (17.9806, 1.6257, 11.06),
    ("graph65536", "Fiji"): (13.6875, 0.3778, 36.23),
    ("graph1MW_6", "Spectre"): (111.758, 32.7679, 3.41),
    ("graph1MW_6", "Fiji"): (4.4950, 3.5640, 1.26),
}

#: Figure 5 headline: BASE needs over 60x more atomic operations than the
#: proposed queue at Fiji's maximum thread count on the synthetic dataset.
PAPER_FIG5_MAX_RETRY_RATIO = 60.0

#: §6.4 headline speedups: min and max over both baseline suites.
PAPER_MIN_SPEEDUP = 1.26
PAPER_MAX_SPEEDUP = 36.23
