"""The ``runs`` subcommand: query the run ledger.

::

    python -m repro.harness runs list [-n N]
    python -m repro.harness runs show <ref>
    python -m repro.harness runs diff <A> <B> [--all] [--tolerance T]
    python -m repro.harness runs report [-n N]

``<ref>`` is a run id, a unique prefix, ``last``, or ``last~N``
(see :meth:`repro.obs.ledger.Ledger.load`).  ``diff`` feeds both
entries' metrics through the regression rules in
:mod:`repro.obs.regress` and exits non-zero when the newer run
regressed, so it composes with shell ``&&`` and CI steps.  ``report``
renders the last N runs with a verdict column comparing each run to
its predecessor of the same config hash — the ``make runs-report``
target.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.ledger import Ledger, LedgerError
from repro.obs.regress import (
    DEFAULT_RULES,
    Rule,
    compare,
    extract_metrics,
)
from .report import render_table


def _require_entries(ledger: Ledger) -> List[dict]:
    """Entries of a usable ledger, or raise LedgerError (one-line, exit 1).

    ``list``/``diff``/``report`` are queries over recorded history; a
    missing or empty ledger directory means there is no history to
    query — a clear one-line error and exit 1, never a traceback or a
    silent empty table.
    """
    entries = ledger.entries()
    if not entries:
        raise LedgerError(
            f"no runs recorded under {ledger.root} (record one by "
            "running the harness without --no-ledger)"
        )
    return entries


def _cmd_list(ledger: Ledger, args) -> int:
    entries = _require_entries(ledger)
    if args.n:
        entries = entries[-args.n:]
    rows = [
        [
            e.get("run_id", "?"),
            e.get("kind", "?"),
            e.get("created", "?"),
            (e.get("git_sha") or "")[:9] or "-",
            e.get("config_hash", "")[:8],
            # service-submitted runs carry the scheduler job id, so a
            # service-run and a CLI-run entry ("-") of one config are
            # distinguishable before `runs diff` compares them.
            e.get("job_id") or "-",
            f"{e.get('wall_seconds', 0):.1f}",
        ]
        for e in entries
    ]
    print(render_table(
        ["run_id", "kind", "created", "git", "config", "job", "wall_s"],
        rows,
        title=f"{len(rows)} run(s) in {ledger.root}",
    ))
    return 0


def _cmd_show(ledger: Ledger, args) -> int:
    entry = ledger.load(args.ref)
    if args.json:
        print(json.dumps(entry, indent=1, default=str))
        return 0
    for key in ("run_id", "kind", "created", "git_sha", "python",
                "platform", "seed", "job_id", "config_hash", "wall_seconds",
                "notes"):
        if entry.get(key) is not None:
            print(f"{key:13s} {entry[key]}")
    if entry.get("argv"):
        print(f"{'argv':13s} {' '.join(entry['argv'])}")
    metrics = entry.get("metrics") or {}
    if metrics:
        print(render_table(
            ["metric", "value"],
            [[k, v] for k, v in sorted(metrics.items())],
            title=f"\n{len(metrics)} headline metric(s)",
        ))
    return 0


def _diff_rules(args) -> List[Rule]:
    if args.tolerance is None:
        return list(DEFAULT_RULES)
    return [
        Rule(r.pattern, better=r.better, exact=r.exact, gate=r.gate,
             tolerance=r.tolerance if r.exact else args.tolerance)
        for r in DEFAULT_RULES
    ]


def _cmd_diff(ledger: Ledger, args) -> int:
    _require_entries(ledger)
    entry_a = ledger.load(args.a)
    entry_b = ledger.load(args.b)
    if entry_a.get("config_hash") != entry_b.get("config_hash"):
        print(
            "[warning: configs differ "
            f"({entry_a.get('config_hash', '?')[:8]} vs "
            f"{entry_b.get('config_hash', '?')[:8]}); simulated metrics "
            "are only expected to match for equal configs]",
            file=sys.stderr,
        )
    cmp = compare(
        extract_metrics(entry_a),
        extract_metrics(entry_b),
        rules=_diff_rules(args),
        label_a=entry_a.get("run_id", args.a),
        label_b=entry_b.get("run_id", args.b),
    )
    print(cmp.render(only_changed=not args.all))
    return 0 if cmp.passed else 1


def _cmd_report(ledger: Ledger, args) -> int:
    entries = _require_entries(ledger)
    window = entries[-args.n:] if args.n else entries
    # latest prior run per config hash, seeded with history before the window
    prev_by_hash = {}
    for e in entries[: len(entries) - len(window)]:
        prev_by_hash[e.get("config_hash")] = e
    rows = []
    for e in window:
        chash = e.get("config_hash")
        prev = prev_by_hash.get(chash)
        if prev is None:
            verdict = "first"
        else:
            try:
                cmp = compare(
                    extract_metrics(ledger.load(prev["run_id"])),
                    extract_metrics(ledger.load(e["run_id"])),
                )
                verdict = "ok" if cmp.passed else (
                    f"REGRESSED ({len(cmp.regressions)})"
                )
            except LedgerError:
                verdict = "?"
        prev_by_hash[chash] = e
        entry_metrics = {}
        try:
            entry_metrics = ledger.load(e["run_id"]).get("metrics") or {}
        except LedgerError:
            pass
        cycles = next(
            (entry_metrics[k] for k in sorted(entry_metrics)
             if k.endswith("cycles")), "-",
        )
        ops_sec = next(
            (entry_metrics[k] for k in sorted(entry_metrics)
             if k.endswith("ops_per_sec")), "-",
        )
        rows.append([
            e.get("run_id", "?"),
            e.get("created", "?"),
            (chash or "")[:8],
            cycles,
            ops_sec if isinstance(ops_sec, str) else f"{ops_sec:.0f}",
            f"{e.get('wall_seconds', 0):.1f}",
            verdict,
        ])
    print(render_table(
        ["run_id", "created", "config", "cycles", "ops/sec", "wall_s",
         "vs prev"],
        rows,
        title=f"last {len(rows)} run(s) in {ledger.root}",
    ))
    return 0


def runs_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness runs",
        description="Query the run ledger (results/ledger or $REPRO_LEDGER).",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="ledger directory (default: $REPRO_LEDGER or results/ledger)",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_list = sub.add_parser("list", help="list recorded runs")
    p_list.add_argument("-n", type=int, default=0, help="only the last N")

    p_show = sub.add_parser("show", help="show one run's manifest")
    p_show.add_argument("ref", help="run id, unique prefix, last, or last~N")
    p_show.add_argument("--json", action="store_true",
                        help="dump the raw entry JSON")

    p_diff = sub.add_parser(
        "diff", help="compare two runs' metrics (exit 1 on regression)")
    p_diff.add_argument("a", help="baseline run ref")
    p_diff.add_argument("b", help="candidate run ref")
    p_diff.add_argument("--all", action="store_true",
                        help="show identical metrics too")
    p_diff.add_argument(
        "--tolerance", type=float, default=None, metavar="T",
        help="override wall-clock tolerance (default 0.35)",
    )

    p_report = sub.add_parser(
        "report", help="last N runs with a verdict vs their predecessor")
    p_report.add_argument("-n", type=int, default=10,
                          help="window size (default 10)")

    args = parser.parse_args(argv)
    ledger = Ledger(args.ledger)
    try:
        if args.cmd == "list":
            return _cmd_list(ledger, args)
        if args.cmd == "show":
            return _cmd_show(ledger, args)
        if args.cmd == "diff":
            return _cmd_diff(ledger, args)
        if args.cmd == "report":
            return _cmd_report(ledger, args)
    except LedgerError as exc:
        print(f"runs: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled runs command {args.cmd!r}")
