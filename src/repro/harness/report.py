"""Plain-text rendering of tables and series (no plotting dependencies).

Every experiment prints the same *rows/series* the paper reports: tables
as aligned text, figures as per-series value lists plus a coarse ASCII
chart so trends are visible in a terminal or CI log.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table."""
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in srows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def ascii_chart(
    series: Dict[str, Sequence[float]],
    x: Sequence[object],
    width: int = 64,
    height: int = 12,
    logy: bool = False,
    title: str = "",
) -> str:
    """A coarse multi-series ASCII line chart (one glyph per series)."""
    glyphs = "*o+x#@%&"
    vals: List[float] = [
        float(v) for s in series.values() for v in s if v is not None
    ]
    if not vals:
        return f"{title}\n(no data)"
    if logy:
        vals = [math.log10(max(v, 1e-12)) for v in vals]
    lo, hi = min(vals), max(vals)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    n = max(len(xs) for xs in series.values())

    def col(i: int) -> int:
        return 0 if n <= 1 else round(i * (width - 1) / (n - 1))

    def row(v: float) -> int:
        vv = math.log10(max(v, 1e-12)) if logy else v
        frac = (vv - lo) / (hi - lo)
        return (height - 1) - round(frac * (height - 1))

    for k, (name, ys) in enumerate(series.items()):
        g = glyphs[k % len(glyphs)]
        for i, y in enumerate(ys):
            if y is None:
                continue
            grid[row(float(y))][col(i)] = g
    lines = []
    if title:
        lines.append(title)
    top = f"{(10 ** hi if logy else hi):.3g}"
    bot = f"{(10 ** lo if logy else lo):.3g}"
    for r, grow in enumerate(grid):
        label = top if r == 0 else (bot if r == height - 1 else "")
        lines.append(f"{label:>10s} |{''.join(grow)}")
    lines.append(" " * 11 + "+" + "-" * width)
    xlabels = f"x: {_fmt(x[0])} .. {_fmt(x[-1])}" if len(x) else ""
    legend = "   ".join(
        f"{glyphs[k % len(glyphs)]}={name}" for k, name in enumerate(series)
    )
    lines.append(f"{'':>11s} {xlabels}    {legend}")
    return "\n".join(lines)


def render_series(
    series: Dict[str, Sequence[float]], x: Sequence[object], title: str = ""
) -> str:
    """Exact numbers for every series point (the data behind a figure)."""
    headers = ["x"] + list(series)
    rows = []
    for i, xv in enumerate(x):
        rows.append(
            [xv] + [s[i] if i < len(s) else None for s in series.values()]
        )
    return render_table(headers, rows, title=title)
