"""repro — reproduction of Troendle, Ta & Jang, *A Specialized Concurrent
Queue for Scheduling Irregular Workloads on GPUs* (ICPP 2019).

Public API overview
-------------------

``repro.simt``
    Discrete-event SIMT GPU simulator (the hardware substrate).
``repro.core``
    The paper's contribution: the retry-free / arbitrary-n concurrent
    queue (RF/AN) plus the BASE and AN ablation variants and the
    persistent-thread task scheduler that drives them.
``repro.graphs``
    CSR graphs, dataset generators/loaders matching the paper's six inputs.
``repro.bfs``
    Top-down BFS drivers: persistent-thread (queue-backed), Rodinia-style
    level-synchronous, CHAI-style collaborative, and a CPU reference.
``repro.workloads``
    Additional irregular workloads demonstrating queue generality.
``repro.harness``
    Regenerates every table and figure of the paper's evaluation
    (``python -m repro.harness --list``).
"""

__version__ = "1.0.0"

from . import simt  # noqa: F401  (re-exported subpackage)

__all__ = ["simt", "__version__"]
