"""Dependency-driven task-DAG execution (the paper's general setting).

§2.1: "a task may depend on the completion of other task(s) before it can
be scheduled ... As a task progresses, it can clear dependencies in other
tasks.  When all dependencies for a task clear, that task can be
scheduled for execution."  This workload implements exactly that contract
on the persistent scheduler:

* a DAG of tasks with arbitrary edges and per-task compute weights lives
  in device buffers (CSR successors + an in-degree counter per task);
* executing a task atomically decrements each successor's dependency
  counter; the decrement that reaches zero *discovers* the successor and
  enqueues its token;
* initially ready tasks (in-degree zero) seed the queue.

Because every task runs exactly once and only after its predecessors, a
topological-order oracle verifies each run.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace
from typing import Generator, List, Optional, Tuple

import numpy as np

from repro.core import (
    SchedulerControl,
    WavefrontQueueState,
    WorkCycleResult,
    make_queue,
    persistent_kernel,
)
from repro.graphs import CSRGraph
from repro.simt import (
    AtomicKind,
    AtomicRMW,
    Compute,
    DeviceSpec,
    Engine,
    KernelContext,
    MemRead,
    MemWrite,
    Op,
)

BUF_SUCC_OFFSETS = "dag.offsets"
BUF_SUCC_TARGETS = "dag.targets"
BUF_DEPS = "dag.deps"
BUF_WEIGHT = "dag.weight"
BUF_ORDER = "dag.order"       # start stamp per task
BUF_STAMP = "dag.stamp"       # global start counter


def random_dag(
    n_tasks: int,
    avg_deps: float = 2.0,
    max_weight: int = 32,
    seed: int = 0,
) -> Tuple[CSRGraph, np.ndarray]:
    """A random layered DAG: edges only go to higher-numbered tasks.

    Returns the successor graph and per-task compute weights.
    """
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    rng = np.random.default_rng(seed)
    edges = []
    for v in range(n_tasks - 1):
        k = rng.poisson(avg_deps)
        if k:
            succs = rng.integers(v + 1, n_tasks, size=k)
            edges.extend((v, int(s)) for s in set(succs.tolist()))
    g = CSRGraph.from_edges(n_tasks, edges, name=f"dag{n_tasks}", dedup=True)
    weights = rng.integers(1, max_weight + 1, size=n_tasks).astype(np.int64)
    return g, weights


class TaskDagWorker:
    """Runs tasks and clears successor dependencies atomically."""

    def make_state(self, ctx: KernelContext) -> SimpleNamespace:
        wf = ctx.device.wavefront_size
        return SimpleNamespace(
            primed=np.zeros(wf, dtype=bool),
            cur=np.zeros(wf, dtype=np.int64),
            end=np.zeros(wf, dtype=np.int64),
            burned=np.zeros(wf, dtype=bool),  # compute weight charged
        )

    def work_cycle(
        self,
        ctx: KernelContext,
        ws: SimpleNamespace,
        st: WavefrontQueueState,
    ) -> Generator[Op, Op, WorkCycleResult]:
        wf = ctx.device.wavefront_size
        subtasks = int(ctx.params["subtasks_per_cycle"])

        fresh = st.has_token & ~ws.primed
        if fresh.any():
            v = st.token[fresh]
            rd = MemRead(BUF_SUCC_OFFSETS, np.concatenate([v, v + 1]))
            yield rd
            k = int(fresh.sum())
            ws.cur[fresh] = rd.result[:k]
            ws.end[fresh] = rd.result[k:]
            wrd = MemRead(BUF_WEIGHT, v)
            yield wrd
            # the task body: lock-step, so the wavefront pays the max
            # weight among freshly started lanes this cycle.
            yield Compute(int(wrd.result.max()))
            # record each task's global start order for the oracle: a
            # successor's last dependency is only cleared by a started
            # predecessor, so start stamps must respect every DAG edge.
            stamp = AtomicRMW(
                BUF_STAMP, np.zeros(k, dtype=np.int64), AtomicKind.ADD, 1
            )
            yield stamp
            yield MemWrite(BUF_ORDER, v, stamp.old)
            ws.primed[fresh] = True

        counts = np.zeros(wf, dtype=np.int64)
        new_tokens = np.zeros((wf, max(subtasks, 1)), dtype=np.int64)
        for _ in range(subtasks):
            active = st.has_token & ws.primed & (ws.cur < ws.end)
            if not active.any():
                break
            srd = MemRead(BUF_SUCC_TARGETS, ws.cur[active])
            yield srd
            succ = srd.result
            dec = AtomicRMW(BUF_DEPS, succ, AtomicKind.ADD, -1)
            yield dec
            ready = dec.old == 1  # our decrement cleared the last dep
            if ready.any():
                lanes = np.flatnonzero(active)[ready]
                new_tokens[lanes, counts[lanes]] = succ[ready]
                counts[lanes] += 1
            ws.cur[active] += 1

        completed = st.has_token & ws.primed & (ws.cur >= ws.end)
        ws.primed[completed] = False
        return WorkCycleResult(
            completed=completed, new_counts=counts, new_tokens=new_tokens
        )


@dataclass
class TaskDagResult:
    """Outcome of a simulated DAG execution."""

    n_tasks: int
    cycles: int
    seconds: float
    order: np.ndarray  # global start stamp per task
    stats: object

    def verify(self, dag: CSRGraph) -> None:
        """Every task started exactly once, after all its predecessors.

        A successor's last dependency can only be cleared by a predecessor
        that has already started (the paper's §2.1: a task clears
        dependencies *as it progresses*), so start stamps must form a
        topological order of the DAG.
        """
        if np.any(self.order < 0):
            missing = int(np.flatnonzero(self.order < 0)[0])
            raise AssertionError(f"task {missing} never ran")
        if np.unique(self.order).size != self.n_tasks:
            raise AssertionError("start stamps are not unique")
        src = np.repeat(
            np.arange(dag.n_vertices, dtype=np.int64), np.diff(dag.offsets)
        )
        bad = self.order[src] > self.order[dag.targets]
        if bad.any():
            i = int(np.flatnonzero(bad)[0])
            raise AssertionError(
                f"dependency violated: task {int(dag.targets[i])} started "
                f"before its predecessor {int(src[i])}"
            )


def run_taskdag(
    dag: CSRGraph,
    weights: np.ndarray,
    variant: str,
    device: DeviceSpec,
    n_workgroups: int,
    *,
    subtasks_per_cycle: int = 4,
    verify: bool = True,
) -> TaskDagResult:
    """Execute a task DAG under the persistent-thread scheduler."""
    n = dag.n_vertices
    engine = Engine(device)
    engine.memory.alloc_from(BUF_SUCC_OFFSETS, dag.offsets)
    engine.memory.alloc_from(
        BUF_SUCC_TARGETS,
        dag.targets if dag.n_edges else np.zeros(1, dtype=np.int64),
    )
    indeg = np.bincount(dag.targets, minlength=n).astype(np.int64)
    engine.memory.alloc_from(BUF_DEPS, indeg)
    engine.memory.alloc_from(BUF_WEIGHT, np.asarray(weights, dtype=np.int64))
    engine.memory.alloc(BUF_ORDER, n, fill=-1)
    engine.memory.alloc(BUF_STAMP, 1, fill=0)

    queue = make_queue(variant, capacity=2 * n + 4096, prefix="dagq")
    sched = SchedulerControl(prefix="dagsched")
    queue.allocate(engine.memory)
    sched.allocate(engine.memory)
    roots = np.flatnonzero(indeg == 0)
    queue.seed(engine.memory, roots.tolist())
    sched.seed(engine.memory, int(roots.size))

    kern = persistent_kernel(
        queue, TaskDagWorker(), sched, subtasks_per_cycle=subtasks_per_cycle
    )
    res = engine.launch(kern, n_workgroups)
    result = TaskDagResult(
        n_tasks=n,
        cycles=res.cycles,
        seconds=res.seconds,
        order=engine.memory[BUF_ORDER][:n].copy(),
        stats=res.stats,
    )
    if verify:
        result.verify(dag)
    return result
