"""Single-source shortest paths under the persistent scheduler (extension).

BFS is the unit-weight special case of SSSP; the weighted problem is the
natural stress extension because asynchronous label-correcting relaxation
*re-enqueues* vertices whenever their tentative distance improves — far
more often than BFS does — which exercises exactly the queue behaviour
(re-insertion, deep backlogs, bursts of discoveries) the paper's design
must sustain.  Also a second real application of the public scheduler
API beyond graph traversal order.

Algorithm: asynchronous Bellman-Ford with a task queue — every work
cycle relaxes up to ``subtasks_per_cycle`` out-edges of the lane's
vertex via ``atomic_min`` on the distance array; a strict improvement
enqueues the target.  Converges to exact distances for non-negative
weights under any dequeue order; verified against SciPy's Dijkstra.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace
from typing import Generator, Optional, Tuple

import numpy as np

from repro.core import (
    SchedulerControl,
    WavefrontQueueState,
    WorkCycleResult,
    make_queue,
    persistent_kernel,
)
from repro.graphs import CSRGraph
from repro.simt import (
    AtomicKind,
    AtomicRMW,
    DeviceSpec,
    Engine,
    KernelContext,
    MemRead,
    Op,
)

BUF_OFFSETS = "sssp.offsets"
BUF_TARGETS = "sssp.targets"
BUF_WEIGHTS = "sssp.weights"
BUF_DIST = "sssp.dist"

INF_DIST = np.int64(1) << 40


def random_weights(
    graph: CSRGraph, max_weight: int = 16, seed: int = 0
) -> np.ndarray:
    """Uniform integer edge weights in ``[1, max_weight]``."""
    rng = np.random.default_rng(seed)
    return rng.integers(1, max_weight + 1, size=graph.n_edges).astype(np.int64)


def reference_sssp(graph: CSRGraph, weights: np.ndarray, source: int) -> np.ndarray:
    """Dijkstra via SciPy (the oracle); -1 for unreachable vertices."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra

    n = graph.n_vertices
    mat = csr_matrix(
        (np.asarray(weights, dtype=np.float64), graph.targets, graph.offsets),
        shape=(n, n),
    )
    dist = dijkstra(mat, directed=True, indices=source)
    out = np.where(np.isinf(dist), -1, dist).astype(np.int64)
    return out


class SSSPWorker:
    """Relaxes edges with atomic_min on the distance array."""

    def make_state(self, ctx: KernelContext) -> SimpleNamespace:
        wf = ctx.device.wavefront_size
        return SimpleNamespace(
            primed=np.zeros(wf, dtype=bool),
            cur=np.zeros(wf, dtype=np.int64),
            end=np.zeros(wf, dtype=np.int64),
            dist=np.zeros(wf, dtype=np.int64),
        )

    def work_cycle(
        self,
        ctx: KernelContext,
        ws: SimpleNamespace,
        st: WavefrontQueueState,
    ) -> Generator[Op, Op, WorkCycleResult]:
        wf = ctx.device.wavefront_size
        subtasks = int(ctx.params["subtasks_per_cycle"])

        fresh = st.has_token & ~ws.primed
        if fresh.any():
            v = st.token[fresh]
            rd = MemRead(BUF_OFFSETS, np.concatenate([v, v + 1]))
            yield rd
            k = int(fresh.sum())
            ws.cur[fresh] = rd.result[:k]
            ws.end[fresh] = rd.result[k:]
            drd = MemRead(BUF_DIST, v)
            yield drd
            ws.dist[fresh] = drd.result
            ws.primed[fresh] = True

        counts = np.zeros(wf, dtype=np.int64)
        new_tokens = np.zeros((wf, max(subtasks, 1)), dtype=np.int64)
        for _ in range(subtasks):
            active = st.has_token & ws.primed & (ws.cur < ws.end)
            if not active.any():
                break
            trd = MemRead(BUF_TARGETS, ws.cur[active])
            yield trd
            wrd = MemRead(BUF_WEIGHTS, ws.cur[active])
            yield wrd
            cand = ws.dist[active] + wrd.result
            relax = AtomicRMW(BUF_DIST, trd.result, AtomicKind.MIN, cand)
            yield relax
            improved = relax.old > cand
            if improved.any():
                lanes = np.flatnonzero(active)[improved]
                new_tokens[lanes, counts[lanes]] = trd.result[improved]
                counts[lanes] += 1
            ws.cur[active] += 1

        completed = st.has_token & ws.primed & (ws.cur >= ws.end)
        ws.primed[completed] = False
        return WorkCycleResult(
            completed=completed, new_counts=counts, new_tokens=new_tokens
        )


@dataclass
class SSSPResult:
    """Outcome of a simulated SSSP run."""

    dist: np.ndarray
    cycles: int
    seconds: float
    reenqueues: int
    stats: object

    def verify(self, graph: CSRGraph, weights: np.ndarray, source: int) -> None:
        ref = reference_sssp(graph, weights, source)
        bad = np.flatnonzero(self.dist != ref)
        if bad.size:
            v = int(bad[0])
            raise AssertionError(
                f"SSSP: vertex {v} distance {int(self.dist[v])} != "
                f"reference {int(ref[v])} ({bad.size} mismatches)"
            )


def run_sssp(
    graph: CSRGraph,
    weights: np.ndarray,
    source: int,
    variant: str,
    device: DeviceSpec,
    n_workgroups: int,
    *,
    subtasks_per_cycle: int = 4,
    capacity: Optional[int] = None,
    verify: bool = True,
) -> SSSPResult:
    """Simulate queue-scheduled SSSP; verify against Dijkstra."""
    weights = np.asarray(weights, dtype=np.int64)
    if weights.size != graph.n_edges:
        raise ValueError("need one weight per edge")
    if weights.size and weights.min() < 0:
        raise ValueError("weights must be non-negative")
    n = graph.n_vertices
    engine = Engine(device)
    engine.memory.alloc_from(BUF_OFFSETS, graph.offsets)
    engine.memory.alloc_from(
        BUF_TARGETS,
        graph.targets if graph.n_edges else np.zeros(1, dtype=np.int64),
    )
    engine.memory.alloc_from(
        BUF_WEIGHTS, weights if weights.size else np.zeros(1, dtype=np.int64)
    )
    dist = engine.memory.alloc(BUF_DIST, n, fill=int(INF_DIST))
    dist[source] = 0

    # label correcting re-enqueues aggressively; size for several visits
    cap = capacity or (6 * n + 4 * n_workgroups * device.wavefront_size + 64)
    queue = make_queue(variant, cap, prefix="ssspq")
    sched = SchedulerControl(prefix="ssspsched")
    queue.allocate(engine.memory)
    sched.allocate(engine.memory)
    queue.seed(engine.memory, [source])
    sched.seed(engine.memory, 1)

    kern = persistent_kernel(
        queue, SSSPWorker(), sched, subtasks_per_cycle=subtasks_per_cycle
    )
    res = engine.launch(kern, n_workgroups)
    out = engine.memory[BUF_DIST][:n].copy()
    out[out >= INF_DIST] = -1
    tasks = int(res.stats.custom.get("scheduler.tasks_completed", 0))
    result = SSSPResult(
        dist=out,
        cycles=res.cycles,
        seconds=res.seconds,
        reenqueues=max(tasks - int((out >= 0).sum()), 0),
        stats=res.stats,
    )
    if verify:
        result.verify(graph, weights, source)
    return result
