"""N-Queens as a persistent-thread workload (related work, §2.1).

Tzeng et al. studied GPU task management with the N-Queens constraint
satisfaction problem; it is the canonical "tasks spawn variable numbers
of tasks" workload, so it doubles as a generality demonstration for the
queue variants beyond BFS.

Task encoding: a *task token* is a partial placement packed into one
int64 — four bits per row (column index + 1; zero marks an empty row),
supporting boards up to N=15.  A work cycle pops a partial placement of
depth ``r`` and tries up to ``subtasks_per_cycle`` candidate columns of
row ``r``; legal placements of the last row bump a global solutions
counter, legal placements of inner rows are enqueued as new tasks.

The solution counts are classic (N=4 -> 2, N=5 -> 10, N=6 -> 4,
N=7 -> 40, N=8 -> 92), giving the scheduler an exact external oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace
from typing import Generator, List, Tuple

import numpy as np

from repro.core import (
    DeviceQueue,
    SchedulerControl,
    WavefrontQueueState,
    WorkCycleResult,
    make_queue,
    persistent_kernel,
)
from repro.simt import (
    AtomicKind,
    AtomicRMW,
    Compute,
    DeviceSpec,
    Engine,
    KernelContext,
    Op,
)

#: known solution counts for verification.
KNOWN_SOLUTIONS = {1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352}

BITS_PER_ROW = 4
ROW_MASK = (1 << BITS_PER_ROW) - 1

BUF_SOLUTIONS = "nqueens.solutions"


def pack(placements: Tuple[int, ...]) -> int:
    """Pack column choices (row 0 first) into a task token."""
    token = 0
    for r, col in enumerate(placements):
        token |= (col + 1) << (r * BITS_PER_ROW)
    return token


def unpack(token: int) -> List[int]:
    """Inverse of :func:`pack`."""
    cols = []
    while token:
        cols.append((token & ROW_MASK) - 1)
        token >>= BITS_PER_ROW
    return cols


def _conflicts(cols: List[int], row: int, col: int) -> bool:
    for r, c in enumerate(cols):
        if c == col or abs(c - col) == row - r:
            return True
    return False


class NQueensWorker:
    """Expands partial placements; counts completed boards atomically."""

    def __init__(self, n: int):
        if not 1 <= n <= 15:
            raise ValueError("n must be in [1, 15] for 4-bit row packing")
        self.n = n

    def make_state(self, ctx: KernelContext) -> SimpleNamespace:
        wf = ctx.device.wavefront_size
        return SimpleNamespace(
            next_col=np.zeros(wf, dtype=np.int64),  # candidate col cursor
        )

    def work_cycle(
        self,
        ctx: KernelContext,
        ws: SimpleNamespace,
        st: WavefrontQueueState,
    ) -> Generator[Op, Op, WorkCycleResult]:
        wf = ctx.device.wavefront_size
        subtasks = int(ctx.params["subtasks_per_cycle"])
        n = self.n
        counts = np.zeros(wf, dtype=np.int64)
        new_tokens = np.zeros((wf, max(subtasks, 1)), dtype=np.int64)
        completed = np.zeros(wf, dtype=bool)
        solutions = 0

        active = np.flatnonzero(st.has_token)
        # expansion is pure lane-local compute; charge one ALU op per
        # candidate column examined this cycle.
        yield Compute(4 * max(subtasks, 1))
        for lane in active:
            token = int(st.token[lane])
            cols = unpack(token)
            row = len(cols)
            tried = 0
            col = int(ws.next_col[lane])
            while tried < subtasks and col < n:
                if not _conflicts(cols, row, col):
                    if row == n - 1:
                        solutions += 1
                    else:
                        new_tokens[lane, counts[lane]] = pack(
                            tuple(cols) + (col,)
                        )
                        counts[lane] += 1
                tried += 1
                col += 1
            ws.next_col[lane] = col
            if col >= n:
                completed[lane] = True
                ws.next_col[lane] = 0

        if solutions:
            op = AtomicRMW(BUF_SOLUTIONS, 0, AtomicKind.ADD, solutions)
            yield op
        return WorkCycleResult(
            completed=completed, new_counts=counts, new_tokens=new_tokens
        )


@dataclass
class NQueensResult:
    """Outcome of a simulated N-Queens run."""

    n: int
    solutions: int
    cycles: int
    seconds: float
    tasks: int
    stats: object


def run_nqueens(
    n: int,
    variant: str,
    device: DeviceSpec,
    n_workgroups: int,
    *,
    subtasks_per_cycle: int = 4,
    capacity: int | None = None,
    verify: bool = True,
) -> NQueensResult:
    """Count N-Queens solutions with a persistent-thread scheduler."""
    engine = Engine(device)
    engine.memory.alloc(BUF_SOLUTIONS, 1, fill=0)
    # upper bound on simultaneously queued partial placements: the search
    # tree's widest layer is far below n^(n/2); grow-on-full is not
    # implemented here, so be generous.
    cap = capacity or max(4096, n ** 4)
    queue = make_queue(variant, cap, prefix="nq")
    sched = SchedulerControl(prefix="nqsched")
    queue.allocate(engine.memory)
    sched.allocate(engine.memory)

    # seed: one task per legal first-row column
    seeds = [pack((c,)) for c in range(n)] if n > 1 else [pack((0,))]
    queue.seed(engine.memory, seeds)
    sched.seed(engine.memory, len(seeds))

    worker = NQueensWorker(n)
    kern = persistent_kernel(
        queue, worker, sched, subtasks_per_cycle=subtasks_per_cycle
    )
    res = engine.launch(kern, n_workgroups)
    solutions = int(engine.memory[BUF_SOLUTIONS][0])
    if n == 1:
        solutions = 1  # the seeded board is itself the solution
    if verify and n in KNOWN_SOLUTIONS:
        expected = KNOWN_SOLUTIONS[n]
        if solutions != expected:
            raise AssertionError(
                f"{n}-queens: counted {solutions}, expected {expected}"
            )
    return NQueensResult(
        n=n,
        solutions=solutions,
        cycles=res.cycles,
        seconds=res.seconds,
        tasks=int(res.stats.custom.get("scheduler.tasks_completed", 0)),
        stats=res.stats,
    )
