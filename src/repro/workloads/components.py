"""Connected components by label propagation (queue-scheduled).

A third graph workload with a different re-enqueue pattern from BFS and
SSSP: every vertex starts as its own component; processing a vertex
pushes ``min(label[v], label[u])`` across each edge with ``atomic_min``,
and any strict improvement re-enqueues the improved vertex.  Labels
monotonically decrease, so the computation converges to
"every vertex labelled with the smallest vertex id in its (weakly)
connected component" under any dequeue order — with far more
re-enqueues than BFS (labels can improve many times), stressing the
queue's recycling behaviour.

Verified against a union-find oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace
from typing import Generator, Optional

import numpy as np

from repro.core import (
    SchedulerControl,
    WavefrontQueueState,
    WorkCycleResult,
    make_queue,
    persistent_kernel,
)
from repro.graphs import CSRGraph
from repro.simt import (
    AtomicKind,
    AtomicRMW,
    DeviceSpec,
    Engine,
    KernelContext,
    MemRead,
    Op,
)

BUF_OFFSETS = "cc.offsets"
BUF_TARGETS = "cc.targets"
BUF_LABEL = "cc.label"


def reference_components(graph: CSRGraph) -> np.ndarray:
    """Union-find oracle: smallest vertex id per weakly-connected comp."""
    parent = np.arange(graph.n_vertices, dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return x

    for u, v in graph.iter_edges():
        ru, rv = find(u), find(int(v))
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    return np.array([find(v) for v in range(graph.n_vertices)], dtype=np.int64)


class ComponentsWorker:
    """Pushes minimum labels across edges; re-enqueues improvements."""

    def make_state(self, ctx: KernelContext) -> SimpleNamespace:
        wf = ctx.device.wavefront_size
        return SimpleNamespace(
            primed=np.zeros(wf, dtype=bool),
            cur=np.zeros(wf, dtype=np.int64),
            end=np.zeros(wf, dtype=np.int64),
            label=np.zeros(wf, dtype=np.int64),
        )

    def work_cycle(
        self,
        ctx: KernelContext,
        ws: SimpleNamespace,
        st: WavefrontQueueState,
    ) -> Generator[Op, Op, WorkCycleResult]:
        wf = ctx.device.wavefront_size
        subtasks = int(ctx.params["subtasks_per_cycle"])

        fresh = st.has_token & ~ws.primed
        if fresh.any():
            v = st.token[fresh]
            rd = MemRead(BUF_OFFSETS, np.concatenate([v, v + 1]))
            yield rd
            k = int(fresh.sum())
            ws.cur[fresh] = rd.result[:k]
            ws.end[fresh] = rd.result[k:]
            lrd = MemRead(BUF_LABEL, v)
            yield lrd
            ws.label[fresh] = lrd.result
            ws.primed[fresh] = True

        counts = np.zeros(wf, dtype=np.int64)
        new_tokens = np.zeros((wf, max(subtasks, 1)), dtype=np.int64)
        for _ in range(subtasks):
            active = st.has_token & ws.primed & (ws.cur < ws.end)
            if not active.any():
                break
            trd = MemRead(BUF_TARGETS, ws.cur[active])
            yield trd
            neigh = trd.result
            push = AtomicRMW(BUF_LABEL, neigh, AtomicKind.MIN, ws.label[active])
            yield push
            improved = push.old > ws.label[active]
            if improved.any():
                lanes = np.flatnonzero(active)[improved]
                new_tokens[lanes, counts[lanes]] = neigh[improved]
                counts[lanes] += 1
            ws.cur[active] += 1

        completed = st.has_token & ws.primed & (ws.cur >= ws.end)
        ws.primed[completed] = False
        return WorkCycleResult(
            completed=completed, new_counts=counts, new_tokens=new_tokens
        )


@dataclass
class ComponentsResult:
    """Outcome of a simulated components run."""

    labels: np.ndarray
    n_components: int
    cycles: int
    seconds: float
    stats: object

    def verify(self, graph: CSRGraph) -> None:
        ref = reference_components(graph.symmetrized())
        bad = np.flatnonzero(self.labels != ref)
        if bad.size:
            v = int(bad[0])
            raise AssertionError(
                f"components: vertex {v} label {int(self.labels[v])} != "
                f"reference {int(ref[v])} ({bad.size} mismatches)"
            )


def run_components(
    graph: CSRGraph,
    variant: str,
    device: DeviceSpec,
    n_workgroups: int,
    *,
    subtasks_per_cycle: int = 4,
    capacity: Optional[int] = None,
    verify: bool = True,
) -> ComponentsResult:
    """Label-propagation connected components on the persistent scheduler.

    Works on the *undirected* closure of ``graph`` (weak connectivity),
    matching the standard definition.  All vertices seed the queue.

    Label propagation can re-enqueue a vertex once per strict label
    improvement — on long-diameter graphs that is many visits per
    vertex — so a queue-full abort triggers the paper's §4.4 recovery:
    the host doubles the queue and relaunches.
    """
    from repro.simt import KernelAbort

    und = graph.symmetrized()
    n = und.n_vertices
    cap = capacity or (8 * n + 4 * n_workgroups * device.wavefront_size + 64)
    for _attempt in range(10):
        try:
            res, engine = _run_once(
                und, variant, device, n_workgroups, subtasks_per_cycle, cap
            )
            break
        except KernelAbort:
            cap *= 2
    else:
        raise RuntimeError("components queue kept overflowing after regrows")
    labels = engine.memory[BUF_LABEL][:n].copy()
    result = ComponentsResult(
        labels=labels,
        n_components=int(np.unique(labels).size),
        cycles=res.cycles,
        seconds=res.seconds,
        stats=res.stats,
    )
    if verify:
        result.verify(graph)
    return result


def _run_once(und, variant, device, n_workgroups, subtasks_per_cycle, cap):
    n = und.n_vertices
    engine = Engine(device)
    engine.memory.alloc_from(BUF_OFFSETS, und.offsets)
    engine.memory.alloc_from(
        BUF_TARGETS,
        und.targets if und.n_edges else np.zeros(1, dtype=np.int64),
    )
    engine.memory.alloc_from(BUF_LABEL, np.arange(n, dtype=np.int64))
    queue = make_queue(variant, cap, prefix="ccq")
    sched = SchedulerControl(prefix="ccsched")
    queue.allocate(engine.memory)
    sched.allocate(engine.memory)
    queue.seed(engine.memory, range(n))
    sched.seed(engine.memory, n)
    kern = persistent_kernel(
        queue, ComponentsWorker(), sched, subtasks_per_cycle=subtasks_per_cycle
    )
    return engine.launch(kern, n_workgroups), engine
