"""Additional irregular workloads demonstrating queue generality.

The paper presents the concurrent queue as a general persistent-thread
task scheduler ("it can be used for other purposes on GPUs with little
change", §1); these workloads exercise exactly that claim:

* :mod:`repro.workloads.nqueens` — the N-Queens constraint-satisfaction
  search from the related work (Tzeng et al.), with known solution
  counts as an oracle;
* :mod:`repro.workloads.taskdag` — dependency-driven task-DAG execution,
  the abstract setting §2.1 describes, verified by a topological-order
  oracle;
* :mod:`repro.workloads.sssp` — weighted single-source shortest paths,
  the re-enqueue-heavy generalization of the BFS driver, verified
  against SciPy's Dijkstra;
* :mod:`repro.workloads.components` — label-propagation connected
  components (all vertices seeded, monotone relabelling), verified
  against a union-find oracle.
"""

from .components import (
    ComponentsResult,
    ComponentsWorker,
    reference_components,
    run_components,
)
from .nqueens import KNOWN_SOLUTIONS, NQueensResult, NQueensWorker, run_nqueens
from .sssp import (
    SSSPResult,
    SSSPWorker,
    random_weights,
    reference_sssp,
    run_sssp,
)
from .taskdag import TaskDagResult, TaskDagWorker, random_dag, run_taskdag

__all__ = [
    "ComponentsResult",
    "ComponentsWorker",
    "KNOWN_SOLUTIONS",
    "NQueensResult",
    "NQueensWorker",
    "SSSPResult",
    "reference_components",
    "run_components",
    "SSSPWorker",
    "TaskDagResult",
    "TaskDagWorker",
    "random_dag",
    "random_weights",
    "reference_sssp",
    "run_nqueens",
    "run_sssp",
    "run_taskdag",
]
