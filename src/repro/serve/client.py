"""HTTP client for the scheduler service (stdlib ``urllib`` only).

:class:`ServeClient` is the programmatic surface — the CLI, the test
suite, and the CI smoke driver all go through it::

    client = ServeClient("http://127.0.0.1:8765")
    job = client.submit({"kind": "harness", "experiments": ["fig1"]})
    job = client.wait(job["id"], timeout=600)
    client.fetch_artifacts(job["id"], "out/")

Every method raises :class:`ServeError` with the server's error
message on a non-2xx response, and :class:`ServeUnavailable` when the
daemon cannot be reached at all (connection refused, daemon draining)
— callers distinguish "the service said no" from "there is no
service".
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, List, Optional

#: states a job never leaves (mirrors the store, importable client-side).
TERMINAL = ("done", "failed", "cancelled")

#: default service URL; the CLI and smoke tools honour the env override.
DEFAULT_URL = "http://127.0.0.1:8765"
URL_ENV = "REPRO_SERVE_URL"


def default_url() -> str:
    return os.environ.get(URL_ENV) or DEFAULT_URL


class ServeError(Exception):
    """The service rejected a request (4xx/5xx with a JSON error)."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(f"[{status}] {message}")


class ServeUnavailable(ServeError):
    """No daemon answered at the given URL."""

    def __init__(self, url: str, reason: str):
        self.url = url
        Exception.__init__(self, f"service unavailable at {url}: {reason}")
        self.status = 0


class JobTimeout(Exception):
    """``wait`` ran out of patience before the job went terminal."""


class ServeClient:
    """Thin JSON-over-HTTP client for one daemon."""

    def __init__(self, url: Optional[str] = None, timeout: float = 30.0):
        self.url = (url or default_url()).rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.url + path, data=data, method=method, headers=headers,
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read() or b"{}").get("error", str(exc))
            except json.JSONDecodeError:
                message = str(exc)
            raise ServeError(exc.code, message) from None
        except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
            reason = getattr(exc, "reason", exc)
            raise ServeUnavailable(self.url, str(reason)) from None

    def _request_bytes(self, path: str) -> bytes:
        req = urllib.request.Request(
            self.url + path, headers={"Accept": "application/octet-stream"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read() or b"{}").get("error", str(exc))
            except json.JSONDecodeError:
                message = str(exc)
            raise ServeError(exc.code, message) from None
        except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
            raise ServeUnavailable(self.url, str(getattr(exc, "reason", exc))) from None

    # ------------------------------------------------------------------
    def health(self) -> Dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict:
        return self._request("GET", "/metrics")

    def submit(
        self,
        spec: Dict,
        priority: int = 0,
        idem_key: Optional[str] = None,
        max_retries: int = 0,
        timeout_s: Optional[float] = None,
    ) -> Dict:
        return self._request("POST", "/jobs", {
            "spec": spec,
            "priority": priority,
            "idem_key": idem_key,
            "max_retries": max_retries,
            "timeout_s": timeout_s,
        })

    def get(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{job_id}")

    def list_jobs(
        self, state: Optional[str] = None, limit: int = 100
    ) -> List[Dict]:
        path = f"/jobs?limit={limit}"
        if state:
            path += f"&state={state}"
        return self._request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> Dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def shutdown(self) -> Dict:
        return self._request("POST", "/shutdown")

    # ------------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        timeout: float = 3600.0,
        poll: float = 0.25,
        tolerate_outage: float = 0.0,
    ) -> Dict:
        """Poll until the job reaches a terminal state; return it.

        ``tolerate_outage`` seconds of :class:`ServeUnavailable` are
        forgiven before giving up — enough to ride out a daemon restart
        mid-wait (the crash-recovery smoke leans on this).
        """
        deadline = time.monotonic() + timeout
        outage_start: Optional[float] = None
        while True:
            try:
                job = self.get(job_id)
                outage_start = None
                if job["state"] in TERMINAL:
                    return job
            except ServeUnavailable:
                now = time.monotonic()
                if outage_start is None:
                    outage_start = now
                if now - outage_start > tolerate_outage:
                    raise
            if time.monotonic() > deadline:
                raise JobTimeout(
                    f"job {job_id} not terminal after {timeout}s"
                )
            time.sleep(poll)

    def artifacts(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{job_id}/artifacts")

    def fetch_artifact(self, job_id: str, name: str) -> bytes:
        return self._request_bytes(f"/jobs/{job_id}/artifacts/{name}")

    def fetch_artifacts(self, job_id: str, out_dir) -> List[Path]:
        """Download every artifact of the job's latest attempt."""
        out = Path(out_dir)
        fetched: List[Path] = []
        for item in self.artifacts(job_id)["files"]:
            name = item["name"]
            dest = out / name
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_bytes(self.fetch_artifact(job_id, name))
            fetched.append(dest)
        return fetched

    def wait_ready(self, timeout: float = 30.0, poll: float = 0.1) -> Dict:
        """Block until ``/healthz`` answers (daemon startup handshake)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServeUnavailable:
                if time.monotonic() > deadline:
                    raise
                time.sleep(poll)
