"""Scheduler-as-a-service: a durable job daemon over the harness.

The paper's persistent kernel keeps a device resident and feeds it
dynamically arriving irregular work through a concurrent queue; this
package is the host-side analogue at service scale.  A long-running
daemon (``python -m repro.serve``) accepts experiment/workload specs
from many clients, parks them in a durable sqlite store with
priorities and idempotent submission, and drains them through worker
processes running the exact ``run_many`` pipeline the CLI uses — so a
service-run report is byte-identical to the same config run by hand.

Layers (each its own module):

* :mod:`repro.serve.store` — the durable state machine
  (``queued → running → done|failed|cancelled``), atomic claims,
  retry backoff, orphan recovery.
* :mod:`repro.serve.runner` — per-attempt child-process execution and
  the ``result.json`` dead-drop, with QueueFullError/WedgeError
  context and post-mortem bundles attached to failures.
* :mod:`repro.serve.pool` — worker threads supervising job processes:
  cancellation that interrupts, timeouts, bounded retry, graceful
  shutdown that requeues in-flight work.
* :mod:`repro.serve.daemon` — the HTTP API and crash recovery at
  startup.
* :mod:`repro.serve.client` — stdlib HTTP client + ``python -m
  repro.serve submit|status|cancel|fetch|...`` CLI (:mod:`.cli`).

See ``docs/serving.md`` for the API, failure semantics, and runbook.
"""

from .client import (
    JobTimeout,
    ServeClient,
    ServeError,
    ServeUnavailable,
)
from .daemon import ServeDaemon
from .pool import WorkerPool
from .store import (
    STATES,
    TERMINAL,
    IllegalTransition,
    JobStore,
    StoreError,
    UnknownJob,
)

__all__ = [
    "STATES",
    "TERMINAL",
    "IllegalTransition",
    "JobStore",
    "JobTimeout",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "ServeUnavailable",
    "StoreError",
    "UnknownJob",
    "WorkerPool",
]
