"""``python -m repro.serve`` — daemon and client in one entry point.

Daemon::

    python -m repro.serve start --port 8765 --workers 2 --data results/serve

Clients (against a running daemon; ``--url`` or ``$REPRO_SERVE_URL``)::

    python -m repro.serve submit fig1 --quick --wait --fetch out/
    python -m repro.serve status <job_id>
    python -m repro.serve list --state queued
    python -m repro.serve cancel <job_id>
    python -m repro.serve fetch <job_id> --out out/
    python -m repro.serve health | metrics | shutdown

With no subcommand, ``start`` is assumed — ``python -m repro.serve``
alone brings up a daemon on the default port.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .client import (
    JobTimeout,
    ServeClient,
    ServeError,
    default_url,
)

#: subcommands that talk to a daemon rather than being one.
CLIENT_COMMANDS = (
    "submit", "status", "list", "wait", "cancel", "fetch",
    "health", "metrics", "shutdown",
)


def _job_line(job: dict) -> str:
    bits = [
        f"{job['id']}",
        f"state={job['state']}",
        f"priority={job['priority']}",
        f"attempts={job['attempts']}",
    ]
    if job.get("retries"):
        bits.append(f"retries={job['retries']}")
    spec = job.get("spec") or {}
    if spec.get("kind") == "harness":
        bits.append("exp=" + ",".join(spec.get("experiments") or []))
    else:
        bits.append(f"kind={spec.get('kind', '?')}")
    if job.get("error"):
        bits.append(f"error={job['error']!r}")
    return "  ".join(bits)


def _add_url(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--url", default=None,
        help=f"service URL (default $REPRO_SERVE_URL or {default_url()})",
    )


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # bare `python -m repro.serve` (or flags only) means `start`
    if not argv or argv[0].startswith("-"):
        argv = ["start", *argv]

    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="scheduler-as-a-service over the experiment harness",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_start = sub.add_parser("start", help="run the daemon (blocking)")
    p_start.add_argument("--host", default="127.0.0.1")
    p_start.add_argument("--port", type=int, default=8765)
    p_start.add_argument(
        "--data", default=None, metavar="DIR",
        help="service data directory (default results/serve)",
    )
    p_start.add_argument(
        "--workers", type=int, default=1,
        help="concurrent job slots (each job runs in its own process)",
    )
    p_start.add_argument(
        "--default-timeout", type=float, default=None, metavar="S",
        help="per-attempt wall-clock cap for jobs submitted without one",
    )
    p_start.add_argument(
        "--poll-interval", type=float, default=0.2, metavar="S",
        help="worker cancel/timeout poll cadence (default 0.2)",
    )
    p_start.add_argument(
        "--backoff-base", type=float, default=1.0, metavar="S",
        help="retry backoff base: base * 2**retries, capped (default 1.0)",
    )
    p_start.add_argument("--quiet", action="store_true",
                         help="log only to the runlog, not stdout")

    p_submit = sub.add_parser("submit", help="submit a harness job")
    _add_url(p_submit)
    p_submit.add_argument("experiments", nargs="+",
                          help="harness experiment ids (fig1, tab3, ...)")
    p_submit.add_argument("--full", action="store_true",
                          help="paper-scale datasets (default: --quick)")
    p_submit.add_argument("--scale-factor", type=float, default=1.0)
    p_submit.add_argument("--no-verify", action="store_true")
    p_submit.add_argument("--jobs", type=int, default=1,
                          help="run_many fan-out inside the job")
    p_submit.add_argument("--flight", action="store_true",
                          help="flight recorder + post-mortems on failure")
    p_submit.add_argument("--priority", type=int, default=0,
                          help="higher runs first (default 0)")
    p_submit.add_argument("--idem-key", default=None,
                          help="idempotent submission key (safe retries)")
    p_submit.add_argument("--max-retries", type=int, default=0)
    p_submit.add_argument("--timeout", type=float, default=None, metavar="S",
                          help="per-attempt wall-clock cap")
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the job is terminal")
    p_submit.add_argument("--fetch", default=None, metavar="DIR",
                          help="with --wait: download artifacts to DIR")

    p_status = sub.add_parser("status", help="one job's record")
    _add_url(p_status)
    p_status.add_argument("job_id")
    p_status.add_argument("--json", action="store_true")

    p_list = sub.add_parser("list", help="list jobs, newest first")
    _add_url(p_list)
    p_list.add_argument("--state", default=None,
                        choices=["queued", "running", "done", "failed",
                                 "cancelled"])
    p_list.add_argument("--limit", type=int, default=20)

    p_wait = sub.add_parser("wait", help="block until a job is terminal")
    _add_url(p_wait)
    p_wait.add_argument("job_id")
    p_wait.add_argument("--timeout", type=float, default=3600.0)

    p_cancel = sub.add_parser("cancel", help="cancel a job")
    _add_url(p_cancel)
    p_cancel.add_argument("job_id")

    p_fetch = sub.add_parser("fetch", help="download a job's artifacts")
    _add_url(p_fetch)
    p_fetch.add_argument("job_id")
    p_fetch.add_argument("--out", required=True, metavar="DIR")

    for name, help_text in (
        ("health", "daemon liveness"),
        ("metrics", "job-level service metrics"),
        ("shutdown", "graceful drain (in-flight jobs requeue)"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_url(p)

    args = parser.parse_args(argv)

    if args.cmd == "start":
        from .daemon import DEFAULT_DATA, ServeDaemon

        daemon = ServeDaemon(
            data_dir=args.data or DEFAULT_DATA,
            host=args.host,
            port=args.port,
            workers=args.workers,
            poll_interval=args.poll_interval,
            default_timeout_s=args.default_timeout,
            backoff_base=args.backoff_base,
            quiet=args.quiet,
        )
        return daemon.run()

    client = ServeClient(args.url)
    try:
        return _client_main(client, args)
    except JobTimeout as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 3
    except ServeError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 1


def _client_main(client: ServeClient, args) -> int:
    if args.cmd == "submit":
        spec = {
            "kind": "harness",
            "experiments": args.experiments,
            "quick": not args.full,
            "scale_factor": args.scale_factor,
            "verify": not args.no_verify,
            "jobs": args.jobs,
            "flight": args.flight,
        }
        job = client.submit(
            spec,
            priority=args.priority,
            idem_key=args.idem_key,
            max_retries=args.max_retries,
            timeout_s=args.timeout,
        )
        tag = " (resubmitted)" if job.get("resubmitted") else ""
        print(f"submitted {job['id']}{tag}")
        if not args.wait:
            return 0
        job = client.wait(job["id"])
        print(_job_line(job))
        if args.fetch and job["state"] == "done":
            for path in client.fetch_artifacts(job["id"], args.fetch):
                print(f"fetched {path}")
        return 0 if job["state"] == "done" else 1

    if args.cmd == "status":
        job = client.get(args.job_id)
        if args.json:
            print(json.dumps(job, indent=1, default=str))
        else:
            print(_job_line(job))
        return 0

    if args.cmd == "list":
        jobs = client.list_jobs(state=args.state, limit=args.limit)
        for job in jobs:
            print(_job_line(job))
        if not jobs:
            print("(no jobs)")
        return 0

    if args.cmd == "wait":
        job = client.wait(args.job_id, timeout=args.timeout)
        print(_job_line(job))
        return 0 if job["state"] == "done" else 1

    if args.cmd == "cancel":
        job = client.cancel(args.job_id)
        verb = "cancelling" if job["state"] == "running" else job["state"]
        print(f"{job['id']}: {verb}"
              + ("" if job.get("changed") else " (no change)"))
        return 0

    if args.cmd == "fetch":
        paths = client.fetch_artifacts(args.job_id, args.out)
        for path in paths:
            print(f"fetched {path}")
        if not paths:
            print("(no artifacts)", file=sys.stderr)
            return 1
        return 0

    if args.cmd == "health":
        print(json.dumps(client.health(), indent=1))
        return 0

    if args.cmd == "metrics":
        print(json.dumps(client.metrics(), indent=1, default=str))
        return 0

    if args.cmd == "shutdown":
        client.shutdown()
        print("shutdown requested (daemon drains and exits)")
        return 0

    raise AssertionError(f"unhandled command {args.cmd!r}")
