"""Worker pool: drains the job store through isolated job processes.

``n_workers`` daemon threads each loop: claim a job from the store,
fork a child process running
:func:`repro.serve.runner.job_process_main`, and babysit it —

* **cancellation** — the thread polls the store's ``cancel_requested``
  flag every ``poll_interval`` seconds; when set, the child is
  terminated (SIGTERM, then SIGKILL after a grace period) and the job
  moves ``running -> cancelled``.  Cancellation interrupts a live
  simulation, it does not wait for it.
* **timeout** — a per-job ``timeout_s`` (submission knob, daemon
  default) bounds each attempt's wall clock; expiry kills the child
  and counts as a failure, eligible for retry.
* **retry with backoff** — a failed attempt with budget left
  (``retries < max_retries``) requeues with ``not_before = now +
  backoff_base * 2**retries`` (capped); the store's eligibility window
  enforces the wait.
* **graceful shutdown** — ``stop()`` flips an event; each worker kills
  its in-flight child and **requeues** the job (no retry budget
  burned), so a drained daemon can restart and finish what it was
  doing.  This is the host-side analogue of the paper's persistent
  kernel parking unfinished work back on the queue.

Threads only ever touch the store and the child process handle; the
simulation itself lives entirely in the child, so a wedged or
runaway job can always be killed from here.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.obs.jobs import observe_claim, observe_outcome
from repro.obs.registry import MetricsRegistry

from .runner import attempt_dir, job_process_main, read_result

#: seconds between SIGTERM and SIGKILL on a child that won't die.
KILL_GRACE = 5.0


class WorkerPool:
    """Claim/execute/supervise loop over ``n_workers`` threads."""

    def __init__(
        self,
        store,
        job_root,
        n_workers: int = 1,
        poll_interval: float = 0.2,
        default_timeout_s: Optional[float] = None,
        backoff_base: float = 1.0,
        backoff_cap: float = 60.0,
        registry: Optional[MetricsRegistry] = None,
        log: Callable[[str], None] = lambda msg: None,
    ):
        self.store = store
        self.job_root = Path(job_root)
        self.n_workers = max(1, int(n_workers))
        self.poll_interval = poll_interval
        self.default_timeout_s = default_timeout_s
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.registry = registry if registry is not None else MetricsRegistry()
        self.log = log
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        # fork keeps child startup cheap and works with the in-process
        # daemon the tests drive; job code is import-clean either way.
        self._ctx = multiprocessing.get_context("fork")

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._stop.clear()
        for i in range(self.n_workers):
            t = threading.Thread(
                target=self._worker_loop, args=(f"w{i}:{os.getpid()}",),
                name=f"serve-worker-{i}", daemon=True,
            )
            t.start()
            self._threads.append(t)

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: kill children, requeue their jobs, join."""
        self._stop.set()
        deadline = time.monotonic() + timeout
        for t in self._threads:
            t.join(max(0.1, deadline - time.monotonic()))
        self._threads = []

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    # ------------------------------------------------------------------
    def _worker_loop(self, worker_name: str) -> None:
        while not self._stop.is_set():
            try:
                job = self.store.claim(worker_name)
            except Exception as exc:  # pragma: no cover - store outage
                self.log(f"{worker_name}: claim failed: {exc!r}")
                self._stop.wait(1.0)
                continue
            if job is None:
                self._stop.wait(self.poll_interval)
                continue
            try:
                self._run_job(worker_name, job)
            except Exception as exc:  # pragma: no cover - defensive
                self.log(f"{worker_name}: {job['id']} supervisor error: {exc!r}")
                try:
                    self.store.fail(job["id"], f"supervisor error: {exc!r}")
                except Exception:
                    pass

    # ------------------------------------------------------------------
    def _run_job(self, worker_name: str, job: Dict) -> None:
        job_id = job["id"]
        attempt = job["attempts"]
        observe_claim(self.registry, job, time.time())
        out_dir = attempt_dir(self.job_root, job_id, attempt)
        out_dir.mkdir(parents=True, exist_ok=True)
        self.log(
            f"{worker_name}: running {job_id} attempt {attempt}"
            f" (priority {job['priority']})"
        )
        proc = self._ctx.Process(
            target=job_process_main,
            args=(job["spec"], str(out_dir), job_id, attempt),
            name=f"serve-job-{job_id}-a{attempt}",
        )
        t0 = time.monotonic()
        proc.start()
        timeout_s = job.get("timeout_s")
        if timeout_s is None:
            timeout_s = self.default_timeout_s
        deadline = t0 + timeout_s if timeout_s else None

        verdict = "exited"
        while True:
            proc.join(self.poll_interval)
            if not proc.is_alive():
                break
            if self._stop.is_set():
                verdict = "shutdown"
                break
            if deadline is not None and time.monotonic() > deadline:
                verdict = "timeout"
                break
            try:
                if self.store.cancel_requested(job_id):
                    verdict = "cancelled"
                    break
            except Exception:  # pragma: no cover - store outage mid-job
                pass
        elapsed = time.monotonic() - t0

        if verdict != "exited":
            self._terminate(proc)
        if verdict == "shutdown":
            self.store.requeue(job_id, reason="daemon shutdown; requeued")
            observe_outcome(self.registry, "requeued", elapsed)
            self.log(f"{worker_name}: {job_id} requeued (shutdown)")
            return
        if verdict == "cancelled":
            self.store.mark_cancelled(
                job_id, error=f"cancelled after {elapsed:.1f}s"
            )
            observe_outcome(self.registry, "cancelled", elapsed)
            self.log(f"{worker_name}: {job_id} cancelled")
            return
        if verdict == "timeout":
            self._fail_or_retry(
                job, f"timeout after {timeout_s}s", None, elapsed,
                outcome="timeout",
            )
            return

        # the child exited on its own: its result.json is the verdict
        result = read_result(out_dir)
        if proc.exitcode == 0 and result is not None and result.get("ok"):
            self.store.finish(job_id, result=result)
            observe_outcome(self.registry, "done", elapsed)
            self.log(f"{worker_name}: {job_id} done in {elapsed:.1f}s")
            return
        if result is not None:
            error = result.get("error", f"exit code {proc.exitcode}")
        else:
            error = f"job process died without reporting (exit {proc.exitcode})"
        self._fail_or_retry(job, error, result, elapsed)

    # ------------------------------------------------------------------
    def _fail_or_retry(
        self,
        job: Dict,
        error: str,
        result: Optional[Dict],
        elapsed: float,
        outcome: str = "failed",
    ) -> None:
        job_id = job["id"]
        retries = job.get("retries", 0)
        if retries < job.get("max_retries", 0):
            backoff = min(
                self.backoff_cap, self.backoff_base * (2 ** retries)
            )
            self.store.fail(job_id, error, result=result, retry_in=backoff)
            observe_outcome(self.registry, "retried", elapsed)
            if outcome == "timeout":
                observe_outcome(self.registry, "timeout", elapsed)
            self.log(
                f"{job_id} attempt {job['attempts']} failed ({error});"
                f" retrying in {backoff:.1f}s"
            )
            return
        self.store.fail(job_id, error, result=result)
        observe_outcome(self.registry, outcome, elapsed)
        self.log(f"{job_id} failed permanently: {error}")

    # ------------------------------------------------------------------
    def _terminate(self, proc) -> None:
        """SIGTERM, wait the grace period, then SIGKILL."""
        if not proc.is_alive():
            return
        proc.terminate()
        proc.join(KILL_GRACE)
        if proc.is_alive():  # pragma: no cover - stubborn child
            proc.kill()
            proc.join(KILL_GRACE)
