"""Durable sqlite job store: the service's single source of truth.

Every job the daemon has ever accepted is one row in ``jobs.sqlite``,
moving through a small, strictly enforced state machine::

                    submit                    claim
      (client) ──────────────▶ queued ──────────────────▶ running
                                 ▲  │ cancel                │
        retry w/ backoff,        │  └────────▶ cancelled ◀──┤ cancel delivered
        orphan recovery,         │                          │
        graceful shutdown        └──────────────────────────┤ requeue
                                                            │
                                              done ◀────────┤ finish
                                            failed ◀────────┘ fail

``done`` / ``failed`` / ``cancelled`` are terminal.  Everything else —
``finish`` on a queued job, ``claim`` on a cancelled one — raises
:class:`IllegalTransition`; the guard is the SQL ``WHERE state = ?``
clause on every update, so two racing daemon threads cannot both win a
transition.

Durability and recovery properties:

* **Idempotent submission** — a ``submit`` carrying an ``idem_key``
  that already exists returns the existing job instead of creating a
  duplicate, whatever state it is in.  Clients can retry a submission
  over a flaky connection without double-running work.
* **Atomic claim** — ``claim`` takes the highest-priority eligible
  queued job (priority desc, then submission order) inside a
  ``BEGIN IMMEDIATE`` transaction; concurrent workers never claim the
  same row.
* **Crash recovery** — rows left ``running`` by a dead daemon are
  *orphans*; :meth:`JobStore.recover_orphans` (called at daemon start)
  returns them to ``queued`` without burning retry budget, or honours
  a pending cancel.
* **Bounded retry with backoff** — ``fail(..., retry_in=s)`` requeues
  with ``not_before = now + s``; ``claim`` skips ineligible rows, so a
  backing-off job never starves a fresh one.

The store opens one short-lived connection per call (WAL mode, busy
timeout), which makes it safe to share across the daemon's HTTP
threads and worker threads, and across daemon restarts.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Union

#: job states, in lifecycle order.
STATES = ("queued", "running", "done", "failed", "cancelled")

#: states a job never leaves.
TERMINAL = ("done", "failed", "cancelled")

#: store schema version (bump on incompatible layout changes).
SCHEMA = 1

_CREATE = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    id TEXT PRIMARY KEY,
    idem_key TEXT UNIQUE,
    spec TEXT NOT NULL,
    state TEXT NOT NULL CHECK (state IN
        ('queued', 'running', 'done', 'failed', 'cancelled')),
    priority INTEGER NOT NULL DEFAULT 0,
    attempts INTEGER NOT NULL DEFAULT 0,
    retries INTEGER NOT NULL DEFAULT 0,
    max_retries INTEGER NOT NULL DEFAULT 0,
    timeout_s REAL,
    submitted_at REAL NOT NULL,
    started_at REAL,
    finished_at REAL,
    not_before REAL NOT NULL DEFAULT 0,
    worker TEXT,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    error TEXT,
    result TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_state
    ON jobs (state, priority DESC, submitted_at);
"""


class StoreError(Exception):
    """Store-level failures surfaced to the API layer."""


class IllegalTransition(StoreError):
    """A state change the lifecycle does not allow."""

    def __init__(self, job_id: str, have: Optional[str], want: str, via: str):
        self.job_id = job_id
        self.have = have
        self.want = want
        super().__init__(
            f"job {job_id}: illegal transition {have!r} -> {want!r} via {via}"
            if have is not None
            else f"job {job_id}: not found (wanted {want!r} via {via})"
        )


class UnknownJob(StoreError):
    """A job id the store has never seen."""

    def __init__(self, job_id: str):
        self.job_id = job_id
        super().__init__(f"no job {job_id!r} in the store")


def _row_to_job(row: sqlite3.Row) -> Dict:
    job = dict(row)
    for field in ("spec", "result"):
        if job.get(field):
            try:
                job[field] = json.loads(job[field])
            except json.JSONDecodeError:
                pass  # surface the raw text rather than dropping it
    job["cancel_requested"] = bool(job["cancel_requested"])
    return job


class JobStore:
    """One sqlite-backed job table (see module docstring)."""

    def __init__(self, path: Union[str, Path], clock=time.time):
        self.path = Path(path)
        self._clock = clock
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as con:
            con.executescript(_CREATE)
            con.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema', ?)",
                (str(SCHEMA),),
            )

    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        con = sqlite3.connect(self.path, timeout=30.0, isolation_level=None)
        con.row_factory = sqlite3.Row
        con.execute("PRAGMA journal_mode=WAL")
        con.execute("PRAGMA busy_timeout=30000")
        return con

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: Dict,
        priority: int = 0,
        idem_key: Optional[str] = None,
        max_retries: int = 0,
        timeout_s: Optional[float] = None,
        job_id: Optional[str] = None,
    ) -> Dict:
        """Create a ``queued`` job; idempotent on ``idem_key``.

        Returns the job dict with an extra ``resubmitted`` flag: True
        when ``idem_key`` matched an existing row (which is returned
        untouched — priority and retry knobs of the original win).
        """
        if job_id is None:
            job_id = f"job-{uuid.uuid4().hex[:12]}"
        now = self._clock()
        with self._connect() as con:
            con.execute("BEGIN IMMEDIATE")
            try:
                if idem_key is not None:
                    row = con.execute(
                        "SELECT * FROM jobs WHERE idem_key = ?", (idem_key,)
                    ).fetchone()
                    if row is not None:
                        con.execute("COMMIT")
                        job = _row_to_job(row)
                        job["resubmitted"] = True
                        return job
                con.execute(
                    "INSERT INTO jobs (id, idem_key, spec, state, priority,"
                    " max_retries, timeout_s, submitted_at)"
                    " VALUES (?, ?, ?, 'queued', ?, ?, ?, ?)",
                    (job_id, idem_key, json.dumps(spec), int(priority),
                     int(max_retries), timeout_s, now),
                )
                con.execute("COMMIT")
            except BaseException:
                con.execute("ROLLBACK")
                raise
        job = self.get(job_id)
        job["resubmitted"] = False
        return job

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def claim(self, worker: str) -> Optional[Dict]:
        """Atomically move the best eligible queued job to ``running``.

        Eligibility: ``state = 'queued'`` and ``not_before <= now``
        (retry backoff).  Order: priority desc, then submission time,
        then insertion order.  Returns the claimed job dict or None.
        """
        now = self._clock()
        with self._connect() as con:
            con.execute("BEGIN IMMEDIATE")
            try:
                row = con.execute(
                    "SELECT id FROM jobs WHERE state = 'queued'"
                    " AND not_before <= ?"
                    " ORDER BY priority DESC, submitted_at, rowid LIMIT 1",
                    (now,),
                ).fetchone()
                if row is None:
                    con.execute("COMMIT")
                    return None
                con.execute(
                    "UPDATE jobs SET state = 'running', worker = ?,"
                    " started_at = ?, attempts = attempts + 1"
                    " WHERE id = ? AND state = 'queued'",
                    (worker, now, row["id"]),
                )
                con.execute("COMMIT")
            except BaseException:
                con.execute("ROLLBACK")
                raise
        return self.get(row["id"])

    def _transition(
        self,
        job_id: str,
        want: str,
        via: str,
        set_sql: str,
        params: tuple,
        require: str = "running",
    ) -> Dict:
        """Guarded single-row update; raises on a lost/illegal race."""
        with self._connect() as con:
            cur = con.execute(
                f"UPDATE jobs SET state = ?, {set_sql}"
                " WHERE id = ? AND state = ?",
                (want, *params, job_id, require),
            )
            if cur.rowcount == 0:
                row = con.execute(
                    "SELECT state FROM jobs WHERE id = ?", (job_id,)
                ).fetchone()
                if row is None:
                    raise UnknownJob(job_id)
                raise IllegalTransition(job_id, row["state"], want, via)
        return self.get(job_id)

    def finish(self, job_id: str, result: Optional[Dict] = None) -> Dict:
        """``running -> done`` with the job's result payload."""
        return self._transition(
            job_id, "done", "finish",
            "finished_at = ?, result = ?, cancel_requested = 0",
            (self._clock(), json.dumps(result) if result is not None else None),
        )

    def fail(
        self,
        job_id: str,
        error: str,
        result: Optional[Dict] = None,
        retry_in: Optional[float] = None,
    ) -> Dict:
        """``running -> failed``, or requeue with backoff when retrying.

        ``retry_in`` seconds > the claim-side eligibility window means
        the retry waits its turn; the ``retries`` counter only moves on
        this path, so orphan-recovery and shutdown requeues never burn
        retry budget.  ``result`` carries failure context (e.g.
        post-mortem bundle paths) either way.
        """
        payload = json.dumps(result) if result is not None else None
        if retry_in is not None:
            return self._transition(
                job_id, "queued", "retry",
                "not_before = ?, retries = retries + 1, error = ?,"
                " result = ?, worker = NULL, started_at = NULL",
                (self._clock() + retry_in, error, payload),
            )
        return self._transition(
            job_id, "failed", "fail",
            "finished_at = ?, error = ?, result = ?",
            (self._clock(), error, payload),
        )

    def requeue(self, job_id: str, reason: str = "requeued") -> Dict:
        """``running -> queued`` without burning retry budget.

        Graceful shutdown uses this for in-flight jobs; the recorded
        ``error`` notes why the attempt was abandoned.
        """
        return self._transition(
            job_id, "queued", "requeue",
            "not_before = 0, error = ?, worker = NULL, started_at = NULL",
            (reason,),
        )

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> Dict:
        """Request cancellation; semantics depend on the current state.

        * ``queued`` — cancelled immediately (never runs).
        * ``running`` — ``cancel_requested`` is set; the worker pool
          polls it, terminates the job's process, and calls
          :meth:`mark_cancelled`.  The returned state is still
          ``running`` until that lands.
        * terminal — no-op (idempotent).

        Returns the job dict with a ``changed`` flag.
        """
        now = self._clock()
        with self._connect() as con:
            con.execute("BEGIN IMMEDIATE")
            try:
                row = con.execute(
                    "SELECT state FROM jobs WHERE id = ?", (job_id,)
                ).fetchone()
                if row is None:
                    con.execute("ROLLBACK")
                    raise UnknownJob(job_id)
                state = row["state"]
                changed = False
                if state == "queued":
                    con.execute(
                        "UPDATE jobs SET state = 'cancelled',"
                        " finished_at = ?, cancel_requested = 1"
                        " WHERE id = ? AND state = 'queued'",
                        (now, job_id),
                    )
                    changed = True
                elif state == "running":
                    con.execute(
                        "UPDATE jobs SET cancel_requested = 1"
                        " WHERE id = ? AND state = 'running'",
                        (job_id,),
                    )
                    changed = True
                con.execute("COMMIT")
            except BaseException:
                if con.in_transaction:
                    con.execute("ROLLBACK")
                raise
        job = self.get(job_id)
        job["changed"] = changed
        return job

    def cancel_requested(self, job_id: str) -> bool:
        with self._connect() as con:
            row = con.execute(
                "SELECT cancel_requested FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise UnknownJob(job_id)
        return bool(row["cancel_requested"])

    def mark_cancelled(self, job_id: str, error: str = "cancelled") -> Dict:
        """``running -> cancelled`` after the worker killed the process."""
        return self._transition(
            job_id, "cancelled", "mark_cancelled",
            "finished_at = ?, error = ?",
            (self._clock(), error),
        )

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover_orphans(self) -> Dict[str, int]:
        """Repair rows a dead daemon left ``running``.

        Rows with a pending cancel become ``cancelled`` (the user asked
        before the crash); the rest return to ``queued`` with retry
        budget intact.  Returns ``{"requeued": n, "cancelled": m}``.
        """
        now = self._clock()
        with self._connect() as con:
            con.execute("BEGIN IMMEDIATE")
            try:
                cancelled = con.execute(
                    "UPDATE jobs SET state = 'cancelled', finished_at = ?,"
                    " error = 'cancelled during daemon crash'"
                    " WHERE state = 'running' AND cancel_requested = 1",
                    (now,),
                ).rowcount
                requeued = con.execute(
                    "UPDATE jobs SET state = 'queued', not_before = 0,"
                    " worker = NULL, started_at = NULL,"
                    " error = 'orphaned by daemon crash; requeued'"
                    " WHERE state = 'running'",
                ).rowcount
                con.execute("COMMIT")
            except BaseException:
                con.execute("ROLLBACK")
                raise
        return {"requeued": requeued, "cancelled": cancelled}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Dict:
        with self._connect() as con:
            row = con.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise UnknownJob(job_id)
        return _row_to_job(row)

    def list_jobs(
        self, state: Optional[str] = None, limit: int = 100
    ) -> List[Dict]:
        """Newest-first job listing, optionally filtered by state."""
        if state is not None and state not in STATES:
            raise StoreError(f"unknown state {state!r} (one of {STATES})")
        query = "SELECT * FROM jobs"
        params: tuple = ()
        if state is not None:
            query += " WHERE state = ?"
            params = (state,)
        query += " ORDER BY submitted_at DESC, rowid DESC LIMIT ?"
        with self._connect() as con:
            rows = con.execute(query, (*params, int(limit))).fetchall()
        return [_row_to_job(r) for r in rows]

    def counts(self) -> Dict[str, int]:
        """``{state: n}`` over every state (zero-filled)."""
        out = {s: 0 for s in STATES}
        with self._connect() as con:
            for row in con.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ):
                out[row["state"]] = row["n"]
        return out

    def queue_depth(self) -> int:
        return self.counts()["queued"]

    def total_retries(self) -> int:
        with self._connect() as con:
            row = con.execute(
                "SELECT COALESCE(SUM(retries), 0) AS n FROM jobs"
            ).fetchone()
        return int(row["n"])

    def close(self) -> None:
        """Connections are per-call; nothing to tear down (API symmetry)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobStore({os.fspath(self.path)!r})"
