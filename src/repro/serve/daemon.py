"""The scheduler-as-a-service daemon: HTTP API over store + pool.

``python -m repro.serve start`` runs one of these.  Layout on disk
(everything under ``--data``, default ``results/serve``)::

    <data>/jobs.sqlite          durable job store (the truth)
    <data>/jobs/<id>/a<N>/      per-attempt artifacts + result.json
    <data>/serve.jsonl          daemon runlog (schema-versioned JSONL)

HTTP API (JSON in, JSON out; stdlib ``ThreadingHTTPServer``, no
third-party dependencies)::

    GET  /healthz                     liveness + worker/queue summary
    GET  /metrics                     job-level metrics (repro.obs.jobs)
    POST /jobs                        submit {spec, priority, idem_key,
                                      max_retries, timeout_s}
    GET  /jobs?state=&limit=          list jobs, newest first
    GET  /jobs/<id>                   one job record
    POST /jobs/<id>/cancel            cancel (queued: immediate;
                                      running: interrupts the worker)
    GET  /jobs/<id>/artifacts         artifact listing for the job
    GET  /jobs/<id>/artifacts/<path>  artifact bytes
    POST /shutdown                    graceful drain: requeue in-flight
                                      jobs, stop accepting, exit

Startup runs **crash recovery**: any row a previous daemon left
``running`` is an orphan (the process died with it in flight) and goes
back to ``queued`` — or straight to ``cancelled`` if a cancel was
already pending.  Combined with the pool's shutdown-requeue, a job
submitted once eventually runs to a terminal state across any number
of daemon restarts, clean or ``kill -9``.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.harness.jobspec import JobSpec, SpecError
from repro.obs.jobs import metrics_payload
from repro.obs.registry import MetricsRegistry
from repro.obs.runlog import RunLog

from .pool import WorkerPool
from .runner import attempt_dir
from .store import JobStore, StoreError, UnknownJob

#: default service data directory.
DEFAULT_DATA = os.path.join("results", "serve")

#: request body size cap (a job spec is tiny; anything bigger is abuse).
MAX_BODY = 1 << 20


class ServeDaemon:
    """One daemon instance: store, worker pool, HTTP server, runlog."""

    def __init__(
        self,
        data_dir: str = DEFAULT_DATA,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        poll_interval: float = 0.2,
        default_timeout_s: Optional[float] = None,
        backoff_base: float = 1.0,
        quiet: bool = False,
    ):
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.host = host
        self.requested_port = port
        self.quiet = quiet
        self.started_at = time.time()
        self.runlog = RunLog(self.data_dir / "serve.jsonl")
        self.store = JobStore(self.data_dir / "jobs.sqlite")
        self.job_root = self.data_dir / "jobs"
        self.registry = MetricsRegistry()
        self.pool = WorkerPool(
            self.store,
            self.job_root,
            n_workers=workers,
            poll_interval=poll_interval,
            default_timeout_s=default_timeout_s,
            backoff_base=backoff_base,
            registry=self.registry,
            log=self._log,
        )
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._shutdown_requested = threading.Event()

    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        self.runlog.emit("serve", message=message, pid=os.getpid())
        if not self.quiet:
            print(f"[serve] {message}", flush=True)

    @property
    def port(self) -> int:
        return self._server.server_address[1] if self._server else 0

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Recover orphans, start workers, bind the HTTP server."""
        recovered = self.store.recover_orphans()
        if recovered["requeued"] or recovered["cancelled"]:
            self._log(
                f"crash recovery: requeued {recovered['requeued']} orphaned"
                f" job(s), cancelled {recovered['cancelled']}"
            )
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer(
            (self.host, self.requested_port), handler
        )
        self._server.daemon_threads = True
        self.pool.start()
        self._server_thread = threading.Thread(
            target=self._server.serve_forever, name="serve-http", daemon=True,
        )
        self._server_thread.start()
        self._log(
            f"listening on {self.url} — {self.pool.n_workers} worker(s),"
            f" store {self.store.path}"
        )

    def stop(self) -> None:
        """Graceful drain: requeue in-flight jobs, close everything."""
        self._log("shutting down: draining workers (in-flight jobs requeue)")
        self.pool.stop()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        self._log("shutdown complete")
        self.runlog.close()

    def request_shutdown(self) -> None:
        self._shutdown_requested.set()

    def run(self) -> int:
        """Blocking run with signal handling (the CLI entry point)."""
        self.start()
        for sig in (signal.SIGTERM, signal.SIGINT):
            signal.signal(sig, lambda *_: self.request_shutdown())
        try:
            while not self._shutdown_requested.wait(0.2):
                pass
        finally:
            self.stop()
        return 0

    # ------------------------------------------------------------------
    # request handlers (called from HTTP threads)
    # ------------------------------------------------------------------
    def handle_submit(self, body: Dict) -> Tuple[int, Dict]:
        spec_dict = body.get("spec")
        try:
            spec = JobSpec.from_dict(spec_dict)
        except SpecError as exc:
            return 400, {"error": str(exc)}
        try:
            priority = int(body.get("priority", 0))
            max_retries = int(body.get("max_retries", 0))
            timeout_s = body.get("timeout_s")
            timeout_s = None if timeout_s is None else float(timeout_s)
        except (TypeError, ValueError) as exc:
            return 400, {"error": f"bad submission field: {exc}"}
        if max_retries < 0:
            return 400, {"error": f"max_retries must be >= 0, got {max_retries}"}
        if timeout_s is not None and timeout_s <= 0:
            return 400, {"error": f"timeout_s must be > 0, got {timeout_s}"}
        job = self.store.submit(
            spec.to_dict(),
            priority=priority,
            idem_key=body.get("idem_key"),
            max_retries=max_retries,
            timeout_s=timeout_s,
        )
        if not job["resubmitted"]:
            self._log(
                f"accepted {job['id']} (priority {priority},"
                f" kind {spec.kind})"
            )
        return (200 if job["resubmitted"] else 201), job

    def handle_cancel(self, job_id: str) -> Tuple[int, Dict]:
        job = self.store.cancel(job_id)
        if job["changed"]:
            self._log(f"cancel requested for {job_id} (was {job['state']})")
        return 200, job

    def handle_artifacts(self, job_id: str) -> Tuple[int, Dict]:
        job = self.store.get(job_id)
        root = attempt_dir(self.job_root, job_id, max(1, job["attempts"]))
        files = []
        if root.is_dir():
            for path in sorted(root.rglob("*")):
                if path.is_file():
                    files.append({
                        "name": str(path.relative_to(root)),
                        "bytes": path.stat().st_size,
                    })
        return 200, {
            "job_id": job_id,
            "state": job["state"],
            "attempt": job["attempts"],
            "files": files,
        }

    def artifact_path(self, job_id: str, name: str) -> Path:
        """Resolve one artifact, refusing path escapes."""
        job = self.store.get(job_id)
        root = attempt_dir(self.job_root, job_id, max(1, job["attempts"]))
        path = (root / name).resolve()
        if not str(path).startswith(str(root.resolve()) + os.sep):
            raise UnknownJob(f"{job_id}/{name}")
        if not path.is_file():
            raise UnknownJob(f"{job_id}/{name}")
        return path

    def handle_health(self) -> Tuple[int, Dict]:
        return 200, {
            "ok": True,
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.started_at, 1),
            "workers": self.pool.n_workers,
            "counts": self.store.counts(),
            "stopping": self.pool.stopping,
        }

    def handle_metrics(self) -> Tuple[int, Dict]:
        return 200, metrics_payload(self.registry, self.store)


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
def _make_handler(daemon: ServeDaemon):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1"

        # quiet by default: the runlog is the log
        def log_message(self, fmt, *args):  # noqa: A003
            if not daemon.quiet:  # pragma: no cover - console nicety
                pass

        # ------------------------------------------------------------
        def _send_json(self, status: int, payload: Dict) -> None:
            body = json.dumps(payload, indent=1, default=str).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_file(self, path: Path) -> None:
            data = path.read_bytes()
            self.send_response(200)
            self.send_header("Content-Type", "application/octet-stream")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def _read_body(self) -> Optional[Dict]:
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY:
                self._send_json(413, {"error": "request body too large"})
                return None
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw or b"{}")
            except json.JSONDecodeError as exc:
                self._send_json(400, {"error": f"bad JSON body: {exc}"})
                return None
            if not isinstance(body, dict):
                self._send_json(400, {"error": "body must be a JSON object"})
                return None
            return body

        # ------------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802
            try:
                self._route_get()
            except UnknownJob as exc:
                self._send_json(404, {"error": str(exc)})
            except StoreError as exc:
                self._send_json(400, {"error": str(exc)})
            except Exception as exc:  # pragma: no cover - defensive
                self._send_json(500, {"error": repr(exc)})

        def _route_get(self) -> None:
            url = urlparse(self.path)
            parts = [p for p in url.path.split("/") if p]
            if parts == ["healthz"]:
                self._send_json(*daemon.handle_health())
            elif parts == ["metrics"]:
                self._send_json(*daemon.handle_metrics())
            elif parts == ["jobs"]:
                query = parse_qs(url.query)
                jobs = daemon.store.list_jobs(
                    state=(query.get("state") or [None])[0],
                    limit=int((query.get("limit") or ["100"])[0]),
                )
                self._send_json(200, {"jobs": jobs})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send_json(200, daemon.store.get(parts[1]))
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "artifacts":
                self._send_json(*daemon.handle_artifacts(parts[1]))
            elif len(parts) >= 4 and parts[0] == "jobs" and parts[2] == "artifacts":
                name = "/".join(parts[3:])
                self._send_file(daemon.artifact_path(parts[1], name))
            else:
                self._send_json(404, {"error": f"no route {url.path!r}"})

        def do_POST(self) -> None:  # noqa: N802
            try:
                self._route_post()
            except UnknownJob as exc:
                self._send_json(404, {"error": str(exc)})
            except StoreError as exc:
                self._send_json(400, {"error": str(exc)})
            except Exception as exc:  # pragma: no cover - defensive
                self._send_json(500, {"error": repr(exc)})

        def _route_post(self) -> None:
            url = urlparse(self.path)
            parts = [p for p in url.path.split("/") if p]
            if parts == ["jobs"]:
                body = self._read_body()
                if body is not None:
                    self._send_json(*daemon.handle_submit(body))
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                self._send_json(*daemon.handle_cancel(parts[1]))
            elif parts == ["shutdown"]:
                self._send_json(202, {"ok": True, "message": "draining"})
                daemon.request_shutdown()
            else:
                self._send_json(404, {"error": f"no route {url.path!r}"})

    return Handler
