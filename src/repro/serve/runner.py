"""Job execution in an isolated child process.

Each claimed job runs in its **own process** (not a thread): that is
what makes cancellation and timeouts real — the worker pool can
``terminate()``/``kill()`` the process and the simulation actually
stops, mid-launch, without cooperation from the job.  It also means a
``kill -9`` of the daemon never corrupts a job's execution state: the
store row is the only shared truth, and orphan recovery repairs it.

The child communicates exclusively through the filesystem.  It writes
``result.json`` into its **attempt directory**
(``<data>/jobs/<job_id>/a<attempt>/``) as its last act; the parent
reads it after the process exits.  Attempt-scoped directories mean a
retried or recovered job never races a still-dying predecessor over
the same artifact files — the latest attempt's directory is the one
the job record points at.

Failure taxonomy: :class:`~repro.simt.errors.QueueFullError` and
:class:`~repro.simt.errors.WedgeError` are caught specially so the
failed job record carries their structured context (queue, fill,
capacity, stall classification) plus any post-mortem bundles a
``flight`` spec dropped next to the artifacts.
"""

from __future__ import annotations

import glob
import json
import os
import time
import traceback
from pathlib import Path
from typing import Dict, Optional

#: the child's dead-drop for its outcome (inside the attempt dir).
RESULT_FILE = "result.json"

#: artifacts subdirectory inside an attempt dir.
ARTIFACT_DIR = "artifacts"

#: post-mortem bundles subdirectory inside an attempt dir.
POSTMORTEM_DIR = "postmortem"


class CanaryFailure(RuntimeError):
    """A canary spec's scripted failure (exercises the retry path)."""


def attempt_dir(job_root: Path, job_id: str, attempt: int) -> Path:
    return Path(job_root) / job_id / f"a{attempt}"


def _write_result(out_dir: Path, payload: Dict) -> None:
    """Atomic-enough result drop: write then rename.

    The parent treats a missing ``result.json`` as "killed before it
    could report"; the rename keeps it from ever reading a torn file.
    """
    tmp = out_dir / (RESULT_FILE + ".tmp")
    tmp.write_text(json.dumps(payload, indent=1, default=str) + "\n")
    os.replace(tmp, out_dir / RESULT_FILE)


def read_result(out_dir: Path) -> Optional[Dict]:
    """The child's result payload, or None if it never reported."""
    path = Path(out_dir) / RESULT_FILE
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def job_process_main(
    spec_dict: Dict, out_dir: str, job_id: str, attempt: int
) -> None:
    """Child-process entry point (top level: must pickle for spawn).

    Runs the spec, writes ``result.json``, and exits 0/1.  Every
    failure path still drops a result — only an external kill (cancel,
    timeout, daemon death) leaves the directory without one.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    # a forked child inherits the daemon's SIGTERM/SIGINT handlers,
    # which would make it ignore terminate(); restore the defaults so
    # cancellation kills promptly instead of waiting out the SIGKILL grace
    import signal

    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    # ledger entries and any nested tooling see the owning job
    os.environ["REPRO_JOB_ID"] = job_id
    t0 = time.time()
    try:
        from repro.harness.jobspec import JobSpec

        spec = JobSpec.from_dict(spec_dict)
        if spec.kind == "canary":
            summary = _run_canary(spec, attempt)
        else:
            summary = _run_harness(spec, out, job_id)
        _write_result(out, {
            "ok": True,
            "attempt": attempt,
            "wall_seconds": round(time.time() - t0, 3),
            **summary,
        })
    except BaseException as exc:  # noqa: BLE001 - the report IS the handler
        payload = {
            "ok": False,
            "attempt": attempt,
            "wall_seconds": round(time.time() - t0, 3),
            "error": repr(exc),
            "error_type": type(exc).__name__,
            "traceback": traceback.format_exc(limit=20),
        }
        payload.update(_error_context(exc))
        bundles = sorted(
            glob.glob(str(out / POSTMORTEM_DIR / "postmortem-*.json"))
        )
        if bundles:
            payload["postmortem"] = [
                os.path.relpath(b, out) for b in bundles
            ]
        _write_result(out, payload)
        raise SystemExit(1)
    raise SystemExit(0)


def _error_context(exc: BaseException) -> Dict:
    """Structured fields for the failure classes the queue family raises."""
    try:
        from repro.simt.errors import QueueFullError, WedgeError
    except ImportError:  # pragma: no cover - core package always present
        return {}
    if isinstance(exc, QueueFullError):
        return {
            "queue_full": {
                "queue": getattr(exc, "queue", None),
                "shard": getattr(exc, "shard", None),
                "capacity": getattr(exc, "capacity", None),
                "fill": getattr(exc, "fill", None),
            }
        }
    if isinstance(exc, WedgeError):
        return {
            "wedge": {
                "classification": getattr(exc, "classification", None),
                "cycle": getattr(exc, "cycle", None),
            }
        }
    return {}


def _run_harness(spec, out: Path, job_id: str) -> Dict:
    from repro.harness.jobspec import run_job_spec

    artifacts = out / ARTIFACT_DIR
    summary = run_job_spec(
        spec,
        str(artifacts),
        job_id=job_id,
        postmortem_dir=str(out / POSTMORTEM_DIR),
    )
    summary["artifacts"] = [
        os.path.join(ARTIFACT_DIR, name) for name in summary["artifacts"]
    ]
    return summary


def _run_canary(spec, attempt: int) -> Dict:
    """Sleep, maybe fail: the scripted ops/test workload."""
    deadline = time.time() + spec.seconds
    while True:
        left = deadline - time.time()
        if left <= 0:
            break
        # short naps so terminate() lands promptly even on long canaries
        time.sleep(min(left, 0.05))
    if attempt <= spec.fail_attempts:
        raise CanaryFailure(
            f"canary scripted to fail attempt {attempt}"
            f" (fail_attempts={spec.fail_attempts})"
        )
    return {"artifacts": [], "slept_seconds": spec.seconds}
