"""Planted queue bugs: the checker's own test fixtures.

A verification harness that has never caught anything proves nothing —
maybe the invariants are vacuous, maybe the probe hooks miss the window
where the bug lives.  Each class here is a queue variant with one
deliberate, realistic concurrency bug (the kind a port to real hardware
could introduce), and ``python -m repro.verify selftest`` asserts the
oracle actually catches every one of them.  The probe instrumentation in
the planted queues stays *honest*: it reports what the sabotaged code
really does, never what correct code would have done — the oracle must
catch the bug from the observed history, not from a confession.

=====================  ==========  ===========================================
plant                  variant     bug / expected detection
=====================  ==========  ===========================================
``skip-dna-restore``   RF/AN       consumer forgets to restore the ``dna``
                                   sentinel after taking its token
                                   (Listing 2's write-back); caught at
                                   quiescence by the ``dna-not-restored``
                                   memory audit (non-circular) or as a
                                   spurious queue-full / ``wrap-overwrite``
                                   when circular.
``over-reserve``       RF/AN       proxy fetch-adds ``total + 1`` — reserves
                                   one slot more than the wavefront's hungry
                                   count; caught immediately by
                                   ``watch-reservation-mismatch``.
``lost-store``         RF/AN       publisher drops one token's slot write;
                                   the scheduler wedges (the task is counted
                                   in-flight but its token never lands) and
                                   the oracle localizes the wedge to the
                                   reserved-but-never-stored slot
                                   (``reservation-unfilled``).
``valid-before-data``  BASE        enqueuer sets the slot's valid flag
                                   *before* writing the data — the classic
                                   publication-ordering bug.  Only fails
                                   under schedules that delay the data store
                                   past a consumer's poll: caught as
                                   ``deliver-unwritten-slot`` under
                                   adversarial exploration, silent under the
                                   engine's native order.
``steal-double-        SHARDED     the thief republishes one stolen batch
deliver``                          twice (a re-executed transfer loop);
                                   caught by the multi-queue oracle at the
                                   second transfer announcement
                                   (``steal-double-transfer``).
``steal-lost-task``    SHARDED     the thief drops the last stolen token's
                                   home-side store; the scheduler wedges and
                                   the multi-queue oracle localizes the
                                   transfer that never landed
                                   (``steal-transfer-incomplete``).
``grow-link-lost-      GROW        the publisher crashes between winning the
task``                             segment-link CAS and completing the tail
                                   publish: the first store into the freshly
                                   linked segment never lands.  The scheduler
                                   wedges on the in-flight counter and the
                                   oracle localizes the reserved-but-empty
                                   slot (``reservation-unfilled`` /
                                   ``token-lost``).
``spill-reinject-      SPILL       the pump crashes between the re-publish
double-deliver``                   stores and the ring-head advance: head
                                   never moves, entries are never restored to
                                   ``dna``, so the next pump run re-publishes
                                   the same entries again.  Caught at the
                                   second announcement — the re-injected
                                   multiset exceeds the dead-dropped one
                                   (``reinject-unspilled``).
=====================  ==========  ===========================================
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.core.constants import DNA, FRONT, REAR
from repro.core.queue_api import (
    K_ARRIVAL_CHECKS,
    K_CAS_ROUNDS,
    K_DEQ_REQUESTS,
    K_DEQ_TOKENS,
    K_ENQ_TOKENS,
    K_PROXY_ATOMICS,
)
from repro.core.queue_adaptive import GrowQueue, SpillQueue
from repro.core.queue_base_cas import BaseCasQueue
from repro.core.queue_rfan import RetryFreeQueue
from repro.core.queue_sharded import ShardedQueue
from repro.simt import (
    Abort,
    AtomicKind,
    AtomicRMW,
    KernelContext,
    LocalOp,
    MemRead,
    MemWrite,
    Op,
)
from repro.simt.engine import transactions_for
from repro.simt.lanes import rank_within, segmented_rank
from repro.core.state import WavefrontQueueState


class SkipDnaRestoreQueue(RetryFreeQueue):
    """RF/AN whose consumers never restore the ``dna`` sentinel."""

    def acquire(
        self, ctx: KernelContext, st: WavefrontQueueState
    ) -> Generator[Op, Op, None]:
        custom = ctx.stats.custom
        probe = self._probe(ctx)
        n_hungry = st.n_hungry
        if n_hungry:
            hungry = st.hungry_mask()
            custom[K_DEQ_REQUESTS] += n_hungry
            ranks, total = rank_within(hungry)
            yield LocalOp(ctx.device.lds_op_cycles)
            op = AtomicRMW(self.buf_ctrl, FRONT, AtomicKind.ADD, total)
            yield op
            custom[K_PROXY_ATOMICS] += 1
            base = int(op.old[0])
            lanes = np.flatnonzero(hungry)
            st.watch(lanes, base + ranks[lanes])
            if probe is not None:
                probe.queue_counter(self.prefix, "front", probe.now, base + total)
                probe.queue_proxy(self.prefix, "acquire", total)
                probe.queue_reserve(self.prefix, "acquire", base, total)
                probe.queue_watch(self.prefix, base + ranks[lanes], probe.now)

        if st.n_watching == 0:
            return
        if st.cache is None:
            watching = st.slot >= 0
            raw = st.slot[watching]
            inb = self._in_bounds(raw)
            lanes = np.flatnonzero(watching)[inb]
            phys = np.asarray(self._phys(raw[inb]), dtype=np.int64)
            trans = transactions_for(phys) if phys.size else 0
            read = MemRead(self.buf_data, phys, trans=trans, prechecked=True)
            st.cache = (lanes, phys, read)
        lanes, phys, read = st.cache
        if lanes.size == 0:
            return
        yield read
        custom[K_ARRIVAL_CHECKS] += int(lanes.size)
        res = read.result
        if int(res.max()) == DNA:
            return
        arrived = res != DNA
        got_lanes = lanes[arrived]
        tokens = res[arrived]
        # BUG: the sentinel write-back (Listing 2's `slot = dna`) is
        # missing — the token is taken but the slot still looks full.
        if probe is not None:
            probe.queue_grant(self.prefix, st.slot[got_lanes], probe.now)
            probe.queue_deliver(self.prefix, st.slot[got_lanes], tokens)
        st.unwatch(got_lanes)
        st.grant(got_lanes, tokens)
        custom[K_DEQ_TOKENS] += int(got_lanes.size)


class OverReserveQueue(RetryFreeQueue):
    """RF/AN whose proxy reserves one slot more than it needs."""

    def acquire(
        self, ctx: KernelContext, st: WavefrontQueueState
    ) -> Generator[Op, Op, None]:
        custom = ctx.stats.custom
        probe = self._probe(ctx)
        n_hungry = st.n_hungry
        if n_hungry:
            hungry = st.hungry_mask()
            custom[K_DEQ_REQUESTS] += n_hungry
            ranks, total = rank_within(hungry)
            yield LocalOp(ctx.device.lds_op_cycles)
            # BUG: off-by-one in the aggregated count — the proxy claims
            # total + 1 slots but only `total` lanes park on them.
            op = AtomicRMW(self.buf_ctrl, FRONT, AtomicKind.ADD, total + 1)
            yield op
            custom[K_PROXY_ATOMICS] += 1
            base = int(op.old[0])
            lanes = np.flatnonzero(hungry)
            st.watch(lanes, base + ranks[lanes])
            if probe is not None:
                probe.queue_counter(
                    self.prefix, "front", probe.now, base + total + 1
                )
                probe.queue_proxy(self.prefix, "acquire", total + 1)
                probe.queue_reserve(self.prefix, "acquire", base, total + 1)
                probe.queue_watch(self.prefix, base + ranks[lanes], probe.now)
        # hand-off unchanged
        yield from self._poll_arrivals(ctx, st)

    def _poll_arrivals(
        self, ctx: KernelContext, st: WavefrontQueueState
    ) -> Generator[Op, Op, None]:
        custom = ctx.stats.custom
        probe = self._probe(ctx)
        if st.n_watching == 0:
            return
        if st.cache is None:
            watching = st.slot >= 0
            raw = st.slot[watching]
            inb = self._in_bounds(raw)
            lanes = np.flatnonzero(watching)[inb]
            phys = np.asarray(self._phys(raw[inb]), dtype=np.int64)
            trans = transactions_for(phys) if phys.size else 0
            read = MemRead(self.buf_data, phys, trans=trans, prechecked=True)
            st.cache = (lanes, phys, read)
        lanes, phys, read = st.cache
        if lanes.size == 0:
            return
        yield read
        custom[K_ARRIVAL_CHECKS] += int(lanes.size)
        res = read.result
        if int(res.max()) == DNA:
            return
        arrived = res != DNA
        got_lanes = lanes[arrived]
        tokens = res[arrived]
        if probe is not None:
            probe.queue_grant(self.prefix, st.slot[got_lanes], probe.now)
            probe.queue_deliver(self.prefix, st.slot[got_lanes], tokens)
        yield MemWrite(self.buf_data, phys[arrived], DNA)
        st.unwatch(got_lanes)
        st.grant(got_lanes, tokens)
        custom[K_DEQ_TOKENS] += int(got_lanes.size)


class LostStoreQueue(RetryFreeQueue):
    """RF/AN that silently drops the first token store of the launch."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._dropped = False

    def publish(
        self,
        ctx: KernelContext,
        st: WavefrontQueueState,
        counts: np.ndarray,
        tokens: np.ndarray,
    ) -> Generator[Op, Op, None]:
        stats = ctx.stats
        dev = ctx.device
        counts = np.asarray(counts, dtype=np.int64)
        has_new = counts > 0
        if not has_new.any():
            return
        ranks, total = segmented_rank(has_new, counts)
        yield LocalOp(dev.lds_op_cycles)
        op = AtomicRMW(self.buf_ctrl, REAR, AtomicKind.ADD, total)
        yield op
        stats.custom[K_PROXY_ATOMICS] += 1
        base = int(op.old[0])
        probe = self._probe(ctx)
        if probe is not None:
            probe.queue_counter(self.prefix, "rear", probe.now, base + total)
            probe.queue_proxy(self.prefix, "publish", total)
            probe.queue_reserve(self.prefix, "publish", base, total)

        max_count = int(counts.max())
        lane_base = base + ranks
        for t in range(max_count):
            active = counts > t
            raw = lane_base[active] + t
            oob = ~self._in_bounds(raw)
            if oob.any():
                yield Abort(
                    f"queue full: raw index {int(raw[oob][0])} beyond "
                    f"capacity {self.capacity}"
                )
            phys = self._phys(raw)
            check = MemRead(self.buf_data, phys)
            yield check
            if np.any(check.result != DNA):
                yield Abort(
                    "queue full: target slot not data-not-arrived "
                    "(Listing 3 line 25)"
                )
            vals = tokens[active, t]
            keep = np.ones(raw.size, dtype=bool)
            if not self._dropped:
                # BUG: the first store of the launch never reaches
                # memory (a masked-out lane, a lost write, a bad
                # predicate) — the reservation stays forever empty.
                self._dropped = True
                keep[-1] = False
            if keep.any():
                if probe is not None:
                    probe.queue_store(self.prefix, raw[keep], vals[keep])
                yield MemWrite(self.buf_data, np.asarray(phys)[keep], vals[keep])
        stats.custom[K_ENQ_TOKENS] += int(total)


class ValidBeforeDataQueue(BaseCasQueue):
    """BASE that publishes the valid flag before the data write.

    The classic publication-ordering bug: under most schedules the data
    store lands long before any consumer polls the flag, and nothing is
    observably wrong — only a schedule that *delays* the enqueuer between
    the two stores lets a consumer read a slot whose flag says ready but
    whose data never arrived.  This is the plant that justifies schedule
    exploration: the engine's native order never catches it.
    """

    def publish(
        self,
        ctx: KernelContext,
        st: WavefrontQueueState,
        counts: np.ndarray,
        tokens: np.ndarray,
    ) -> Generator[Op, Op, None]:
        stats = ctx.stats
        probe = self._probe(ctx)
        counts = np.asarray(counts, dtype=np.int64)
        if not (counts > 0).any():
            return
        placed = np.zeros_like(counts)
        first_round = True
        while True:
            pending = counts > placed
            if not pending.any():
                break
            if not first_round:
                stats.custom[K_CAS_ROUNDS] += 1
            first_round = False
            ctrl = self._read_ctrl()
            yield ctrl
            front, rear = int(ctrl.result[0]), int(ctrl.result[1])
            if probe is not None:
                probe.queue_counter(self.prefix, "front", probe.now, front)
                probe.queue_counter(self.prefix, "rear", probe.now, rear)
            ranks, n_round = rank_within(pending)
            if self._is_full(front, rear, n_round):
                yield Abort(
                    f"queue full: rear={rear} front={front} "
                    f"need={n_round} capacity={self.capacity}"
                )
            lanes = np.flatnonzero(pending)
            exp = rear + ranks[lanes]
            op = AtomicRMW(
                self.buf_ctrl,
                np.full(lanes.size, REAR, dtype=np.int64),
                AtomicKind.CAS,
                exp,
                exp + 1,
            )
            yield op
            won = op.success
            if not won.any():
                continue
            win_lanes = lanes[won]
            raw = exp[won]
            phys = self._phys(raw)
            if probe is not None:
                probe.queue_reserve(
                    self.prefix, "publish", int(raw[0]), int(raw.size)
                )
            if self.circular:
                while True:
                    vread = MemRead(self.buf_valid, phys)
                    yield vread
                    if not (vread.result == 1).any():
                        break
                    stats.custom[K_CAS_ROUNDS] += 1
            toks = tokens[win_lanes, placed[win_lanes]]
            # BUG: flag first, data second — consumers that poll inside
            # the window read a slot whose data has not arrived.
            yield MemWrite(self.buf_valid, phys, 1)
            if probe is not None:
                probe.queue_store(self.prefix, raw, toks)
            yield MemWrite(self.buf_data, phys, toks)
            placed[win_lanes] += 1
            stats.custom[K_ENQ_TOKENS] += int(win_lanes.size)


class StealDoubleDeliverQueue(ShardedQueue):
    """Sharded queue whose thief republishes one stolen batch twice.

    A re-executed transfer loop (the thief retries after a perceived
    failure that actually succeeded — classic CAS-result mishandling):
    the same source slots are announced, and their tokens stored at
    home, a second time.  The instrumentation stays honest — it reports
    the duplicated transfer exactly as the code performs it — and the
    multi-queue oracle must convict from the announcement alone.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._doubled = False

    def _republish(self, ctx, h, v, src_raw, src_phys, tokens):
        yield from super()._republish(ctx, h, v, src_raw, src_phys, tokens)
        if not self._doubled:
            self._doubled = True
            # BUG: the transfer loop runs again for the same batch.
            yield from super()._republish(
                ctx, h, v, src_raw, src_phys, tokens
            )


class StealLostTaskQueue(ShardedQueue):
    """Sharded queue whose thief drops one stolen token's home store.

    The destination-side reservation happens (the home Rear moved), the
    victim-side slot was consumed and restored, but the last token of
    the first transferred batch never lands at home — a masked-out lane
    or lost write in the republish loop.  The token is gone; the
    scheduler wedges on the in-flight counter.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._dropped = False

    def _store_batch(self, ctx, h, dst_raw, dst_phys, tokens):
        if not self._dropped and tokens.size:
            self._dropped = True
            keep = np.ones(tokens.size, dtype=bool)
            keep[-1] = False
            if keep.any():
                yield from super()._store_batch(
                    ctx, h, dst_raw[keep], dst_phys[keep], tokens[keep]
                )
            return
        yield from super()._store_batch(ctx, h, dst_raw, dst_phys, tokens)


class GrowLinkLostTaskQueue(GrowQueue):
    """GROW whose publisher crashes between segment-link CAS and publish.

    The link CAS wins and the segment map is updated, but the crash
    window swallows the first token store destined for the freshly
    linked segment (a masked-out lane at exactly the wrong moment).
    The reservation stands, the slot stays ``dna`` forever, the watcher
    parks forever, and the scheduler wedges on the in-flight counter.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._dropped = False

    def _store_batch(self, ctx, raw, phys, vals):
        if not self._dropped:
            beyond = raw // self.seg_cap >= 1
            if beyond.any():
                # BUG: the first store into a device-linked segment
                # (segment 0 is host-mapped) never reaches memory.
                self._dropped = True
                keep = np.ones(raw.size, dtype=bool)
                keep[int(np.flatnonzero(beyond)[0])] = False
                if keep.any():
                    yield from super()._store_batch(
                        ctx, raw[keep], phys[keep], vals[keep]
                    )
                return
        yield from super()._store_batch(ctx, raw, phys, vals)


class SpillReinjectDoubleDeliverQueue(SpillQueue):
    """SPILL whose pump crashes between re-publish and head advance.

    The re-injected tokens land in the ring, but the overflow-ring
    entries are never restored to ``dna`` and the head never advances —
    so the next pump run reads the very same entries and re-publishes
    them again.  The forced gate models the pump believing (correctly,
    per the un-advanced head) that work is still pending.
    """

    def _gate_ok(self):
        # BUG-ADJACENT: with the head stuck, (tail - head) never shrinks,
        # so an honest gate would keep pumping too; forcing it just makes
        # the second pump deterministic under the selftest scenario.
        return True

    def _retire_entries(self, ctx, entries, new_head):
        # BUG: the crash window — neither the dna restore nor the head
        # advance happens.
        return
        yield  # pragma: no cover - keeps this a generator


#: sharded-plant construction: two shards, eager stealing, so the steal
#: path fires deterministically under the selftest's fanout scenario.
_SHARDED_KW = {
    "n_shards": 2, "steal": True, "steal_quantum": 4, "spin_threshold": 1,
}

#: plant name -> (queue class, base variant, acceptable invariant names,
#: whether detection requires adversarial schedule exploration,
#: optional constructor kwargs).
PLANTS = {
    "skip-dna-restore": {
        "cls": SkipDnaRestoreQueue,
        "variant": "RF/AN",
        "invariants": {
            # non-circular: the quiescence memory audit; circular: the
            # un-restored slot either blocks a producer (spurious full),
            # collides with a wrapping store, or hands its stale token
            # to a consumer a generation late.
            "dna-not-restored", "wrap-overwrite", "unexpected-abort",
            "deliver-unwritten-slot",
        },
        "needs_schedule": False,
    },
    "over-reserve": {
        "cls": OverReserveQueue,
        "variant": "RF/AN",
        "invariants": {"watch-reservation-mismatch"},
        "needs_schedule": False,
    },
    "lost-store": {
        "cls": LostStoreQueue,
        "variant": "RF/AN",
        "invariants": {"reservation-unfilled", "token-lost"},
        "needs_schedule": False,
    },
    "valid-before-data": {
        "cls": ValidBeforeDataQueue,
        "variant": "BASE",
        "invariants": {"deliver-unwritten-slot", "token-corrupted"},
        "needs_schedule": True,
    },
    "steal-double-deliver": {
        "cls": StealDoubleDeliverQueue,
        "variant": "SHARDED",
        "invariants": {"steal-double-transfer"},
        "needs_schedule": False,
        "kwargs": dict(_SHARDED_KW),
    },
    "steal-lost-task": {
        "cls": StealLostTaskQueue,
        "variant": "SHARDED",
        # the transfer-completeness audit localizes it; the per-shard
        # conservation audits would also trip on the same hole.
        "invariants": {
            "steal-transfer-incomplete", "reservation-unfilled",
            "token-lost",
        },
        "needs_schedule": False,
        "kwargs": dict(_SHARDED_KW),
    },
    "grow-link-lost-task": {
        "cls": GrowLinkLostTaskQueue,
        "variant": "GROW",
        # the wedge audit localizes the reserved-but-empty slot.
        "invariants": {"reservation-unfilled", "token-lost"},
        "needs_schedule": False,
        "kwargs": {"seg_cap": 8, "pool_segments": 6},
    },
    "spill-reinject-double-deliver": {
        "cls": SpillReinjectDoubleDeliverQueue,
        "variant": "SPILL",
        # convicted synchronously at the duplicated announcement.
        "invariants": {"reinject-unspilled"},
        "needs_schedule": False,
        "kwargs": {"spill_capacity": 1024, "high_water": 10,
                   "low_water": 6},
    },
}


def make_planted_queue(
    plant: str,
    capacity: int,
    circular: bool = False,
    extra_kwargs: dict | None = None,
):
    """Instantiate the sabotaged queue for ``plant``.

    ``extra_kwargs`` (scenario-supplied adaptive geometry) override the
    plant's baked-in construction defaults.
    """
    try:
        spec = PLANTS[plant]
    except KeyError:
        raise ValueError(
            f"unknown plant {plant!r}; have {sorted(PLANTS)}"
        ) from None
    kwargs = dict(spec.get("kwargs", {}))
    if extra_kwargs:
        kwargs.update(extra_kwargs)
    return spec["cls"](capacity, circular=circular, **kwargs)
