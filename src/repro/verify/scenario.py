"""Scenario = one verified launch: (variant, workload, schedule, sizing).

A :class:`Scenario` is the JSON-serializable unit of exploration: it
fully determines one engine launch — queue variant (or planted bug),
workload and scale, launch geometry, capacity regime (including circular
wrap-around and deliberate undersizing), and the schedule-controller
spec.  :func:`run_scenario` executes it on :data:`~repro.simt.TESTGPU`
with an :class:`~repro.verify.oracle.InvariantOracle` attached and folds
everything that can happen — clean completion, invariant violation,
expected or unexpected queue-full abort, scheduler wedge, engine
timeout — into an :class:`Outcome`.

Because a scenario round-trips through ``to_dict``/``from_dict``, any
failure can be shipped as a JSON counterexample and replayed bit-for-bit
with ``python -m repro.verify replay`` (the engine is deterministic
given the scenario, so replay *is* reproduction).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.core import (
    SchedulerControl,
    ShardedQueue,
    make_queue,
    persistent_kernel,
    sharded_persistent_kernel,
)
from repro.core.scheduler import K_TASKS_DONE
from repro.simt import TESTGPU, Engine
from repro.simt.errors import KernelAbort, SimulationTimeout

from . import workloads
from .faults import make_planted_queue
from .oracle import InvariantOracle, MultiQueueOracle, VerificationError
from .schedule import build_controller

#: variants explored by default: the three shipping queues + the naive
#: ablation from repro.ext.
ALL_VARIANTS = ("RF/AN", "AN", "BASE", "NAIVE")

#: adaptive-capacity variants (repro.core.queue_adaptive), explored via
#: dedicated overflow scenarios on top of the default family.
ADAPTIVE_VARIANTS = ("GROW", "SPILL")

#: variants a scenario may name: the default family + the sharded
#: composition (explored via dedicated multi-shard scenarios rather
#: than the whole per-variant family — at ``shards=1`` it is RF/AN)
#: + the adaptive-capacity modes.
CLI_VARIANTS = ALL_VARIANTS + ("SHARDED",) + ADAPTIVE_VARIANTS


@dataclass
class Scenario:
    """One fully-determined verification launch (JSON-serializable)."""

    variant: str = "RF/AN"
    workload: str = "countdown"
    scale: int = 12
    n_wavefronts: int = 6
    capacity: Optional[int] = None      # None: auto-size (never full)
    circular: bool = False
    schedule: Optional[dict] = None     # see schedule.build_controller
    plant: Optional[str] = None         # planted bug (selftest only)
    expect_full: bool = False           # scenario *must* abort queue-full
    max_work_cycles: int = 20_000
    max_cycles: int = 10_000_000
    # sharded composition (variant "SHARDED"; ignored otherwise)
    shards: int = 1
    steal: bool = True
    steal_quantum: int = 4
    spin_threshold: int = 1
    # adaptive-capacity geometry (variants "GROW"/"SPILL" and their
    # plants; None means the queue's own defaults)
    seg_cap: Optional[int] = None
    pool_segments: Optional[int] = None
    max_segments: Optional[int] = None
    spill_capacity: Optional[int] = None
    high_water: Optional[int] = None
    low_water: Optional[int] = None
    pump_batch: Optional[int] = None

    def adaptive_kwargs(self) -> dict:
        """Constructor kwargs for the adaptive variants (set fields only)."""
        fields = (
            "seg_cap", "pool_segments", "max_segments",
            "spill_capacity", "high_water", "low_water", "pump_batch",
        )
        return {
            f: int(getattr(self, f))
            for f in fields
            if getattr(self, f) is not None
        }

    def resolved_capacity(self) -> int:
        if self.capacity is not None:
            return int(self.capacity)
        total = workloads.max_enqueues(self.workload, self.scale)
        if self.variant == "SPILL":
            # the ring only needs resident lanes + a publish/pump burst
            # margin (§4.2); fill excursions spill.  Auto-size like the
            # bare circular family so un-parameterized scenarios match.
            lanes = self.n_wavefronts * TESTGPU.wavefront_size
            return lanes + min(total, self.scale + 4) + 8
        if self.variant == "GROW":
            # physical pool; logical throughput is unbounded.  The pool
            # must cover the peak *live* working set, which undersized
            # scenarios set explicitly — the default never recycles.
            return total
        if not self.circular:
            # monotonic: one raw slot per token ever enqueued.  Sharded:
            # capacity is *per shard* — in the worst case one shard sees
            # every publish, and every cross-shard transfer additionally
            # consumes fresh raw slots at its destination.
            if self.shards > 1:
                return total + max(64, 16 * self.steal_quantum)
            return total
        # circular: must exceed in-flight + monitored entries (§4.2) —
        # every resident lane may park on a slot while the workload's
        # frontier is in the queue.
        lanes = self.n_wavefronts * TESTGPU.wavefront_size
        cap = lanes + min(total, self.scale + 4) + 8
        if self.shards > 1:
            cap += 16 * self.steal_quantum
        return cap

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "Scenario":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in d.items() if k in known})

    def label(self) -> str:
        bits = [self.variant, self.workload, f"s{self.scale}",
                f"w{self.n_wavefronts}"]
        if self.shards > 1:
            bits.append(
                f"sh{self.shards}" + ("+steal" if self.steal else "")
            )
        if self.circular:
            bits.append("circ")
        if self.plant:
            bits.append(f"plant={self.plant}")
        if self.expect_full:
            bits.append("full")
        sched = (self.schedule or {}).get("kind", "none")
        if sched != "none":
            seed = (self.schedule or {}).get("seed")
            bits.append(f"{sched}" + (f"#{seed}" if seed is not None else ""))
        return "/".join(bits)


@dataclass
class Outcome:
    """What one scenario run produced."""

    ok: bool
    invariant: Optional[str] = None
    detail: str = ""
    cycles: int = 0
    tasks_completed: int = 0
    events: int = 0
    scenario: dict = field(default_factory=dict)
    #: multiset of tokens delivered to lanes ({token: count}; clean runs
    #: only) — the differential queue-family suite compares this across
    #: variants.
    delivered_counts: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)


def _build_queue(sc: Scenario, capacity: int):
    if sc.plant is not None:
        return make_planted_queue(
            sc.plant, capacity, circular=sc.circular,
            extra_kwargs=sc.adaptive_kwargs(),
        )
    if sc.variant == "GROW":
        from repro.core import GrowQueue

        return GrowQueue(capacity, **sc.adaptive_kwargs())
    if sc.variant == "SPILL":
        from repro.core import SpillQueue

        return SpillQueue(capacity, **sc.adaptive_kwargs())
    if sc.variant == "NAIVE":
        from repro.ext.queue_naive_cas import NaiveCasQueue

        return NaiveCasQueue(capacity, circular=sc.circular)
    if sc.variant == "SHARDED":
        return ShardedQueue(
            capacity,
            circular=sc.circular,
            n_shards=sc.shards,
            steal=sc.steal,
            steal_quantum=sc.steal_quantum,
            spin_threshold=sc.spin_threshold,
        )
    return make_queue(sc.variant, capacity=capacity, circular=sc.circular)


def run_scenario(sc: Scenario) -> Outcome:
    """Execute one scenario under the invariant oracle.

    Never raises for a *finding* — any violation, wedge, or unexpected
    abort comes back as a failed :class:`Outcome` so the runner can
    shrink and serialize it.  Programming errors still propagate.
    """
    capacity = sc.resolved_capacity()
    worker, seeds, expected = workloads.build(sc.workload, sc.scale)
    queue = _build_queue(sc, capacity)
    eng = Engine(TESTGPU)
    sched = SchedulerControl()
    queue.allocate(eng.memory)
    sched.allocate(eng.memory)
    queue.seed(eng.memory, seeds)
    sched.seed(eng.memory, len(seeds))

    if getattr(queue, "n_shards", 1) > 1:
        oracle = MultiQueueOracle(queue)
        kern = sharded_persistent_kernel(queue, worker, sched)
    else:
        # a single-shard ShardedQueue is spec-identical to its inner
        # variant, so the plain sequential oracle applies verbatim.
        inner = queue.shards[0] if isinstance(queue, ShardedQueue) else queue
        oracle = InvariantOracle(inner)
        kern = persistent_kernel(queue, worker, sched)
    oracle.note_seed(seeds)
    controller = build_controller(sc.schedule)

    def failed(invariant: str, detail: str, res=None) -> Outcome:
        return Outcome(
            ok=False,
            invariant=invariant,
            detail=detail,
            cycles=getattr(res, "cycles", 0),
            tasks_completed=(
                int(res.stats.custom.get(K_TASKS_DONE, 0)) if res else 0
            ),
            events=oracle.events,
            scenario=sc.to_dict(),
        )

    try:
        res = eng.launch(
            kern,
            sc.n_wavefronts,
            params={"max_work_cycles": sc.max_work_cycles},
            max_cycles=sc.max_cycles,
            probe=oracle,
            controller=controller,
        )
    except VerificationError as exc:
        return failed(exc.invariant, exc.detail)
    except KernelAbort as exc:
        if sc.expect_full and "queue full" in str(exc):
            return Outcome(
                ok=True, detail=f"aborted as expected: {exc}",
                events=oracle.events, scenario=sc.to_dict(),
            )
        return failed(
            "unexpected-abort", f"{exc} | {oracle.summary()}"
        )
    except (SimulationTimeout, RuntimeError) as exc:
        # scheduler wedge or engine watchdog: let the oracle's
        # quiescence audit localize the wedge if it can.
        try:
            oracle.finish(None)
        except VerificationError as verr:
            return failed(
                verr.invariant, f"{verr.detail} | after wedge: {exc}"
            )
        return failed("hang", f"{exc} | {oracle.summary()}")

    if sc.expect_full:
        return failed(
            "missed-queue-full",
            f"capacity {capacity} < total enqueues but the launch "
            f"completed without a queue-full abort | {oracle.summary()}",
        )

    try:
        oracle.finish(eng.memory)
    except VerificationError as exc:
        return failed(exc.invariant, exc.detail, res)

    tasks = int(res.stats.custom.get(K_TASKS_DONE, 0))
    if tasks != expected:
        return failed(
            "task-count-mismatch",
            f"completed {tasks} tasks, workload defines {expected}",
            res,
        )
    n_delivered = oracle.n_lane_delivered
    if n_delivered != expected:
        return failed(
            "delivery-count-mismatch",
            f"queue delivered {n_delivered} tokens to lanes, workload "
            f"moves {expected} | {oracle.summary()}",
            res,
        )
    return Outcome(
        ok=True,
        cycles=res.cycles,
        tasks_completed=tasks,
        events=oracle.events,
        scenario=sc.to_dict(),
        delivered_counts={
            int(t): int(c) for t, c in oracle.delivered_token_counts().items()
        },
    )
