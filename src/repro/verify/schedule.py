"""Schedule controllers: adversarial wavefront-issue-order exploration.

The engine's event loop is deterministic — left alone it explores exactly
one interleaving per (kernel, launch geometry).  A *schedule controller*
rides :data:`repro.simt.engine.CONTROLLER_FACTORY` / the ``controller=``
launch argument and perturbs which ready wavefront a compute unit issues
next, or holds the CU idle for a cycle.  Because the engine applies the
controller strictly at the issue-selection point, every controlled
execution is still a legal hardware execution: memory semantics, atomic
serialization and cost charging are untouched.  The controllers here are
the exploration strategies of ``python -m repro.verify``:

* :class:`FifoController` — picks index 0 every time, i.e. exactly the
  uncontrolled engine order.  Exists so the determinism suite can pin
  that the controller hook itself is bit-invisible.
* :class:`RandomController` — seeded-random pick + occasional one-cycle
  holds; the workhorse of ``--quick`` / ``--deep`` exploration.
* :class:`DelayWavefrontController` — systematically de-prioritizes one
  wavefront (e.g. a proxy mid-reservation) to stretch the windows the
  retry-free property is supposed to protect.
* :class:`StarveCUController` — periodically refuses to issue from one
  CU, emulating long scheduling bubbles / preemption on half the device.

All controllers are reset by ``launch_begin`` so one instance can serve
several launches reproducibly.  :func:`build_controller` maps the JSON
schedule spec used by :class:`repro.verify.scenario.Scenario` to a
controller instance.
"""

from __future__ import annotations

import random
from typing import Optional


class ScheduleController:
    """Base schedule controller: issue in engine (FIFO) order.

    Subclasses override :meth:`pick`.  ``pick(now, cid, ready)`` returns
    an index into ``ready`` (a deque of ready wavefronts on CU ``cid`` at
    cycle ``now``), or any negative value to hold the CU for one cycle.
    """

    #: spec name used by :func:`build_controller` / scenario JSON.
    kind = "fifo"

    def launch_begin(self, device: object, n_wavefronts: int) -> None:
        """Reset per-launch state (called by the engine before cycle 0)."""

    def pick(self, now: int, cid: int, ready) -> int:
        return 0

    def describe(self) -> dict:
        """The JSON spec that :func:`build_controller` would map back."""
        return {"kind": self.kind}


class FifoController(ScheduleController):
    """Explicit engine-order controller (bit-identity pin in tests)."""

    kind = "fifo"


class RandomController(ScheduleController):
    """Seeded-random issue order with random preemption bursts.

    Each time a CU is about to issue, with probability ``hold_prob`` the
    controller instead freezes that CU for a random burst of up to
    ``burst`` cycles — modelling scheduling bubbles, instruction-cache
    misses, preemption.  Single-cycle holds barely perturb anything (the
    memory system's latencies are tens of cycles); *bursts* are what
    stretch the windows between a wavefront's consecutive stores wide
    enough for other wavefronts to observe intermediate states.

    Parameters
    ----------
    seed:
        PRNG seed; the PRNG is re-seeded at every ``launch_begin`` so the
        same controller object replays identically across launches.
    hold_prob:
        Probability (per issue opportunity) of starting a hold burst.
    burst:
        Maximum burst length in cycles (each burst's length is drawn
        uniformly from ``[1, burst]``).
    max_holds:
        Hard cap on total held cycles per launch, so a hostile (seed,
        hold_prob) pair cannot stretch a run towards the watchdog.
    """

    kind = "random"

    def __init__(self, seed: int, hold_prob: float = 0.05, burst: int = 48,
                 max_holds: int = 50_000):
        self.seed = int(seed)
        self.hold_prob = float(hold_prob)
        self.burst = int(burst)
        self.max_holds = int(max_holds)
        self._rng = random.Random(self.seed)
        self._holds = 0
        self._frozen: dict = {}

    def launch_begin(self, device: object, n_wavefronts: int) -> None:
        self._rng = random.Random(self.seed)
        self._holds = 0
        self._frozen = {}

    def pick(self, now: int, cid: int, ready) -> int:
        rng = self._rng
        rem = self._frozen.get(cid, 0)
        if rem > 0:
            self._frozen[cid] = rem - 1
            self._holds += 1
            return -1
        if (
            self.hold_prob > 0.0
            and self._holds < self.max_holds
            and rng.random() < self.hold_prob
        ):
            self._frozen[cid] = rng.randint(1, max(self.burst, 1)) - 1
            self._holds += 1
            return -1
        n = len(ready)
        return rng.randrange(n) if n > 1 else 0

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "hold_prob": self.hold_prob,
            "burst": self.burst,
            "max_holds": self.max_holds,
        }


class DelayWavefrontController(ScheduleController):
    """Always issue somebody else before wavefront ``target``.

    When only the target is ready on its CU, hold the CU for up to
    ``patience`` consecutive cycles before letting it through — this is
    the "delay the proxy" adversary: the target's in-flight reservation
    (AFA done, slots not yet watched/stored) stays open while every other
    wavefront races ahead over the reserved range.
    """

    kind = "delay"

    def __init__(self, target: int, patience: int = 64,
                 max_holds: int = 10_000):
        self.target = int(target)
        self.patience = int(patience)
        self.max_holds = int(max_holds)
        self._streak = 0
        self._holds = 0

    def launch_begin(self, device: object, n_wavefronts: int) -> None:
        self._streak = 0
        self._holds = 0

    def pick(self, now: int, cid: int, ready) -> int:
        for k, wf in enumerate(ready):
            if wf.wid != self.target:
                self._streak = 0
                return k
        # only the target is ready on this CU
        if self._streak < self.patience and self._holds < self.max_holds:
            self._streak += 1
            self._holds += 1
            return -1
        self._streak = 0
        return 0

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "patience": self.patience,
            "max_holds": self.max_holds,
        }


class StarveCUController(ScheduleController):
    """Periodically refuse to issue from one CU.

    During the first ``duty`` cycles of every ``period``-cycle window,
    CU ``cid`` issues nothing — emulating a long scheduling bubble on
    part of the device while the rest runs at full speed.  ``max_holds``
    bounds total interference per launch.
    """

    kind = "starve"

    def __init__(self, cid: int, period: int = 512, duty: int = 256,
                 max_holds: int = 50_000):
        if not 0 < duty < period:
            raise ValueError("need 0 < duty < period")
        self.cid = int(cid)
        self.period = int(period)
        self.duty = int(duty)
        self.max_holds = int(max_holds)
        self._holds = 0

    def launch_begin(self, device: object, n_wavefronts: int) -> None:
        self._holds = 0

    def pick(self, now: int, cid: int, ready) -> int:
        if (
            cid == self.cid
            and now % self.period < self.duty
            and self._holds < self.max_holds
        ):
            self._holds += 1
            return -1
        return 0

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "cid": self.cid,
            "period": self.period,
            "duty": self.duty,
            "max_holds": self.max_holds,
        }


def build_controller(spec: Optional[dict]) -> Optional[ScheduleController]:
    """Instantiate a controller from a scenario's JSON ``schedule`` spec.

    ``None`` or ``{"kind": "none"}`` mean *uncontrolled* (the engine's
    native order with the controller hook entirely absent — the
    bit-identical baseline).  Unknown kinds raise ``ValueError`` so a
    corrupted counterexample file fails loudly at replay.
    """
    if spec is None:
        return None
    kind = spec.get("kind", "none")
    if kind == "none":
        return None
    params = {k: v for k, v in spec.items() if k != "kind"}
    if kind == "fifo":
        return FifoController()
    if kind == "random":
        return RandomController(**params)
    if kind == "delay":
        return DelayWavefrontController(**params)
    if kind == "starve":
        return StarveCUController(**params)
    raise ValueError(f"unknown schedule kind: {kind!r}")
