"""The invariant oracle: a sequential spec replay of the queue history.

The oracle is a passive :class:`~repro.simt.probe.Probe` that receives
the queue's *logical* operation stream — reservations on Front/Rear,
token stores, token deliveries — and validates every event, as it
happens, against a sequential **FIFO-with-reservation** specification:

* reservations on each control word partition the raw index space:
  no two reservations ever overlap (a duplicated range), and at
  quiescence the reserved ranges tile ``[0, high)`` exactly (a
  permanent gap is a lost range);
* a reservation's watch set covers exactly the slots it claimed
  (the proxy reservation is contiguous and sized to the active mask);
* for variants without the retry-free property, ``front <= rear`` in
  every consistent control-word snapshot, and no dequeue reservation
  overruns the enqueue-side high-water mark;
* a slot is stored at most once, only after it was enqueue-reserved,
  in bounds for monotonic queues, and — for circular queues — only
  after its previous-generation occupant was delivered (wrap safety);
* a slot delivers exactly the token that was stored into it, at most
  once, and only after a dequeue-side reservation covered it;
* at quiescence nothing is lost or duplicated: stored and delivered
  slot sets coincide, leftover parked slots lie beyond the enqueued
  range, the control words equal the reservation totals, and the slot
  array / valid flags are back in their pristine (``dna`` / 0) state.

For the adaptive-capacity variants (:mod:`repro.core.queue_adaptive`)
the oracle additionally models segment hand-off and spill legality:

* **GROW** — the segment map is write-once (``segment-double-link``), a
  pool segment is never re-linked while a live logical segment still
  occupies it (``link-unreleased-segment``), a release names the
  mapping it dissolves (``release-unlinked-segment``, at most once:
  ``segment-double-release``) and may only fire once every slot of the
  logical segment was delivered (``release-undrained-segment``); stores
  are bounded by the *logical* index space and every stored-into
  segment must eventually be linked (``store-unlinked-segment``);
* **SPILL** — re-injections must be backed by outstanding spills, token
  for token (``reinject-unspilled``: the multiset of re-published
  tokens never exceeds the multiset dead-dropped), and at quiescence no
  spilled token is still parked in the overflow ring
  (``spill-never-reinjected``), whose entries must be back to the
  ``dna`` sentinel (``spill-ring-leak``).

What the callback stream does and does not order
------------------------------------------------
A wavefront's callbacks run when the engine *advances its generator* —
i.e. at the issue event of its next op — so callbacks between two
yields are adjacent in the stream and one wavefront's callbacks always
appear in program order.  Cross-wavefront, however, the stream is NOT
ordered by atomic service time: a schedule controller (or plain CU
contention) can delay a wavefront's resume arbitrarily, so the
wavefront that won a reservation *first* may report it *last*.  Every
check here is therefore phrased to be sound under that skew, using only
(a) per-wavefront program order, and (b) causality through memory: a
value read must have been written first, and the write's callback fires
at the write's issue, which precedes its memory effect.  That is why
reservations are interval-accounted rather than required to arrive in
sequence, and why the dequeue-overrun bound uses the claiming
wavefront's own sampled Rear (emitted earlier in its program order)
rather than the enqueue-side high-water mark alone.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.core.constants import DNA, FRONT, REAR
from repro.simt.probe import Probe


class VerificationError(AssertionError):
    """An invariant of the queue specification was violated.

    Attributes
    ----------
    invariant:
        Short machine-readable name of the violated invariant (used by
        the shrinker to confirm a reduced scenario fails the same way).
    detail:
        Human-readable description with the offending values.
    """

    def __init__(self, invariant: str, detail: str):
        self.invariant = invariant
        self.detail = detail
        super().__init__(f"[{invariant}] {detail}")


class InvariantOracle(Probe):
    """Checks one queue's operation history against the sequential spec.

    Construct with the queue under test, feed host-side seed tokens via
    :meth:`note_seed`, attach as the launch ``probe``, and call
    :meth:`finish` after a normally-completed launch.  Any violation
    raises :class:`VerificationError` at the exact event (mid-launch)
    or at quiescence.
    """

    def __init__(self, queue):
        self.queue = queue
        self.prefix = queue.prefix
        self.capacity = int(queue.capacity)
        self.circular = bool(queue.circular)
        self.variant = queue.variant
        self.retry_free = bool(queue.retry_free)
        #: raw slot -> token written there (host seed + device stores).
        self.stored: Dict[int, int] = {}
        #: raw slot -> token handed to a dequeuing lane.
        self.delivered: Dict[int, int] = {}
        #: raw slot -> cycle it was parked on (currently watched).
        self.watched: Dict[int, int] = {}
        #: raw slots covered by some enqueue reservation.
        self.enq_reserved: set = set()
        #: raw slots covered by some dequeue reservation.
        self.deq_reserved: set = set()
        #: enqueue-side reservation high-water mark (spec Rear).
        self.enq_next = 0
        #: dequeue-side reservation high-water mark (spec Front).
        self.deq_next = 0
        #: pending acquire reservation awaiting its watch set.
        self._pending_acquire: Optional[tuple] = None
        #: last counter sample, for consistent front/rear pair checks.
        self._last_counter: Optional[tuple] = None
        #: highest Rear value ever *sampled* (a sound lower bound on the
        #: true Rear: every non-retry-free dequeue reservation is
        #: preceded, in its own generator, by the rear sample that
        #: justified it, so cross-word callback skew cannot fake this).
        self._rear_seen = 0
        #: total events checked (reported by the runner).
        self.events = 0
        # -- adaptive-capacity model (repro.core.queue_adaptive) -------
        self.growable = bool(getattr(queue, "growable", False))
        self.spillable = bool(getattr(queue, "spillable", False))
        #: monotonic store bound: GROW runs to the *logical* index
        #: space, everything else to the physical capacity.
        self.store_bound = int(
            getattr(queue, "logical_capacity", self.capacity)
            if self.growable else self.capacity
        )
        if self.growable:
            self.seg_cap = int(queue.seg_cap)
            #: logical segment -> pool segment (the write-once map).
            self.seg_map: Dict[int, int] = {}
            #: pool segment -> logical segment currently occupying it.
            self.phys_live: Dict[int, int] = {}
            #: logical segments already recycled.
            self.seg_released: Set[int] = set()
            #: per-logical-segment delivery tally (release legality).
            self.seg_delivered: Counter = Counter()
            #: stores seen before their segment's link callback.  The
            #: winner's link callback can legally trail a loser's
            #: adopted-mapping stores in the cross-wavefront stream, so
            #: this is buffered, not convicted, until quiescence.
            self._seg_unlinked_stores: Dict[int, int] = {}
            self._adopt_host_segments()
        if self.spillable:
            #: multiset of tokens dead-dropped but not yet re-published.
            self.pending_spill: Counter = Counter()
            self.n_spilled = 0
            self.n_reinjected = 0

    def _adopt_host_segments(self) -> None:
        for logical, phys in getattr(self.queue, "_host_mapped", ()):
            self.seg_map.setdefault(int(logical), int(phys))
            self.phys_live.setdefault(int(phys), int(logical))

    # ------------------------------------------------------------------
    # host-side wiring
    # ------------------------------------------------------------------
    def note_seed(self, tokens) -> None:
        """Record host-seeded tokens (slots ``[0, len)`` pre-stored)."""
        for i, t in enumerate(np.asarray(tokens, dtype=np.int64)):
            self.stored[int(i)] = int(t)
            self.enq_reserved.add(int(i))
        self.enq_next = len(self.stored)
        if self.growable:
            # seeding may host-link further segments; adopt them.
            self._adopt_host_segments()

    def _fail(self, invariant: str, detail: str) -> None:
        raise VerificationError(
            invariant, f"{self.variant} queue {self.prefix!r}: {detail}"
        )

    # ------------------------------------------------------------------
    # probe callbacks
    # ------------------------------------------------------------------
    def queue_register(self, prefix: str, capacity: int, variant: str) -> None:
        if prefix != self.prefix:
            return
        if capacity != self.capacity:
            self._fail(
                "register-mismatch",
                f"registered capacity {capacity} != configured {self.capacity}",
            )

    def queue_counter(self, prefix, name, cycle, value) -> None:
        if prefix != self.prefix:
            return
        self.events += 1
        if value < 0:
            self._fail("counter-negative", f"{name} sampled negative: {value}")
        # front <= rear on consistent snapshots: the non-retry-free
        # variants sample both words from ONE coalesced read and report
        # them back-to-back within a single generator resume, so an
        # adjacent (front, rear) pair is a consistent snapshot.  RF/AN
        # never emits such pairs (its Front legally overruns Rear while
        # hungry lanes park on future slots).
        last = self._last_counter
        if (
            not self.retry_free
            and name == "rear"
            and last is not None
            and last[0] == "front"
        ):
            if last[1] > value:
                self._fail(
                    "front-exceeds-rear",
                    f"snapshot front={last[1]} > rear={value} at cycle {cycle}",
                )
        self._last_counter = (name, value)
        if name == "rear" and value > self._rear_seen:
            self._rear_seen = int(value)

    def queue_reserve(self, prefix, direction, base, count) -> None:
        if prefix != self.prefix:
            return
        self.events += 1
        base = int(base)
        count = int(count)
        if count <= 0:
            self._fail(
                "reserve-empty", f"{direction} reservation of {count} slots"
            )
        if direction == "acquire":
            if not self.retry_free and base + count > max(
                self._rear_seen, self.enq_next
            ):
                self._fail(
                    "deq-overrun",
                    f"dequeue reserved slots [{base}, {base + count}) beyond "
                    f"any sampled Rear ({self._rear_seen}) without the "
                    "retry-free property",
                )
            taken = self.deq_reserved
            for s in range(base, base + count):
                if s in taken:
                    self._fail(
                        "deq-reservation-overlap",
                        f"slot {s} dequeue-reserved twice (range "
                        f"[{base}, {base + count}) overlaps an earlier "
                        "reservation)",
                    )
                taken.add(s)
            if base + count > self.deq_next:
                self.deq_next = base + count
            self._pending_acquire = (base, count)
        elif direction == "publish":
            taken = self.enq_reserved
            for s in range(base, base + count):
                if s in taken:
                    self._fail(
                        "enq-reservation-overlap",
                        f"slot {s} enqueue-reserved twice (range "
                        f"[{base}, {base + count}) overlaps an earlier "
                        "reservation)",
                    )
                taken.add(s)
            if base + count > self.enq_next:
                self.enq_next = base + count
        else:  # pragma: no cover - defensive
            self._fail("reserve-direction", f"unknown direction {direction!r}")

    def queue_watch(self, prefix, slots, cycle) -> None:
        if prefix != self.prefix:
            return
        self.events += 1
        arr = np.asarray(slots, dtype=np.int64).reshape(-1)
        pending = self._pending_acquire
        self._pending_acquire = None
        if pending is not None:
            base, count = pending
            expect = np.arange(base, base + count, dtype=np.int64)
            if arr.size != count or not np.array_equal(np.sort(arr), expect):
                self._fail(
                    "watch-reservation-mismatch",
                    f"reservation [{base}, {base + count}) but lanes parked "
                    f"on {np.sort(arr).tolist()} (proxy reservation not "
                    "contiguous or not sized to the active mask)",
                )
        for s in arr:
            s = int(s)
            if s in self.watched:
                self._fail(
                    "slot-watched-twice",
                    f"slot {s} parked by two dequeuers concurrently "
                    "(over-reservation)",
                )
            if s in self.delivered:
                self._fail(
                    "watch-consumed-slot",
                    f"slot {s} re-parked after its token was delivered",
                )
            if s not in self.deq_reserved:
                self._fail(
                    "watch-unreserved-slot",
                    f"slot {s} parked without a dequeue reservation",
                )
            self.watched[s] = int(cycle)

    def queue_store(self, prefix, slots, values) -> None:
        if prefix != self.prefix:
            return
        self.events += 1
        arr = np.asarray(slots, dtype=np.int64).reshape(-1)
        vals = np.asarray(values, dtype=np.int64).reshape(-1)
        if vals.size != arr.size:
            vals = np.broadcast_to(vals, arr.shape)
        for s, v in zip(arr, vals):
            s, v = int(s), int(v)
            if v == DNA:
                self._fail(
                    "store-sentinel",
                    f"slot {s}: the dna sentinel was enqueued as a token",
                )
            if s not in self.enq_reserved:
                self._fail(
                    "store-unreserved-slot",
                    f"slot {s} written without an enqueue reservation",
                )
            if s in self.stored:
                self._fail(
                    "slot-stored-twice",
                    f"slot {s} written twice (had {self.stored[s]}, "
                    f"now {v}): entry duplicated or overwritten",
                )
            if not self.circular and s >= self.store_bound:
                self._fail(
                    "store-beyond-capacity",
                    f"slot {s} stored beyond "
                    + ("logical capacity" if self.growable else "capacity")
                    + f" {self.store_bound}: the queue-full abort failed "
                    "to fire",
                )
            if self.growable:
                seg = s // self.seg_cap
                if seg not in self.seg_map:
                    self._seg_unlinked_stores.setdefault(seg, s)
            if self.circular:
                prior = s - self.capacity
                if prior >= 0 and prior not in self.delivered:
                    self._fail(
                        "wrap-overwrite",
                        f"slot {s} reuses physical slot "
                        f"{s % self.capacity} whose previous occupant "
                        f"(raw {prior}) was never delivered",
                    )
            self.stored[s] = v

    def queue_deliver(self, prefix, slots, tokens) -> None:
        if prefix != self.prefix:
            return
        self.events += 1
        arr = np.asarray(slots, dtype=np.int64).reshape(-1)
        toks = np.asarray(tokens, dtype=np.int64).reshape(-1)
        for s, t in zip(arr, toks):
            s, t = int(s), int(t)
            if s in self.delivered:
                self._fail(
                    "slot-delivered-twice",
                    f"slot {s} delivered twice ({self.delivered[s]} then "
                    f"{t}): entry duplicated",
                )
            if s not in self.deq_reserved:
                self._fail(
                    "deliver-unreserved-slot",
                    f"slot {s} delivered without a dequeue reservation",
                )
            want = self.stored.get(s)
            if want is None:
                self._fail(
                    "deliver-unwritten-slot",
                    f"slot {s} delivered token {t} but nothing was ever "
                    "stored there (sentinel/data race: a dna or stale "
                    "value was handed out as a token)",
                )
            if t != want:
                self._fail(
                    "token-corrupted",
                    f"slot {s} delivered {t} but {want} was stored",
                )
            self.delivered[s] = t
            self.watched.pop(s, None)
            if self.growable:
                self.seg_delivered[s // self.seg_cap] += 1

    # ------------------------------------------------------------------
    # adaptive-capacity callbacks (GROW segment hand-off, SPILL legality)
    # ------------------------------------------------------------------
    def queue_segment_link(self, prefix, logical_seg, phys_seg, cycle) -> None:
        if prefix != self.prefix or not self.growable:
            return
        self.events += 1
        logical_seg, phys_seg = int(logical_seg), int(phys_seg)
        if logical_seg in self.seg_map:
            self._fail(
                "segment-double-link",
                f"logical segment {logical_seg} linked to pool segment "
                f"{phys_seg} but was already mapped to "
                f"{self.seg_map[logical_seg]} (the write-once segment-map "
                "CAS won twice)",
            )
        occupant = self.phys_live.get(phys_seg)
        if occupant is not None:
            self._fail(
                "link-unreleased-segment",
                f"pool segment {phys_seg} linked in as logical segment "
                f"{logical_seg} while logical segment {occupant} still "
                "occupies it (free-list pop of a live segment)",
            )
        self.seg_map[logical_seg] = phys_seg
        self.phys_live[phys_seg] = logical_seg
        self._seg_unlinked_stores.pop(logical_seg, None)

    def queue_segment_release(self, prefix, logical_seg, phys_seg) -> None:
        if prefix != self.prefix or not self.growable:
            return
        self.events += 1
        logical_seg, phys_seg = int(logical_seg), int(phys_seg)
        if logical_seg in self.seg_released:
            self._fail(
                "segment-double-release",
                f"logical segment {logical_seg} released twice",
            )
        if self.seg_map.get(logical_seg) != phys_seg:
            self._fail(
                "release-unlinked-segment",
                f"release of logical segment {logical_seg} names pool "
                f"segment {phys_seg} but the map says "
                f"{self.seg_map.get(logical_seg)}",
            )
        got = int(self.seg_delivered.get(logical_seg, 0))
        if got != self.seg_cap:
            self._fail(
                "release-undrained-segment",
                f"logical segment {logical_seg} released after only "
                f"{got}/{self.seg_cap} deliveries: recycling a segment "
                "whose slots are still in flight",
            )
        self.seg_released.add(logical_seg)
        self.phys_live.pop(phys_seg, None)

    def queue_spill(self, prefix, tokens) -> None:
        if prefix != self.prefix or not self.spillable:
            return
        self.events += 1
        toks = np.asarray(tokens, dtype=np.int64).reshape(-1)
        for t in toks:
            t = int(t)
            if t == DNA:
                self._fail(
                    "spill-sentinel",
                    "the dna sentinel was dead-dropped as a token",
                )
            self.pending_spill[t] += 1
        self.n_spilled += int(toks.size)

    def queue_reinject(self, prefix, slots, tokens) -> None:
        if prefix != self.prefix or not self.spillable:
            return
        self.events += 1
        toks = np.asarray(tokens, dtype=np.int64).reshape(-1)
        for t in toks:
            t = int(t)
            if self.pending_spill.get(t, 0) <= 0:
                self._fail(
                    "reinject-unspilled",
                    f"token {t} re-published from the overflow ring with "
                    "no matching outstanding spill (a duplicated or "
                    "invented re-injection)",
                )
            self.pending_spill[t] -= 1
        self.n_reinjected += int(toks.size)

    # ------------------------------------------------------------------
    # quiescence
    # ------------------------------------------------------------------
    def finish(self, memory=None) -> None:
        """Check conservation and pristine state after a drained run.

        Call only after a launch that completed normally (done flag
        raised, no abort): every enqueued token must have been consumed.
        """
        if not self.retry_free and self.deq_next > self.enq_next:
            self._fail(
                "deq-overrun",
                f"final dequeue high-water {self.deq_next} exceeds enqueue "
                f"high-water {self.enq_next} without the retry-free property",
            )
        # the reserved ranges must tile [0, high) at quiescence — a
        # permanent hole means a slot range was lost (transient holes
        # during the run are just cross-wavefront reporting skew).
        if len(self.enq_reserved) != self.enq_next:
            missing = next(
                s for s in range(self.enq_next) if s not in self.enq_reserved
            )
            self._fail(
                "enq-reservation-gap",
                f"enqueue reservations do not tile [0, {self.enq_next}): "
                f"slot {missing} was never reserved (lost range)",
            )
        if len(self.deq_reserved) != self.deq_next:
            missing = next(
                s for s in range(self.deq_next) if s not in self.deq_reserved
            )
            self._fail(
                "deq-reservation-gap",
                f"dequeue reservations do not tile [0, {self.deq_next}): "
                f"slot {missing} was never reserved (lost range)",
            )
        lost = sorted(set(self.stored) - set(self.delivered))
        if lost:
            self._fail(
                "token-lost",
                f"{len(lost)} stored token(s) never delivered, e.g. slot "
                f"{lost[0]} holding {self.stored[lost[0]]}",
            )
        if len(self.stored) != self.enq_next:
            self._fail(
                "reservation-unfilled",
                f"{self.enq_next} slots enqueue-reserved but only "
                f"{len(self.stored)} stored",
            )
        for s in self.watched:
            if s < self.enq_next:
                self._fail(
                    "parked-on-enqueued-slot",
                    f"run finished while a lane was parked on slot {s}, "
                    f"which lies inside the enqueued range "
                    f"[0, {self.enq_next})",
                )
        if self.growable and self._seg_unlinked_stores:
            seg, slot = next(iter(self._seg_unlinked_stores.items()))
            self._fail(
                "store-unlinked-segment",
                f"slot {slot} was stored into logical segment {seg}, "
                "which was never linked to a pool segment",
            )
        if self.spillable:
            leftover = +self.pending_spill
            if leftover:
                tok, cnt = next(iter(leftover.items()))
                self._fail(
                    "spill-never-reinjected",
                    f"{sum(leftover.values())} dead-dropped token(s) "
                    f"never re-published from the overflow ring, e.g. "
                    f"token {tok} (x{cnt})",
                )
        if memory is not None:
            ctrl = memory[self.queue.buf_ctrl]
            if int(ctrl[REAR]) != self.enq_next:
                self._fail(
                    "rear-mismatch",
                    f"final Rear={int(ctrl[REAR])} but "
                    f"{self.enq_next} slots were reserved",
                )
            if int(ctrl[FRONT]) != self.deq_next:
                self._fail(
                    "front-mismatch",
                    f"final Front={int(ctrl[FRONT])} but "
                    f"{self.deq_next} slots were reserved",
                )
            data = memory[self.queue.buf_data]
            stale = np.flatnonzero(data != DNA)
            if self.retry_free and stale.size:
                self._fail(
                    "dna-not-restored",
                    f"{stale.size} slot(s) not restored to the dna "
                    f"sentinel at quiescence, e.g. physical slot "
                    f"{int(stale[0])} holding {int(data[stale[0]])}",
                )
            valid_name = getattr(self.queue, "buf_valid", None)
            if valid_name is not None:
                valid = memory[valid_name]
                up = np.flatnonzero(valid != 0)
                if up.size:
                    self._fail(
                        "valid-not-cleared",
                        f"{up.size} valid flag(s) still set at "
                        f"quiescence, e.g. physical slot {int(up[0])}",
                    )
            if self.spillable:
                ring = memory[self.queue.buf_spill_toks]
                stale = np.flatnonzero(ring != DNA)
                if stale.size:
                    self._fail(
                        "spill-ring-leak",
                        f"{stale.size} overflow-ring entr(ies) not "
                        f"restored to the dna sentinel at quiescence, "
                        f"e.g. entry {int(stale[0])} holding "
                        f"{int(ring[stale[0]])}",
                    )

    # ------------------------------------------------------------------
    @property
    def n_lane_delivered(self) -> int:
        """Tokens handed to dequeuing lanes (single queue: all of them)."""
        return len(self.delivered)

    def delivered_token_counts(self) -> Counter:
        """Multiset of token values handed to lanes (differential tests
        compare this across variants: same workload, same multiset)."""
        return Counter(self.delivered.values())

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line progress digest (used to diagnose hung runs)."""
        return (
            f"enq_reserved={self.enq_next} stored={len(self.stored)} "
            f"deq_reserved={self.deq_next} delivered={len(self.delivered)} "
            f"parked={len(self.watched)} events={self.events}"
        )


class MultiQueueOracle(Probe):
    """The sharded-queue specification: per-shard FIFO + transfer legality.

    Wraps one :class:`InvariantOracle` per shard of a
    :class:`~repro.core.queue_sharded.ShardedQueue` — every per-shard
    invariant of the sequential spec keeps holding verbatim inside each
    shard — and layers the cross-shard rules of the steal protocol on
    top:

    * a transfer may only move slots the thief dequeue-reserved at the
      victim (``steal-unreserved-slot``), carrying exactly the tokens
      stored there (``steal-token-mismatch``), and no source slot is
      ever transferred twice (``steal-double-transfer``);
    * every announced transfer must land: the destination slots it
      reserved receive exactly the transferred tokens by quiescence
      (``steal-transfer-incomplete`` / ``steal-transfer-corrupted``);
    * conservation across shards: transfers cancel out, so the tokens
      delivered to *lanes* (per-shard deliveries minus transfer
      consumptions) equal the workload's ground truth — exposed via
      :attr:`n_lane_delivered` / :meth:`delivered_token_counts`, which
      the scenario runner checks against the expected totals.

    The per-shard ordering argument is unchanged from
    :class:`InvariantOracle`: a thief announces ``queue_steal``
    *between* its destination-side reservation and the victim-side
    delivery, all inside one generator resume, so the transfer
    classification can never race with the events it classifies.
    """

    def __init__(self, queue):
        self.queue = queue
        self.shards: Dict[str, InvariantOracle] = {
            sh.prefix: InvariantOracle(sh) for sh in queue.shards
        }
        #: (src_prefix, src_raw_slot) ever transferred out.
        self._transferred: Set[Tuple[str, int]] = set()
        #: (dst_prefix, dst_raw_slot) -> token expected to land there.
        self._expected_store: Dict[Tuple[str, int], int] = {}
        #: multiset of tokens currently announced as transfers (their
        #: victim-side delivery is a transfer, not a lane consumption).
        self._transfer_tokens: Counter = Counter()
        #: cross-shard transfer events checked here (not in sub-oracles).
        self._own_events = 0

    # -- bookkeeping shared with the scenario runner -------------------
    @property
    def events(self) -> int:
        return self._own_events + sum(o.events for o in self.shards.values())

    @property
    def n_lane_delivered(self) -> int:
        total = sum(len(o.delivered) for o in self.shards.values())
        return total - len(self._transferred)

    def delivered_token_counts(self) -> Counter:
        counts: Counter = Counter()
        for o in self.shards.values():
            counts.update(o.delivered.values())
        counts.subtract(self._transfer_tokens)
        return +counts

    def note_seed(self, tokens) -> None:
        """Split the host seed round-robin, exactly as
        :meth:`repro.core.queue_sharded.ShardedQueue.seed` does."""
        toks = list(tokens)
        n = len(self.queue.shards)
        for i, sh in enumerate(self.queue.shards):
            self.shards[sh.prefix].note_seed(toks[i::n])

    def _fail(self, invariant: str, detail: str) -> None:
        raise VerificationError(
            invariant, f"SHARDED queue {self.queue.prefix!r}: {detail}"
        )

    # -- per-shard event dispatch --------------------------------------
    def queue_register(self, prefix, capacity, variant) -> None:
        o = self.shards.get(prefix)
        if o is not None:
            o.queue_register(prefix, capacity, variant)

    def queue_counter(self, prefix, name, cycle, value) -> None:
        o = self.shards.get(prefix)
        if o is not None:
            o.queue_counter(prefix, name, cycle, value)

    def queue_reserve(self, prefix, direction, base, count) -> None:
        o = self.shards.get(prefix)
        if o is not None:
            o.queue_reserve(prefix, direction, base, count)

    def queue_watch(self, prefix, slots, cycle) -> None:
        o = self.shards.get(prefix)
        if o is not None:
            o.queue_watch(prefix, slots, cycle)

    def queue_store(self, prefix, slots, values) -> None:
        o = self.shards.get(prefix)
        if o is not None:
            o.queue_store(prefix, slots, values)

    def queue_deliver(self, prefix, slots, tokens) -> None:
        o = self.shards.get(prefix)
        if o is not None:
            o.queue_deliver(prefix, slots, tokens)

    def queue_segment_link(self, prefix, logical_seg, phys_seg, cycle) -> None:
        o = self.shards.get(prefix)
        if o is not None:
            o.queue_segment_link(prefix, logical_seg, phys_seg, cycle)

    def queue_segment_release(self, prefix, logical_seg, phys_seg) -> None:
        o = self.shards.get(prefix)
        if o is not None:
            o.queue_segment_release(prefix, logical_seg, phys_seg)

    def queue_spill(self, prefix, tokens) -> None:
        o = self.shards.get(prefix)
        if o is not None:
            o.queue_spill(prefix, tokens)

    def queue_reinject(self, prefix, slots, tokens) -> None:
        o = self.shards.get(prefix)
        if o is not None:
            o.queue_reinject(prefix, slots, tokens)

    # -- the cross-shard rules -----------------------------------------
    def queue_steal(
        self, src_prefix, dst_prefix, src_slots, dst_base, tokens
    ) -> None:
        self._own_events += 1
        src = self.shards.get(src_prefix)
        dst = self.shards.get(dst_prefix)
        if src is None or dst is None:
            self._fail(
                "steal-unknown-shard",
                f"transfer between {src_prefix!r} and {dst_prefix!r}, at "
                f"least one of which is not a shard of this queue",
            )
        if src_prefix == dst_prefix:
            self._fail(
                "steal-self-transfer",
                f"shard {src_prefix!r} announced a transfer to itself",
            )
        arr = np.asarray(src_slots, dtype=np.int64).reshape(-1)
        toks = np.asarray(tokens, dtype=np.int64).reshape(-1)
        if toks.size != arr.size:
            self._fail(
                "steal-shape-mismatch",
                f"{arr.size} source slots but {toks.size} tokens",
            )
        dst_base = int(dst_base)
        for i, (s, t) in enumerate(zip(arr, toks)):
            s, t = int(s), int(t)
            if (src_prefix, s) in self._transferred:
                self._fail(
                    "steal-double-transfer",
                    f"source slot {s} of shard {src_prefix!r} transferred "
                    "twice: the batch was duplicated",
                )
            if s not in src.deq_reserved:
                self._fail(
                    "steal-unreserved-slot",
                    f"source slot {s} of shard {src_prefix!r} transferred "
                    "without a dequeue-side claim on the victim's Front",
                )
            want = src.stored.get(s)
            if want is None or want != t:
                self._fail(
                    "steal-token-mismatch",
                    f"transfer carries token {t} from slot {s} of shard "
                    f"{src_prefix!r} but "
                    + ("nothing" if want is None else f"{want}")
                    + " was stored there",
                )
            self._transferred.add((src_prefix, s))
            self._transfer_tokens[t] += 1
            key = (dst_prefix, dst_base + i)
            if key in self._expected_store:
                self._fail(
                    "steal-double-transfer",
                    f"destination slot {dst_base + i} of shard "
                    f"{dst_prefix!r} targeted by two transfers",
                )
            self._expected_store[key] = t

    # -- quiescence ----------------------------------------------------
    def finish(self, memory=None) -> None:
        # transfer completeness first: it localizes a steal-path bug
        # more precisely than the per-shard conservation audits below.
        for (dst_prefix, slot), tok in sorted(self._expected_store.items()):
            got = self.shards[dst_prefix].stored.get(slot)
            if got is None:
                self._fail(
                    "steal-transfer-incomplete",
                    f"transfer reserved slot {slot} of shard "
                    f"{dst_prefix!r} for token {tok} but the store never "
                    "landed (token lost in transit)",
                )
            if got != tok:
                self._fail(
                    "steal-transfer-corrupted",
                    f"transfer put {got} into slot {slot} of shard "
                    f"{dst_prefix!r}, expected {tok}",
                )
        for o in self.shards.values():
            o.finish(memory)

    def summary(self) -> str:
        parts = [
            f"{prefix}: {o.summary()}" for prefix, o in self.shards.items()
        ]
        parts.append(
            f"transfers={len(self._transferred)} "
            f"pending_landings={len(self._expected_store)}"
        )
        return " | ".join(parts)
