"""Deterministic irregular workloads used by the verification scenarios.

These mirror the toy workloads of the scheduler integration tests —
small, exactly countable task graphs — because the checker needs a
*ground truth*: for every scenario the total number of tasks, and hence
the exact number of tokens that must flow through the queue, is known in
closed form.  The oracle then checks conservation (every enqueued token
delivered exactly once) against that number.

* ``countdown(scale)`` — seeds ``[scale, scale-1, scale-2]`` (clipped at
  0); token ``v`` spawns ``v-1`` while positive.  Long dependent chains:
  low parallelism, sustained queue traffic, total ``sum(seed_i + 1)``.
* ``fanout(scale)`` — seed ``[0]``; token ``v`` spawns ``2v+1``/``2v+2``
  below ``scale``.  A binary tree: bursty arbitrary-n publishes, wide
  parallelism, total ``scale``.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.core import WorkCycleResult
from repro.simt import Compute


class CountdownWorker:
    """Token ``v`` spawns ``v - 1`` while positive (chain workload)."""

    def make_state(self, ctx) -> object:
        return None

    def work_cycle(
        self, ctx, wstate, st
    ) -> Iterator[object]:
        active = st.has_token
        yield Compute(4)
        toks = st.token.copy()
        counts = np.where(active & (toks > 0), 1, 0).astype(np.int64)
        new = np.maximum(toks - 1, 0).reshape(-1, 1)
        return WorkCycleResult(  # type: ignore[return-value]
            completed=active.copy(), new_counts=counts, new_tokens=new
        )


class FanoutWorker:
    """Token ``v`` spawns ``2v+1`` and ``2v+2`` below ``n`` (tree)."""

    def __init__(self, n: int):
        self.n = int(n)

    def make_state(self, ctx) -> object:
        return None

    def work_cycle(
        self, ctx, wstate, st
    ) -> Iterator[object]:
        active = st.has_token
        yield Compute(4)
        wf = st.wavefront_size
        counts = np.zeros(wf, dtype=np.int64)
        new = np.zeros((wf, 2), dtype=np.int64)
        for lane in np.flatnonzero(active):
            v = int(st.token[lane])
            kids = [c for c in (2 * v + 1, 2 * v + 2) if c < self.n]
            counts[lane] = len(kids)
            for j, c in enumerate(kids):
                new[lane, j] = c
        return WorkCycleResult(  # type: ignore[return-value]
            completed=active.copy(), new_counts=counts, new_tokens=new
        )


WORKLOADS = ("countdown", "fanout")


def build(name: str, scale: int) -> Tuple[object, list, int]:
    """Return ``(worker, seed_tokens, expected_total_tasks)``.

    ``expected_total_tasks`` is the exact number of tasks the scheduler
    must complete — and therefore the exact number of tokens that must
    pass through the queue (seeds included).
    """
    scale = int(scale)
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if name == "countdown":
        seeds = [max(scale - k, 0) for k in range(3)]
        return CountdownWorker(), seeds, sum(v + 1 for v in seeds)
    if name == "fanout":
        return FanoutWorker(scale), [0], scale
    raise ValueError(f"unknown workload: {name!r}")


def max_enqueues(name: str, scale: int) -> int:
    """Total tokens ever enqueued (= expected tasks): sizes non-circular
    capacity so a scenario is full-free by construction."""
    _, _, total = build(name, scale)
    return total
