"""Schedule exploration + linearizability checking for the queue family.

The paper's central claims — retry-free enqueue/dequeue via AFA, the
``dna``-sentinel refactoring of queue-empty, and arbitrary-n proxy
reservations — are *concurrency correctness* claims, yet the engine is
deterministic: ordinary tests only ever exercise the one interleaving
the event loop happens to produce.  This package closes that gap:

* :mod:`repro.verify.schedule` — schedule controllers that ride the
  engine's ``controller`` hook (:data:`repro.simt.engine.CONTROLLER_FACTORY`)
  and perturb wavefront issue order: seeded-random interleavings plus
  targeted adversarial schedules (delay-the-proxy, starve-one-CU).
* :mod:`repro.verify.oracle` — an invariant oracle
  (:class:`~repro.verify.oracle.InvariantOracle`) that records the
  operation history through the passive probe interface and replays it,
  event by event, against a sequential FIFO-with-reservation
  specification; violations raise
  :class:`~repro.verify.oracle.VerificationError` at the exact step.
* :mod:`repro.verify.scenario` / :mod:`repro.verify.runner` — the
  JSON-serializable scenario space (variant x workload x schedule x
  capacity regime) and the ``--quick`` / ``--deep`` exploration plans.
* :mod:`repro.verify.faults` — deliberately planted queue bugs used to
  self-test the checker (a checker that catches nothing proves nothing).
* :mod:`repro.verify.shrink` — a greedy counterexample shrinker that
  minimizes a failing scenario and emits a replayable JSON artifact.

Run ``python -m repro.verify --quick`` (PR budget) or ``--deep``
(nightly budget); replay a counterexample with
``python -m repro.verify replay <file>``.  See ``docs/verification.md``.
"""

from __future__ import annotations

from .oracle import InvariantOracle, VerificationError
from .scenario import Outcome, Scenario, run_scenario
from .schedule import (
    DelayWavefrontController,
    FifoController,
    RandomController,
    ScheduleController,
    StarveCUController,
    build_controller,
)

__all__ = [
    "DelayWavefrontController",
    "FifoController",
    "InvariantOracle",
    "Outcome",
    "RandomController",
    "Scenario",
    "ScheduleController",
    "StarveCUController",
    "VerificationError",
    "build_controller",
    "run_scenario",
]
