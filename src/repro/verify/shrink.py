"""Greedy counterexample shrinking + replayable JSON artifacts.

When exploration finds a failing scenario, the raw counterexample is
usually bigger than the bug: more wavefronts, a larger workload, a
noisier schedule than the violation needs.  :func:`shrink` re-runs
systematically smaller variants and keeps any reduction that still
trips the *same invariant* — the classic greedy delta-debugging loop,
bounded by a run budget.  Because the engine is deterministic given a
scenario, a shrunk scenario is not a "probably still fails" guess: the
reduced run in hand *is* the counterexample.

:func:`write_counterexample` serializes the result as JSON with enough
context to reproduce (`python -m repro.verify replay <file>`) and to
see at a glance what broke.
"""

from __future__ import annotations

import json
from typing import List, Optional, Tuple

from .scenario import Outcome, Scenario, run_scenario

SCHEMA = "repro.verify.counterexample/v1"


def _candidates(sc: Scenario) -> List[Scenario]:
    """Single-step reductions of ``sc``, most aggressive first."""
    out: List[Scenario] = []

    def variant(**over) -> Scenario:
        d = sc.to_dict()
        d.update(over)
        return Scenario.from_dict(d)

    # shrink the workload
    for frac in (4, 2):
        if sc.scale // frac >= 1:
            out.append(variant(scale=sc.scale // frac))
    if sc.scale > 1:
        out.append(variant(scale=sc.scale - 1))
    # shrink the launch
    for n in (2, sc.n_wavefronts // 2, sc.n_wavefronts - 1):
        if 1 <= n < sc.n_wavefronts:
            out.append(variant(n_wavefronts=n))
    # simplify the schedule
    if sc.schedule is not None:
        out.append(variant(schedule=None))
        kind = sc.schedule.get("kind")
        if kind == "random":
            burst = int(sc.schedule.get("burst", 48))
            if burst > 8:
                out.append(variant(
                    schedule={**sc.schedule, "burst": burst // 2}))
        if kind == "delay":
            patience = int(sc.schedule.get("patience", 64))
            if patience > 8:
                out.append(variant(
                    schedule={**sc.schedule, "patience": patience // 2}))
    # simplify the sharded composition: fewer shards, stealing off (a
    # sharded failure that survives shards=1 is an inner-variant bug)
    if sc.shards > 1:
        out.append(variant(shards=1))
        if sc.shards > 2:
            out.append(variant(shards=2))
        if sc.steal:
            out.append(variant(steal=False))
    # drop circularity (keeps capacity; the wrap bug may be a plain bug)
    if sc.circular:
        out.append(variant(circular=False, capacity=None))
    # shrink the adaptive-capacity geometry (GROW segments, SPILL ring):
    # smaller segments / batches mean fewer ops per link or pump run,
    # so the surviving counterexample isolates the protocol step.
    for f in ("seg_cap", "pool_segments", "spill_capacity", "pump_batch"):
        v = getattr(sc, f)
        if v is not None and int(v) > 1:
            out.append(variant(**{f: max(1, int(v) // 2)}))
    return out


def shrink(
    failure: Outcome, budget: int = 60
) -> Tuple[Scenario, Outcome, int]:
    """Greedily minimize a failing scenario, preserving its invariant.

    Returns ``(scenario, outcome, runs_used)`` — the smallest scenario
    found that still fails with ``failure.invariant``, its (fresh)
    outcome, and how many verification runs the search spent.
    """
    best_sc = Scenario.from_dict(failure.scenario)
    best_out = failure
    runs = 0
    improved = True
    while improved and runs < budget:
        improved = False
        for cand in _candidates(best_sc):
            if runs >= budget:
                break
            out = run_scenario(cand)
            runs += 1
            if not out.ok and out.invariant == failure.invariant:
                best_sc, best_out = cand, out
                improved = True
                break  # restart reductions from the smaller scenario
    return best_sc, best_out, runs


def counterexample_dict(
    original: Outcome,
    shrunk_sc: Scenario,
    shrunk_out: Outcome,
    shrink_runs: int,
) -> dict:
    return {
        "schema": SCHEMA,
        "invariant": shrunk_out.invariant,
        "detail": shrunk_out.detail,
        "scenario": shrunk_sc.to_dict(),
        "original_scenario": original.scenario,
        "original_detail": original.detail,
        "shrink_runs": shrink_runs,
        "replay": "python -m repro.verify replay <this-file>",
    }


def write_counterexample(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_counterexample(path: str) -> Tuple[Scenario, Optional[str]]:
    """Load a counterexample file; returns (scenario, expected invariant)."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: not a {SCHEMA} file (schema="
            f"{payload.get('schema')!r})"
        )
    return Scenario.from_dict(payload["scenario"]), payload.get("invariant")
