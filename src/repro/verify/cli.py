"""Command-line interface: ``python -m repro.verify``.

Subcommands
-----------
``explore`` (default)
    Run the ``--quick`` (PR gate) or ``--deep`` (nightly) schedule
    exploration.  On a finding, the counterexample is shrunk and
    written as a JSON artifact; exit code 1.
``replay FILE``
    Re-run a counterexample artifact.  Exit 1 if the failure still
    reproduces (the bug is present), 0 if it no longer does.
``selftest``
    Plant every known bug and confirm the oracle catches it.  Exit 2
    on an insensitive checker.

Exit codes: 0 = verified clean, 1 = counterexample found / reproduced,
2 = checker insensitivity or usage error.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from .runner import Report, deep_plan, quick_plan, run_plan, selftest
from .scenario import CLI_VARIANTS, Scenario, run_scenario
from .shrink import (
    counterexample_dict,
    load_counterexample,
    shrink,
    write_counterexample,
)


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Schedule-exploration linearizability checker "
        "for the concurrent-queue family.",
    )
    sub = p.add_subparsers(dest="cmd")

    ex = sub.add_parser("explore", help="run the exploration plan")
    _explore_args(ex)
    # `explore` is the default subcommand: accept its flags at top level
    _explore_args(p)

    rp = sub.add_parser("replay", help="re-run a counterexample artifact")
    rp.add_argument("file", help="counterexample JSON file")

    st = sub.add_parser("selftest", help="verify the checker catches "
                        "planted bugs")
    st.add_argument("--deep", action="store_true",
                    help="larger schedule sweeps for race-dependent plants")
    return p


def _explore_args(p: argparse.ArgumentParser) -> None:
    budget = p.add_mutually_exclusive_group()
    budget.add_argument("--quick", action="store_true",
                        help="PR budget: a few hundred scenarios (default)")
    budget.add_argument("--deep", action="store_true",
                        help="nightly budget: ~10x quick")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed for the schedule PRNGs")
    p.add_argument("--variant", action="append", choices=CLI_VARIANTS,
                   help="restrict to these variants (repeatable)")
    p.add_argument("--max-scenarios", type=int, default=None,
                   help="cap the plan (debugging aid)")
    p.add_argument("--keep-going", action="store_true",
                   help="run the whole plan instead of stopping at the "
                   "first finding")
    p.add_argument("--out", default=".",
                   help="directory for counterexample artifacts")
    p.add_argument("--no-selftest", action="store_true",
                   help="skip the planted-bug selftest")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print every scenario as it runs")


def _run_selftest(deep: bool) -> bool:
    t0 = time.monotonic()
    results = selftest(deep=deep)
    ok = True
    for r in results:
        mark = "caught" if r.caught else "MISSED"
        via = f" via {r.invariant}" if r.caught else (
            f" (tripped {r.invariant} instead)" if r.invariant else ""
        )
        print(f"  selftest {r.plant:<18} {mark}{via} "
              f"[{r.runs} run(s), expects one of {list(r.expected)}]")
        ok &= r.caught
    print(f"  selftest: {'PASS' if ok else 'FAIL'} "
          f"({time.monotonic() - t0:.1f}s)")
    return ok


def _cmd_explore(args) -> int:
    deep = bool(args.deep)
    plan = deep_plan(args.seed) if deep else quick_plan(args.seed)
    if args.variant:
        wanted = set(args.variant)
        plan = [sc for sc in plan if sc.variant in wanted]
    label = "deep" if deep else "quick"

    if not args.no_selftest:
        print(f"[verify] selftest ({'deep' if deep else 'quick'} sweeps)")
        if not _run_selftest(deep):
            print("[verify] checker is INSENSITIVE to planted bugs — "
                  "aborting (a green run would be meaningless)")
            return 2

    print(f"[verify] exploring {len(plan)} scenarios ({label} plan, "
          f"seed {args.seed})")
    progress = None
    if args.verbose:
        def progress(i, total, sc):
            print(f"  [{i + 1}/{total}] {sc.label()}")
    rep: Report = run_plan(
        plan,
        keep_going=args.keep_going,
        max_scenarios=args.max_scenarios,
        progress=progress,
    )
    print(f"[verify] {rep.n_ok}/{rep.n_run} scenarios passed, "
          f"{rep.events} oracle events, {rep.elapsed:.1f}s")
    if rep.ok:
        print("[verify] PASS: no invariant violations found")
        return 0

    os.makedirs(args.out, exist_ok=True)
    code = 1
    for i, failure in enumerate(rep.failures):
        print(f"[verify] FINDING {i + 1}: [{failure.invariant}] "
              f"{failure.detail}")
        print(f"[verify] shrinking "
              f"{Scenario.from_dict(failure.scenario).label()} ...")
        sc, out, runs = shrink(failure)
        payload = counterexample_dict(failure, sc, out, runs)
        path = os.path.join(
            args.out, f"counterexample-{failure.invariant}-{i + 1}.json"
        )
        write_counterexample(path, payload)
        print(f"[verify]   shrunk to {sc.label()} in {runs} runs")
        print(f"[verify]   artifact: {path}")
        print(f"[verify]   replay:   python -m repro.verify replay {path}")
    return code


def _cmd_replay(args) -> int:
    try:
        sc, expected = load_counterexample(args.file)
    except (OSError, ValueError, KeyError) as exc:
        print(f"[verify] cannot load counterexample: {exc}", file=sys.stderr)
        return 2
    print(f"[verify] replaying {sc.label()} "
          f"(expected invariant: {expected})")
    out = run_scenario(sc)
    if out.ok:
        print("[verify] does NOT reproduce: scenario passed")
        return 0
    same = out.invariant == expected
    print(f"[verify] REPRODUCED{'':s}: [{out.invariant}] {out.detail}"
          + ("" if same else f" (file expected {expected})"))
    return 1


def _cmd_selftest(args) -> int:
    return 0 if _run_selftest(bool(args.deep)) else 2


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    cmd = args.cmd or "explore"
    if cmd == "explore":
        return _cmd_explore(args)
    if cmd == "replay":
        return _cmd_replay(args)
    if cmd == "selftest":
        return _cmd_selftest(args)
    return 2  # pragma: no cover - argparse guards this
