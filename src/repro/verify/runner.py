"""Exploration plans and the verification run loop.

Two budgets, mirroring how the checker is wired into CI:

* :func:`quick_plan` — the PR gate: a couple hundred scenarios (every
  variant x workload x schedule family, seeded-random plus the targeted
  adversaries, circular wrap pressure, a deliberate queue-full) sized
  to finish well inside 90 s on one core.
* :func:`deep_plan` — the nightly sweep: the same families at ~10x the
  seed count, larger scales and more launch geometries.

:func:`run_plan` executes scenarios until the first failure (or all of
them with ``keep_going``), and :func:`selftest` plants known bugs to
prove the oracle can actually catch them — a checker whose selftest
fails is *insensitive* and its green runs are meaningless.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .faults import PLANTS
from .scenario import ALL_VARIANTS, Outcome, Scenario, run_scenario

#: random-schedule shape used across plans: bursts must comfortably
#: exceed the memory latencies (16/40 cycles) to open real race windows.
_RANDOM = {"kind": "random", "hold_prob": 0.15, "burst": 48}


def _random(seed: int, **over) -> dict:
    d = dict(_RANDOM)
    d["seed"] = int(seed)
    d.update(over)
    return d


def quick_plan(base_seed: int = 0) -> List[Scenario]:
    """The PR-budget plan: >= 200 schedules across all four variants."""
    plan: List[Scenario] = []
    for variant in ALL_VARIANTS:
        # engine-native order, both workloads
        plan.append(Scenario(variant=variant, workload="countdown", scale=12))
        plan.append(Scenario(variant=variant, workload="fanout", scale=63))
        # seeded-random exploration
        for k in range(20):
            plan.append(Scenario(
                variant=variant, workload="countdown", scale=12,
                schedule=_random(base_seed + k),
            ))
        for k in range(15):
            plan.append(Scenario(
                variant=variant, workload="fanout", scale=63,
                schedule=_random(base_seed + 100 + k),
            ))
        # circular wrap-around pressure (tight capacity)
        for k in range(6):
            plan.append(Scenario(
                variant=variant, workload="countdown", scale=24,
                circular=True, capacity=60,
                schedule=_random(base_seed + 200 + k),
            ))
        # delay-the-proxy adversary, every wavefront in turn
        for tgt in range(6):
            plan.append(Scenario(
                variant=variant, workload="countdown", scale=12,
                schedule={"kind": "delay", "target": tgt, "patience": 96},
            ))
        # starve each CU with two different window shapes
        for cid in (0, 1):
            for period, duty in ((512, 256), (256, 128)):
                plan.append(Scenario(
                    variant=variant, workload="countdown", scale=12,
                    schedule={"kind": "starve", "cid": cid,
                              "period": period, "duty": duty},
                ))
        # deliberate undersizing: the queue-full abort must fire
        plan.append(Scenario(
            variant=variant, workload="countdown", scale=20,
            capacity=30, expect_full=True,
        ))
    plan += _sharded_scenarios(base_seed, deep=False)
    plan += _adaptive_scenarios(base_seed, deep=False)
    return plan


def _adaptive_scenarios(base_seed: int, deep: bool) -> List[Scenario]:
    """Overflow-path scenarios for GROW / SPILL: capacities sized so the
    bare variants would abort queue-full, native order plus seeded-random
    schedules, and a deliberately exhausted pool / ring (the graceful
    abort must still fire)."""
    plan: List[Scenario] = []
    n_rand = 20 if deep else 8
    # GROW: 60 logical slots through a 24-slot pool (native order only —
    # the 3-segment pool is sized to the native peak of 2 live segments)
    # and through a 48-slot pool with headroom for schedule skew.
    plan.append(Scenario(
        variant="GROW", workload="countdown", scale=20,
        capacity=24, seg_cap=8, pool_segments=3,
    ))
    plan.append(Scenario(
        variant="GROW", workload="fanout", scale=63,
        capacity=96, seg_cap=32, pool_segments=3,
    ))
    for k in range(n_rand):
        plan.append(Scenario(
            variant="GROW", workload="countdown", scale=20,
            capacity=48, seg_cap=8, pool_segments=6,
            schedule=_random(base_seed + 600 + k),
        ))
    # SPILL: a small ring absorbing a 255-node fanout at two wavefronts.
    # The ring must exceed the 16 resident lanes plus the held-publish
    # burst margin (§4.2): 24 slots suffice under the native order, but
    # schedule holds stretch the reservation-to-store window, so the
    # explored-schedule runs get 32.
    plan.append(Scenario(
        variant="SPILL", workload="fanout", scale=255, n_wavefronts=2,
        capacity=24, spill_capacity=1024, high_water=10, low_water=6,
    ))
    spill_kw = dict(
        variant="SPILL", workload="fanout", scale=255, n_wavefronts=2,
        capacity=32, spill_capacity=1024, high_water=12, low_water=8,
    )
    for k in range(n_rand):
        plan.append(Scenario(
            **spill_kw, schedule=_random(base_seed + 700 + k),
        ))
    # exhausted segment pool: still a graceful queue-full abort
    plan.append(Scenario(
        variant="GROW", workload="fanout", scale=63,
        capacity=24, seg_cap=8, pool_segments=3, expect_full=True,
    ))
    if deep:
        for k in range(n_rand // 2):
            plan.append(Scenario(
                variant="GROW", workload="fanout", scale=127,
                capacity=128, seg_cap=32, pool_segments=4,
                schedule=_random(base_seed + 800 + k),
            ))
    return plan


def _sharded_scenarios(base_seed: int, deep: bool) -> List[Scenario]:
    """Multi-shard scenarios for the SHARDED composition: steal on/off,
    native order plus seeded-random schedules (fanout's bursty publishes
    are what actually opens steal windows)."""
    plan: List[Scenario] = []
    n_rand = 12 if deep else 5
    for steal in (True, False):
        plan.append(Scenario(
            variant="SHARDED", workload="fanout", scale=255,
            shards=2, steal=steal,
        ))
        plan.append(Scenario(
            variant="SHARDED", workload="countdown", scale=12,
            shards=2, steal=steal,
        ))
        for k in range(n_rand):
            plan.append(Scenario(
                variant="SHARDED", workload="fanout", scale=255,
                shards=2, steal=steal,
                schedule=_random(base_seed + 300 + k),
            ))
        for k in range(n_rand // 2):
            plan.append(Scenario(
                variant="SHARDED", workload="countdown", scale=12,
                shards=2, steal=steal,
                schedule=_random(base_seed + 400 + k),
            ))
    if deep:
        for n_wf in (4, 8):
            for k in range(10):
                plan.append(Scenario(
                    variant="SHARDED", workload="fanout", scale=255,
                    shards=2, steal=True, n_wavefronts=n_wf,
                    schedule=_random(base_seed + 500 + 50 * n_wf + k),
                ))
    return plan


def deep_plan(base_seed: int = 0) -> List[Scenario]:
    """The nightly-budget plan: ~10x quick, larger scales/geometries."""
    plan: List[Scenario] = []
    for variant in ALL_VARIANTS:
        for workload, scales in (
            ("countdown", (12, 30)),
            ("fanout", (63, 255)),
        ):
            for scale in scales:
                plan.append(Scenario(
                    variant=variant, workload=workload, scale=scale))
                for n_wf in (2, 4, 6, 8):
                    for k in range(25):
                        plan.append(Scenario(
                            variant=variant, workload=workload, scale=scale,
                            n_wavefronts=n_wf,
                            schedule=_random(
                                base_seed + 1000 * n_wf + k,
                                hold_prob=0.1 + 0.05 * (k % 3),
                                burst=24 * (1 + k % 3),
                            ),
                        ))
        for k in range(40):
            plan.append(Scenario(
                variant=variant, workload="countdown", scale=24,
                circular=True, capacity=60,
                schedule=_random(base_seed + 5000 + k),
            ))
        for tgt in range(8):
            for patience in (48, 96, 192):
                plan.append(Scenario(
                    variant=variant, workload="countdown", scale=20,
                    n_wavefronts=8,
                    schedule={"kind": "delay", "target": tgt,
                              "patience": patience},
                ))
        for cid in (0, 1):
            for period, duty in ((512, 256), (256, 128), (1024, 768)):
                plan.append(Scenario(
                    variant=variant, workload="fanout", scale=127,
                    schedule={"kind": "starve", "cid": cid,
                              "period": period, "duty": duty},
                ))
        plan.append(Scenario(
            variant=variant, workload="countdown", scale=20,
            capacity=30, expect_full=True,
        ))
        plan.append(Scenario(
            variant=variant, workload="fanout", scale=127,
            capacity=60, expect_full=True,
        ))
    plan += _sharded_scenarios(base_seed, deep=True)
    plan += _adaptive_scenarios(base_seed, deep=True)
    return plan


@dataclass
class Report:
    """Aggregate result of one exploration run."""

    n_run: int = 0
    n_ok: int = 0
    events: int = 0
    elapsed: float = 0.0
    failures: List[Outcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def run_plan(
    plan: List[Scenario],
    keep_going: bool = False,
    max_scenarios: Optional[int] = None,
    progress: Optional[Callable[[int, int, Scenario], None]] = None,
) -> Report:
    """Run scenarios in order; stop at the first failure by default."""
    if max_scenarios is not None:
        plan = plan[:max_scenarios]
    rep = Report()
    t0 = time.monotonic()
    total = len(plan)
    for i, sc in enumerate(plan):
        if progress is not None:
            progress(i, total, sc)
        out = run_scenario(sc)
        rep.n_run += 1
        rep.events += out.events
        if out.ok:
            rep.n_ok += 1
        else:
            rep.failures.append(out)
            if not keep_going:
                break
    rep.elapsed = time.monotonic() - t0
    return rep


#: plant -> scenarios guaranteed to expose it (deterministic plants use
#: one native-order run; schedule-dependent plants sweep random seeds).
def _selftest_scenarios(plant: str, deep: bool) -> List[Scenario]:
    spec = PLANTS[plant]
    variant = spec["variant"]
    if variant == "SHARDED":
        # the steal plants need the steal path to fire: fanout's bursty
        # publishes open surplus windows (rear ahead of the parked
        # front) at the loaded shard while the other shard's wavefronts
        # spin empty, so the native order steals deterministically.
        # Scenario shard fields mirror the plant's constructor kwargs.
        kw = spec.get("kwargs", {})
        base = dict(
            plant=plant, variant=variant, workload="fanout", scale=255,
            shards=kw.get("n_shards", 2), steal=kw.get("steal", True),
            steal_quantum=kw.get("steal_quantum", 4),
            spin_threshold=kw.get("spin_threshold", 1),
            max_work_cycles=3_000,
        )
        out = [Scenario(**base)]
        if spec["needs_schedule"] or deep:
            out += [
                Scenario(**base, schedule=_random(k))
                for k in range(20 if deep else 10)
            ]
        return out
    if variant == "GROW":
        # the crash window needs the publish stream to cross into a
        # device-linked segment; the pool is roomy so the wedge (not a
        # pool-exhaustion abort) is what surfaces.
        kw = spec.get("kwargs", {})
        return [Scenario(
            plant=plant, variant=variant, workload="countdown", scale=12,
            capacity=48, seg_cap=kw.get("seg_cap", 8),
            pool_segments=kw.get("pool_segments", 6),
            max_work_cycles=3_000,
        )]
    if variant == "SPILL":
        # the tight two-wavefront ring spills heavily, so the pump runs
        # many times and the stuck head is re-announced deterministically.
        kw = spec.get("kwargs", {})
        return [Scenario(
            plant=plant, variant=variant, workload="fanout", scale=255,
            n_wavefronts=2, capacity=24,
            spill_capacity=kw.get("spill_capacity", 1024),
            high_water=kw.get("high_water", 10),
            low_water=kw.get("low_water", 6),
            max_work_cycles=3_000,
        )]
    if not spec["needs_schedule"]:
        sc = Scenario(
            plant=plant, variant=variant, workload="countdown", scale=12,
            max_work_cycles=3_000,
        )
        out = [sc]
        if plant == "skip-dna-restore":
            # also exposed as a wrap-around hazard when circular
            out.append(Scenario(
                plant=plant, variant=variant, workload="countdown",
                scale=20, circular=True, capacity=56, max_work_cycles=3_000,
            ))
        return out
    n = 60 if deep else 40
    return [
        Scenario(
            plant=plant, variant=variant, workload="countdown", scale=12,
            schedule=_random(k), max_work_cycles=3_000,
        )
        for k in range(n)
    ]


@dataclass
class SelftestResult:
    plant: str
    caught: bool
    invariant: Optional[str]
    runs: int
    expected: tuple
    detail: str = ""


def selftest(deep: bool = False) -> List[SelftestResult]:
    """Plant every known bug and confirm the oracle catches it.

    Schedule-dependent plants count as caught if *any* scenario in
    their sweep trips an expected invariant; deterministic plants must
    be caught by their single scenario.
    """
    results = []
    for plant, spec in sorted(PLANTS.items()):
        expected = tuple(sorted(spec["invariants"]))
        caught = False
        invariant = None
        detail = ""
        scenarios = _selftest_scenarios(plant, deep)
        for sc in scenarios:
            out = run_scenario(sc)
            if not out.ok and out.invariant in spec["invariants"]:
                caught, invariant, detail = True, out.invariant, out.detail
                break
            if not out.ok and invariant is None:
                # failed, but on an unexpected invariant: remember it
                invariant, detail = out.invariant, out.detail
        results.append(SelftestResult(
            plant=plant, caught=caught, invariant=invariant,
            runs=len(scenarios), expected=expected, detail=detail,
        ))
    return results
