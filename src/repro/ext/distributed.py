"""Distributed per-group work queues with stealing (extension, §2.1).

The related work the paper builds on (Tzeng, Patney & Owens 2010) studied
the design space "from a single monolithic task queue to distributed
queuing with task stealing and donation".  The paper itself argues a
single low-contention queue; this module implements the distributed
alternative so the trade-off can be measured on the same simulator
(``benchmarks/bench_ext_distributed.py``):

* one bounded CAS queue (with valid-flag hand-off) per *queue group*;
  each wavefront's home queue is ``wf_id % n_queues``;
* enqueues go to the home queue (proxy-aggregated CAS reserve);
* dequeues try the home queue first; when it is empty, the wavefront
  *steals*: it probes the other queues round-robin, one victim per work
  cycle;
* the global termination protocol is unchanged — in-flight counting is
  queue-layout agnostic.

Compared to the single RF/AN queue, distribution trades proxy-counter
contention for load imbalance and steal probing; with a saturating
workload the single retry-free queue stays ahead, while the distributed
layout narrows the gap as contention rises.
"""

from __future__ import annotations

from typing import Generator, Iterable, List

import numpy as np

from repro.core.constants import FRONT, REAR
from repro.core.queue_api import (
    DeviceQueue,
    K_CAS_ROUNDS,
    K_DEQ_REQUESTS,
    K_DEQ_TOKENS,
    K_EMPTY_EXC,
    K_ENQ_TOKENS,
    K_PROXY_ATOMICS,
    QueueFull,
)
from repro.core.state import WavefrontQueueState
from repro.simt import (
    Abort,
    AtomicKind,
    AtomicRMW,
    GlobalMemory,
    KernelContext,
    LocalOp,
    MemRead,
    MemWrite,
    Op,
)
from repro.simt.lanes import rank_within, segmented_rank

K_STEALS = "queue.steal_attempts"
K_STEAL_HITS = "queue.steal_hits"
K_DONATIONS = "queue.donated_tokens"


class DistributedWorkQueues(DeviceQueue):
    """N proxy-aggregated CAS queues with round-robin stealing."""

    variant = "DIST"
    retry_free = False
    arbitrary_n = True

    def __init__(
        self,
        capacity: int,
        n_queues: int = 4,
        prefix: str = "dwq",
        circular: bool = False,
        donate_threshold: int | None = None,
    ):
        """``donate_threshold``: when a wavefront publishes more than this
        many tokens in one batch, the excess is *donated* to the next
        queue (Tzeng et al.'s donation mechanism) — spreading bursts
        instead of waiting for victims to come stealing.  ``None``
        disables donation."""
        if n_queues <= 0:
            raise ValueError(f"n_queues must be positive, got {n_queues}")
        if donate_threshold is not None and donate_threshold <= 0:
            raise ValueError("donate_threshold must be positive or None")
        super().__init__(capacity, prefix=prefix, circular=circular)
        self.n_queues = n_queues
        self.donate_threshold = donate_threshold
        #: per-wavefront steal cursor lives in the state cache dict; the
        #: queue object itself stays immutable/shareable.

    # ------------------------------------------------------------------
    def _ctrl(self, q: int) -> str:
        return f"{self.prefix}.{q}.ctrl"

    def _data(self, q: int) -> str:
        return f"{self.prefix}.{q}.data"

    def _valid(self, q: int) -> str:
        return f"{self.prefix}.{q}.valid"

    def allocate(self, memory: GlobalMemory) -> None:
        for q in range(self.n_queues):
            memory.alloc(self._data(q), self.capacity, fill=0)
            memory.mark_hot(self._data(q))
            memory.alloc(self._valid(q), self.capacity, fill=0)
            memory.mark_hot(self._valid(q))
            memory.alloc(self._ctrl(q), 2, fill=0)

    def seed(self, memory: GlobalMemory, tokens: Iterable[int]) -> int:
        toks = np.asarray(list(tokens), dtype=np.int64)
        if np.any(toks < 0):
            raise ValueError("task tokens must be non-negative")
        for i, t in enumerate(toks):
            q = i % self.n_queues
            ctrl = memory[self._ctrl(q)]
            rear = int(ctrl[REAR])
            if rear + 1 > self.capacity:
                raise QueueFull(f"seed overflows queue {q}")
            memory[self._data(q)][self._phys(rear)] = t
            memory[self._valid(q)][self._phys(rear)] = 1
            ctrl[REAR] = rear + 1
        return int(toks.size)

    # ------------------------------------------------------------------
    def _home(self, ctx: KernelContext) -> int:
        return ctx.wf_id % self.n_queues

    def acquire(
        self, ctx: KernelContext, st: WavefrontQueueState
    ) -> Generator[Op, Op, None]:
        stats = ctx.stats
        dev = ctx.device
        n = st.n_hungry
        if n == 0:
            return
        hungry = st.hungry_mask()
        stats.custom[K_DEQ_REQUESTS] += n
        ranks, _ = rank_within(hungry)
        yield LocalOp(dev.lds_op_cycles)

        # probe order: home queue, then one steal victim per work cycle
        if not isinstance(st.cache, dict):
            st.cache = {"steal_cursor": 0}
        home = self._home(ctx)
        cursor = st.cache["steal_cursor"]
        victim = (home + 1 + cursor) % self.n_queues
        probes = [home] if self.n_queues == 1 else [home, victim]

        for probe_i, q in enumerate(probes):
            is_steal = probe_i > 0
            if is_steal:
                stats.custom[K_STEALS] += 1
                st.cache["steal_cursor"] = (cursor + 1) % max(
                    self.n_queues - 1, 1
                )
            ctrl = MemRead(self._ctrl(q), np.array([FRONT, REAR], dtype=np.int64))
            yield ctrl
            front, rear = int(ctrl.result[0]), int(ctrl.result[1])
            m = min(n, rear - front)
            if m <= 0:
                if not is_steal and self.n_queues == 1:
                    stats.custom[K_EMPTY_EXC] += n
                continue
            op = AtomicRMW(self._ctrl(q), FRONT, AtomicKind.CAS, front, front + m)
            yield op
            stats.custom[K_PROXY_ATOMICS] += 1
            if not bool(op.success[0]):
                stats.custom[K_CAS_ROUNDS] += 1
                continue
            if is_steal:
                stats.custom[K_STEAL_HITS] += 1
            served = hungry & (ranks < m)
            lanes = np.flatnonzero(served)
            phys = self._phys(front + ranks[served])
            while True:
                vread = MemRead(self._valid(q), phys)
                yield vread
                if np.all(vread.result == 1):
                    break
                stats.custom[K_CAS_ROUNDS] += 1
            dread = MemRead(self._data(q), phys)
            yield dread
            yield MemWrite(self._valid(q), phys, 0)
            st.grant(lanes, dread.result)
            stats.custom[K_DEQ_TOKENS] += int(lanes.size)
            return
        stats.custom[K_EMPTY_EXC] += n

    def publish(
        self,
        ctx: KernelContext,
        st: WavefrontQueueState,
        counts: np.ndarray,
        tokens: np.ndarray,
    ) -> Generator[Op, Op, None]:
        counts = np.asarray(counts, dtype=np.int64)
        total = int(np.maximum(counts, 0).sum())
        if total == 0:
            return
        if (
            self.donate_threshold is not None
            and self.n_queues > 1
            and total > self.donate_threshold
        ):
            # donate the excess: lanes with odd wavefront rank publish to
            # the neighbour queue, splitting the burst roughly in half.
            ranks, _ = rank_within(counts > 0)
            keep = (ranks % 2 == 0) & (counts > 0)
            give = (counts > 0) & ~keep
            ctx.stats.custom[K_DONATIONS] += int(counts[give].sum())
            yield from self._publish_to(
                ctx, self._home(ctx), np.where(keep, counts, 0), tokens
            )
            yield from self._publish_to(
                ctx,
                (self._home(ctx) + 1) % self.n_queues,
                np.where(give, counts, 0),
                tokens,
            )
            return
        yield from self._publish_to(ctx, self._home(ctx), counts, tokens)

    def _publish_to(
        self,
        ctx: KernelContext,
        q: int,
        counts: np.ndarray,
        tokens: np.ndarray,
    ) -> Generator[Op, Op, None]:
        stats = ctx.stats
        dev = ctx.device
        counts = np.asarray(counts, dtype=np.int64)
        has_new = counts > 0
        if not has_new.any():
            return
        ranks, total = segmented_rank(has_new, counts)
        yield LocalOp(dev.lds_op_cycles)

        while True:
            ctrl = MemRead(self._ctrl(q), np.array([FRONT, REAR], dtype=np.int64))
            yield ctrl
            front, rear = int(ctrl.result[0]), int(ctrl.result[1])
            full = (
                rear + total - front > self.capacity
                if self.circular
                else rear + total > self.capacity
            )
            if full:
                yield Abort(
                    f"distributed queue {q} full: fill "
                    f"{rear - front}/{self.capacity} (rear={rear} "
                    f"front={front} need={total})",
                    info={
                        "queue": f"{self.prefix}.{q}",
                        "capacity": self.capacity,
                        "fill": rear - front,
                        "shard": q,
                    },
                )
            op = AtomicRMW(self._ctrl(q), REAR, AtomicKind.CAS, rear, rear + total)
            yield op
            stats.custom[K_PROXY_ATOMICS] += 1
            if bool(op.success[0]):
                break
            stats.custom[K_CAS_ROUNDS] += 1

        lane_base = rear + ranks
        max_count = int(counts.max())
        for t in range(max_count):
            active = counts > t
            phys = self._phys(lane_base[active] + t)
            yield MemWrite(self._data(q), phys, tokens[active, t])
            yield MemWrite(self._valid(q), phys, 1)
        stats.custom[K_ENQ_TOKENS] += int(total)
