"""NAIVE — the textbook per-lane CAS queue, kept as ablation evidence.

This is the maximally literal port of a per-thread CAS dequeue to SIMT:
every hungry lane loads ``Front`` (lock-step: they all see the same
value) and CASes it to ``+1``, so *at most one lane per wavefront per
attempt can win*; everyone else fails and retries on the next work cycle.
First-principles simulation shows this formulation convoys: feeding a
64-lane wavefront takes ~64 work cycles, and at scale the atomic unit
saturates with failing CASes, producing slowdowns orders of magnitude
beyond what the paper reports for its BASE.  That observation is why the
shipping :class:`~repro.core.queue_base_cas.BaseCasQueue` uses the
speculative-ticket formulation instead (DESIGN.md §7) — and this class
exists so ``benchmarks/bench_ablation_naive_cas.py`` can regenerate the
evidence.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.core.constants import FRONT
from repro.core.queue_api import (
    K_CAS_ROUNDS,
    K_DEQ_REQUESTS,
    K_EMPTY_EXC,
)
from repro.core.queue_base_cas import BaseCasQueue
from repro.core.state import WavefrontQueueState
from repro.simt import AtomicKind, AtomicRMW, KernelContext, MemRead, MemWrite, Op


class NaiveCasQueue(BaseCasQueue):
    """Per-lane CAS with shared expected value: one winner per attempt."""

    variant = "NAIVE"
    retry_free = False
    arbitrary_n = False

    def acquire(
        self, ctx: KernelContext, st: WavefrontQueueState
    ) -> Generator[Op, Op, None]:
        stats = ctx.stats
        probe = self._probe(ctx)

        # one shared-expected CAS attempt per work cycle
        n = st.n_hungry
        if n:
            attempting = st.hungry_mask()
            stats.custom[K_DEQ_REQUESTS] += n
            if probe is not None:
                probe.wf_phase(ctx.wf_id, "reserve", self.prefix)
            ctrl = self._read_ctrl()
            yield ctrl
            front, rear = int(ctrl.result[0]), int(ctrl.result[1])
            if probe is not None:
                probe.queue_counter(self.prefix, "front", probe.now, front)
                probe.queue_counter(self.prefix, "rear", probe.now, rear)
            if rear - front <= 0:
                stats.custom[K_EMPTY_EXC] += n
                if probe is not None:
                    probe.queue_instant(self.prefix, "empty", probe.now, n)
            else:
                op = AtomicRMW(
                    self.buf_ctrl,
                    np.full(n, FRONT, dtype=np.int64),
                    AtomicKind.CAS,
                    front,
                    front + 1,
                )
                yield op
                winners = np.flatnonzero(op.success)
                if winners.size:
                    lane = np.flatnonzero(attempting)[winners[:1]]
                    st.watch(lane, np.array([front], dtype=np.int64))
                    if probe is not None:
                        probe.queue_reserve(self.prefix, "acquire", front, 1)
                        probe.queue_watch(
                            self.prefix,
                            np.array([front], dtype=np.int64),
                            probe.now,
                        )
                else:
                    stats.custom[K_CAS_ROUNDS] += 1
                    if probe is not None:
                        probe.queue_instant(
                            self.prefix, "cas_retry", probe.now, n
                        )

        # hand-off identical to BASE: poll valid, read data, clear flag
        if st.n_watching:
            claimed = st.slot >= 0
            lanes = np.flatnonzero(claimed)
            raw = st.slot[lanes]
            phys = self._phys(raw)
            if probe is not None:
                probe.wf_phase(ctx.wf_id, "dna_spin", self.prefix)
            vread = MemRead(self.buf_valid, phys)
            yield vread
            ready = vread.result == 1
            if ready.any():
                got_lanes = lanes[ready]
                got_phys = phys[ready]
                dread = MemRead(self.buf_data, got_phys)
                yield dread
                if probe is not None:
                    probe.queue_grant(self.prefix, raw[ready], probe.now)
                    probe.queue_deliver(self.prefix, raw[ready], dread.result)
                yield MemWrite(self.buf_valid, got_phys, 0)
                st.unwatch(got_lanes)
                st.grant(got_lanes, dread.result)
