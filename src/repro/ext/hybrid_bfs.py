"""Direction-optimizing (hybrid) BFS — the "faster BFS" the paper cites.

§5.1: "While faster BFS algorithms exist [9], we chose a classic
top-down BFS algorithm" — reference [9] being Enterprise, whose core
trick (after Beamer et al.) is *direction switching*: expand top-down
while the frontier is small, but once a large fraction of the graph is
on the frontier, flip to **bottom-up** — every unvisited vertex scans
its in-edges for any visited parent, which touches each unvisited vertex
once instead of every frontier edge.

This extension implements the hybrid scheme as a level-synchronous
driver on the simulator, so the repo can also reproduce the follow-up
question the paper leaves open: how does the queue-scheduled top-down
BFS compare against a direction-optimizing one per dataset category?
(Spoiler, same as the literature: bottom-up wins on shallow social
graphs with huge frontiers, persistent top-down wins on deep roadmaps
where frontiers never grow.)
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.graphs import CSRGraph
from repro.simt import (
    DeviceSpec,
    Engine,
    KernelContext,
    MemRead,
    MemWrite,
    Op,
    SimStats,
)

from repro.bfs.common import (
    BUF_COSTS,
    BUF_OFFSETS,
    BUF_TARGETS,
    BFSRun,
    alloc_graph_buffers,
    read_costs,
)

BUF_IN_OFFSETS = "hybrid.in_offsets"
BUF_IN_SOURCES = "hybrid.in_sources"
BUF_FRONT = "hybrid.frontier"     # 0/1 mask: vertex is on current frontier
BUF_NEXT = "hybrid.next"          # 0/1 mask: next frontier
BUF_FLAG = "hybrid.flag"          # [0] = next frontier size


def _topdown_kernel(ctx: KernelContext) -> Generator[Op, Op, None]:
    """Classic frontier-expansion: threads strided over vertices."""
    n = int(ctx.params["n_vertices"])
    level = int(ctx.params["level"])
    wf = ctx.device.wavefront_size
    stride = ctx.n_wavefronts * wf
    for chunk in range(ctx.global_thread_base, n, stride):
        vids = chunk + ctx.lane
        vids = vids[vids < n]
        if vids.size == 0:
            continue
        frd = MemRead(BUF_FRONT, vids)
        yield frd
        active = frd.result == 1
        if not active.any():
            continue
        v = vids[active]
        ord_ = MemRead(BUF_OFFSETS, np.concatenate([v, v + 1]))
        yield ord_
        starts, ends = ord_.result[: v.size], ord_.result[v.size :]
        cur = starts.copy()
        while True:
            act = cur < ends
            if not act.any():
                break
            trd = MemRead(BUF_TARGETS, cur[act])
            yield trd
            kids = trd.result
            crd = MemRead(BUF_COSTS, kids)
            yield crd
            fresh = crd.result > level + 1
            if fresh.any():
                nk = kids[fresh]
                yield MemWrite(BUF_COSTS, nk, level + 1)
                yield MemWrite(BUF_NEXT, nk, 1)
                yield MemWrite(BUF_FLAG, 0, 1)
            cur[act] += 1


def _bottomup_kernel(ctx: KernelContext) -> Generator[Op, Op, None]:
    """Bottom-up sweep: every unvisited vertex looks for a visited parent."""
    n = int(ctx.params["n_vertices"])
    level = int(ctx.params["level"])
    inf = int(ctx.params["inf"])
    wf = ctx.device.wavefront_size
    stride = ctx.n_wavefronts * wf
    for chunk in range(ctx.global_thread_base, n, stride):
        vids = chunk + ctx.lane
        vids = vids[vids < n]
        if vids.size == 0:
            continue
        crd = MemRead(BUF_COSTS, vids)
        yield crd
        unvisited = crd.result >= inf
        if not unvisited.any():
            continue
        v = vids[unvisited]
        ord_ = MemRead(BUF_IN_OFFSETS, np.concatenate([v, v + 1]))
        yield ord_
        starts, ends = ord_.result[: v.size], ord_.result[v.size :]
        cur = starts.copy()
        found = np.zeros(v.size, dtype=bool)
        while True:
            act = ~found & (cur < ends)
            if not act.any():
                break
            prd = MemRead(BUF_IN_SOURCES, cur[act])
            yield prd
            frd = MemRead(BUF_FRONT, prd.result)
            yield frd
            hit = frd.result == 1
            if hit.any():
                lanes = np.flatnonzero(act)[hit]
                found[lanes] = True
                nk = v[lanes]
                yield MemWrite(BUF_COSTS, nk, level + 1)
                yield MemWrite(BUF_NEXT, nk, 1)
                yield MemWrite(BUF_FLAG, 0, 1)
            cur[act] += 1


def run_hybrid_bfs(
    graph: CSRGraph,
    source: int,
    device: DeviceSpec,
    n_workgroups: int | None = None,
    *,
    switch_fraction: float = 0.05,
    max_cycles: int = 20_000_000_000,
    verify: bool = False,
) -> BFSRun:
    """Direction-optimizing level-synchronous BFS.

    Switches to bottom-up when the frontier exceeds ``switch_fraction``
    of the vertices, and back to top-down when it shrinks below it.
    """
    if not 0 < switch_fraction < 1:
        raise ValueError("switch_fraction must be in (0, 1)")
    if n_workgroups is None:
        n_workgroups = device.max_resident_wavefronts
    engine = Engine(device)
    alloc_graph_buffers(engine.memory, graph, source)
    rev = graph.reversed()
    engine.memory.alloc_from(BUF_IN_OFFSETS, rev.offsets)
    engine.memory.alloc_from(
        BUF_IN_SOURCES,
        rev.targets if rev.n_edges else np.zeros(1, dtype=np.int64),
    )
    n = graph.n_vertices
    front = engine.memory.alloc(BUF_FRONT, n, fill=0)
    nxt = engine.memory.alloc(BUF_NEXT, n, fill=0)
    flag = engine.memory.alloc(BUF_FLAG, 1, fill=0)
    front[source] = 1

    from repro.bfs.common import INF_COST

    stats = SimStats()
    total_cycles = 0
    level = 0
    frontier_size = 1
    modes = []
    while True:
        flag[0] = 0
        bottom_up = frontier_size > switch_fraction * n
        modes.append("bu" if bottom_up else "td")
        kernel = _bottomup_kernel if bottom_up else _topdown_kernel
        res = engine.launch(
            kernel,
            n_workgroups,
            params={
                "n_vertices": n,
                "level": level,
                "inf": int(INF_COST),
            },
            max_cycles=max_cycles,
            charge_launch_overhead=True,
        )
        stats.merge(res.stats)
        total_cycles += res.cycles
        if int(flag[0]) == 0:
            break
        front[:] = nxt
        nxt[:] = 0
        frontier_size = int(front.sum())
        level += 1

    stats.sim_cycles = total_cycles
    run = BFSRun(
        implementation="Hybrid",
        dataset=graph.name or "unnamed",
        device=device.name,
        n_workgroups=n_workgroups,
        cycles=total_cycles,
        seconds=device.seconds(total_cycles),
        costs=read_costs(engine.memory, n),
        stats=stats,
        extra={"levels": level + 1, "modes": modes},
    )
    if verify:
        run.verify(graph, source)
    return run
