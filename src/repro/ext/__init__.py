"""Extensions beyond the paper's shipped design.

* :class:`~repro.ext.queue_naive_cas.NaiveCasQueue` — the textbook
  per-lane CAS queue kept as evidence for the BASE-formulation decision
  in DESIGN.md §7.
* :class:`~repro.ext.distributed.DistributedWorkQueues` — the distributed
  queuing + stealing alternative from the related work (Tzeng et al.
  2010), for the single-vs-distributed trade-off bench.
* :func:`~repro.ext.hybrid_bfs.run_hybrid_bfs` — direction-optimizing
  BFS (the "faster BFS" of the paper's reference [9]), for the top-down
  vs hybrid follow-up comparison.
"""

from .distributed import DistributedWorkQueues
from .hybrid_bfs import run_hybrid_bfs
from .queue_naive_cas import NaiveCasQueue

__all__ = ["DistributedWorkQueues", "NaiveCasQueue", "run_hybrid_bfs"]
