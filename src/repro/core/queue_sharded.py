"""Sharded multi-queue composition with cross-shard work stealing.

The paper's RF/AN queue is a single global MPMC structure; its one
``Front``/``Rear`` pair is the contention point that the synthetic
saturation benchmark exposes at Fiji scale.  The standard next step
(Tzeng, Patney & Owens 2010; Shetty et al.; Atos) is to *shard* the
queue — one instance per compute unit — and rebalance load by stealing
between shards.  :class:`ShardedQueue` is that composition layer:

* one inner queue (RF/AN by default, AN/BASE parameterisable) per
  shard, each with its own control words and slot array;
* every wavefront has a **home shard** (``wf_id % n_shards``, which on
  this simulator coincides with its compute unit whenever
  ``n_shards == n_cus``) — all of its proxy reservations, slot parks
  and publishes go to the home shard, so *within a shard* the inner
  variant's properties (retry-freedom, arbitrary-n) are fully
  preserved;
* when the home shard keeps serving ``dna`` — the wavefront's parked
  lanes see no arrivals for more than ``spin_threshold`` consecutive
  work cycles — the wavefront attempts one **steal** per work cycle
  from a victim shard (round-robin or seeded-random selection).

Steal protocol (steal-as-transfer)
----------------------------------
Lanes only ever park on their home shard, so a steal may not hand
tokens to lanes directly (their reservations live at home).  Instead
the thief *transfers a batch*:

1. read the victim's ``(Front, Rear)``; ``avail = Rear - Front`` is the
   stealable surplus (tokens enqueued but not yet dequeue-reserved) —
   if none, try the next victim on the next work cycle;
2. claim ``m = min(steal_quantum, avail)`` entries with one **CAS** on
   the victim's ``Front`` (the only non-retry-free step, and it is not
   retried: a lost race just means somebody else made progress);
3. poll the claimed slots until every token has arrived (the claimed
   range is enqueue-reserved, so each store is on its way), restore the
   ``dna`` sentinel at the victim;
4. reserve ``m`` fresh slots at the home shard with the inner queue's
   own publish-side reservation (an AFA for RF/AN) and store the
   tokens there, where the home's parked lanes pick them up through
   the unmodified retry-free dequeue path.

The transfer preserves the global no-loss/no-duplication contract
(every token leaves the victim exactly once and lands at home exactly
once — checked by :class:`repro.verify.oracle.MultiQueueOracle`) and
keeps the hot per-wavefront paths retry-free; only the cold cross-shard
path pays a CAS.  Stealing therefore requires a retry-free inner
variant (the claimed slots must be ``dna``-sentinel slots that the
thief can poll and restore); AN/BASE inner shards are supported with
``steal=False``.

With ``n_shards=1`` every method delegates directly to the single
inner queue under the *same* buffer prefix: the composition is
bit-identical to the bare inner variant (pinned by
``tests/test_simt_determinism.py``).
"""

from __future__ import annotations

import random
from typing import Dict, Generator, Iterable, List, Optional, Type

import numpy as np

from repro.simt import (
    Abort,
    AtomicKind,
    AtomicRMW,
    GlobalMemory,
    KernelContext,
    MemRead,
    MemWrite,
    Op,
)

from .constants import DNA, FRONT, REAR
from .queue_api import (
    DeviceQueue,
    K_ARRIVAL_CHECKS,
    K_CAS_ROUNDS,
    K_PROXY_ATOMICS,
)
from .queue_an import ArbitraryNQueue
from .queue_base_cas import BaseCasQueue
from .queue_rfan import RetryFreeQueue
from .state import WavefrontQueueState

# steal-path custom counters (only ever touched when n_shards > 1, so a
# single-shard run's stats stay bit-identical to the inner variant's)
K_STEAL_ATTEMPTS = "queue.steal_attempts"      # victim probes issued
K_STEAL_HITS = "queue.steal_hits"              # transfers that moved tokens
K_STEAL_EMPTY = "queue.steal_empty_probes"     # victim had no surplus
K_STEAL_CAS_FAIL = "queue.steal_cas_failures"  # lost the Front race
K_STEAL_TOKENS = "queue.stolen_tokens"         # tokens moved across shards

#: inner variants a shard may be built from.
INNER_VARIANTS: Dict[str, Type[DeviceQueue]] = {
    "RF/AN": RetryFreeQueue,
    "AN": ArbitraryNQueue,
    "BASE": BaseCasQueue,
}


def shard_key(shard: int, name: str) -> str:
    """Per-shard custom-counter key (``queue.shard<i>.<name>``)."""
    return f"queue.shard{shard}.{name}"


class ShardedQueue(DeviceQueue):
    """One inner queue per shard + cross-shard batch stealing.

    Parameters
    ----------
    capacity:
        Per-shard slot count (each shard owns its own slot array).
    n_shards:
        Number of inner queues; wavefront ``w`` is homed on shard
        ``w % n_shards``.
    inner:
        Inner variant name (``"RF/AN"``, ``"AN"``, ``"BASE"``).
    steal:
        Enable cross-shard batch transfers (requires a retry-free
        inner variant).
    steal_quantum:
        Maximum tokens moved per transfer.
    spin_threshold:
        Consecutive empty-handed work cycles (with lanes parked) a
        wavefront tolerates before probing a victim.
    victim:
        ``"round-robin"`` (deterministic cursor per wavefront) or
        ``"random"`` (seeded per-wavefront PRNG).
    victim_seed:
        Base seed for ``victim="random"``.
    """

    variant = "SHARDED"

    def __init__(
        self,
        capacity: int,
        prefix: str = "wq",
        circular: bool = False,
        *,
        n_shards: int = 1,
        inner: str = "RF/AN",
        steal: bool = True,
        steal_quantum: int = 8,
        spin_threshold: int = 4,
        victim: str = "round-robin",
        victim_seed: int = 0,
    ):
        super().__init__(capacity, prefix=prefix, circular=circular)
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        try:
            inner_cls = INNER_VARIANTS[inner]
        except KeyError:
            raise ValueError(
                f"unknown inner variant {inner!r}; expected one of "
                f"{sorted(INNER_VARIANTS)}"
            ) from None
        if steal_quantum <= 0:
            raise ValueError(
                f"steal_quantum must be positive, got {steal_quantum}"
            )
        if spin_threshold < 0:
            raise ValueError(
                f"spin_threshold must be non-negative, got {spin_threshold}"
            )
        if victim not in ("round-robin", "random"):
            raise ValueError(
                f"victim must be 'round-robin' or 'random', got {victim!r}"
            )
        steal = bool(steal) and n_shards > 1
        if steal and not inner_cls.retry_free:
            raise ValueError(
                "stealing requires a retry-free inner variant (the thief "
                "polls and restores dna-sentinel slots); use inner='RF/AN' "
                "or steal=False"
            )
        self.n_shards = int(n_shards)
        self.inner = inner
        self.steal = steal
        self.steal_quantum = int(steal_quantum)
        self.spin_threshold = int(spin_threshold)
        self.victim = victim
        self.victim_seed = int(victim_seed)
        # the composition inherits the inner variant's properties: every
        # per-wavefront operation runs entirely inside one shard.
        self.retry_free = bool(inner_cls.retry_free)
        self.arbitrary_n = bool(inner_cls.arbitrary_n)
        #: the inner queues.  A single shard reuses the outer prefix so
        #: the composition is buffer-for-buffer identical to the bare
        #: inner variant.
        self.shards: List[DeviceQueue] = [
            inner_cls(
                capacity,
                prefix=prefix if n_shards == 1 else f"{prefix}.s{i}",
                circular=circular,
            )
            for i in range(self.n_shards)
        ]
        #: per-wavefront steal state (spin counter, victim cursor/rng),
        #: reset at every allocate() so one queue object can serve
        #: successive launches.
        self._wf: Dict[int, dict] = {}
        #: per-shard counter keys, precomputed so the per-work-cycle hot
        #: path never pays an f-string format.
        self._k_granted = [shard_key(i, "granted") for i in range(self.n_shards)]
        self._k_enqueued = [shard_key(i, "enqueued") for i in range(self.n_shards)]
        self._k_steal_out = [shard_key(i, "steal_out") for i in range(self.n_shards)]
        self._k_steal_in = [shard_key(i, "steal_in") for i in range(self.n_shards)]
        # steal-path stall attribution (all only touched inside _steal,
        # i.e. never when n_shards == 1): per-victim empty probes and
        # lost CAS races, per-home arrival-poll rounds, and a histogram
        # of transfer batch sizes (1 .. steal_quantum).
        self._k_steal_empty = [
            shard_key(i, "steal_empty") for i in range(self.n_shards)
        ]
        self._k_steal_cas_fail = [
            shard_key(i, "steal_cas_fail") for i in range(self.n_shards)
        ]
        self._k_steal_polls = [
            shard_key(i, "steal_poll_rounds") for i in range(self.n_shards)
        ]
        self._k_steal_batch = [
            f"queue.steal_batch.{n}" for n in range(self.steal_quantum + 1)
        ]

    # ------------------------------------------------------------------
    # host side
    # ------------------------------------------------------------------
    def allocate(self, memory: GlobalMemory) -> None:
        for sh in self.shards:
            sh.allocate(memory)
        self._wf.clear()

    def seed(self, memory: GlobalMemory, tokens: Iterable[int]) -> int:
        """Round-robin the initial tokens across shards (token ``i`` to
        shard ``i % n_shards``), mirroring :meth:`note_seed` splitting
        in the multi-queue oracle."""
        toks = list(tokens)
        total = 0
        for i, sh in enumerate(self.shards):
            total += sh.seed(memory, toks[i :: self.n_shards])
        return total

    def drain_host(self, memory: GlobalMemory) -> np.ndarray:
        parts = [sh.drain_host(memory) for sh in self.shards]
        return (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )

    # ------------------------------------------------------------------
    # kernel side
    # ------------------------------------------------------------------
    def _home(self, ctx: KernelContext) -> int:
        return ctx.wf_id % self.n_shards

    def _wf_state(self, ctx: KernelContext) -> dict:
        wf = self._wf.get(ctx.wf_id)
        if wf is None:
            wf = {"spin": 0, "cursor": 0}
            if self.victim == "random":
                wf["rng"] = random.Random(
                    self.victim_seed * 1_000_003 + ctx.wf_id
                )
            self._wf[ctx.wf_id] = wf
        return wf

    def _next_victim(self, home: int, wf: dict) -> int:
        """Pick a victim shard != home (deterministic per wavefront)."""
        n_other = self.n_shards - 1
        if self.victim == "random":
            off = wf["rng"].randrange(n_other)
        else:
            off = wf["cursor"]
            wf["cursor"] = (off + 1) % n_other
        return (home + 1 + off) % self.n_shards

    def acquire(
        self, ctx: KernelContext, st: WavefrontQueueState
    ) -> Generator[Op, Op, None]:
        if self.n_shards == 1:
            yield from self.shards[0].acquire(ctx, st)
            return
        home = ctx.wf_id % self.n_shards
        before = st.n_token
        yield from self.shards[home].acquire(ctx, st)
        got = st.n_token - before
        if got:
            ctx.stats.custom[self._k_granted[home]] += got
        if not self.steal or st.n_watching == 0:
            return
        wf = self._wf.get(ctx.wf_id)
        if wf is None:
            wf = self._wf_state(ctx)
        if got:
            wf["spin"] = 0
            return
        spin = wf["spin"] + 1
        wf["spin"] = spin
        if spin <= self.spin_threshold:
            return
        yield from self._steal(ctx, home, wf)

    def publish(
        self,
        ctx: KernelContext,
        st: WavefrontQueueState,
        counts: np.ndarray,
        tokens: np.ndarray,
    ) -> Generator[Op, Op, None]:
        if self.n_shards == 1:
            yield from self.shards[0].publish(ctx, st, counts, tokens)
            return
        home = ctx.wf_id % self.n_shards
        total = int(np.maximum(np.asarray(counts, dtype=np.int64), 0).sum())
        yield from self.shards[home].publish(ctx, st, counts, tokens)
        if total:
            ctx.stats.custom[self._k_enqueued[home]] += total

    # ------------------------------------------------------------------
    # the steal path
    # ------------------------------------------------------------------
    def _steal(
        self, ctx: KernelContext, home: int, wf: dict
    ) -> Generator[Op, Op, None]:
        """One transfer attempt: victim probe, CAS claim, poll, republish."""
        custom = ctx.stats.custom
        victim_idx = self._next_victim(home, wf)
        v = self.shards[victim_idx]
        h = self.shards[home]
        custom[K_STEAL_ATTEMPTS] += 1
        probe = ctx.probe
        if probe is not None:
            probe.wf_phase(ctx.wf_id, "steal", v.prefix)

        # 1. sample the victim's surplus.
        ctrl = v._read_ctrl()
        yield ctrl
        front, rear = int(ctrl.result[0]), int(ctrl.result[1])
        avail = rear - front
        if not v.circular:
            # monotonic shards: slots at or beyond capacity never receive
            # data, so never claim them (the publisher aborts first).
            avail = min(avail, v.capacity - front)
        if avail <= 0:
            custom[K_STEAL_EMPTY] += 1
            custom[self._k_steal_empty[victim_idx]] += 1
            return
        m = min(self.steal_quantum, avail)

        # 2. claim [front, front+m) with one CAS on the victim's Front.
        #    This is the only non-retry-free step of the composition and
        #    it is deliberately not retried: a lost race means either the
        #    victim's own lanes or another thief took the surplus.
        op = AtomicRMW(v.buf_ctrl, FRONT, AtomicKind.CAS, front, front + m)
        yield op
        custom[K_PROXY_ATOMICS] += 1
        if not bool(op.success[0]):
            custom[K_STEAL_CAS_FAIL] += 1
            custom[K_CAS_ROUNDS] += 1
            custom[self._k_steal_cas_fail[victim_idx]] += 1
            return
        custom[self._k_steal_batch[m]] += 1
        if probe is not None:
            v._probe(ctx)  # ensure the victim is registered
            probe.queue_counter(v.prefix, "front", probe.now, front + m)
            probe.queue_proxy(v.prefix, "acquire", m)
            probe.queue_reserve(v.prefix, "acquire", front, m)

        # 3. the claimed range is enqueue-reserved (rear covered it and
        #    Front had not passed it), so every store is on its way: poll
        #    until all m tokens arrived.
        src_raw = np.arange(front, front + m, dtype=np.int64)
        src_phys = np.asarray(v._phys(src_raw), dtype=np.int64)
        # frozen + prechecked: the claimed range never changes across poll
        # iterations, so the engine may cache its span and elide re-samples
        # while the victim's slot array is untouched.
        src_phys.setflags(write=False)
        read = MemRead(v.buf_data, src_phys, prechecked=True)
        k_polls = self._k_steal_polls[home]
        while True:
            yield read
            custom[K_ARRIVAL_CHECKS] += m
            custom[k_polls] += 1
            if not read.fresh:
                # elided re-sample: nothing stored since the previous
                # poll, which still saw an empty slot.
                continue
            # tokens are non-negative and DNA is the smallest sentinel:
            # min == DNA iff some claimed slot is still empty.
            if int(read.result.min()) != DNA:
                break
        tokens = read.result.copy()

        # 4. republish the batch into the home shard.
        yield from self._republish(ctx, h, v, src_raw, src_phys, tokens)
        custom[K_STEAL_HITS] += 1
        custom[K_STEAL_TOKENS] += m
        custom[self._k_steal_out[victim_idx]] += m
        custom[self._k_steal_in[home]] += m
        wf["spin"] = 0

    def _republish(
        self,
        ctx: KernelContext,
        h: DeviceQueue,
        v: DeviceQueue,
        src_raw: np.ndarray,
        src_phys: np.ndarray,
        tokens: np.ndarray,
    ) -> Generator[Op, Op, None]:
        """Move ``tokens`` (already claimed and read from victim ``v``)
        into fresh slots of home shard ``h``: AFA-reserve at the home
        Rear, restore ``dna`` at the victim, then store the batch via
        the inner queue's sentinel-checked publish-side path.

        Split out so the planted-bug fixtures of ``repro.verify.faults``
        can sabotage exactly this window."""
        custom = ctx.stats.custom
        probe = ctx.probe
        m = int(tokens.size)

        op = AtomicRMW(h.buf_ctrl, REAR, AtomicKind.ADD, m)
        yield op
        custom[K_PROXY_ATOMICS] += 1
        hbase = int(op.old[0])
        dst_raw = np.arange(hbase, hbase + m, dtype=np.int64)
        if probe is not None:
            h._probe(ctx)
            probe.queue_counter(h.prefix, "rear", probe.now, hbase + m)
            probe.queue_proxy(h.prefix, "publish", m)
            probe.queue_reserve(h.prefix, "publish", hbase, m)
            # announce the transfer before the victim-side delivery so
            # the multi-queue oracle can classify the delivery as a
            # transfer rather than a lane consumption.
            probe.queue_steal(v.prefix, h.prefix, src_raw, hbase, tokens)
            probe.queue_grant(v.prefix, src_raw, probe.now)
            probe.queue_deliver(v.prefix, src_raw, tokens)
        # restore the sentinel at the victim (the consuming side of the
        # transfer — same ordering contract as the RF/AN dequeue: the
        # grant/deliver probes fire at this write's issue).
        yield MemWrite(v.buf_data, src_phys, DNA)

        # store at home with the inner queue's full-queue checks.
        oob = ~h._in_bounds(dst_raw)
        if oob.any():
            yield Abort(
                f"queue full: steal republish raw index "
                f"{int(dst_raw[oob][0])} beyond capacity {h.capacity} "
                f"on shard {home} ({h.prefix!r}, fill "
                f"{int(dst_raw[oob][0])}/{h.capacity})",
                info={
                    "queue": h.prefix,
                    "capacity": h.capacity,
                    "fill": int(dst_raw[oob][0]),
                    "shard": home,
                },
            )
        dst_phys = np.asarray(h._phys(dst_raw), dtype=np.int64)
        check = MemRead(h.buf_data, dst_phys)
        yield check
        if np.any(check.result != DNA):
            yield Abort(
                "queue full: steal republish target slot not "
                f"data-not-arrived on shard {home} ({h.prefix!r}, ring "
                f"fill {h.capacity}/{h.capacity})",
                info={
                    "queue": h.prefix,
                    "capacity": h.capacity,
                    "fill": h.capacity,
                    "shard": home,
                },
            )
        yield from self._store_batch(ctx, h, dst_raw, dst_phys, tokens)

    def _store_batch(
        self,
        ctx: KernelContext,
        h: DeviceQueue,
        dst_raw: np.ndarray,
        dst_phys: np.ndarray,
        tokens: np.ndarray,
    ) -> Generator[Op, Op, None]:
        """Land a transferred batch in its reserved home slots (the final
        store step of :meth:`_republish`; a separate method so fault
        fixtures can drop individual stores)."""
        probe = ctx.probe
        if probe is not None:
            probe.queue_store(h.prefix, dst_raw, tokens)
        yield MemWrite(h.buf_data, dst_phys, tokens)
